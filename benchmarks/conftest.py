"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints it (run with ``pytest benchmarks/ --benchmark-only -s`` to see
the tables inline; they are also written to ``benchmarks/out/``).
Simulation runs are deterministic, so a single benchmark round is
meaningful — the timing measures the cost of the reproduction
pipeline, while the *content* of the tables is the scientific output.
"""

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def record_table(out_dir):
    """Print a rendered experiment and persist it for EXPERIMENTS.md."""
    def _record(result):
        text = result.render()
        print("\n" + text)
        slug = result.exp_id.lower().replace(" ", "_")
        (out_dir / f"{slug}.txt").write_text(text + "\n")
        return result
    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic experiment with one round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
