"""Benchmark: transparent scaling across the GeForce 8 family.

Section 1 (principle 4): the execution model "enables the execution of
the same CUDA program across processor family members with a varying
number of cores, and makes the hardware scalable."  The same unrolled
matmul kernel is modelled on the 8600 GTS / 8800 GTS / 8800 GTX.
"""

from conftest import run_once
from repro.apps.matmul import MatMul
from repro.arch.device import (
    geforce_8600_gts,
    geforce_8800_gts,
    geforce_8800_gtx,
)
from repro.bench.tables import format_table


def run_family(n=1024):
    rows = []
    for spec in (geforce_8600_gts(), geforce_8800_gts(),
                 geforce_8800_gtx()):
        app = MatMul(spec)
        run = app.run({"n": n, "variant": "tiled_unrolled", "tile": 16,
                       "trace_blocks": 2}, functional=False)
        est = run.launches[0].estimate()
        rows.append((spec.name, spec.num_sps,
                     round(spec.peak_mad_gflops, 1),
                     round(est.gflops, 1),
                     round(est.gflops / spec.peak_mad_gflops, 3)))
    return rows


def test_family_scaling(benchmark, out_dir):
    rows = run_once(benchmark, run_family)
    text = format_table(
        ["device", "SPs", "peak GFLOPS", "matmul GFLOPS", "efficiency"],
        rows, title="Scaling study: one kernel, three family members")
    print("\n" + text)
    (out_dir / "scaling_family.txt").write_text(text + "\n")
    gflops = [r[3] for r in rows]
    # absolute performance scales with the machine ...
    assert gflops[0] < gflops[1] < gflops[2]
    # ... while the fraction of peak stays roughly constant: the same
    # program exploits each family member without retuning
    eff = [r[4] for r in rows]
    assert max(eff) - min(eff) < 0.15
