"""Benchmark: Figure 5 — LBM global load access patterns + the
Section 5.2 texture-memory claim (2.8X over global-only access)."""

from conftest import run_once
from repro.bench import run_figure5


def test_figure5_access_patterns(benchmark, record_table):
    result = run_once(benchmark, run_figure5, nx=256, ny=256)
    record_table(result)
    rows = {row[0]: row for row in result.rows}
    txn = {k: float(r[1]) for k, r in rows.items()}
    ms = {k: float(r[3]) for k, r in rows.items()}

    # AoS: every distribution load is fully serialized (16 transactions
    # per half-warp); SoA: only the +-1-offset directions misalign;
    # texture: the cache absorbs the misalignment entirely.
    assert txn["aos"] == 16.0
    assert 5.0 < txn["soa"] < 16.0
    assert txn["texture"] < 1.0

    # the texture path is fastest; the paper reports 2.8X over its
    # global-only version, which sits between our AoS and SoA cases
    assert ms["texture"] < ms["soa"] < ms["aos"]
    assert 1.5 < ms["aos"] / ms["texture"] < 8.0
