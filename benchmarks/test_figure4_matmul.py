"""Benchmark: Figure 4 — matmul GFLOPS across tile sizes x unrolling."""

from conftest import run_once
from repro.bench import run_figure4


def test_figure4_tile_sweep(benchmark, record_table):
    result = run_once(benchmark, run_figure4, n=2048, trace_blocks=2)
    record_table(result)
    g = {row[0]: row[1] for row in result.rows}
    # the paper's qualitative shape:
    # 4x4 tiles are no better than the untiled kernel
    assert g["4x4"] <= g["not tiled"] * 1.1
    # performance rises with tile size
    assert g["4x4"] < g["8x8"] < g["16x16"]
    # 16x16 is the best tiled-only configuration
    assert g["16x16"] == max(v for k, v in g.items() if "unroll" not in k)
    # unrolling helps 16x16 the most (roughly 2x)
    gain16 = g["16x16 unrolled"] / g["16x16"]
    for tile in ("4x4", "8x8", "12x12"):
        assert g[f"{tile} unrolled"] / g[tile] < gain16
    assert 1.6 < gain16 < 2.4
