"""Benchmark: regenerate Table 1 (memory spaces of the GeForce 8800)."""

from conftest import run_once
from repro.bench import run_table1


def test_table1_memory_spaces(benchmark, record_table):
    result = run_once(benchmark, run_table1)
    record_table(result)
    names = [row[0] for row in result.rows]
    assert names == ["Global", "Shared", "Constant", "Texture", "Local"]
    # read-only flags match the paper's table
    ro = {row[0]: row[4] for row in result.rows}
    assert ro["Constant"] == "yes" and ro["Texture"] == "yes"
    assert ro["Global"] == "no"
