"""Pipeline perf smoke: 512^3 functional matmul, all three backends.

Times the full functional sweep (1024 blocks of 256 threads) of the
``tiled_unrolled`` kernel under the reference ``SequentialExecutor``,
the block-vectorized ``BatchedExecutor`` and the AOT
``CompiledExecutor`` using the observability layer's span tracer (no
hand-rolled ``perf_counter`` pairs), checks all three device results
are bit-identical, and writes ``BENCH_pipeline.json`` at the repo
root with the per-stage pipeline breakdown (plan/execute/collect/
finalize) of each backend plus the profiler-overhead measurement.
CI gates on batched >= 5x over sequential and on the compiled backend
clearing >= 20x over sequential and >= 3x over batched; the <5%
profiler-overhead gate runs in the dedicated ``obs-profile`` CI job
(``profile_report --overhead-gate``).

Run as ``PYTHONPATH=src python benchmarks/perf_smoke.py``.
"""

import json
import sys
from pathlib import Path

import numpy as np

from repro.arch.device import DEFAULT_DEVICE
from repro.cuda import (BatchedExecutor, CompiledExecutor, Device,
                        SequentialExecutor, launch)
from repro.apps.matmul import MatMul, build_kernel
from repro.bench.profile_report import measure_overhead
from repro.obs import SpanTracer, use_tracer
from repro.obs.history import run_provenance

N = 512
TILE = 16
SPEEDUP_FLOOR = 5.0
COMPILED_VS_SEQ_FLOOR = 20.0
COMPILED_VS_BATCHED_FLOOR = 3.0


def _one(tracer, executor, label, a, b):
    dev = Device()
    d_a = dev.to_device(a, "A")
    d_b = dev.to_device(b, "B")
    d_c = dev.alloc((N, N), np.float32, "C")
    kern = build_kernel("tiled_unrolled", TILE)
    with tracer.span(label) as node:
        result = launch(kern, (N // TILE, N // TILE), (TILE, TILE),
                        (d_a, d_b, d_c, N), device=dev, executor=executor)
    return node.seconds, result.stage_seconds, d_c.to_host().copy()


def main() -> int:
    a, b = MatMul()._inputs(N)
    tracer = SpanTracer()
    with use_tracer(tracer):
        seq_wall, seq_stages, seq_c = _one(
            tracer, SequentialExecutor(), "launch.sequential", a, b)
        bat_wall, bat_stages, bat_c = _one(
            tracer, BatchedExecutor(), "launch.batched", a, b)
        # warm compile once so the timed run measures execution, not
        # the one-off AST lowering (cached per kernel function)
        _one(tracer, CompiledExecutor(), "launch.compiled_warm", a, b)
        comp_wall, comp_stages, comp_c = _one(
            tracer, CompiledExecutor(), "launch.compiled", a, b)
    identical = bool(np.array_equal(seq_c, bat_c)
                     and np.array_equal(seq_c, comp_c))
    speedup = seq_wall / bat_wall if bat_wall > 0 else 0.0
    comp_vs_seq = seq_wall / comp_wall if comp_wall > 0 else 0.0
    comp_vs_bat = bat_wall / comp_wall if comp_wall > 0 else 0.0
    overhead = measure_overhead()

    def round_stages(s):
        return {k: round(v, 4) for k, v in s.items()}
    report = {
        "benchmark": "pipeline_perf_smoke",
        "workload": f"matmul {N}^3 functional, tiled_unrolled {TILE}x{TILE}",
        "device": DEFAULT_DEVICE.name,
        **run_provenance(),
        "sequential_seconds": round(seq_wall, 3),
        "batched_seconds": round(bat_wall, 3),
        "compiled_seconds": round(comp_wall, 3),
        "sequential_stage_seconds": round_stages(seq_stages),
        "batched_stage_seconds": round_stages(bat_stages),
        "compiled_stage_seconds": round_stages(comp_stages),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "compiled_speedup_vs_sequential": round(comp_vs_seq, 2),
        "compiled_vs_sequential_floor": COMPILED_VS_SEQ_FLOOR,
        "compiled_speedup_vs_batched": round(comp_vs_bat, 2),
        "compiled_vs_batched_floor": COMPILED_VS_BATCHED_FLOOR,
        "bit_identical": identical,
        "checksum": float(np.abs(comp_c).sum()),
        "profiler_overhead": overhead,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(tracer.format_tree())

    if not identical:
        print("FAIL: backend results differ bitwise", file=sys.stderr)
        return 1
    if speedup < SPEEDUP_FLOOR:
        print(f"FAIL: batched speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x "
              f"floor", file=sys.stderr)
        return 1
    if comp_vs_seq < COMPILED_VS_SEQ_FLOOR:
        print(f"FAIL: compiled speedup {comp_vs_seq:.2f}x < "
              f"{COMPILED_VS_SEQ_FLOOR}x floor vs sequential",
              file=sys.stderr)
        return 1
    if comp_vs_bat < COMPILED_VS_BATCHED_FLOOR:
        print(f"FAIL: compiled speedup {comp_vs_bat:.2f}x < "
              f"{COMPILED_VS_BATCHED_FLOOR}x floor vs batched",
              file=sys.stderr)
        return 1
    print(f"OK: batched {speedup:.2f}x, compiled {comp_vs_seq:.2f}x over "
          f"sequential ({comp_vs_bat:.2f}x over batched), bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
