"""Pipeline perf smoke: 512^3 functional matmul, both backends.

Times the full functional sweep (1024 blocks of 256 threads) of the
``tiled_unrolled`` kernel under the reference ``SequentialExecutor``
and the block-vectorized ``BatchedExecutor`` using the observability
layer's span tracer (no hand-rolled ``perf_counter`` pairs), checks
the device results are bit-identical, and writes
``BENCH_pipeline.json`` at the repo root with the per-stage pipeline
breakdown (plan/execute/collect/finalize) of each backend plus the
profiler-overhead measurement.  CI gates on the batched backend being
>= 5x faster; the <5% profiler-overhead gate runs in the dedicated
``obs-profile`` CI job (``profile_report --overhead-gate``).

Run as ``PYTHONPATH=src python benchmarks/perf_smoke.py``.
"""

import json
import sys
from pathlib import Path

import numpy as np

from repro.cuda import BatchedExecutor, Device, SequentialExecutor, launch
from repro.apps.matmul import MatMul, build_kernel
from repro.bench.profile_report import measure_overhead
from repro.obs import SpanTracer, use_tracer

N = 512
TILE = 16
SPEEDUP_FLOOR = 5.0


def _one(tracer, executor, label, a, b):
    dev = Device()
    d_a = dev.to_device(a, "A")
    d_b = dev.to_device(b, "B")
    d_c = dev.alloc((N, N), np.float32, "C")
    kern = build_kernel("tiled_unrolled", TILE)
    with tracer.span(label) as node:
        result = launch(kern, (N // TILE, N // TILE), (TILE, TILE),
                        (d_a, d_b, d_c, N), device=dev, executor=executor)
    return node.seconds, result.stage_seconds, d_c.to_host().copy()


def main() -> int:
    a, b = MatMul()._inputs(N)
    tracer = SpanTracer()
    with use_tracer(tracer):
        seq_wall, seq_stages, seq_c = _one(
            tracer, SequentialExecutor(), "launch.sequential", a, b)
        bat_wall, bat_stages, bat_c = _one(
            tracer, BatchedExecutor(), "launch.batched", a, b)
    identical = bool(np.array_equal(seq_c, bat_c))
    speedup = seq_wall / bat_wall if bat_wall > 0 else 0.0
    overhead = measure_overhead()

    def round_stages(s):
        return {k: round(v, 4) for k, v in s.items()}
    report = {
        "benchmark": "pipeline_perf_smoke",
        "workload": f"matmul {N}^3 functional, tiled_unrolled {TILE}x{TILE}",
        "sequential_seconds": round(seq_wall, 3),
        "batched_seconds": round(bat_wall, 3),
        "sequential_stage_seconds": round_stages(seq_stages),
        "batched_stage_seconds": round_stages(bat_stages),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "bit_identical": identical,
        "checksum": float(np.abs(bat_c).sum()),
        "profiler_overhead": overhead,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(tracer.format_tree())

    if not identical:
        print("FAIL: batched result differs from sequential", file=sys.stderr)
        return 1
    if speedup < SPEEDUP_FLOOR:
        print(f"FAIL: speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x floor",
              file=sys.stderr)
        return 1
    print(f"OK: batched backend {speedup:.2f}x faster, bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
