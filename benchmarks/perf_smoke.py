"""Pipeline perf smoke: 512^3 functional matmul, all three backends.

Times the full functional sweep (1024 blocks of 256 threads) of the
``tiled_unrolled`` kernel under the reference ``SequentialExecutor``,
the block-vectorized ``BatchedExecutor`` and the AOT
``CompiledExecutor`` using the observability layer's span tracer (no
hand-rolled ``perf_counter`` pairs), checks all three device results
are bit-identical, and writes ``BENCH_pipeline.json`` at the repo
root with the per-stage pipeline breakdown (plan/execute/collect/
finalize) of each backend plus the profiler-overhead measurement.
CI gates on batched >= 5x over sequential and on the compiled backend
clearing >= 20x over sequential and >= 3x over batched; the <5%
profiler-overhead gate runs in the dedicated ``obs-profile`` CI job
(``profile_report --overhead-gate``).

Run as ``PYTHONPATH=src python benchmarks/perf_smoke.py``.

``--aot`` runs the whole-application AOT module smoke instead: the
launch-sequence fusion sweep (per-launch compiled execution vs the
fused :class:`~repro.compile.module.CompiledModule` path for LBM, FDTD
and MRI-Q on both device generations, bit-identity checked) plus the
cold-start benchmark (subprocesses timing program acquisition with no
artifact cache, a cold cache being populated, and a warm cache).  It
writes ``BENCH_compile.json`` and gates on fused >= 1.3x over
per-launch execution for at least one time-sliced app and on the warm
artifact cache making cold-process startup >= 5x faster than lowering
from source.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.arch.device import DEFAULT_DEVICE
from repro.arch.registry import device_by_name
from repro.cuda import (BatchedExecutor, CompiledExecutor, Device,
                        SequentialExecutor, launch)
from repro.apps.matmul import MatMul, build_kernel
from repro.bench.profile_report import measure_overhead
from repro.obs import SpanTracer, use_tracer
from repro.obs.history import run_provenance

N = 512
TILE = 16
SPEEDUP_FLOOR = 5.0
COMPILED_VS_SEQ_FLOOR = 20.0
COMPILED_VS_BATCHED_FLOOR = 3.0

#: --aot gates
FUSED_SPEEDUP_FLOOR = 1.3          # on at least one time-sliced app
COLD_START_FLOOR = 5.0             # lowering / warm-artifact-load


def _one(tracer, executor, label, a, b):
    dev = Device()
    d_a = dev.to_device(a, "A")
    d_b = dev.to_device(b, "B")
    d_c = dev.alloc((N, N), np.float32, "C")
    kern = build_kernel("tiled_unrolled", TILE)
    with tracer.span(label) as node:
        result = launch(kern, (N // TILE, N // TILE), (TILE, TILE),
                        (d_a, d_b, d_c, N), device=dev, executor=executor)
    return node.seconds, result.stage_seconds, d_c.to_host().copy()


def main() -> int:
    a, b = MatMul()._inputs(N)
    tracer = SpanTracer()
    with use_tracer(tracer):
        seq_wall, seq_stages, seq_c = _one(
            tracer, SequentialExecutor(), "launch.sequential", a, b)
        bat_wall, bat_stages, bat_c = _one(
            tracer, BatchedExecutor(), "launch.batched", a, b)
        # warm compile once so the timed run measures execution, not
        # the one-off AST lowering (cached per kernel function)
        _one(tracer, CompiledExecutor(), "launch.compiled_warm", a, b)
        comp_wall, comp_stages, comp_c = _one(
            tracer, CompiledExecutor(), "launch.compiled", a, b)
    identical = bool(np.array_equal(seq_c, bat_c)
                     and np.array_equal(seq_c, comp_c))
    speedup = seq_wall / bat_wall if bat_wall > 0 else 0.0
    comp_vs_seq = seq_wall / comp_wall if comp_wall > 0 else 0.0
    comp_vs_bat = bat_wall / comp_wall if comp_wall > 0 else 0.0
    overhead = measure_overhead()

    def round_stages(s):
        return {k: round(v, 4) for k, v in s.items()}
    report = {
        "benchmark": "pipeline_perf_smoke",
        "workload": f"matmul {N}^3 functional, tiled_unrolled {TILE}x{TILE}",
        "device": DEFAULT_DEVICE.name,
        **run_provenance(),
        "sequential_seconds": round(seq_wall, 3),
        "batched_seconds": round(bat_wall, 3),
        "compiled_seconds": round(comp_wall, 3),
        "sequential_stage_seconds": round_stages(seq_stages),
        "batched_stage_seconds": round_stages(bat_stages),
        "compiled_stage_seconds": round_stages(comp_stages),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "compiled_speedup_vs_sequential": round(comp_vs_seq, 2),
        "compiled_vs_sequential_floor": COMPILED_VS_SEQ_FLOOR,
        "compiled_speedup_vs_batched": round(comp_vs_bat, 2),
        "compiled_vs_batched_floor": COMPILED_VS_BATCHED_FLOOR,
        "bit_identical": identical,
        "checksum": float(np.abs(comp_c).sum()),
        "profiler_overhead": overhead,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(tracer.format_tree())

    if not identical:
        print("FAIL: backend results differ bitwise", file=sys.stderr)
        return 1
    if speedup < SPEEDUP_FLOOR:
        print(f"FAIL: batched speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x "
              f"floor", file=sys.stderr)
        return 1
    if comp_vs_seq < COMPILED_VS_SEQ_FLOOR:
        print(f"FAIL: compiled speedup {comp_vs_seq:.2f}x < "
              f"{COMPILED_VS_SEQ_FLOOR}x floor vs sequential",
              file=sys.stderr)
        return 1
    if comp_vs_bat < COMPILED_VS_BATCHED_FLOOR:
        print(f"FAIL: compiled speedup {comp_vs_bat:.2f}x < "
              f"{COMPILED_VS_BATCHED_FLOOR}x floor vs batched",
              file=sys.stderr)
        return 1
    print(f"OK: batched {speedup:.2f}x, compiled {comp_vs_seq:.2f}x over "
          f"sequential ({comp_vs_bat:.2f}x over batched), bit-identical")
    return 0


# ----------------------------------------------------------------------
# --aot: AOT module fusion sweep + artifact-cache cold-start benchmark
# ----------------------------------------------------------------------

#: (app name, class path, perf workload) for the fusion sweep
AOT_APPS = [
    ("lbm", "repro.apps.lbm", "Lbm",
     {"nx": 128, "ny": 128, "steps": 8, "total_steps": 100,
      "layout": "soa"}),
    ("fdtd", "repro.apps.fdtd", "Fdtd",
     {"nx": 128, "ny": 128, "steps": 8, "total_steps": 100}),
    ("mri-q", "repro.apps.mri_q", "MriQ",
     {"nvoxels": 8192, "nsamples": 2048}),
]

AOT_DEVICES = ("geforce_8800_gtx", "gtx_480")

#: cold-start child: time program acquisition for the suite's AOT
#: kernels in a fresh interpreter (lowering from source without a
#: cache; artifact load with a warm one)
_COLD_SCRIPT = """\
import json
from time import perf_counter
from repro.apps.fdtd import fdtd_e_kernel, fdtd_h_kernel
from repro.apps.lbm import lbm_step_kernel
from repro.apps.matmul import build_kernel
from repro.apps.mri_fhd import mri_fhd_kernel
from repro.apps.mri_q import mri_q_kernel
from repro.compile import active_artifact_cache, get_program

kernels = [lbm_step_kernel(layout) for layout in ("aos", "soa", "texture")]
kernels += [fdtd_h_kernel(), fdtd_e_kernel(),
            mri_q_kernel(), mri_fhd_kernel(),
            build_kernel("tiled_unrolled", 16), build_kernel("prefetch", 16)]
t0 = perf_counter()
for kern in kernels:
    get_program(kern, ("bench", ()))
seconds = perf_counter() - t0
cache = active_artifact_cache()
print(json.dumps({"seconds": seconds, "kernels": len(kernels),
                  "stats": dict(cache.stats) if cache else {}}))
"""


def _fusion_row(module, cls_name, workload, device_name):
    """Time one app's per-launch compiled run vs its fused module run
    (both warmed so the artifact cache absorbs kernel lowering)."""
    import importlib
    app_cls = getattr(importlib.import_module(module), cls_name)
    spec = device_by_name(device_name)

    def unfused():
        app = app_cls(spec)
        app.executor = "compiled"
        return app.run(dict(workload), functional=True)

    def fused():
        return app_cls(spec).run_module(dict(workload))

    unfused()                               # warm the artifact cache
    t0 = perf_counter()
    run_u = unfused()
    t1 = perf_counter()
    fused()
    t2 = perf_counter()
    run_f = fused()
    t3 = perf_counter()

    identical = set(run_u.outputs) == set(run_f.outputs) and all(
        np.array_equal(run_u.outputs[k], run_f.outputs[k])
        for k in run_u.outputs)
    unfused_s, fused_s = t1 - t0, t3 - t2
    stats = run_f.module.stats if run_f.module is not None else {}
    return {
        "app": run_f.app,
        "device": device_name,
        "workload": {k: v for k, v in workload.items()},
        "unfused_seconds": round(unfused_s, 3),
        "fused_seconds": round(fused_s, 3),
        "fused_speedup": round(unfused_s / fused_s, 2) if fused_s else 0.0,
        "modeled_gflops": round(run_f.gpu_gflops, 2),
        "effective_unfused_gflops": round(
            run_u.merged_trace.flops * run_u.time_steps_scale
            / unfused_s / 1e9, 3) if unfused_s else 0.0,
        "effective_fused_gflops": round(
            run_f.merged_trace.flops * run_f.time_steps_scale
            / fused_s / 1e9, 3) if fused_s else 0.0,
        "fuse_applied": stats.get("fuse_applied", 0),
        "trace_replays": stats.get("trace_replays", 0),
        "fallback_launches": stats.get("fallback_launches", 0),
        "bit_identical": identical,
    }


def _cold_start(cache_dir: str) -> dict:
    """Three fresh interpreters: lowering (no cache), cache-populating
    store, warm artifact load."""
    base = dict(os.environ,
                PYTHONPATH=str(Path(__file__).resolve().parent.parent
                               / "src"))
    base.pop("REPRO_AOT_CACHE", None)

    def child(env):
        proc = subprocess.run([sys.executable, "-c", _COLD_SCRIPT],
                              env=env, capture_output=True, text=True,
                              check=True)
        return json.loads(proc.stdout)

    uncached = child(base)
    cached_env = dict(base, REPRO_AOT_CACHE=cache_dir)
    populate = child(cached_env)
    warm = child(cached_env)
    ratio = uncached["seconds"] / warm["seconds"] \
        if warm["seconds"] > 0 else 0.0
    return {
        "kernels": uncached["kernels"],
        "uncached_lowering_seconds": round(uncached["seconds"], 3),
        "cache_populate_seconds": round(populate["seconds"], 3),
        "warm_cache_seconds": round(warm["seconds"], 3),
        "cold_start_speedup": round(ratio, 2),
        "warm_cold_hits": warm["stats"].get("cold_hits", 0),
        "populate_writes": populate["stats"].get("writes", 0),
    }


def aot_main() -> int:
    from repro.compile import ArtifactCache, use_artifact_cache

    with tempfile.TemporaryDirectory(prefix="repro-aot-") as tmp:
        with use_artifact_cache(ArtifactCache(os.path.join(tmp, "fuse"))):
            rows = [_fusion_row(module, cls_name, wl, device)
                    for _, module, cls_name, wl in AOT_APPS
                    for device in AOT_DEVICES]
        cold = _cold_start(os.path.join(tmp, "cold"))

    sliced = [r for r in rows if r["app"] in ("lbm", "fdtd")]
    best = max(r["fused_speedup"] for r in sliced)
    report = {
        "benchmark": "aot_module_smoke",
        **run_provenance(),
        "fusion": rows,
        "fused_speedup_best": best,
        "fused_speedup_floor": FUSED_SPEEDUP_FLOOR,
        "cold_start": cold,
        "cold_start_floor": COLD_START_FLOOR,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_compile.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    broken = [r for r in rows if not r["bit_identical"]]
    if broken:
        print(f"FAIL: fused results differ bitwise for "
              f"{[r['app'] for r in broken]}", file=sys.stderr)
        return 1
    if best < FUSED_SPEEDUP_FLOOR:
        print(f"FAIL: best fused speedup {best:.2f}x < "
              f"{FUSED_SPEEDUP_FLOOR}x floor", file=sys.stderr)
        return 1
    if cold["cold_start_speedup"] < COLD_START_FLOOR:
        print(f"FAIL: warm-cache cold start {cold['cold_start_speedup']:.2f}x "
              f"< {COLD_START_FLOOR}x floor over lowering", file=sys.stderr)
        return 1
    print(f"OK: fused {best:.2f}x best over per-launch, warm cache "
          f"{cold['cold_start_speedup']:.2f}x faster cold start, "
          f"bit-identical")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--aot", action="store_true",
                        help="run the AOT module / artifact-cache smoke "
                             "instead of the pipeline smoke")
    cli = parser.parse_args()
    sys.exit(aot_main() if cli.aot else main())
