"""Pipeline perf smoke: 512^3 functional matmul, both backends.

Times the full functional sweep (1024 blocks of 256 threads) of the
``tiled_unrolled`` kernel under the reference ``SequentialExecutor``
and the block-vectorized ``BatchedExecutor``, checks the device
results are bit-identical, and writes ``BENCH_pipeline.json`` at the
repo root.  CI gates on the batched backend being >= 5x faster.

Run as ``PYTHONPATH=src python benchmarks/perf_smoke.py``.
"""

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cuda import BatchedExecutor, Device, SequentialExecutor, launch
from repro.apps.matmul import MatMul, build_kernel

N = 512
TILE = 16
SPEEDUP_FLOOR = 5.0


def _one(executor, a, b):
    dev = Device()
    d_a = dev.to_device(a, "A")
    d_b = dev.to_device(b, "B")
    d_c = dev.alloc((N, N), np.float32, "C")
    kern = build_kernel("tiled_unrolled", TILE)
    t0 = time.perf_counter()
    launch(kern, (N // TILE, N // TILE), (TILE, TILE),
           (d_a, d_b, d_c, N), device=dev, executor=executor)
    wall = time.perf_counter() - t0
    return wall, d_c.to_host().copy()


def main() -> int:
    a, b = MatMul()._inputs(N)
    seq_wall, seq_c = _one(SequentialExecutor(), a, b)
    bat_wall, bat_c = _one(BatchedExecutor(), a, b)
    identical = bool(np.array_equal(seq_c, bat_c))
    speedup = seq_wall / bat_wall if bat_wall > 0 else 0.0

    report = {
        "benchmark": "pipeline_perf_smoke",
        "workload": f"matmul {N}^3 functional, tiled_unrolled {TILE}x{TILE}",
        "sequential_seconds": round(seq_wall, 3),
        "batched_seconds": round(bat_wall, 3),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "bit_identical": identical,
        "checksum": float(np.abs(bat_c).sum()),
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    if not identical:
        print("FAIL: batched result differs from sequential", file=sys.stderr)
        return 1
    if speedup < SPEEDUP_FLOOR:
        print(f"FAIL: speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x floor",
              file=sys.stderr)
        return 1
    print(f"OK: batched backend {speedup:.2f}x faster, bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
