"""Ablations from Section 5 prose claims:

* MRI: "the SFUs execute [trig] much faster than even CPU fast math
  libraries.  This accounts for approximately 30% of the speedup."
* RC5: "Performance of the code if a native modulus-shift were
  available is estimated to be several times higher."
* matmul: unroll-factor sweep (Section 4.3 discusses partial factors).
"""


from conftest import run_once
from repro.apps import get_app
from repro.bench.tables import format_table
from repro.sim.timing import estimate_time
from repro.trace.instr import InstrClass


def mri_sfu_ablation():
    """Re-estimate MRI-Q with trig lowered to SP instruction sequences
    (10 instructions per sin/cos, the no-SFU world)."""
    app = get_app("mri-q")
    run = app.run(app.default_workload("full"), functional=False)
    launch = run.launches[0]
    with_sfu = run.kernel_speedup

    trace = launch.trace
    no_sfu = trace.scaled(1.0)
    sfu_warps = no_sfu.warp_insts.pop(InstrClass.SFU, 0.0)
    sfu_threads = no_sfu.thread_insts.pop(InstrClass.SFU, 0.0)
    # a range-limited polynomial sin/cos costs ~5 SP instructions
    no_sfu.warp_insts[InstrClass.FMA] += sfu_warps * 5
    no_sfu.thread_insts[InstrClass.FMA] += sfu_threads * 5
    est = estimate_time(no_sfu, launch.num_blocks, launch.threads_per_block,
                        launch.kernel.regs_per_thread,
                        launch.smem_bytes_per_block, spec=launch.spec)
    total_launches = len(run.launches)
    gpu_no_sfu = est.seconds * total_launches
    without_sfu = run.cpu_kernel_seconds / gpu_no_sfu
    return with_sfu, without_sfu


def test_mri_sfu_share(benchmark, out_dir):
    with_sfu, without_sfu = run_once(benchmark, mri_sfu_ablation)
    share = 1.0 - without_sfu / with_sfu
    text = format_table(
        ["config", "kernel speedup"],
        [("SFU trig", round(with_sfu, 1)),
         ("SP-sequence trig", round(without_sfu, 1)),
         ("share of speedup from SFUs", f"{100 * share:.0f}%")],
        title="Ablation: MRI-Q SFU contribution (paper: ~30%)")
    print("\n" + text)
    (out_dir / "ablation_mri_sfu.txt").write_text(text + "\n")
    assert 0.15 < share < 0.55        # paper: approximately 30%


def rc5_rotate_ablation():
    app = get_app("rc5-72")
    emulated = app.run({"nkeys": 1 << 14, "secret_index": 7},
                       functional=False)
    native = app.run({"nkeys": 1 << 14, "secret_index": 7,
                      "native_rotate": True}, functional=False)
    return (emulated.gpu_kernel_seconds, native.gpu_kernel_seconds)


def test_rc5_native_rotate(benchmark, out_dir):
    emulated, native = run_once(benchmark, rc5_rotate_ablation)
    ratio = emulated / native
    text = format_table(
        ["variant", "kernel time (ms)"],
        [("emulated rotates", round(emulated * 1e3, 3)),
         ("native modulus-shift", round(native * 1e3, 3)),
         ("speedup from native rotate", f"{ratio:.2f}x")],
        title="Ablation: RC5 modulus-shift emulation "
              "(paper: 'several times higher')")
    print("\n" + text)
    (out_dir / "ablation_rc5_rotate.txt").write_text(text + "\n")
    assert ratio > 1.5


def unroll_factor_sweep():
    """Partial-unroll arithmetic for the tiled matmul inner loop."""
    from repro.opt import estimate_unroll_savings
    rows = []
    for factor in (1, 2, 4, 8, None):
        if factor == 1:
            saving = 0.0
        else:
            saving = estimate_unroll_savings(
                insts_per_iter=8.0, trip_count=16,
                bookkeeping_per_iter=4.0, factor=factor)
        label = "full" if factor is None else f"x{factor}"
        rows.append((label, f"{100 * saving:.1f}%"))
    return rows


def test_unroll_factor_sweep(benchmark, out_dir):
    rows = run_once(benchmark, unroll_factor_sweep)
    text = format_table(["unroll factor", "instructions removed"],
                        rows, title="Ablation: unroll-factor arithmetic")
    print("\n" + text)
    (out_dir / "ablation_unroll.txt").write_text(text + "\n")
    removed = [float(r[1].rstrip("%")) for r in rows]
    assert removed == sorted(removed)
    assert removed[-1] == 50.0        # 4 of 8 instructions per iter
