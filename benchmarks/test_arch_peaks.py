"""Benchmark: the Section 3.2 architecture constants."""

import pytest

from conftest import run_once
from repro.arch import geforce_8800_gtx


def test_peak_rates(benchmark):
    spec = run_once(benchmark, geforce_8800_gtx)
    assert spec.peak_mad_gflops == pytest.approx(345.6)
    assert spec.peak_gflops_with_sfu == pytest.approx(388.8)
    assert spec.dram_bandwidth_gbs == pytest.approx(86.4)
    assert spec.num_sps == 128
    assert spec.max_active_threads == 12288
