"""Ablation: what coalescing is worth on a pure streaming kernel.

Runs the SAXPY kernel against an artificially strided layout and
compares against the unit-stride version — isolating the G80's
16-word-line rule that Section 3.2 warns about.
"""

import numpy as np

from conftest import run_once
from repro.bench.tables import format_table
from repro.cuda import Device, kernel, launch


def make_kernel(stride):
    @kernel(f"saxpy_stride{stride}", regs_per_thread=6)
    def k(ctx, x, y, n):
        i = ctx.global_tid() * stride
        ctx.address_ops(2)
        xv = ctx.ld_global(x, i)
        yv = ctx.ld_global(y, i)
        ctx.st_global(y, i, ctx.fma(2.5, xv, yv))
    return k


def run_sweep(n=1 << 16):
    rows = []
    base = None
    for stride in (1, 2, 4, 8, 16):
        dev = Device()
        x = dev.to_device(np.zeros(n * stride, np.float32), "x")
        y = dev.to_device(np.zeros(n * stride, np.float32), "y")
        res = launch(make_kernel(stride), (n // 256,), (256,), (x, y, n),
                     device=dev, functional=False, trace_blocks=2)
        est = res.estimate()
        if base is None:
            base = est.seconds
        rows.append((stride, round(res.trace.coalesced_fraction, 2),
                     round(est.seconds * 1e6, 1),
                     round(est.seconds / base, 2), est.bound))
    return rows


def test_coalescing_ablation(benchmark, record_table, out_dir):
    rows = run_once(benchmark, run_sweep)
    text = format_table(
        ["stride", "coalesced frac", "time (us)", "slowdown", "bound"],
        rows, title="Ablation: stream coalescing")
    print("\n" + text)
    (out_dir / "ablation_coalescing.txt").write_text(text + "\n")
    by_stride = {r[0]: r for r in rows}
    assert by_stride[1][1] == 1.0          # unit stride coalesces
    assert by_stride[2][1] == 0.0          # any other stride does not
    # strided access costs well over the unit-stride baseline even at
    # stride 2, and grows several-fold by stride 16
    assert by_stride[2][3] > 1.5
    assert by_stride[16][3] > 3.0
    # slowdown is monotone in stride (bus traffic grows)
    slow = [r[3] for r in rows]
    assert all(a <= b + 1e-9 for a, b in zip(slow, slow[1:]))
