"""Ablation: the register-count occupancy cliff (Sections 3.2/4.2).

"Some versions of this code use 11 registers per thread instead of 10.
To run three thread blocks, this requires ... 8448 registers, which is
larger than an SM's register file."  We sweep registers per thread for
256-thread blocks and check the cliff structure.
"""

from conftest import run_once
from repro.bench.tables import format_table
from repro.sim.occupancy import compute_occupancy


def sweep(threads=256, max_regs=40):
    rows = []
    for regs in range(4, max_regs + 1):
        occ = compute_occupancy(threads, regs, smem_per_block=2048)
        rows.append((regs, occ.blocks_per_sm, occ.active_threads_per_sm,
                     occ.limiter))
    return rows


def test_register_cliffs(benchmark, record_table, out_dir):
    rows = run_once(benchmark, sweep)
    text = format_table(["regs/thread", "blocks/SM", "threads/SM", "limit"],
                        rows, title="Ablation: register occupancy cliff")
    print("\n" + text)
    (out_dir / "ablation_registers.txt").write_text(text + "\n")
    by_regs = {r[0]: r for r in rows}
    assert by_regs[10][1] == 3      # the paper's matmul case
    assert by_regs[11][1] == 2      # the Section 4.2 cliff
    assert by_regs[16][1] == 2
    assert by_regs[17][1] == 1      # next cliff
    # monotone non-increasing
    blocks = [r[1] for r in rows]
    assert all(a >= b for a, b in zip(blocks, blocks[1:]))
