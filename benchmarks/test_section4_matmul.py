"""Benchmark: the Section 4 matrix-multiplication study at 4096x4096.

Regenerates the paper's headline numbers:
naive 10.58 / tiled 46.49 / tiled+unrolled 91.14 / prefetch 87.10
GFLOPS, the 43.2 and 93.72 GFLOPS potential-throughput estimates, and
the 173 GB/s bandwidth-demand calculation.
"""

from conftest import run_once
from repro.bench import run_section4
from repro.data import paper


def test_section4_study(benchmark, record_table):
    result = run_once(benchmark, run_section4, n=4096, trace_blocks=2)
    record_table(result)
    measured = {row[0]: row[1] for row in result.rows}
    for variant, ref in paper.MATMUL_GFLOPS.items():
        ratio = measured[variant] / ref.value
        assert 0.85 < ratio < 1.15, (variant, measured[variant], ref.value)
    # ordering: naive < tiled < prefetch < unrolled
    assert measured["naive"] < measured["tiled"]
    assert measured["tiled"] < measured["prefetch"]
    assert measured["prefetch"] < measured["tiled_unrolled"]
    # the naive kernel must be diagnosed as memory-bound
    bounds = {row[0]: row[7] for row in result.rows}
    assert bounds["naive"] == "memory bandwidth"
    assert bounds["tiled_unrolled"] == "instruction issue"
