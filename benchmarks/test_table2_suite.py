"""Benchmark: Table 2 — the application suite inventory."""

from conftest import run_once
from repro.bench import run_table2
from repro.apps import suite_names


def test_table2_suite(benchmark, record_table):
    result = run_once(benchmark, run_table2)
    record_table(result)
    apps = [row[0] for row in result.rows]
    assert apps == suite_names()
    assert len(apps) == 12
    # FDTD's prose-exact 16.4% kernel fraction is in the table
    fdtd = next(r for r in result.rows if r[0] == "fdtd")
    assert fdtd[3].startswith("16.4%")
