"""Benchmark: Table 3 — suite characteristics and speedups.

The abstract's claim is the headline check: kernel speedups between
~10.5X and ~457X, application speedups between ~1.16X and ~431X, with
FDTD at the bottom (Amdahl: 16.4% kernel fraction) and MRI-Q on top.
"""

from conftest import run_once
from repro.bench import run_table3


def test_table3_suite(benchmark, record_table):
    result = run_once(benchmark, run_table3, scale="full")
    record_table(result)
    rows = {row[0]: row for row in result.rows}
    kernel = {k: float(r[8]) for k, r in rows.items()}
    app = {k: float(r[10]) for k, r in rows.items()}

    # suite-wide ranges (paper: 10.5-457 kernel, 1.16-431 app)
    assert 8 < min(kernel.values()) < 16
    assert 350 < max(kernel.values()) < 600
    assert 1.1 < min(app.values()) < 1.35
    assert 250 < max(app.values()) < 550

    # the extremes land on the paper's applications
    assert max(kernel, key=kernel.get) == "mri-q"
    assert min(app, key=app.get) == "fdtd"

    # the MRI/CP/RPES group leads, the bandwidth-bound group trails
    for fast in ("mri-q", "mri-fhd", "cp", "rpes"):
        assert kernel[fast] > 60
    for slow in ("lbm", "fem", "fdtd", "saxpy", "rc5-72"):
        assert kernel[slow] < 40

    # H.264: transfers comparable to GPU execution; tiny app speedup
    assert app["h264"] < 1.6
