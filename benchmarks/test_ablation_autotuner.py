"""Ablation: the Section 6 'local maximums of performance' claim.

An exhaustive sweep of the matmul variant space plus greedy
hill-climbing show that one-transformation-at-a-time tuning can get
trapped: from the naive kernel, the first tiling step (4x4) is a
regression, so a greedy tuner never discovers the 16x16-unrolled
global optimum.
"""

from conftest import run_once
from repro.bench.tables import format_table
from repro.sim.autotuner import MatmulAutotuner, Point


def explore(n=1024):
    tuner = MatmulAutotuner(n=n, trace_blocks=2)
    res = tuner.exhaustive()
    greedy_end, greedy_g, path = tuner.hill_climb(Point(0, False, False))
    return tuner, res, greedy_end, greedy_g, path


def test_local_maxima(benchmark, out_dir):
    tuner, res, greedy_end, greedy_g, path = run_once(benchmark, explore)
    rows = [(str(p.config.label if p.tile else "not tiled"),
             round(g, 2),
             "GLOBAL" if res.is_global(p) else "local")
            for p, g in res.local_maxima]
    text = format_table(["configuration", "GFLOPS", "maximum type"], rows,
                        title="Ablation: optimization-space maxima "
                              "(Section 6)")
    text += (f"\ngreedy hill-climb from 'not tiled' ends at "
             f"{greedy_g:.1f} GFLOPS after {len(path) - 1} moves")
    print("\n" + text)
    (out_dir / "ablation_autotuner.txt").write_text(text + "\n")

    # the global optimum is 16x16 + unrolling, NOT prefetching
    assert res.best == Point(16, True, False)
    # there is at least one non-global local maximum ...
    assert len(res.local_maxima) >= 2
    # ... and the naive kernel is one: greedy tuning gets stuck there
    assert greedy_end == Point(0, False, False)
    assert greedy_g < 0.5 * res.best_gflops
