"""Device-generation layer: registry, per-device coalescing rules,
Fermi occupancy limit tables, cache hierarchy, and cross-device
functional bit-identity.

The functional contract of the simulator is device-independent: a
kernel computes the same bits whatever profile it runs on — only the
*performance* accounting (transactions, cycles, occupancy) moves with
the generation.  These tests pin both halves.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    CACHED_LINE,
    STRICT_SEGMENT,
    DEFAULT_DEVICE,
    device_by_name,
    device_names,
    geforce_8800_gtx,
    gtx_480,
    register_device,
    rtx_3090,
)
from repro.sim.memsys import CacheHierarchy, coalesce_group_access
from repro.sim.occupancy import compute_occupancy


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_known_names_resolve(self):
        for name in device_names():
            spec = device_by_name(name)
            assert spec.num_sms > 0

    def test_expected_profiles_registered(self):
        assert {"geforce_8800_gtx", "geforce_8800_gts", "geforce_8600_gts",
                "gtx_480", "rtx_3090"} <= set(device_names())

    def test_default_device_is_the_papers(self):
        assert device_by_name("geforce_8800_gtx").name == DEFAULT_DEVICE.name

    def test_unknown_name_raises_with_menu(self):
        with pytest.raises(KeyError, match="gtx_480"):
            device_by_name("no_such_device")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_device("gtx_480", gtx_480)

    def test_overwrite_allows_replacement(self):
        register_device("gtx_480", gtx_480, overwrite=True)
        assert device_by_name("gtx_480").generation == "fermi"


# ----------------------------------------------------------------------
# Generation capabilities travel with the spec
# ----------------------------------------------------------------------

class TestGenerationCapabilities:
    def test_g80_is_strict_half_warp(self):
        spec = geforce_8800_gtx()
        assert spec.coalescing_rule == STRICT_SEGMENT
        assert spec.coalesce_group == 16
        assert not spec.has_cached_global_loads
        assert spec.shared_access_group == 16

    def test_fermi_is_cached_full_warp(self):
        spec = gtx_480()
        assert spec.coalescing_rule == CACHED_LINE
        assert spec.coalesce_group == 32
        assert spec.has_cached_global_loads
        assert spec.cache_line_bytes == 128
        assert spec.shared_access_group == 32

    def test_fermi_shared_l1_split(self):
        spec = gtx_480()
        assert spec.shared_mem_per_sm + spec.l1_cache_bytes_per_sm \
            == spec.shared_l1_total_bytes
        flipped = spec.with_shared_split(16 * 1024)
        assert flipped.shared_mem_per_sm == 16 * 1024
        assert flipped.l1_cache_bytes_per_sm == 48 * 1024
        with pytest.raises(ValueError):
            spec.with_shared_split(spec.shared_l1_total_bytes)  # no L1 left
        with pytest.raises(ValueError):
            spec.with_shared_split(100)   # L1 not a whole line count

    def test_issue_width_scales_with_sps(self):
        assert geforce_8800_gtx().timing.issue_cycles_per_warp_inst == 4.0
        assert gtx_480().timing.issue_cycles_per_warp_inst == 1.0
        assert rtx_3090().timing.issue_cycles_per_warp_inst == 0.25


# ----------------------------------------------------------------------
# Coalescing classifier honors the device's rule and granularity
# ----------------------------------------------------------------------

def _group_access(spec, addresses):
    addrs = np.asarray(addresses, dtype=np.int64)
    active = np.ones(spec.coalesce_group, dtype=bool)
    return coalesce_group_access(addrs, active, 4, spec)


class TestCoalescingRules:
    def test_group_length_is_enforced(self):
        spec = gtx_480()
        with pytest.raises(ValueError):
            _group_access(spec, np.arange(16) * 4)   # half-warp on Fermi

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           device=st.sampled_from(["geforce_8800_gtx", "gtx_480"]))
    def test_identity_mapping_always_coalesces(self, seed, device):
        """Thread k -> word k of an aligned segment coalesces under
        both rules."""
        spec = device_by_name(device)
        rng = np.random.default_rng(seed)
        segment = spec.coalesce_group * 4
        base = int(rng.integers(0, 1024)) * segment
        res = _group_access(spec, base + np.arange(spec.coalesce_group) * 4)
        assert res.coalesced
        assert res.transactions == 1

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_permutation_discriminates_the_rules(self, seed):
        """A shuffled warp within one aligned region: uncoalesced under
        the strict per-half-warp segment rule, free under the cached
        full-warp line rule."""
        rng = np.random.default_rng(seed)
        perm = rng.permutation(32)
        if np.array_equal(perm, np.arange(32)):
            perm = perm[::-1].copy()
        addrs = perm * 4   # a permutation of one 128 B region at 0

        fermi = gtx_480()
        res = coalesce_group_access(addrs, np.ones(32, bool), 4, fermi)
        assert res.coalesced
        assert res.transactions == 1          # one 128 B line
        assert res.bus_bytes == fermi.cache_line_bytes

        g80 = geforce_8800_gtx()
        for half in (addrs[:16], addrs[16:]):
            r = coalesce_group_access(half, np.ones(16, bool), 4, g80)
            if np.array_equal(np.sort(half), half):
                continue   # a half happened to stay in thread order
            assert not r.coalesced
            assert r.transactions == int(np.ones(16, bool).sum())

    @settings(max_examples=50, deadline=None)
    @given(stride_lines=st.integers(1, 8))
    def test_cached_transactions_count_distinct_lines(self, stride_lines):
        spec = gtx_480()
        line = spec.cache_line_bytes
        addrs = np.arange(32, dtype=np.int64) * stride_lines * line
        res = coalesce_group_access(addrs, np.ones(32, bool), 4, spec)
        assert res.transactions == 32          # one line per thread
        assert res.coalesced is False
        assert res.bus_bytes == 32 * line

    def test_strict_segment_words_set_the_segment(self):
        """The segment is ``coalesce_group`` words wide — honored, not
        hard-coded to 64 B."""
        spec = geforce_8800_gtx()
        assert spec.coalesce_segment_words == 16
        base = spec.coalesce_segment_bytes    # aligned to one segment
        res = _group_access(spec, base + np.arange(16) * 4)
        assert res.coalesced and res.bus_bytes == spec.coalesce_segment_bytes
        # misaligned by one word: every lane serializes
        res = _group_access(spec, base + 4 + np.arange(16) * 4)
        assert not res.coalesced and res.transactions == 16


# ----------------------------------------------------------------------
# Occupancy limit tables (Fermi goldens; G80 unchanged elsewhere)
# ----------------------------------------------------------------------

class TestFermiOccupancy:
    def test_limit_table_24x24_tile(self):
        spec = gtx_480()
        limits = spec.occupancy_limit_table(576, 9, 4608)
        assert limits == {"blocks": 8, "threads": 2, "warps": 2,
                          "registers": 5, "shared": 10}
        occ = compute_occupancy(576, 9, 4608, spec)
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "threads"

    def test_limit_table_32x32_tile(self):
        spec = gtx_480()
        occ = compute_occupancy(1024, 9, 8192, spec)
        assert occ.blocks_per_sm == 1
        assert occ.limiter == "threads"

    def test_warp_ceiling_can_bind(self):
        # 64-thread blocks, tiny resources: 48-warp ceiling binds at
        # 24 blocks > 8-block cap -> blocks; with 192 threads the warp
        # ceiling (8 blocks) equals the block cap, threads allows 8.
        spec = gtx_480()
        limits = spec.occupancy_limit_table(96, 4, 0)
        assert limits["warps"] == 16
        assert limits["blocks"] == 8

    def test_register_allocation_is_warp_granular(self):
        spec = gtx_480()
        # 33 regs x 32 lanes = 1056 -> rounds to 1088 per warp (gran 64)
        limits = spec.occupancy_limit_table(512, 33, 0)
        per_warp = -(-33 * 32 // 64) * 64
        assert limits["registers"] == spec.registers_per_sm \
            // (per_warp * 16)

    def test_g80_table_has_no_warp_entry(self):
        limits = geforce_8800_gtx().occupancy_limit_table(256, 10, 0)
        assert "warps" not in limits
        assert limits["threads"] == 3


# ----------------------------------------------------------------------
# Cache hierarchy
# ----------------------------------------------------------------------

class TestCacheHierarchy:
    def test_repeat_access_hits_l1(self):
        spec = gtx_480()
        h = CacheHierarchy(spec)
        addrs = np.arange(32, dtype=np.int64) * 4
        active = np.ones(32, bool)
        first = h.access(addrs, active)
        again = h.access(addrs, active)
        assert first.l1_misses == 1 and first.dram_lines == 1
        assert again.l1_hits == 1 and again.dram_lines == 0

    def test_l2_catches_l1_evictions(self):
        spec = gtx_480()
        h = CacheHierarchy(spec)
        active = np.ones(32, bool)
        l1_lines = spec.l1_cache_bytes_per_sm // spec.cache_line_bytes
        # touch enough distinct lines to wrap L1 (direct-mapped), then
        # re-touch the first line: L1 misses but L2 still holds it
        for i in range(l1_lines + 1):
            h.access(np.full(32, i * spec.cache_line_bytes, np.int64),
                     active)
        out = h.access(np.zeros(32, np.int64), active)
        assert out.l1_misses == 1
        assert out.l2_hits == 1
        assert out.dram_lines == 0

    def test_only_cached_devices_build_a_hierarchy(self):
        from repro.apps.matmul import MatMul
        for name, expect in (("geforce_8800_gtx", False),
                             ("gtx_480", True)):
            app = MatMul(device_by_name(name))
            run = app.run({"n": 32, "variant": "tiled", "tile": 16,
                           "trace_blocks": 1}, functional=False)
            trace = run.launches[0].trace
            has_l1 = (trace.l1_hits + trace.l1_misses) > 0
            assert has_l1 == expect


# ----------------------------------------------------------------------
# Cross-device functional bit-identity
# ----------------------------------------------------------------------

SWEEP_DEVICES = ("geforce_8800_gtx", "geforce_8800_gts", "gtx_480")


class TestCrossDeviceBitIdentity:
    @pytest.mark.parametrize("variant", ["naive", "tiled",
                                         "tiled_unrolled", "prefetch"])
    def test_matmul_bits_do_not_move_with_the_device(self, variant):
        from repro.apps.matmul import MatMul
        outputs = []
        for name in SWEEP_DEVICES:
            app = MatMul(device_by_name(name))
            run = app.run({"n": 64, "variant": variant, "tile": 16,
                           "trace_blocks": 1}, functional=True)
            outputs.append(run.outputs)
        for other in outputs[1:]:
            assert set(outputs[0]) == set(other)
            for key in outputs[0]:
                np.testing.assert_array_equal(outputs[0][key], other[key])

    def test_saxpy_bits_do_not_move_with_the_device(self):
        from repro.apps.registry import get_app
        outputs = []
        for name in SWEEP_DEVICES:
            app = get_app("saxpy", device_by_name(name))
            run = app.run(app.default_workload("test"), functional=True)
            outputs.append(run.outputs)
        for other in outputs[1:]:
            for key in outputs[0]:
                np.testing.assert_array_equal(outputs[0][key], other[key])


# ----------------------------------------------------------------------
# Cross-device retuning
# ----------------------------------------------------------------------

class TestDeviceTileSizes:
    def test_g80_reproduces_the_figure4_sweep(self):
        from repro.sim.autotuner import device_tile_sizes
        assert device_tile_sizes(geforce_8800_gtx()) == (4, 8, 12, 16)

    def test_fermi_admits_larger_tiles(self):
        from repro.sim.autotuner import device_tile_sizes
        assert device_tile_sizes(gtx_480()) == (4, 8, 12, 16, 24, 32)
        assert device_tile_sizes(rtx_3090()) == (4, 8, 12, 16, 24, 32)

    def test_autotuner_space_grows_with_the_device(self):
        from repro.sim.autotuner import MatmulAutotuner
        g80 = MatmulAutotuner(spec=geforce_8800_gtx())
        fermi = MatmulAutotuner(spec=gtx_480())
        assert len(g80.space()) == 13
        assert len(fermi.space()) == 19
