"""Tests for the calibration machinery and the frozen defaults."""

import numpy as np
import pytest

from repro.arch import DEFAULT_DEVICE
from repro.sim.calibration import (
    SECTION4_ANCHORS,
    calibrate,
    collect_anchor_traces,
    report,
)
from repro.sim.timing import estimate_time


@pytest.fixture(scope="module")
def traces():
    # reduced problem size keeps the suite fast; instruction mixes and
    # coalescing behaviour are size-independent for these kernels
    return collect_anchor_traces(n=1024, trace_blocks=2)


class TestAnchors:
    def test_anchor_set(self):
        assert set(SECTION4_ANCHORS) == {
            "naive", "tiled", "tiled_unrolled", "prefetch"}
        assert SECTION4_ANCHORS["naive"] == 10.58
        assert SECTION4_ANCHORS["tiled_unrolled"] == 91.14

    def test_frozen_defaults_reproduce_anchors(self, traces):
        """The shipped TimingParams must land within 10% of every
        Section 4 number (the fit itself achieves ~3.4% at n=4096)."""
        for variant, target in SECTION4_ANCHORS.items():
            trace, nb, tpb, regs, smem = traces[variant]
            est = estimate_time(trace, nb, tpb, regs, smem,
                                spec=DEFAULT_DEVICE)
            assert est.gflops == pytest.approx(target, rel=0.12), variant

    def test_report_renders(self, traces):
        text = report(traces)
        for variant in SECTION4_ANCHORS:
            assert variant in text


class TestCalibrate:
    def test_grid_search_improves_or_matches_defaults(self, traces):
        params, err = calibrate(
            traces,
            efficiencies=np.array([0.7, 0.8, 0.9]),
            replays=np.array([2.0, 3.0, 4.0]),
            latencies=np.array([400.0]),
        )
        assert err < 0.25
        assert params.dram_efficiency in (0.7, 0.8, 0.9)

    def test_fit_error_metric_positive(self, traces):
        _, err = calibrate(
            traces,
            efficiencies=np.array([0.8]),
            replays=np.array([3.0]),
            latencies=np.array([400.0]),
        )
        assert 0.0 <= err < 0.25
