"""Functional and characteristic tests for the 12-application suite."""

import numpy as np
import pytest

from repro.apps import ALL_APPS, get_app, iter_apps, suite_names
from repro.cuda import Device


class TestRegistry:
    def test_suite_matches_table2_order(self):
        assert suite_names() == [
            "h264", "lbm", "rc5-72", "fem", "rpes", "pns",
            "saxpy", "tpacf", "fdtd", "mri-q", "mri-fhd", "cp",
        ]

    def test_all_apps_includes_matmul(self):
        assert "matmul" in ALL_APPS and len(ALL_APPS) == 13

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError, match="unknown application"):
            get_app("doom")

    def test_iter_apps_instantiates_suite(self):
        apps = list(iter_apps())
        assert len(apps) == 12
        assert all(a.name for a in apps)


@pytest.mark.parametrize("name", sorted(ALL_APPS))
def test_functional_verification(name):
    """Every application's kernels reproduce their NumPy reference."""
    get_app(name).verify()


@pytest.mark.parametrize("name", sorted(ALL_APPS))
def test_kernel_fraction_sane(name):
    app = get_app(name)
    assert 0.0 < app.kernel_fraction <= 1.0


class TestSaxpy:
    def test_iterations_accumulate(self):
        app = get_app("saxpy")
        run = app.run({"n": 1024, "a": 1.0, "iterations": 4})
        ref = app.reference({"n": 1024, "a": 1.0, "iterations": 4})["y"]
        np.testing.assert_allclose(run.outputs["y"], ref, rtol=1e-5)
        assert len(run.launches) == 4

    def test_memory_bound(self):
        app = get_app("saxpy")
        run = app.run({"n": 1 << 18, "a": 2.0, "iterations": 2},
                      functional=False)
        assert run.bottleneck == "memory bandwidth"
        assert run.merged_trace.coalesced_fraction > 0.99


class TestCp:
    def test_chunked_constant_memory(self):
        app = get_app("cp")
        run = app.run({"width": 32, "height": 32, "natoms": 5000,
                       "spacing": 0.1}, functional=True)
        # 5000 atoms need two constant chunks -> two launches
        assert len(run.launches) == 2
        ref = app.reference({"width": 32, "height": 32, "natoms": 5000,
                             "spacing": 0.1})["potential"]
        np.testing.assert_allclose(run.outputs["potential"], ref,
                                   rtol=1e-3, atol=1e-3)

    def test_constant_cache_hits_dominate(self):
        app = get_app("cp")
        run = app.run(app.default_workload("test"), functional=False)
        t = run.merged_trace
        assert t.const_hits > 10 * t.const_misses


class TestMri:
    @pytest.mark.parametrize("name", ["mri-q", "mri-fhd"])
    def test_sfu_heavy(self, name):
        app = get_app(name)
        run = app.run(app.default_workload("test"), functional=False)
        t = run.merged_trace
        assert t.sfu_warp_insts / t.total_warp_insts > 0.08

    def test_q_beats_fhd(self):
        """MRI-Q's leaner inner loop gives the higher speedup (paper:
        457 vs 316)."""
        q = get_app("mri-q")
        f = get_app("mri-fhd")
        rq = q.run(q.default_workload("test"), functional=False)
        rf = f.run(f.default_workload("test"), functional=False)
        assert rq.kernel_speedup > rf.kernel_speedup


class TestFdtd:
    def test_amdahl_cap(self):
        """16.4% kernel fraction caps application speedup near 1.2X."""
        app = get_app("fdtd")
        run = app.run(app.default_workload("full"), functional=False)
        assert run.kernel_speedup > 5
        assert 1.0 < run.app_speedup < 1.25

    def test_two_kernels_per_step(self):
        app = get_app("fdtd")
        run = app.run({"nx": 32, "ny": 32, "steps": 3, "total_steps": 3})
        assert len(run.launches) == 6

    def test_field_energy_structure(self):
        """The pulse spreads: energy leaves the centre but is bounded."""
        from repro.apps.fdtd import fdtd_reference
        ez0, _, _ = fdtd_reference(64, 64, 0)
        ez, hx, hy = fdtd_reference(64, 64, 30)
        assert np.abs(ez).max() <= 1.5
        assert np.abs(ez[32, 32]) < np.abs(ez0[32, 32])


class TestLbm:
    @pytest.mark.parametrize("layout", ["aos", "soa", "texture"])
    def test_layouts_agree(self, layout):
        app = get_app("lbm")
        wl = {"nx": 32, "ny": 16, "steps": 2, "total_steps": 2,
              "layout": layout}
        run = app.run(wl)
        ref = app.reference(wl)["f"]
        np.testing.assert_allclose(run.outputs["f"], ref,
                                   rtol=1e-3, atol=1e-4)

    def test_mass_conserved(self):
        app = get_app("lbm")
        run = app.run({"nx": 32, "ny": 32, "steps": 4, "total_steps": 4,
                       "layout": "soa"})
        from repro.apps.lbm import _initial_f
        assert run.outputs["f"].sum() == pytest.approx(
            _initial_f(32, 32).sum(), rel=1e-4)

    def test_shared_capacity_limits_blocks(self):
        app = get_app("lbm")
        run = app.run(app.default_workload("test"), functional=False)
        occ = run.launches[0].occupancy()
        assert occ.blocks_per_sm == 1
        assert occ.limiter == "shared"      # the paper's LBM limiter

    def test_aos_loads_fully_serialize(self):
        app = get_app("lbm")
        run = app.run({"nx": 64, "ny": 32, "steps": 1, "total_steps": 1,
                       "layout": "aos"}, functional=False)
        stats = run.merged_trace.per_array["f_a"]
        assert stats.transactions_per_access == pytest.approx(16.0)

    def test_bad_layout_rejected(self):
        from repro.apps.lbm import lbm_step_kernel
        with pytest.raises(ValueError, match="unknown LBM layout"):
            lbm_step_kernel("zigzag")


class TestFem:
    def test_mesh_matrix_structure(self):
        from repro.apps.fem import build_mesh_matrix
        a, x0 = build_mesh_matrix(8)
        assert a.shape == (64, 64)
        # Laplacian rows sum to ~0 and diagonal is positive
        assert np.abs(np.asarray(a.sum(axis=1))).max() < 1e-3
        assert (a.diagonal() > 0).all()

    def test_gathers_do_not_coalesce(self):
        app = get_app("fem")
        run = app.run(app.default_workload("test"), functional=False)
        assert run.merged_trace.coalesced_fraction < 0.5


class TestPns:
    def test_bit_exact_vs_reference(self):
        app = get_app("pns")
        wl = {"nsims": 300, "places": 8, "steps": 20}
        run = app.run(wl)
        ref = app.reference(wl)
        np.testing.assert_array_equal(run.outputs["marking"],
                                      ref["marking"])

    def test_token_conservation(self):
        app = get_app("pns")
        run = app.run({"nsims": 128, "places": 8, "steps": 32})
        marking = run.outputs["marking"]
        np.testing.assert_array_equal(marking.sum(axis=0), 8)
        assert (marking >= 0).all()

    def test_capacity_batching(self):
        app = get_app("pns")
        assert app.max_sims_per_batch(places=64) * 64 * 8 \
            <= app.spec.dram_capacity_bytes

    def test_bottleneck_note(self):
        assert "global memory capacity" in get_app("pns").bottleneck_note


class TestRc5:
    def test_finds_planted_key(self):
        app = get_app("rc5-72")
        run = app.run({"nkeys": 384, "secret_index": 123})
        assert run.outputs["found"][0] == 124     # tid + 1

    def test_native_rotate_variant_matches(self):
        app = get_app("rc5-72")
        run = app.run({"nkeys": 384, "secret_index": 55,
                       "native_rotate": True})
        assert run.outputs["found"][0] == 56

    def test_native_rotate_is_faster(self):
        app = get_app("rc5-72")
        em = app.run({"nkeys": 1 << 12, "secret_index": 7},
                     functional=False)
        na = app.run({"nkeys": 1 << 12, "secret_index": 7,
                      "native_rotate": True}, functional=False)
        assert na.gpu_kernel_seconds < em.gpu_kernel_seconds

    def test_reference_cipher_deterministic(self):
        from repro.apps.rc5 import rc5_reference_encrypt
        import numpy as np
        keys = np.array([[1, 2], [1, 2], [3, 4]], dtype=np.int64)
        x, y = rc5_reference_encrypt(keys, (0x1111, 0x2222))
        assert x[0] == x[1] and y[0] == y[1]
        assert (x[0], y[0]) != (x[2], y[2])
        assert 0 <= x.max() <= 0xFFFFFFFF


class TestTpacf:
    def test_histogram_totals(self):
        app = get_app("tpacf")
        wl = {"ndata": 96, "nrandom": 64}
        run = app.run(wl)
        nd, nr = 96, 64
        assert run.outputs["DD"].sum() == nd * (nd - 1) // 2
        assert run.outputs["RR"].sum() == nr * (nr - 1) // 2
        assert run.outputs["DR"].sum() == nd * nr

    def test_private_histograms_avoid_conflicts(self):
        app = get_app("tpacf")
        run = app.run({"ndata": 128, "nrandom": 64}, functional=False)
        t = run.merged_trace
        # bin-major private histograms are conflict-free; the residual
        # serialization (a few % of issue slots) comes from the
        # binary search's divergent reads of the staged edge table
        issue_cycles = 4.0 * t.total_warp_insts
        assert t.shared_conflict_cycles < 0.10 * issue_cycles


class TestRpes:
    def test_boys_f0_against_scipy(self):
        from scipy.special import erf
        from repro.apps.rpes import boys_f0_numpy
        t = np.linspace(0.0, 50.0, 4001).astype(np.float32)
        exact = np.where(
            t < 1e-12, 1.0,
            0.5 * np.sqrt(np.pi / np.maximum(t, 1e-12))
            * erf(np.sqrt(np.maximum(t, 1e-12))))
        assert np.abs(boys_f0_numpy(t) - exact).max() < 1e-5

    def test_integral_symmetry(self):
        """(ab|cd) must equal (ba|dc) — swap bra and ket partners."""
        from repro.apps.rpes import rpes_reference
        rng = np.random.default_rng(3)
        n = 64
        qs = {k: rng.uniform(0.5, 2.0, n).astype(np.float32)
              for k in "abcd"}
        for k in "abcd":
            qs["r" + k] = rng.uniform(-1, 1, (n, 3)).astype(np.float32)
        swapped = {"a": qs["b"], "b": qs["a"], "c": qs["d"], "d": qs["c"],
                   "ra": qs["rb"], "rb": qs["ra"],
                   "rc": qs["rd"], "rd": qs["rc"]}
        np.testing.assert_allclose(rpes_reference(qs),
                                   rpes_reference(swapped), rtol=1e-4)

    def test_batches_scale_work(self):
        app = get_app("rpes")
        one = app.run({"batches": 1}, functional=False)
        two = app.run({"batches": 2}, functional=False)
        assert two.merged_trace.flops == pytest.approx(
            2 * one.merged_trace.flops, rel=0.01)


class TestH264:
    def test_motion_vectors_match_reference(self):
        app = get_app("h264")
        run = app.run({"width": 64, "height": 48, "frames": 1})
        ref = app.reference({"width": 64, "height": 48})["best"]
        np.testing.assert_array_equal(run.outputs["best"], ref)

    def test_motion_recovers_global_shift(self):
        """The synthetic pair is shifted by (dx=+2, dy=-3); interior
        macroblocks should find that vector."""
        from repro.apps.h264 import CAND, R
        app = get_app("h264")
        run = app.run({"width": 96, "height": 96, "frames": 1})
        best = run.outputs["best"]
        # interior MB: candidate index of (dy=-3, dx=+2)
        expect = (-3 + R) * CAND + (2 + R)
        interior = best[1:-1, 1:-1]
        assert (interior == expect).mean() > 0.8

    def test_transfers_rival_gpu_time(self):
        app = get_app("h264")
        run = app.run(app.default_workload("full"), functional=False)
        assert run.transfer_seconds > 0.5 * run.gpu_kernel_seconds

    def test_low_app_speedup(self):
        app = get_app("h264")
        run = app.run(app.default_workload("full"), functional=False)
        assert run.app_speedup < 2.0     # paper: 1.47


class TestMatmulEntry:
    def test_registry_matmul_runs(self):
        app = get_app("matmul")
        run = app.run({"n": 32, "variant": "tiled", "tile": 16})
        assert "C" in run.outputs


class TestSharedDevice:
    def test_two_apps_can_share_a_device(self):
        dev = Device()
        saxpy = get_app("saxpy")
        saxpy.run({"n": 2048, "a": 1.5, "iterations": 1}, device=dev)
        cp = get_app("cp")
        cp.run({"width": 32, "height": 32, "natoms": 32, "spacing": 0.1},
               device=dev)
        assert dev.bytes_allocated > 0
