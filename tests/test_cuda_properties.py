"""Property-based tests of the kernel DSL's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import DEFAULT_DEVICE
from repro.cuda import Device, Dim3, kernel, launch
from repro.cuda.context import BlockContext
from repro.trace import InstrClass, KernelTrace


def ctx_of(nthreads):
    return BlockContext(DEFAULT_DEVICE, Dim3(1), Dim3(nthreads), (0, 0, 0),
                        trace=KernelTrace())


@settings(max_examples=50, deadline=None)
@given(nthreads=st.integers(1, 512))
def test_warp_count_matches_ceiling(nthreads):
    ctx = ctx_of(nthreads)
    ctx.fadd(1.0, 1.0)
    assert ctx.trace.warp_insts[InstrClass.FADD] == -(-nthreads // 32)
    assert ctx.trace.thread_insts[InstrClass.FADD] == nthreads


@settings(max_examples=50, deadline=None)
@given(nthreads=st.integers(32, 512), data=st.data())
def test_masked_threads_never_exceed_block(nthreads, data):
    ctx = ctx_of(nthreads)
    cutoff = data.draw(st.integers(0, nthreads))
    with ctx.masked(ctx.tid < cutoff):
        ctx.fma(1.0, 2.0, 3.0)
    assert ctx.trace.thread_insts[InstrClass.FMA] == cutoff
    assert ctx.trace.warp_insts[InstrClass.FMA] <= -(-nthreads // 32)


@settings(max_examples=40, deadline=None)
@given(
    a=st.integers(0, (1 << 32) - 1),
    b=st.integers(0, (1 << 32) - 1),
)
def test_integer_ops_match_python_semantics(a, b):
    ctx = ctx_of(4)
    mask = (1 << 32) - 1
    assert int(ctx.iand(ctx.iadd(a, b), mask)[0]) == (a + b) & mask
    assert int(ctx.ixor(a, b)[0]) == a ^ b
    assert int(ctx.ior(a, b)[0]) == a | b


@settings(max_examples=40, deadline=None)
@given(x=st.floats(-1e6, 1e6), y=st.floats(-1e6, 1e6),
       z=st.floats(-1e6, 1e6))
def test_fma_matches_float32_arithmetic(x, y, z):
    ctx = ctx_of(4)
    got = ctx.fma(np.float32(x), np.float32(y), np.float32(z))[0]
    want = np.float32(np.float32(x) * np.float32(y) + np.float32(z))
    assert got == pytest.approx(want, rel=1e-6, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(-100, 100), min_size=32, max_size=32))
def test_global_roundtrip_preserves_values(values):
    dev = Device()
    arr = dev.to_device(np.array(values, dtype=np.float32), "v")
    ctx = ctx_of(32)
    loaded = ctx.ld_global(arr, ctx.tid)
    ctx.st_global(arr, ctx.tid, loaded)
    np.testing.assert_array_equal(arr.to_host(),
                                  np.array(values, dtype=np.float32))


@settings(max_examples=30, deadline=None)
@given(perm=st.permutations(list(range(64))))
def test_shared_memory_permutation_roundtrip(perm):
    ctx = ctx_of(64)
    sh = ctx.shared_alloc(64, np.float32)
    p = np.array(perm, dtype=np.int64)
    ctx.st_shared(sh, p, ctx.tid.astype(np.float32))
    back = ctx.ld_shared(sh, p)
    np.testing.assert_array_equal(back, ctx.tid.astype(np.float32))


@settings(max_examples=30, deadline=None)
@given(nblocks=st.integers(1, 64))
def test_grid_covers_every_element_exactly_once(nblocks):
    dev = Device()
    n = nblocks * 64
    arr = dev.to_device(np.zeros(n, np.float32), "x")

    @kernel("inc", regs_per_thread=4)
    def inc(ctx, x):
        i = ctx.global_tid()
        ctx.st_global(x, i, ctx.ld_global(x, i) + 1.0)

    launch(inc, (nblocks,), (64,), (arr,), device=dev, trace=False)
    np.testing.assert_array_equal(arr.to_host(), 1.0)


@settings(max_examples=25, deadline=None)
@given(
    nthreads=st.integers(1, 256),
    ops=st.lists(st.sampled_from(["fma", "fadd", "iadd", "sfu"]),
                 min_size=1, max_size=20),
)
def test_trace_counts_are_exact(nthreads, ops):
    """The trace records exactly the instructions the kernel emits."""
    ctx = ctx_of(nthreads)
    for op in ops:
        if op == "fma":
            ctx.fma(1.0, 1.0, 1.0)
        elif op == "fadd":
            ctx.fadd(1.0, 1.0)
        elif op == "iadd":
            ctx.iadd(1, 1)
        else:
            ctx.sfu_sin(0.5)
    warps = -(-nthreads // 32)
    assert ctx.trace.total_warp_insts == len(ops) * warps
    expected_flops = sum({"fma": 2, "fadd": 1, "iadd": 0, "sfu": 1}[o]
                         for o in ops) * nthreads
    assert ctx.trace.flops == expected_flops


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2 ** 16),
    nthreads=st.integers(16, 128),
)
def test_select_equals_masked_merge(seed, nthreads):
    """Predicated select and branch-plus-merge produce identical
    values (only their costs differ)."""
    rng = np.random.default_rng(seed)
    cond = rng.random(nthreads) > 0.5
    a = rng.standard_normal(nthreads).astype(np.float32)
    b = rng.standard_normal(nthreads).astype(np.float32)

    ctx1 = ctx_of(nthreads)
    via_select = ctx1.select(cond, a, b)

    ctx2 = ctx_of(nthreads)
    out = b.copy()
    with ctx2.masked(cond):
        out = ctx2.merge(a, out).astype(np.float32)
    np.testing.assert_array_equal(via_select, out)


@settings(max_examples=20, deadline=None)
@given(nthreads=st.integers(1, 512))
def test_stream_length_matches_trace(nthreads):
    """With stream recording on, every traced warp instruction has a
    stream event."""
    stream = []
    ctx = BlockContext(DEFAULT_DEVICE, Dim3(1), Dim3(nthreads), (0, 0, 0),
                       trace=KernelTrace(), stream=stream)
    ctx.fma(1.0, 1.0, 1.0)
    ctx.iadd(1, 2)
    ctx.sync()
    assert len(stream) == 3
    assert [e.cls for e in stream] == [InstrClass.FMA, InstrClass.IALU,
                                       InstrClass.SYNC]
