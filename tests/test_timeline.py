"""Warp timelines: event recording, chrome://tracing schema, rendering.

Schema rules every chrome://tracing export must satisfy (checked here
for both the warp timeline and the span tracer's export): the payload
is valid JSON, timestamps are monotonically non-decreasing in file
order, every duration ``B`` has a matching ``E`` on the same
``(pid, tid, name)`` lane, and pid/tid lane assignments are stable
for the whole trace.
"""

import json
from collections import Counter

import numpy as np
import pytest

from repro.arch.registry import device_by_name
from repro.cuda import Device, kernel, launch
from repro.obs import LaunchProfiler, SpanTracer
from repro.obs.timeline import (Timeline, format_timeline,
                                occupancy_strip, record_timeline,
                                stall_summary, timeline_for_target,
                                to_chrome_trace, write_chrome_trace)
from repro.sim.warpsim import WarpEvent, simulate_sm

G80 = device_by_name("geforce_8800_gtx")


@kernel("tl_kernel", regs_per_thread=8, static_smem_bytes=256)
def tl_kernel(ctx, src, out, n):
    i = ctx.global_tid()
    with ctx.masked(i < n):
        v = ctx.ld_global(src, i)
    ctx.sync()
    with ctx.masked(i < n):
        ctx.st_global(out, i, v * 2.0)


def _result(n=256):
    dev = Device(G80)
    src = dev.to_device(np.arange(n, dtype=np.float32), "src")
    out = dev.to_device(np.zeros(n, dtype=np.float32), "out")
    return launch(tl_kernel, (n // 64,), (64,), (src, out, n),
                  device=dev, functional=False, trace_blocks=1,
                  record_stream=True)


@pytest.fixture(scope="module")
def timeline():
    return record_timeline(_result())


# ----------------------------------------------------------------------
# Event recording in the warpsim
# ----------------------------------------------------------------------

def test_recording_is_opt_in_and_deterministic():
    result = _result()
    occ = result.occupancy()
    plain = simulate_sm(result.stream, occ.warps_per_block,
                        occ.blocks_per_sm, G80)
    events = []
    recorded = simulate_sm(result.stream, occ.warps_per_block,
                           occ.blocks_per_sm, G80, events=events)
    # recording must not perturb the simulation
    assert recorded.cycles == plain.cycles
    assert recorded.instructions_issued == plain.instructions_issued
    assert events


def test_every_warp_retires_once(timeline):
    retires = [e for e in timeline.events if e.kind == "retire"]
    assert len(retires) == timeline.n_warps
    lanes = {timeline.lane(e) for e in retires}
    assert lanes == set(range(timeline.n_warps))


def test_event_kinds_and_durations(timeline):
    kinds = {e.kind for e in timeline.events}
    assert kinds <= {"issue", "mem", "sync", "retire"}
    assert {"issue", "mem", "sync"} <= kinds   # the kernel has all three
    for ev in timeline.events:
        assert ev.end >= ev.start >= 0.0
        assert ev.end <= timeline.cycles + 1e-9


def test_issue_events_account_issue_busy():
    result = _result()
    occ = result.occupancy()
    events = []
    sim = simulate_sm(result.stream, occ.warps_per_block,
                      occ.blocks_per_sm, G80, events=events)
    issue_cycles = sum(e.duration for e in events if e.kind == "issue")
    assert issue_cycles == pytest.approx(sim.issue_busy_cycles)


def test_requires_recorded_stream():
    dev = Device(G80)
    src = dev.to_device(np.arange(64, dtype=np.float32), "src")
    out = dev.to_device(np.zeros(64, dtype=np.float32), "out")
    result = launch(tl_kernel, (1,), (64,), (src, out, 64), device=dev)
    with pytest.raises(ValueError, match="record_stream"):
        record_timeline(result)


# ----------------------------------------------------------------------
# chrome://tracing schema
# ----------------------------------------------------------------------

def _schema_check(trace_obj):
    payload = json.dumps(trace_obj)        # must be valid JSON
    events = json.loads(payload)["traceEvents"]
    spans = [e for e in events if e["ph"] in ("B", "E", "X", "i")]
    # monotonic ts in file order
    ts = [e["ts"] for e in spans]
    assert all(a <= b for a, b in zip(ts, ts[1:]))
    # matched B/E pairs per lane+name
    begins = Counter((e["pid"], e["tid"], e["name"])
                     for e in spans if e["ph"] == "B")
    ends = Counter((e["pid"], e["tid"], e["name"])
                   for e in spans if e["ph"] == "E")
    assert begins == ends
    return events, spans


def test_timeline_chrome_schema(timeline, tmp_path):
    path = tmp_path / "warps.json"
    write_chrome_trace(timeline, str(path))
    trace_obj = json.loads(path.read_text())
    events, spans = _schema_check(trace_obj)
    # pid/tid lane stability: every span sits on the one SM and on a
    # declared warp lane
    lanes = {e["tid"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert lanes == set(range(timeline.n_warps))
    assert {e["pid"] for e in spans} == {timeline.sm}
    assert {e["tid"] for e in spans} <= lanes
    meta = trace_obj["otherData"]
    assert meta["kernel"] == "tl_kernel"
    assert meta["cycles"] == timeline.cycles


def test_span_tracer_chrome_schema(tmp_path):
    tracer = SpanTracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    path = tmp_path / "spans.json"
    tracer.write_chrome_trace(str(path))
    events, spans = _schema_check(json.loads(path.read_text()))
    assert all(e["dur"] >= 0 for e in spans if e["ph"] == "X")


def test_lane_ids_stable_across_exports(timeline):
    lanes1 = sorted({e["tid"] for e in to_chrome_trace(timeline)
                     ["traceEvents"] if e["ph"] != "M"})
    lanes2 = sorted({e["tid"] for e in to_chrome_trace(timeline)
                     ["traceEvents"] if e["ph"] != "M"})
    assert lanes1 == lanes2


# ----------------------------------------------------------------------
# ASCII rendering + summaries
# ----------------------------------------------------------------------

def test_occupancy_strip_shape(timeline):
    strip = occupancy_strip(timeline, width=48)
    assert len(strip) == 48
    assert set(strip) <= set(" .:-=+*#%@")
    # the kernel does real work: some column shows runnable warps
    assert strip.strip()


def test_stall_summary_fractions(timeline):
    frac = stall_summary(timeline)
    assert set(frac) == {"issue", "mem", "sync", "eligible"}
    assert all(0.0 <= v <= 1.0 for v in frac.values())
    assert sum(frac.values()) == pytest.approx(1.0)
    assert frac["mem"] > 0          # the loads must show up


def test_format_timeline_text(timeline):
    text = format_timeline(timeline, width=40)
    assert "tl_kernel" in text and "SM0 |" in text
    assert "warp-state:" in text and "legend:" in text


def test_empty_timeline_renders():
    tl = Timeline(kernel="empty", device="dev")
    assert occupancy_strip(tl) == "(no events)"
    assert stall_summary(tl) == {}


# ----------------------------------------------------------------------
# App-target driver (what the CLI uses)
# ----------------------------------------------------------------------

def test_timeline_for_matmul_target():
    from repro.apps.matmul import MatMul
    target = next(t for t in MatMul(G80).lint_targets()
                  if t.note == "tiled")
    tl = timeline_for_target(target, G80)
    assert tl.kernel == "mm_tiled_16x16"
    assert tl.n_warps == tl.warps_per_block * tl.blocks_per_sm > 0
    assert tl.cycles > 0
    _schema_check(to_chrome_trace(tl))
