"""Tests for the dynamic sanitizer suite (repro.san)."""

import json

import numpy as np
import pytest

from repro.analysis.findings import Severity
from repro.analysis.rules import classify_dataflow, launch_dataflow
from repro.apps.registry import get_app
from repro.arch.device import DEFAULT_DEVICE
from repro.cuda import Device, launch
from repro.cuda.executors import SanitizedExecutor
from repro.san import SAN_RULES, SanState
from repro.san import check as san_check
from repro.san import validate as san_validate
from repro.san.broken import BLOCK, BROKEN, GRID, N, broken_by_name
from repro.trace.instr import InstrClass


def _high_rules(state):
    return {f.rule for f in state.all_findings()
            if f.severity >= Severity.HIGH}


def _sanitized_app_run(name):
    app = get_app(name, DEFAULT_DEVICE)
    ex = SanitizedExecutor()
    app.executor = ex
    run = app.run(app.default_workload("test"), functional=True)
    return ex.state, run


class TestBrokenCatalogue:
    """Every deliberately broken kernel is caught by its expected tool."""

    @pytest.mark.parametrize("bk", BROKEN, ids=lambda b: b.name)
    def test_bug_caught_at_high_severity(self, bk):
        result = bk.run()
        rules = _high_rules(result.san)
        hit = rules & bk.dynamic_rules
        assert hit, (f"{bk.name} ({bk.bug}) not caught; "
                     f"high rules: {sorted(rules)}")
        for rule in hit:
            assert SAN_RULES[rule] == bk.tool

    def test_findings_carry_thread_and_line_provenance(self):
        result = broken_by_name("tile_edge_oob").run()
        (f,) = [f for f in result.san.all_findings()
                if f.rule == "oob-global"]
        assert f.line is not None
        assert "thread (255,0,0) of block (0,0,0)" in f.message
        assert "256 elements" in f.message

    def test_oob_attributes_the_neighbouring_allocation(self):
        result = broken_by_name("global_oob_store").run()
        (f,) = [f for f in result.san.all_findings()
                if f.rule == "oob-global"]
        # out's stores at out[i + n] land inside whatever allocation
        # follows it in the simulated address space
        assert "landing inside allocation" in f.message or \
            f.message.endswith("affected)")

    def test_race_report_names_both_sites(self):
        result = broken_by_name("racy_reduction").run()
        races = [f for f in result.san.all_findings()
                 if f.rule == "shared-race"]
        assert races
        assert any("races the store at line" in f.message for f in races)

    def test_broken_by_name_unknown_raises(self):
        with pytest.raises(KeyError):
            broken_by_name("nope")


class TestToolGating:
    def test_memcheck_only_misses_the_race(self):
        bk = broken_by_name("racy_reduction")
        state = SanState(tools=("memcheck",))
        bk.run(state)
        assert "shared-race" not in {f.rule for f in state.all_findings()}

    def test_racecheck_only_misses_the_oob(self):
        bk = broken_by_name("global_oob_store")
        state = SanState(tools=("racecheck",))
        bk.run(state)
        rules = {f.rule for f in state.all_findings()}
        assert "oob-global" not in rules

    def test_racecheck_only_still_catches_the_race(self):
        bk = broken_by_name("racy_reduction")
        state = SanState(tools=("racecheck",))
        bk.run(state)
        assert "shared-race" in _high_rules(state)

    def test_unknown_tool_rejected(self):
        with pytest.raises(ValueError):
            SanState(tools=("valgrind",))


class TestSanitizedLaunch:
    def test_launch_sanitize_flag_attaches_state(self):
        bk = broken_by_name("tile_edge_oob")
        dev = Device()
        x = dev.to_device(np.arange(N, dtype=np.float32), "x")
        out = dev.alloc(N, np.float32, "out")
        result = launch(bk.kern, GRID, BLOCK, (x, out, N),
                        device=dev, sanitize=True)
        assert result.san is not None
        assert "oob-global" in _high_rules(result.san)

    def test_repeated_blocks_dedup_to_one_finding_per_site(self):
        bk = broken_by_name("global_oob_store")
        dev = Device()
        x = dev.to_device(np.arange(N, dtype=np.float32), "x")
        out = dev.alloc(N, np.float32, "out")
        result = launch(bk.kern, (4,), (N // 4,), (x, out, N),
                        device=dev, sanitize=True)
        oob = [f for f in result.san.all_findings()
               if f.rule == "oob-global" and f.severity >= Severity.HIGH]
        assert len(oob) == 1

    def test_sanitized_run_is_bit_identical(self):
        app = get_app("saxpy", DEFAULT_DEVICE)
        wl = app.default_workload("test")
        plain = app.run(wl, functional=True)
        state, sanitized = _sanitized_app_run("saxpy")
        assert not state.high_findings()
        assert set(plain.outputs) == set(sanitized.outputs)
        for k in plain.outputs:
            assert np.array_equal(plain.outputs[k], sanitized.outputs[k])


class TestLaunchDataflow:
    """R7: static launch-sequence classification and its dynamic mirror."""

    def test_lbm_intermediate_is_fusable_private(self):
        flow = launch_dataflow("lbm", DEFAULT_DEVICE)
        assert flow.arrays["f_b"].classification == "fusable-private"
        assert flow.arrays["f_a"].classification == "live-out"

    def test_fdtd_fields_are_loop_carried(self):
        flow = launch_dataflow("fdtd", DEFAULT_DEVICE)
        for name in ("Hx", "Hy", "Ez"):
            assert flow.arrays[name].classification == "loop-carried"

    def test_dataflow_findings_emitted(self):
        flow = launch_dataflow("lbm", DEFAULT_DEVICE)
        assert any(f.rule == "launch-dataflow" for f in flow.findings)

    def test_dynamic_log_agrees_with_static_for_lbm(self):
        state, _run = _sanitized_app_run("lbm")
        observed = classify_dataflow(state.launch_accesses())
        assert observed["f_b"].classification == "fusable-private"
        assert observed["f_a"].classification == "live-out"


class TestWarpsimSynccheck:
    def _stream(self):
        from repro.sim.warpsim import StreamEvent
        return [StreamEvent(InstrClass.IALU),
                StreamEvent(InstrClass.SYNC),
                StreamEvent(InstrClass.IALU)]

    def test_clean_stream_emits_nothing(self):
        from repro.sim.warpsim import simulate_sm
        state = SanState()
        simulate_sm(self._stream(), warps_per_block=4, blocks_per_sm=1,
                    sanitizer=state, kernel_name="clean")
        assert not state.all_findings()

    def test_retired_warp_reports_barrier_mismatch(self, monkeypatch):
        # force one warp to retire without ever reaching the barrier —
        # the shape of a kernel where warps execute different numbers
        # of __syncthreads()
        import repro.sim.warpsim as ws

        class RetiredWarp(ws._Warp):
            def __init__(self, block, wid):
                super().__init__(block, wid)
                if wid == 1:
                    self.done = True

        monkeypatch.setattr(ws, "_Warp", RetiredWarp)
        state = SanState()
        with pytest.raises(RuntimeError):
            ws.simulate_sm(self._stream(), warps_per_block=2,
                           blocks_per_sm=1, sanitizer=state,
                           kernel_name="mismatched")
        findings = state.all_findings()
        assert {f.rule for f in findings} == {"barrier-mismatch"}
        assert "retired without" in findings[0].message

    def test_synccheck_gating_silences_the_report(self, monkeypatch):
        import repro.sim.warpsim as ws

        class RetiredWarp(ws._Warp):
            def __init__(self, block, wid):
                super().__init__(block, wid)
                if wid == 1:
                    self.done = True

        monkeypatch.setattr(ws, "_Warp", RetiredWarp)
        state = SanState(tools=("memcheck",))
        with pytest.raises(RuntimeError):
            ws.simulate_sm(self._stream(), warps_per_block=2,
                           blocks_per_sm=1, sanitizer=state,
                           kernel_name="mismatched")
        assert not state.all_findings()


class TestCheckCLI:
    def test_broken_sweep_all_caught(self, capsys):
        assert san_check.main(["--broken"]) == 0
        assert "10 broken kernels, 0 missed" in capsys.readouterr().out

    def test_gated_broken_sweep_fails(self, capsys):
        assert san_check.main(["--broken", "--tool", "memcheck"]) == 1
        assert "MISSED" in capsys.readouterr().out

    def test_clean_app_passes_high_gate(self, capsys):
        assert san_check.main(["saxpy", "--fail-on", "high"]) == 0
        assert "saxpy: clean" in capsys.readouterr().out

    def test_json_envelope(self, capsys):
        assert san_check.main(["saxpy", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == san_check.JSON_SCHEMA_VERSION
        assert payload["tools"] == ["initcheck", "memcheck",
                                    "racecheck", "synccheck"]
        (report,) = payload["reports"]
        assert report["app"] == "saxpy"
        assert report["launches"]  # the dynamic R7 log rides along

    def test_broken_json_lists_missed(self, capsys):
        assert san_check.main(
            ["--broken", "--tool", "synccheck", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "broken"
        assert "racy_reduction" in payload["missed"]
        assert "divergent_sync" not in payload["missed"]


class TestCrossValidation:
    """Light smoke over repro.san.validate (CI runs the full harness)."""

    def test_broken_checks_agree(self):
        checks = san_validate.broken_checks(DEFAULT_DEVICE)
        assert len(checks) == len(BROKEN)
        bad = [c.format() for c in checks if not c.ok]
        assert not bad, bad

    def test_clean_check_saxpy(self):
        checks = san_validate.clean_checks(DEFAULT_DEVICE, apps=["saxpy"])
        assert all(c.ok for c in checks)
