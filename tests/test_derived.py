"""Derived-metrics engine: registry contracts and hand-computed goldens.

The nvprof-style metrics must agree with the models they summarize:
``achieved_occupancy`` with :mod:`repro.sim.occupancy`,
``gld_efficiency`` with the coalescing classifier's byte accounting,
the stall breakdown with the timing model's components.  The Section 4
matmul ladder is checked on both the paper's G80 and the Fermi-class
gtx_480, where the same kernels land on different metric values
(cached lines overfetch half of every 128 B line under 16-wide tile
rows).
"""

import numpy as np
import pytest

from repro.arch.registry import device_by_name
from repro.apps.matmul import MatMul
from repro.cuda import kernel, launch
from repro.obs import LaunchProfiler
from repro.obs.derived import (METRICS, MetricDef, derive_from_estimate,
                               derive_metrics, format_derived,
                               format_deviation, metric_deviation,
                               register_metric)

G80 = device_by_name("geforce_8800_gtx")
GTX480 = device_by_name("gtx_480")

TENTPOLE_METRICS = (
    "achieved_occupancy", "ipc", "gld_efficiency", "gst_efficiency",
    "shared_bank_conflict_rate", "l1_hit_rate", "l2_hit_rate",
    "dram_throughput_pct", "flop_sp_efficiency",
    "warp_issue_stall_breakdown",
)


def _ladder_record(spec, variant="tiled", n=64):
    app = MatMul(spec)
    prof = LaunchProfiler()
    with prof:
        app.run({"n": n, "variant": variant, "tile": 16,
                 "trace_blocks": 2}, functional=False)
    return prof.records[0]


@pytest.fixture(scope="module")
def g80_tiled():
    return _ladder_record(G80)


@pytest.fixture(scope="module")
def fermi_tiled():
    return _ladder_record(GTX480)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_has_every_tentpole_metric():
    for name in TENTPOLE_METRICS:
        assert name in METRICS
        m = METRICS[name]
        assert m.unit and m.formula and callable(m.compute)


def test_registry_rejects_duplicate_names():
    with pytest.raises(ValueError, match="already registered"):
        register_metric(MetricDef("ipc", "x", "dup", lambda r, s: None))


def test_unknown_metric_name_raises(g80_tiled):
    with pytest.raises(KeyError):
        derive_metrics(g80_tiled, names=["no_such_metric"])


def test_names_subset_selection(g80_tiled):
    vals = derive_metrics(g80_tiled, names=["ipc", "gld_efficiency"])
    assert set(vals) == {"ipc", "gld_efficiency"}


# ----------------------------------------------------------------------
# Goldens against the other models
# ----------------------------------------------------------------------

def test_achieved_occupancy_matches_occupancy_model(g80_tiled):
    from repro.sim.occupancy import compute_occupancy
    occ = compute_occupancy(threads_per_block=256, regs_per_thread=10,
                            smem_per_block=g80_tiled.occupancy
                            .get("shared/block (B)", 0), spec=G80)
    vals = derive_metrics(g80_tiled, G80)
    assert vals["achieved_occupancy"] == pytest.approx(occ.occupancy)
    # and the record's own occupancy block agrees
    assert vals["achieved_occupancy"] == pytest.approx(
        g80_tiled.occupancy["warps/SM"] / G80.max_warps_per_sm)


def test_tiled_matmul_gld_efficiency_g80_vs_fermi(g80_tiled, fermi_tiled):
    g80 = derive_metrics(g80_tiled, G80)
    fermi = derive_metrics(fermi_tiled, GTX480)
    # G80: 16 consecutive floats fill a 64 B segment exactly
    assert g80["gld_efficiency"] == pytest.approx(100.0)
    assert g80["gst_efficiency"] == pytest.approx(100.0)
    # Fermi: a 16-wide tile row uses 64 B of each 128 B line
    assert fermi["gld_efficiency"] == pytest.approx(50.0)
    assert fermi["gld_transactions_per_request"] == pytest.approx(2.0)


def test_gld_efficiency_matches_trace_split(g80_tiled):
    vals = derive_metrics(g80_tiled, G80)
    io = g80_tiled.io
    raw = 100.0 * io["gld_useful_bytes"] / io["gld_bus_bytes"]
    assert vals["gld_efficiency_raw"] == pytest.approx(raw)
    assert vals["gld_efficiency"] == pytest.approx(min(100.0, raw))
    assert vals["gld_transactions_per_request"] == pytest.approx(
        io["gld_transactions"] / io["gld_accesses"])
    # a fully coalesced kernel is not flagged as broadcast
    assert vals["gld_broadcast"] == 0.0


def test_broadcast_load_is_capped_and_flagged():
    """Every thread loads the same word: per-thread requested bytes
    exceed the deduplicated bus bytes, so the raw ratio goes past 100%.
    The headline metric caps at 100 and the broadcast flag trips."""
    @kernel("broadcast_ld", regs_per_thread=6)
    def broadcast(ctx, src, out, n):
        i = ctx.global_tid()
        v = ctx.ld_global(src, np.zeros(ctx.nthreads, dtype=np.int64))
        ctx.st_global(out, i, v)

    from repro.cuda import Device
    dev = Device(G80)
    n = 256
    src = dev.to_device(np.arange(n, dtype=np.float32), "src")
    out = dev.to_device(np.zeros(n, dtype=np.float32), "out")
    prof = LaunchProfiler()
    with prof:
        launch(broadcast, (1,), (n,), (src, out, n), device=dev)
    vals = derive_metrics(prof.records[0], G80)
    assert vals["gld_efficiency_raw"] > 100.0
    assert vals["gld_efficiency"] == pytest.approx(100.0)
    assert vals["gld_broadcast"] == 1.0
    assert vals["gst_efficiency"] <= 100.0


def test_strided_load_efficiency_hand_computed():
    """Stride-2 loads on the G80: each half-warp touches 128 B of
    segments to use 64 B -> exactly 50% load efficiency."""
    @kernel("strided_ld", regs_per_thread=6)
    def strided(ctx, src, out, n):
        i = ctx.global_tid()
        with ctx.masked(i < n):
            v = ctx.ld_global(src, i * 2)
            ctx.st_global(out, i, v)

    from repro.cuda import Device
    dev = Device(G80)
    n = 256
    src = dev.to_device(np.arange(2 * n, dtype=np.float32), "src")
    out = dev.to_device(np.zeros(n, dtype=np.float32), "out")
    prof = LaunchProfiler()
    with prof:
        launch(strided, (1,), (n,), (src, out, n), device=dev)
    vals = derive_metrics(prof.records[0], G80)
    assert vals["gld_efficiency"] == pytest.approx(50.0)
    assert vals["gst_efficiency"] == pytest.approx(100.0)


def test_cache_hit_rates_device_dependent(g80_tiled, fermi_tiled):
    g80 = derive_metrics(g80_tiled, G80)
    fermi = derive_metrics(fermi_tiled, GTX480)
    # the G80 has no global-path cache hierarchy
    assert g80["l1_hit_rate"] is None
    assert g80["l2_hit_rate"] is None
    # the Fermi part records real hit counters
    assert 0.0 <= fermi["l1_hit_rate"] <= 100.0
    assert 0.0 <= fermi["l2_hit_rate"] <= 100.0


def test_stall_breakdown_normalized(g80_tiled):
    vals = derive_metrics(g80_tiled, G80)
    breakdown = vals["warp_issue_stall_breakdown"]
    assert set(breakdown) == {"instruction issue", "SFU throughput",
                              "memory bandwidth", "memory latency"}
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in breakdown.values())


def test_stall_breakdown_matches_timing_model(g80_tiled):
    total = sum(g80_tiled.bottleneck_cycles.values())
    vals = derive_metrics(g80_tiled, G80)
    for name, frac in vals["warp_issue_stall_breakdown"].items():
        assert frac == pytest.approx(
            g80_tiled.bottleneck_cycles[name] / total)


def test_rate_metrics_positive_and_bounded(fermi_tiled):
    vals = derive_metrics(fermi_tiled, GTX480)
    assert 0 < vals["ipc"] <= 2.0
    assert 0 < vals["dram_throughput_pct"] <= 100.0
    assert 0 < vals["flop_sp_efficiency"] <= 100.0


# ----------------------------------------------------------------------
# Static side + deviation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("spec", [G80, GTX480],
                         ids=["g80", "gtx_480"])
def test_static_counters_agree_with_measured(spec):
    """Counter-shaped metrics must be identical measured vs static —
    the census and the dynamic trace describe the same access
    pattern."""
    from repro.analysis.estimate import estimate_app
    rec = _ladder_record(spec)
    est = next(e for e in estimate_app("matmul", spec=spec)
               if e.kernel == rec.kernel)
    measured = derive_metrics(rec, spec)
    static = derive_from_estimate(est, spec)
    for name in ("gld_efficiency", "gst_efficiency",
                 "gld_transactions_per_request",
                 "gst_transactions_per_request", "achieved_occupancy"):
        assert static[name] == pytest.approx(measured[name]), name


def test_metric_deviation_shape_and_sign():
    measured = {"ipc": 0.2, "gld_efficiency": 100.0, "skip": None,
                "warp_issue_stall_breakdown": {"a": 1.0}}
    static = {"ipc": 0.1, "gld_efficiency": 100.0}
    dev = metric_deviation(measured, static)
    assert set(dev) == {"ipc", "gld_efficiency"}
    assert dev["ipc"]["deviation_pct"] == pytest.approx(-50.0)
    assert dev["gld_efficiency"]["deviation_pct"] == pytest.approx(0.0)
    text = format_deviation(dev)
    assert "ipc" in text and "-50.0%" in text


def test_format_derived_renders_na_and_units(g80_tiled):
    text = format_derived(g80_tiled, spec=G80)
    assert "derived metrics: mm_tiled_16x16" in text
    assert "n/a" in text            # cache rates on the G80
    assert "warp-inst/cycle" in text
