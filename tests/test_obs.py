"""Observability layer: registry, spans, profiler, pipeline wiring.

Covers the contracts the instrumented pipeline relies on: span
nesting and Chrome-trace export round-trips, labeled counter merge
(including the forked-worker snapshot fan-in path of the
``ProcessPoolExecutor``), profiler record correctness against the
launch plan's own block accounting, and the zero-overhead-by-default
guarantee that a disabled registry/profiler records nothing.
"""

import json
import os

import numpy as np
import pytest

from repro.apps.matmul import MatMul
from repro.cuda import Device, LaunchPlan, ProcessPoolExecutor, kernel, launch
from repro.obs import (
    LaunchProfiler,
    MetricsRegistry,
    NULL_METRIC,
    SpanTracer,
    active_profiler,
    get_registry,
    get_tracer,
    span,
    use_registry,
    use_tracer,
)
from repro.obs.profiler import STAGES


@kernel("obs_writer", regs_per_thread=6)
def obs_writer(ctx, out, width):
    i = ctx.global_tid()
    with ctx.masked(i < width):
        ctx.st_global(out, i, (i * 2 + 1).astype(np.float32))


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------

def test_span_nesting_and_tree():
    tracer = SpanTracer()
    with tracer.span("outer", kind="demo") as outer:
        with tracer.span("inner.a"):
            pass
        with tracer.span("inner.b"):
            pass
    assert [r.name for r in tracer.roots] == ["outer"]
    assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
    assert outer.seconds >= sum(c.seconds for c in outer.children) >= 0
    tree = tracer.format_tree()
    assert "outer" in tree and "inner.a" in tree and "kind=demo" in tree
    # children indent one level deeper than the root
    lines = tree.splitlines()
    assert lines[0].startswith("outer")
    assert lines[1].startswith("  inner.a")


def test_chrome_trace_round_trip(tmp_path):
    tracer = SpanTracer()
    with tracer.span("launch", kernel="mm"):
        with tracer.span("execute"):
            pass
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(path))
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert [e["name"] for e in events] == ["launch", "execute"]
    for event in events:
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["ts"] >= 0
    # child interval nests inside the parent interval
    parent, child = events
    assert parent["ts"] <= child["ts"]
    assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-3
    assert parent["args"] == {"kernel": "mm"}


def test_ambient_span_helper_is_noop_when_disabled():
    assert not get_tracer().enabled
    with span("nothing"):
        pass
    assert get_tracer().roots == []
    tracer = SpanTracer()
    with use_tracer(tracer):
        with span("recorded"):
            pass
    assert [r.name for r in tracer.roots] == ["recorded"]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_counter_labels_and_merge():
    reg = MetricsRegistry()
    reg.counter("hits", space="const").inc(3)
    reg.counter("hits", space="tex").inc()
    reg.counter("hits", space="const").inc(2)   # same labels -> same metric
    assert reg.value("hits", space="const") == 5
    assert reg.value("hits", space="tex") == 1
    assert reg.total("hits") == 6

    other = MetricsRegistry()
    other.counter("hits", space="const").inc(10)
    other.gauge("depth").set(7)
    other.histogram("lat").observe(0.5)
    other.histogram("lat").observe(1.5)
    reg.merge(other)
    assert reg.value("hits", space="const") == 15
    assert reg.value("depth") == 7
    lat = reg.value("lat")
    assert lat["count"] == 2 and lat["min"] == 0.5 and lat["max"] == 1.5
    assert lat["mean"] == pytest.approx(1.0)


def test_snapshot_merge_is_picklable_round_trip():
    import pickle
    reg = MetricsRegistry()
    reg.counter("blocks", kernel="mm").inc(42)
    reg.histogram("secs").observe(0.25)
    snap = pickle.loads(pickle.dumps(reg.snapshot()))
    target = MetricsRegistry()
    target.merge_snapshot(snap)
    target.merge_snapshot(snap)     # merging twice doubles counters
    assert target.value("blocks", kernel="mm") == 84
    assert target.value("secs")["count"] == 2


def test_disabled_registry_hands_out_shared_null_metric():
    reg = MetricsRegistry(enabled=False)
    assert reg.counter("x") is NULL_METRIC
    assert reg.histogram("y", k="v") is NULL_METRIC
    reg.counter("x").inc(99)
    assert len(reg) == 0
    assert reg.to_dict() == {}


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(TypeError, match="already registered as counter"):
        reg.gauge("m")


# ----------------------------------------------------------------------
# Cross-process fan-in
# ----------------------------------------------------------------------

def test_process_pool_worker_metrics_fan_in():
    try:
        import multiprocessing as mp
        mp.get_context("fork")
    except ValueError:
        pytest.skip("fork start method unavailable")

    dev = Device()
    width = 16 * 32
    out = dev.alloc(width, np.float32, "out")
    with LaunchProfiler() as prof:
        res = launch(obs_writer, (16,), (32,), (out, width), device=dev,
                     functional=True, trace_blocks=2,
                     executor=ProcessPoolExecutor(workers=2))
    plain = res.num_blocks - res.blocks_traced
    assert plain > 2        # enough untraced work to actually fork
    reg = prof.registry
    assert reg.total("executor.worker_blocks") == plain
    worker_pids = {dict(m.labels)["worker"] for m in reg
                   if m.name == "executor.worker_blocks"}
    # counts merged in from genuinely different processes
    assert worker_pids and str(os.getpid()) not in worker_pids
    np.testing.assert_array_equal(
        out.to_host(), (np.arange(width) * 2 + 1).astype(np.float32))


# ----------------------------------------------------------------------
# Profiler records
# ----------------------------------------------------------------------

def test_profiler_record_matches_launch_accounting():
    app = MatMul()
    with LaunchProfiler() as prof:
        run = app.run({"n": 64, "variant": "tiled", "tile": 16,
                       "trace_blocks": 2}, functional=False)
    assert len(prof.records) == 1
    rec = prof.records[0]
    result = run.launches[0]
    assert rec.kernel == result.kernel.name
    assert rec.grid == "4x4" and rec.block == "16x16"
    assert rec.executor == result.executor != ""
    assert rec.blocks_total == result.num_blocks == 16
    assert rec.blocks_executed == result.blocks_executed
    assert rec.blocks_traced == result.blocks_traced == 2
    # perf-only launches execute just the traced sample, so the
    # dispositions cover the sample rather than the whole grid
    assert sum(rec.dispositions.values()) == rec.blocks_executed == 2
    assert set(rec.stage_seconds) == set(STAGES)
    assert all(v >= 0 for v in rec.stage_seconds.values())
    assert rec.wall_seconds > 0
    assert set(rec.transactions_per_access) == {"A", "B", "C"}
    assert rec.bound != "n/a"       # the timing model named a bottleneck
    assert rec.bottleneck_seconds and rec.gflops > 0
    # the structured record is JSON-clean as-is
    doc = json.loads(json.dumps(rec.to_dict()))
    assert doc["blocks"]["executed"] == rec.blocks_executed
    assert doc["model"]["bound"] == rec.bound


def test_profiler_surfaces_memo_hits():
    dev = Device()
    out = dev.alloc(32 * 64, np.float32, "out")
    plan = LaunchPlan.build(obs_writer, (32,), (64,), (out, 32 * 64),
                            device=dev, functional=False, trace_blocks=8,
                            memoize=True)
    with LaunchProfiler() as prof:
        result = plan.execute("sequential")
    rec = prof.records[0]
    assert result.memo_hits > 0
    assert rec.memo_hits == result.memo_hits
    assert rec.dispositions["memo"] == result.memo_hits
    assert rec.blocks_executed == result.blocks_executed \
        == result.blocks_traced - result.memo_hits
    assert prof.registry.total("collector.memo_hits") == result.memo_hits


def test_launch_result_summary_digest():
    app = MatMul()
    run = app.run({"n": 32, "variant": "naive", "tile": 16,
                   "trace_blocks": 1}, functional=False)
    result = run.launches[0]
    digest = result.summary()
    assert result.kernel.name in digest
    assert "exec=" in digest and "bound=" in digest
    assert digest in repr(result)


def test_disabled_profiler_is_noop():
    assert active_profiler() is None
    assert not get_registry().enabled
    dev = Device()
    out = dev.alloc(8 * 32, np.float32, "out")
    res = launch(obs_writer, (8,), (32,), (out, 8 * 32), device=dev,
                 functional=True, trace_blocks=2)
    # nothing recorded anywhere...
    assert len(get_registry()) == 0
    assert get_tracer().roots == []
    # ...and the untimed collector reports a zero collect stage
    assert res.stage_seconds["collect"] == 0.0
    assert res.stage_seconds["execute"] > 0
    # block accounting still flows through the result
    assert res.executor and sum(res.block_dispositions.values()) == 8


def test_profiler_restores_ambient_state_and_nests():
    before_reg, before_tracer = get_registry(), get_tracer()
    with LaunchProfiler() as outer:
        assert get_registry() is outer.registry
        with LaunchProfiler() as inner:
            assert active_profiler() is inner
            assert get_registry() is inner.registry
        assert active_profiler() is outer
    assert active_profiler() is None
    assert get_registry() is before_reg
    assert get_tracer() is before_tracer


def test_profiler_estimate_off_skips_model():
    app = MatMul()
    with LaunchProfiler(estimate=False) as prof:
        app.run({"n": 32, "variant": "naive", "tile": 16,
                 "trace_blocks": 1}, functional=False)
    rec = prof.records[0]
    assert rec.bound == "n/a" and rec.gflops == 0.0
    assert rec.warp_insts > 0       # trace counters still captured


# ----------------------------------------------------------------------
# Registry-driven pipeline counters
# ----------------------------------------------------------------------

def test_registry_collects_pipeline_counters():
    reg = MetricsRegistry()
    app = MatMul()
    with use_registry(reg):
        run = app.run({"n": 64, "variant": "tiled", "tile": 16,
                       "trace_blocks": 2}, functional=False)
        run.launches[0].estimate()
    assert reg.total("launch.count") == 1
    # perf-only run: only the traced sample is classified/executed
    assert reg.total("launch.blocks") == 2
    assert reg.value("launch.blocks", disposition="trace",
                     kernel="mm_tiled_16x16") == 2
    assert reg.value("launch.seconds",
                     executor="sequential",
                     kernel="mm_tiled_16x16")["count"] == 1
    assert reg.total("timing.bound") == 1
    # constant/texture caches were not touched by this kernel, but the
    # bound tally names the launch's verdict
    bound_labels = [dict(m.labels)["bound"] for m in reg
                    if m.name == "timing.bound"]
    assert len(bound_labels) == 1
