"""Functional and performance-shape tests for the matmul study."""

import numpy as np
import pytest

from repro.apps.matmul import (
    MatMul,
    TILE_SIZES,
    VARIANTS,
    build_kernel,
    _pad_to_multiple,
)
from repro.sim.bounds import analyze_bounds


@pytest.fixture(scope="module")
def app():
    return MatMul()


class TestFunctional:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_variants_match_numpy(self, app, variant):
        wl = {"n": 64, "variant": variant, "tile": 16}
        run = app.run(wl)
        ref = app.reference(wl)["C"]
        np.testing.assert_allclose(run.outputs["C"], ref,
                                   rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize("tile", TILE_SIZES)
    def test_tile_sizes_match_numpy(self, app, tile):
        wl = {"n": 48, "variant": "tiled", "tile": tile}
        run = app.run(wl)
        ref = app.reference(wl)["C"]
        np.testing.assert_allclose(run.outputs["C"], ref,
                                   rtol=1e-4, atol=1e-4)

    def test_padding_for_awkward_sizes(self, app):
        # 50 is not a multiple of 12: exercises the pad-and-crop path
        wl = {"n": 50, "variant": "tiled_unrolled", "tile": 12}
        run = app.run(wl)
        ref = app.reference(wl)["C"]
        assert run.outputs["C"].shape == (50, 50)
        np.testing.assert_allclose(run.outputs["C"], ref,
                                   rtol=1e-4, atol=1e-4)

    def test_verify_helper(self, app):
        app.verify({"n": 32, "variant": "naive", "tile": 16})

    def test_pad_to_multiple(self):
        m = np.ones((5, 5), np.float32)
        p = _pad_to_multiple(m, 4)
        assert p.shape == (8, 8)
        assert p[:5, :5].sum() == 25 and p.sum() == 25
        assert _pad_to_multiple(m, 5) is m


class TestKernelFactory:
    def test_register_counts_follow_paper(self):
        assert build_kernel("naive").regs_per_thread == 10
        assert build_kernel("tiled").regs_per_thread == 10
        assert build_kernel("tiled_unrolled").regs_per_thread == 9
        assert build_kernel("prefetch").regs_per_thread == 11

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown matmul variant"):
            build_kernel("blocked")

    def test_prefetch_requires_unroll(self):
        from repro.apps.matmul import tiled_matmul_kernel
        with pytest.raises(ValueError):
            tiled_matmul_kernel(16, unrolled=False, prefetch=True)


class TestInstructionMix:
    """The paper's PTX observations, reproduced from traces."""

    def test_naive_has_one_fma_in_eight(self, app):
        run = app.run({"n": 256, "variant": "naive", "trace_blocks": 1},
                      functional=False)
        frac = run.launches[0].trace.fma_fraction
        assert frac == pytest.approx(1 / 8, rel=0.05)

    def test_unrolled_has_16_of_59(self, app):
        run = app.run({"n": 256, "variant": "tiled_unrolled",
                       "trace_blocks": 1}, functional=False)
        frac = run.launches[0].trace.fma_fraction
        assert frac == pytest.approx(16 / 59, rel=0.05)

    def test_naive_bandwidth_demand_is_173(self, app):
        # "would require a bandwidth of 173 GB/s" (Section 4.1)
        run = app.run({"n": 256, "variant": "naive", "trace_blocks": 1},
                      functional=False)
        l = run.launches[0]
        ba = analyze_bounds(l.trace, l.spec)
        assert ba.potential_gflops == pytest.approx(43.2, rel=0.05)
        assert ba.bandwidth_demand_gbs == pytest.approx(172.8, rel=0.05)
        assert ba.memory_bound

    def test_tiled_cuts_global_loads_16x(self, app):
        naive = app.run({"n": 256, "variant": "naive", "trace_blocks": 1},
                        functional=False).merged_trace
        tiled = app.run({"n": 256, "variant": "tiled", "trace_blocks": 1},
                        functional=False).merged_trace
        ratio = naive.global_useful_bytes / tiled.global_useful_bytes
        assert ratio == pytest.approx(16, rel=0.1)

    def test_tiled_16_loads_coalesce(self, app):
        run = app.run({"n": 256, "variant": "tiled", "trace_blocks": 1},
                      functional=False)
        assert run.merged_trace.coalesced_fraction > 0.95

    def test_naive_a_stream_does_not_coalesce(self, app):
        run = app.run({"n": 256, "variant": "naive", "trace_blocks": 1},
                      functional=False)
        per = run.merged_trace.per_array
        assert per["A"].transactions_per_access == pytest.approx(16.0)
        assert per["B"].transactions_per_access == pytest.approx(1.0)


class TestPerformanceShape:
    """Section 4's GFLOPS ordering at a reduced problem size (1024)."""

    @pytest.fixture(scope="class")
    def gflops(self, app):
        out = {}
        for variant in VARIANTS:
            run = app.run({"n": 1024, "variant": variant, "tile": 16,
                           "trace_blocks": 2}, functional=False)
            out[variant] = run.launches[0].estimate()
        return out

    def test_tiling_wins_by_about_4x(self, gflops):
        ratio = gflops["tiled"].gflops / gflops["naive"].gflops
        assert 3.0 < ratio < 6.0     # paper: 4.5X

    def test_unrolling_roughly_doubles_tiled(self, gflops):
        ratio = gflops["tiled_unrolled"].gflops / gflops["tiled"].gflops
        assert 1.6 < ratio < 2.4     # paper: 91.14 / 46.49 = 1.96

    def test_prefetch_is_slightly_slower_than_unrolled(self, gflops):
        # Section 4.4: 87.10 vs 91.14 — the optimization backfires
        assert gflops["prefetch"].gflops < gflops["tiled_unrolled"].gflops
        ratio = gflops["prefetch"].gflops / gflops["tiled_unrolled"].gflops
        assert ratio > 0.90          # ... but only by a few percent

    def test_naive_is_memory_bound(self, gflops):
        assert gflops["naive"].bound == "memory bandwidth"

    def test_optimized_versions_are_issue_bound(self, gflops):
        assert gflops["tiled_unrolled"].bound == "instruction issue"

    def test_prefetch_costs_a_block_of_occupancy(self, gflops):
        assert gflops["tiled_unrolled"].occupancy.blocks_per_sm == 3
        assert gflops["prefetch"].occupancy.blocks_per_sm == 2

    def test_figure4_configs_cover_all_bars(self, app):
        labels = [c.label for c in app.figure4_configs()]
        assert labels[0] == "not tiled"
        assert len(labels) == 1 + 2 * len(TILE_SIZES)
        assert "16x16 unrolled" in labels
