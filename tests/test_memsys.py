"""Tests for the G80 coalescing, bank-conflict and cache models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import DEFAULT_DEVICE
from repro.sim.memsys import (
    DirectMappedCache,
    bank_conflict_degree,
    block_bank_conflicts,
    coalesce_block_access,
    coalesce_half_warp,
)

HW = DEFAULT_DEVICE.half_warp
ALL = np.ones(HW, dtype=bool)


def addresses(base, stride, itemsize=4, n=HW):
    return base + np.arange(n, dtype=np.int64) * stride * itemsize


class TestCoalesceHalfWarp:
    def test_contiguous_aligned_is_one_transaction(self):
        res = coalesce_half_warp(addresses(0, 1), ALL, 4)
        assert res.coalesced
        assert res.transactions == 1
        assert res.bus_bytes == 64
        assert res.useful_bytes == 64
        assert res.efficiency == 1.0

    def test_contiguous_aligned_any_segment(self):
        res = coalesce_half_warp(addresses(64 * 123, 1), ALL, 4)
        assert res.coalesced

    def test_misaligned_contiguous_serializes(self):
        # CUDA 1.x: thread k must hit word k of an *aligned* segment
        res = coalesce_half_warp(addresses(4, 1), ALL, 4)
        assert not res.coalesced
        assert res.transactions == HW

    def test_strided_serializes(self):
        res = coalesce_half_warp(addresses(0, 2), ALL, 4)
        assert not res.coalesced
        assert res.transactions == HW
        assert res.useful_bytes == 64
        assert res.bus_bytes > res.useful_bytes

    def test_permuted_serializes(self):
        addr = addresses(0, 1)[::-1].copy()
        res = coalesce_half_warp(addr, ALL, 4)
        assert not res.coalesced

    def test_broadcast_same_address_merges_bus_traffic(self):
        # the paper's footnote 4: the memory system may combine
        # simultaneous loads of the same value into one request
        addr = np.zeros(HW, dtype=np.int64)
        res = coalesce_half_warp(addr, ALL, 4)
        assert not res.coalesced
        assert res.transactions == HW            # serialized issue
        assert res.bus_bytes == 32               # but one 32 B segment
        assert res.useful_bytes == 64

    def test_partial_warp_in_order_coalesces(self):
        active = ALL.copy()
        active[5] = False
        res = coalesce_half_warp(addresses(0, 1), active, 4)
        assert res.coalesced
        assert res.useful_bytes == (HW - 1) * 4

    def test_inactive_half_warp_is_free(self):
        res = coalesce_half_warp(addresses(0, 1), np.zeros(HW, bool), 4)
        assert res.transactions == 0
        assert res.bus_bytes == 0

    def test_eight_byte_items(self):
        res = coalesce_half_warp(addresses(0, 1, itemsize=8), ALL, 8)
        assert res.coalesced
        assert res.bus_bytes == 128

    def test_wrong_lane_count_rejected(self):
        with pytest.raises(ValueError):
            coalesce_half_warp(np.zeros(8, np.int64), np.ones(8, bool), 4)


class TestCoalesceBlockAccess:
    def test_block_of_contiguous_half_warps(self):
        n = 256
        addr = np.arange(n, dtype=np.int64) * 4
        wa, txn, bus, useful, coal = coalesce_block_access(
            addr, np.ones(n, bool), 4)
        assert wa == n // HW
        assert txn == n // HW
        assert coal == n // HW
        assert bus == useful == n * 4

    def test_row_broadcast_pattern_matches_naive_matmul(self):
        # 16x16 block reading A[row][k]: every half-warp hits one address
        n = 256
        row = np.repeat(np.arange(16), 16)
        addr = (row * 4096 * 4).astype(np.int64)
        wa, txn, bus, useful, coal = coalesce_block_access(
            addr, np.ones(n, bool), 4)
        assert wa == 16
        assert coal == 0
        assert txn == 16 * HW        # fully serialized
        assert bus == 16 * 32        # one 32 B segment per half-warp

    def test_partially_active_tail_block(self):
        n = 40  # 2.5 half-warps
        addr = np.arange(n, dtype=np.int64) * 4
        active = np.ones(n, bool)
        wa, txn, bus, useful, coal = coalesce_block_access(addr, active, 4)
        assert wa == 3
        assert useful == n * 4

    def test_fast_and_slow_paths_agree(self):
        rng = np.random.default_rng(7)
        n = 128
        addr = rng.integers(0, 4096, n).astype(np.int64) * 4
        active = rng.random(n) > 0.3
        wa, txn, bus, useful, coal = coalesce_block_access(addr, active, 4)
        # recompute per half-warp with the scalar routine
        wa2 = txn2 = bus2 = useful2 = coal2 = 0
        for s in range(0, n, HW):
            a = active[s:s + HW]
            if not a.any():
                continue
            r = coalesce_half_warp(addr[s:s + HW], a, 4)
            wa2 += 1
            txn2 += r.transactions
            bus2 += r.bus_bytes
            useful2 += r.useful_bytes
            coal2 += int(r.coalesced)
        assert (wa, txn, bus, useful, coal) == (wa2, txn2, bus2, useful2, coal2)


@settings(max_examples=60, deadline=None)
@given(
    base_seg=st.integers(0, 1000),
    data=st.data(),
)
def test_property_bus_bytes_at_least_useful(base_seg, data):
    """Bus traffic can never be less than the bytes actually requested."""
    perm = data.draw(st.permutations(list(range(HW))))
    stride = data.draw(st.integers(1, 8))
    addr = (base_seg * 64 + np.array(perm, dtype=np.int64) * stride * 4)
    res = coalesce_half_warp(addr, ALL, 4)
    assert res.bus_bytes >= res.useful_bytes or res.transactions == 0


@settings(max_examples=60, deadline=None)
@given(offsets=st.lists(st.integers(0, 10 ** 6), min_size=HW, max_size=HW))
def test_property_uncoalesced_transactions_equal_active_threads(offsets):
    addr = np.array(offsets, dtype=np.int64) * 4
    res = coalesce_half_warp(addr, ALL, 4)
    if not res.coalesced:
        assert res.transactions == HW
    else:
        assert res.transactions == 1


@settings(max_examples=40, deadline=None)
@given(seg=st.integers(0, 10 ** 5))
def test_property_in_order_aligned_always_coalesces(seg):
    addr = seg * 64 + np.arange(HW, dtype=np.int64) * 4
    res = coalesce_half_warp(addr, ALL, 4)
    assert res.coalesced and res.transactions == 1


class TestBankConflicts:
    def test_stride_one_conflict_free(self):
        words = np.arange(HW, dtype=np.int64)
        assert bank_conflict_degree(words, ALL) == 1

    def test_stride_two_degree_two(self):
        words = np.arange(HW, dtype=np.int64) * 2
        assert bank_conflict_degree(words, ALL) == 2

    def test_stride_sixteen_fully_serialized(self):
        words = np.arange(HW, dtype=np.int64) * 16
        assert bank_conflict_degree(words, ALL) == 16

    def test_broadcast_is_free(self):
        words = np.full(HW, 7, dtype=np.int64)
        assert bank_conflict_degree(words, ALL) == 1

    def test_odd_stride_conflict_free(self):
        # odd strides permute the 16 banks -> conflict-free
        words = np.arange(HW, dtype=np.int64) * 3
        assert bank_conflict_degree(words, ALL) == 1

    def test_inactive_access(self):
        assert bank_conflict_degree(np.zeros(HW, np.int64),
                                    np.zeros(HW, bool)) == 0

    def test_block_level_totals(self):
        words = np.concatenate([
            np.arange(HW, dtype=np.int64),          # degree 1
            np.arange(HW, dtype=np.int64) * 2,      # degree 2
        ])
        accesses, total = block_bank_conflicts(words, np.ones(2 * HW, bool))
        assert accesses == 2
        assert total == 3

    def test_block_fast_slow_agree(self):
        rng = np.random.default_rng(3)
        words = rng.integers(0, 256, 4 * HW).astype(np.int64)
        active = np.ones(4 * HW, bool)
        accesses, total = block_bank_conflicts(words, active)
        expect = sum(bank_conflict_degree(words[s:s + HW], active[s:s + HW])
                     for s in range(0, 4 * HW, HW))
        assert accesses == 4 and total == expect


@settings(max_examples=60, deadline=None)
@given(words=st.lists(st.integers(0, 4095), min_size=HW, max_size=HW))
def test_property_conflict_degree_bounds(words):
    degree = bank_conflict_degree(np.array(words, dtype=np.int64), ALL)
    assert 1 <= degree <= HW


class TestDirectMappedCache:
    def test_first_access_misses_then_hits(self):
        c = DirectMappedCache(1024)
        addr = np.arange(8, dtype=np.int64) * 4
        h, m = c.access(addr, np.ones(8, bool))
        assert h == 0 and m == 1          # one 32 B line covers 8 words
        h, m = c.access(addr, np.ones(8, bool))
        assert h == 1 and m == 0

    def test_capacity_eviction(self):
        c = DirectMappedCache(64, line_bytes=32)  # 2 lines
        a = np.array([0], dtype=np.int64)
        b = np.array([64], dtype=np.int64)        # maps to same slot
        on = np.ones(1, bool)
        c.access(a, on)
        c.access(b, on)
        h, m = c.access(a, on)
        assert m == 1                              # evicted

    def test_duplicate_lines_counted_once(self):
        c = DirectMappedCache(1024)
        addr = np.zeros(16, dtype=np.int64)
        h, m = c.access(addr, np.ones(16, bool))
        assert h + m == 1

    def test_hit_rate_and_reset(self):
        c = DirectMappedCache(1024)
        addr = np.array([0], dtype=np.int64)
        on = np.ones(1, bool)
        c.access(addr, on)
        c.access(addr, on)
        assert c.hit_rate == pytest.approx(0.5)
        c.reset()
        assert c.hits == 0 and c.misses == 0 and c.hit_rate == 1.0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            DirectMappedCache(100, line_bytes=32)
