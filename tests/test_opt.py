"""Tests for the optimization-pass descriptors, layout helpers and the
autotuner (the Section 6 future-work tool)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.opt import (
    OPTIMIZATION_PASSES,
    VariantDescriptor,
    aos_index,
    estimate_unroll_savings,
    pad_stride,
    soa_index,
)
from repro.sim.autotuner import MatmulAutotuner, Point


class TestPasses:
    def base(self):
        return VariantDescriptor("matmul_tiled", base_regs=10,
                                 threads_per_block=256,
                                 base_smem_bytes=2048)

    def test_catalogue_names(self):
        assert {"tiling", "unrolling", "prefetching", "register_tiling"} \
            <= set(OPTIMIZATION_PASSES)

    def test_unrolling_frees_a_register(self):
        v = self.base().apply_named("unrolling")
        assert v.regs_per_thread == 9
        assert v.name == "matmul_tiled+unrolling"

    def test_prefetch_costs_two_registers_and_a_block(self):
        """The Section 4.4 cliff, predicted from the descriptors."""
        base = self.base().apply_named("unrolling")
        pre = base.apply_named("prefetching")
        assert pre.regs_per_thread == 11
        assert base.occupancy().blocks_per_sm == 3
        assert pre.occupancy().blocks_per_sm == 2
        assert pre.occupancy_cost() == pytest.approx(1 / 3)

    def test_pass_chaining_order_independent_for_resources(self):
        a = self.base().apply_named("unrolling").apply_named("prefetching")
        b = self.base().apply_named("prefetching").apply_named("unrolling")
        assert a.regs_per_thread == b.regs_per_thread
        assert a.smem_bytes == b.smem_bytes

    def test_occupancy_cost_zero_when_no_cliff(self):
        v = self.base().apply_named("unrolling")   # 9 regs: still 3 blocks
        assert v.occupancy_cost() == 0.0

    def test_regs_never_below_one(self):
        v = VariantDescriptor("tiny", base_regs=1, threads_per_block=32)
        v = v.apply_named("unrolling")
        assert v.regs_per_thread == 1


class TestUnrollArithmetic:
    def test_full_unroll_of_the_paper_loop(self):
        # tiled matmul: 8 insts/iter of which ~4 are bookkeeping+addr
        saving = estimate_unroll_savings(8.0, 16, bookkeeping_per_iter=4.0)
        assert saving == pytest.approx(0.5)

    def test_partial_factors_monotone(self):
        savings = [estimate_unroll_savings(8.0, 16, 4.0, factor=f)
                   for f in (2, 4, 8)]
        assert savings == sorted(savings)
        assert savings[-1] < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_unroll_savings(0.0, 16)
        with pytest.raises(ValueError):
            estimate_unroll_savings(3.0, 16, bookkeeping_per_iter=5.0)


class TestLayoutHelpers:
    def test_aos_vs_soa_cover_same_cells(self):
        el = np.arange(8)
        a = aos_index(el, 2, ncomponents=9)
        s = soa_index(el, 2, nelements=8)
        assert a.tolist() == (el * 9 + 2).tolist()
        assert s.tolist() == (2 * 8 + el).tolist()

    def test_soa_is_unit_stride(self):
        el = np.arange(16)
        idx = soa_index(el, 5, nelements=1024)
        assert (np.diff(idx) == 1).all()

    def test_aos_is_strided(self):
        el = np.arange(16)
        idx = aos_index(el, 5, ncomponents=9)
        assert (np.diff(idx) == 9).all()

    def test_pad_stride_classic_plus_one(self):
        assert pad_stride(16) == 17
        assert pad_stride(32) == 33

    def test_pad_stride_odd_widths_unchanged(self):
        assert pad_stride(33) == 33
        assert pad_stride(5) == 5

    def test_pad_stride_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            pad_stride(0)

    @settings(max_examples=50, deadline=None)
    @given(width=st.integers(1, 512))
    def test_pad_stride_property(self, width):
        stride = pad_stride(width)
        assert stride >= width
        assert np.gcd(stride, 16) == 1
        # column accesses at the padded stride hit 16 distinct banks
        banks = (np.arange(16) * stride) % 16
        assert len(set(banks.tolist())) == 16


class TestAutotuner:
    @pytest.fixture(scope="class")
    def tuner(self):
        return MatmulAutotuner(n=512, trace_blocks=1)

    def test_space_is_the_figure4_space(self, tuner):
        pts = tuner.space()
        assert len(pts) == 1 + 4 * 3
        assert all(p.valid() for p in pts)

    def test_invalid_points_rejected(self):
        assert not Point(0, True, False).valid()     # untiled+unrolled
        assert not Point(16, False, True).valid()    # prefetch w/o unroll

    def test_global_optimum_is_16x16_unrolled(self, tuner):
        res = tuner.exhaustive()
        assert res.best == Point(16, True, False)
        assert res.best_gflops > 80

    def test_prefetch_is_not_the_optimum(self, tuner):
        res = tuner.exhaustive()
        pre = Point(16, True, True)
        assert res.evaluations[pre] < res.best_gflops

    def test_naive_is_a_local_maximum_trap(self, tuner):
        """Section 6: greedy strategies get stuck in local maxima."""
        end, gflops, path = tuner.hill_climb(Point(0, False, False))
        assert end == Point(0, False, False)
        res = tuner.exhaustive()
        assert gflops < res.best_gflops / 2

    def test_hill_climb_from_8x8_reaches_global(self, tuner):
        end, gflops, path = tuner.hill_climb(Point(8, False, False))
        res = tuner.exhaustive()
        assert end == res.best
        assert len(path) >= 2

    def test_evaluations_memoized(self, tuner):
        p = Point(16, True, False)
        a = tuner.evaluate(p)
        b = tuner.evaluate(p)
        assert a == b
        assert p in tuner._cache
