"""Grid compiler: lowering rules, program cache and fallback plumbing.

The AOT compiler in :mod:`repro.compile` lowers DSL kernels into
whole-grid NumPy programs.  These tests pin its contract surface: what
compiles (the matmul ladder), what is refused and why (order-sensitive
kernels, sync under divergence, nested scopes), that refusals are
cached and surfaced (lint INFO finding, obs fallback counter) and that
the census trace source synthesizes the same profiler fields a dynamic
trace would.
"""

import numpy as np
import pytest

from repro.apps.matmul import build_kernel
from repro.compile import (
    CompileError,
    LaneCount,
    NP_SHIM,
    clear_program_cache,
    compile_kernel,
    compile_status,
    get_program,
    prelude_for,
)
from repro.cuda import (
    CompiledExecutor,
    Device,
    LaunchPlan,
    SequentialExecutor,
    kernel,
    launch,
)
from repro.obs.profiler import LaunchProfiler, LaunchRecord


# ----------------------------------------------------------------------
# What compiles
# ----------------------------------------------------------------------

@pytest.mark.parametrize("variant", ["naive", "tiled", "tiled_unrolled",
                                     "prefetch"])
def test_matmul_ladder_compiles(variant):
    kern = build_kernel(variant, 16)
    ok, reason = compile_status(kern)
    assert ok, reason
    program = get_program(kern)
    assert program.kernel_name == kern.name
    assert "__rt" in program.source
    if variant != "naive":
        # every tiled variant synchronizes around the shared-memory
        # staging loop; the lowerer must have found those points
        assert program.sync_points > 0


def test_program_cache_returns_same_object():
    kern = build_kernel("tiled", 16)
    assert get_program(kern) is get_program(kern)
    clear_program_cache()
    again = get_program(kern)
    assert again.source == compile_kernel(kern).source


# ----------------------------------------------------------------------
# What is refused, and how the refusal is surfaced
# ----------------------------------------------------------------------

@kernel("order_sensitive", regs_per_thread=4, batchable=False)
def order_sensitive(ctx, out):
    ctx.st_global(out, ctx.global_tid() * 0, ctx.tid.astype(np.float32))


@kernel("sync_in_branch", regs_per_thread=4)
def sync_in_branch(ctx, out):
    i = ctx.global_tid()
    with ctx.masked(i < 8):
        ctx.sync()
    ctx.st_global(out, i, i.astype(np.float32))


def test_non_batchable_is_refused_at_the_gate():
    ok, reason = compile_status(order_sensitive)
    assert not ok
    assert "batchable=False" in reason


def test_sync_inside_divergence_is_refused():
    with pytest.raises(CompileError, match="divergent"):
        compile_kernel(sync_in_branch)
    ok, reason = compile_status(sync_in_branch)
    assert not ok and "divergent" in reason


def test_refusal_is_negatively_cached():
    clear_program_cache()
    with pytest.raises(CompileError) as first:
        get_program(sync_in_branch)
    with pytest.raises(CompileError) as second:
        get_program(sync_in_branch)
    assert first.value is second.value     # cached, not re-lowered


def test_lint_reports_non_compilable_kernels():
    from repro.analysis.rules import rule_compilability
    findings = rule_compilability(sync_in_branch, "sync_in_branch")
    assert len(findings) == 1
    assert findings[0].rule == "compile"
    assert "falls back" in findings[0].message
    assert rule_compilability(build_kernel("tiled", 16), "matmul") == []


def test_fallback_increments_obs_counter():
    # interpreter-legal but compiler-refused: the generator expression
    # is a nested scope the lowerer will not touch
    @kernel("genexp_probe", regs_per_thread=4)
    def genexp_probe(ctx, out):
        i = ctx.global_tid()
        total = sum(x for x in (1.0, 2.0, 3.0))
        ctx.st_global(out, i, (i * 0.0 + total).astype(np.float32))

    ok, reason = compile_status(genexp_probe)
    assert not ok and "generator" in reason

    dev = Device()
    out = dev.alloc(8 * 32, np.float32, "out")
    with LaunchProfiler(estimate=False) as prof:
        launch(genexp_probe, (8,), (32,), (out,), device=dev,
               executor=CompiledExecutor())
    counters = prof.registry.to_dict().get("executor.compile_fallbacks", {})
    assert any(v == 1 for v in counters.values()), counters
    # and the fallback still computed the right bits
    dev2 = Device()
    out2 = dev2.alloc(8 * 32, np.float32, "out")
    launch(genexp_probe, (8,), (32,), (out2,), device=dev2,
           executor=SequentialExecutor())
    np.testing.assert_array_equal(out.to_host(), out2.to_host())


# ----------------------------------------------------------------------
# Runtime pieces
# ----------------------------------------------------------------------

def test_lane_allocations_become_broadcast_seeds():
    lanes = LaneCount(256)
    assert isinstance(lanes, int) and lanes == 256
    for fn in (NP_SHIM.zeros, NP_SHIM.ones, NP_SHIM.empty):
        seed = fn(lanes, dtype=np.float32)
        assert seed.shape == (1, 1, 1, 1)
        assert seed.dtype == np.float32
    assert np.all(NP_SHIM.empty(lanes) == 0.0)      # determinism
    full = NP_SHIM.full(lanes, np.float32(3.5))
    assert full.shape == (1, 1, 1, 1) and full[0, 0, 0, 0] == 3.5
    # ordinary shapes pass through untouched
    assert NP_SHIM.zeros(7).shape == (7,)
    assert NP_SHIM.sqrt(np.float32(4.0)) == 2.0


def test_prelude_cache_is_per_geometry():
    dev = Device()
    out = dev.alloc(4 * 8, np.float32, "out")
    plan = LaunchPlan.build(sync_in_branch, (4,), (8,), (out,), device=dev)
    pre = prelude_for(plan.grid, plan.block)
    assert pre is prelude_for(plan.grid, plan.block)


def test_arg_signature_is_hashable_and_stable():
    dev = Device()
    out = dev.alloc(64, np.float32, "out")
    plan = LaunchPlan.build(sync_in_branch, (2,), (32,), (out,), device=dev)
    sig = plan.arg_signature()
    assert hash(sig) == hash(plan.arg_signature())
    other = LaunchPlan.build(sync_in_branch, (2,), (32,), (out,), device=dev)
    assert other.arg_signature() == sig


# ----------------------------------------------------------------------
# Census trace synthesis
# ----------------------------------------------------------------------

def test_census_trace_source_matches_bits_and_counts():
    def one(executor):
        dev = Device()
        kern = build_kernel("tiled", 8)
        n = 32
        from repro.apps.matmul import MatMul
        a, b = MatMul._inputs(n)
        d_a = dev.to_device(a, "A")
        d_b = dev.to_device(b, "B")
        d_c = dev.alloc((n, n), np.float32, "C")
        res = launch(kern, (n // 8, n // 8), (8, 8), (d_a, d_b, d_c, n),
                     device=dev, executor=executor, trace_blocks=4)
        return res, d_c.to_host().copy()

    r_seq, c_seq = one(SequentialExecutor())
    r_cen, c_cen = one(CompiledExecutor(trace_source="census"))
    np.testing.assert_array_equal(c_seq, c_cen)
    assert r_cen.blocks_traced == r_seq.blocks_traced
    # census statistics are synthesized, not measured — they must be
    # populated but need not equal the dynamic trace exactly
    assert r_cen.trace.total_warp_insts > 0


def test_launch_record_from_census():
    from repro.analysis.census import census_target
    from repro.analysis.targets import LintArray, LintTarget

    kern = build_kernel("tiled", 8)
    args = (LintArray("A", "global", 32 * 32, "float32"),
            LintArray("B", "global", 32 * 32, "float32"),
            LintArray("C", "global", 32 * 32, "float32"), 32)
    target = LintTarget(kernel=kern, grid=(4, 4), block=(8, 8), args=args)
    dev = Device()
    plan = LaunchPlan.build(kern, (4, 4), (8, 8),
                            (dev.alloc((32, 32), np.float32, "A"),
                             dev.alloc((32, 32), np.float32, "B"),
                             dev.alloc((32, 32), np.float32, "C"), 32),
                            device=dev)
    census = census_target(target, plan.spec)
    rec = LaunchRecord.from_census(census)
    assert rec.executor == "census"
    assert rec.blocks_executed == 0
    assert rec.blocks_traced == census.blocks_sampled
    assert rec.warp_insts > 0


# ----------------------------------------------------------------------
# Bench plumbing
# ----------------------------------------------------------------------

def test_measure_overhead_never_reports_negative():
    from repro.bench.profile_report import measure_overhead
    report = measure_overhead(n=64, repeats=5)
    assert report["repeats"] >= 5
    assert report["overhead_pct"] >= 0.0
    assert {"disabled_seconds", "profiled_seconds",
            "overhead_pct_raw"} <= set(report)
