"""Tests for the occupancy calculator (the paper's scheduling limits)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import DEFAULT_DEVICE, DeviceSpec
from repro.sim.occupancy import compute_occupancy


class TestPaperAnecdotes:
    def test_matmul_256_threads_10_regs_gives_3_blocks(self):
        # Section 4.1: "we group them as three thread blocks of 256
        # threads each" with 10 registers per thread
        occ = compute_occupancy(256, regs_per_thread=10, smem_per_block=2048)
        assert occ.blocks_per_sm == 3
        assert occ.active_threads_per_sm == 768
        assert occ.occupancy == 1.0
        assert occ.limiter == "threads"

    def test_eleven_registers_drops_to_two_blocks(self):
        # Section 4.2: 3 * 256 * 11 = 8448 > 8192 registers
        occ = compute_occupancy(256, regs_per_thread=11, smem_per_block=2048)
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "registers"
        assert occ.active_threads_per_sm == 512

    def test_4x4_tiles_hit_block_limit(self):
        # Section 4.2: 4x4 tiles = 16 threads, 8-block limit -> 128 threads
        occ = compute_occupancy(16, regs_per_thread=10, smem_per_block=128)
        assert occ.blocks_per_sm == 8
        assert occ.limiter == "blocks"
        assert occ.active_threads_per_sm == 128
        assert occ.occupancy == pytest.approx(128 / 768)

    def test_8x8_tiles_cannot_reach_12_blocks(self):
        # Section 4.2: 8x8 tiles would need 12 blocks to fill the SM,
        # "50% more than the supported limit"
        occ = compute_occupancy(64, regs_per_thread=10, smem_per_block=512)
        assert occ.blocks_per_sm == 8
        assert occ.active_threads_per_sm == 512  # not 768

    def test_12x12_tiles_non_integral_warps(self):
        occ = compute_occupancy(144, regs_per_thread=10, smem_per_block=1152)
        assert occ.blocks_per_sm == 5
        assert occ.warps_per_block == 5          # 144 threads -> 4.5 -> 5


class TestLimits:
    def test_shared_memory_limit(self):
        occ = compute_occupancy(128, regs_per_thread=8,
                                smem_per_block=8 * 1024)
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "shared"

    def test_oversized_block_cannot_launch(self):
        occ = compute_occupancy(1024, regs_per_thread=8)
        assert occ.blocks_per_sm == 0
        assert occ.limiter == "launch"

    def test_register_hog_cannot_launch(self):
        occ = compute_occupancy(512, regs_per_thread=20)
        assert occ.blocks_per_sm == 0
        assert occ.limiter == "launch"

    def test_zero_smem_never_limits(self):
        occ = compute_occupancy(256, regs_per_thread=10, smem_per_block=0)
        assert occ.blocks_per_sm == 3

    def test_max_simultaneous_threads_device_wide(self):
        occ = compute_occupancy(256, regs_per_thread=10)
        assert occ.max_simultaneous_threads == 768 * 16

    def test_rejects_nonpositive_threads(self):
        with pytest.raises(ValueError):
            compute_occupancy(0, 10)

    def test_describe_keys(self):
        d = compute_occupancy(256, 10).describe()
        assert d["blocks/SM"] == 3
        assert d["limited by"] == "threads"

    def test_custom_spec(self):
        big = DeviceSpec(registers_per_sm=16384)
        occ = compute_occupancy(256, regs_per_thread=11, smem_per_block=0,
                                spec=big)
        assert occ.blocks_per_sm == 3  # registers no longer bind


@settings(max_examples=80, deadline=None)
@given(
    threads=st.integers(1, 512),
    regs=st.integers(1, 128),
    smem=st.integers(0, 16 * 1024),
)
def test_property_occupancy_respects_all_limits(threads, regs, smem):
    occ = compute_occupancy(threads, regs, smem)
    b = occ.blocks_per_sm
    spec = DEFAULT_DEVICE
    assert 0 <= b <= spec.max_blocks_per_sm
    if b:
        assert b * threads <= spec.max_threads_per_sm
        assert b * threads * regs <= spec.registers_per_sm
        if smem:
            assert b * smem <= spec.shared_mem_per_sm
        # maximality: one more block must violate some limit
        b1 = b + 1
        assert (b1 > spec.max_blocks_per_sm
                or b1 * threads > spec.max_threads_per_sm
                or b1 * threads * regs > spec.registers_per_sm
                or (smem and b1 * smem > spec.shared_mem_per_sm))


@settings(max_examples=50, deadline=None)
@given(threads=st.integers(1, 512), regs=st.integers(1, 32))
def test_property_more_registers_never_increase_occupancy(threads, regs):
    a = compute_occupancy(threads, regs)
    b = compute_occupancy(threads, regs + 1)
    assert b.blocks_per_sm <= a.blocks_per_sm
