"""Executor backends: bit-identity, memoization and the plan facade.

The pipeline's core contract is that every backend is *observationally
identical* to the reference ``SequentialExecutor``: same device-array
bits, same scaled trace statistics, same block accounting.  The
property tests here drive random grid/block shapes, every registered
application and random matmul tile sizes through the backends
(sequential, batched, AOT-compiled) and compare everything exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.lbm import Lbm
from repro.apps.matmul import MatMul
from repro.apps.registry import ALL_APPS
from repro.apps.saxpy import Saxpy
from repro.cuda import (
    BatchedExecutor,
    CompiledExecutor,
    CudaModelError,
    Device,
    LaunchPlan,
    ProcessPoolExecutor,
    SequentialExecutor,
    choose_executor,
    kernel,
    launch,
    resolve_executor,
)


@kernel("coords_writer", regs_per_thread=6)
def coords_writer(ctx, out, width):
    """Writes a value derived from every coordinate a kernel can see —
    any widening mistake in the batched context shows up as a bit
    difference somewhere in ``out``."""
    i = ctx.global_tid()
    v = (ctx.bx * 1.0 + ctx.by * 0.5 + ctx.tx * 0.25 + ctx.ty * 0.125
         + ctx.tid * 0.0625)
    with ctx.masked(i < width):
        ctx.st_global(out, i, ctx.fma(v.astype(np.float32),
                                      np.float32(2.0),
                                      np.float32(1.0)))


@kernel("smem_reverser", regs_per_thread=8)
def smem_reverser(ctx, out):
    """Round-trips values through shared memory with a per-block
    permutation — exercises the batched per-block smem slots."""
    tpb = ctx.threads_per_block
    sh = ctx.shared_alloc(tpb, np.float32, "stage")
    ctx.st_shared(sh, ctx.tid, (ctx.block_linear + ctx.tid).astype(np.float32))
    ctx.sync()
    rev = tpb - 1 - ctx.tid
    ctx.st_global(out, ctx.global_tid(), ctx.ld_shared(sh, rev))


def _run_pair(kern, grid, block, make_args, executors=None, **kwargs):
    """Run the same launch under several backends; return all sides."""
    sides = []
    for ex in executors or (SequentialExecutor(), BatchedExecutor(),
                            CompiledExecutor()):
        dev = Device()
        args, arrays = make_args(dev)
        res = launch(kern, grid, block, args, device=dev, executor=ex,
                     **kwargs)
        sides.append((res, [a.to_host().copy() for a in arrays]))
    return sides


def _assert_identical(sides):
    r0, outs0 = sides[0]
    for r1, outs1 in sides[1:]:
        for a0, a1 in zip(outs0, outs1):
            np.testing.assert_array_equal(a0, a1)
        assert r0.trace.summary() == r1.trace.summary()
        assert r0.blocks_executed == r1.blocks_executed
        assert r0.blocks_traced == r1.blocks_traced
        assert r0.smem_bytes_per_block == r1.smem_bytes_per_block


# ----------------------------------------------------------------------
# Random-shape bit-identity
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(gx=st.integers(1, 8), gy=st.integers(1, 6),
       bx=st.integers(1, 32), by=st.integers(1, 4))
def test_batched_identical_across_shapes(gx, gy, bx, by):
    width = gx * gy * bx * by  # full coverage, no tail

    def make(dev):
        out = dev.alloc(width, np.float32, "out")
        return (out, width), [out]

    _assert_identical(_run_pair(coords_writer, (gx, gy), (bx, by), make))


@settings(max_examples=15, deadline=None)
@given(nblocks=st.integers(1, 24), tpb=st.sampled_from([8, 32, 64]))
def test_batched_shared_memory_identical(nblocks, tpb):
    def make(dev):
        out = dev.alloc(nblocks * tpb, np.float32, "out")
        return (out,), [out]

    _assert_identical(_run_pair(smem_reverser, (nblocks,), (tpb,), make))


# ----------------------------------------------------------------------
# Application-level bit-identity (matmul / SAXPY / LBM)
# ----------------------------------------------------------------------

def _app_outputs(app, workload, executor):
    app.executor = executor
    run = app.run(workload, functional=True)
    return run


def _assert_app_identical(app_cls, workload,
                          executors=("sequential", "batched", "compiled")):
    runs = [_app_outputs(app_cls(), dict(workload), ex)
            for ex in executors]
    for other in runs[1:]:
        assert set(runs[0].outputs) == set(other.outputs)
        for key in runs[0].outputs:
            np.testing.assert_array_equal(runs[0].outputs[key],
                                          other.outputs[key])
        assert runs[0].merged_trace.summary() == \
            other.merged_trace.summary()


@settings(max_examples=10, deadline=None)
@given(k=st.integers(2, 5),
       tile=st.sampled_from([4, 8, 16]),
       variant=st.sampled_from(["naive", "tiled", "tiled_unrolled",
                                "prefetch"]))
def test_matmul_identical_across_backends(k, tile, variant):
    _assert_app_identical(
        MatMul, {"n": tile * k, "variant": variant, "tile": tile})


@settings(max_examples=8, deadline=None)
@given(n=st.integers(64, 2048), iters=st.integers(1, 3))
def test_saxpy_identical_under_batched(n, iters):
    _assert_app_identical(Saxpy, {"n": n, "a": 2.5, "iterations": iters})


@settings(max_examples=6, deadline=None)
@given(nx=st.sampled_from([32, 64]), ny=st.sampled_from([8, 16]),
       layout=st.sampled_from(["aos", "soa", "texture"]))
def test_lbm_identical_under_batched(nx, ny, layout):
    _assert_app_identical(
        Lbm, {"nx": nx, "ny": ny, "steps": 2, "total_steps": 2,
              "layout": layout})


@pytest.mark.parametrize("name", list(ALL_APPS))
def test_every_app_identical_under_compiled(name):
    """The full-suite bit-identity sweep: every registered application's
    test workload must produce byte-identical outputs under the
    compiled executor (whether the kernel compiles or falls back to
    the batched interpreter)."""
    app = ALL_APPS[name]()
    workload = app.default_workload("test")
    _assert_app_identical(ALL_APPS[name], workload,
                          executors=("sequential", "compiled"))


@pytest.mark.parametrize("name", list(ALL_APPS))
def test_every_app_identical_under_module(name):
    """The same sweep through the whole-application AOT module path
    (:meth:`Application.run_module`): fused execution, trace replay and
    per-launch fallback must all stay observationally identical to the
    sequential reference — apps without a declared schedule fall back
    to the ordinary functional run."""
    workload = ALL_APPS[name]().default_workload("test")
    ref = _app_outputs(ALL_APPS[name](), dict(workload), "sequential")
    mod = ALL_APPS[name]().run_module(dict(workload))
    assert set(ref.outputs) == set(mod.outputs)
    for key in ref.outputs:
        np.testing.assert_array_equal(ref.outputs[key], mod.outputs[key])
    assert ref.merged_trace.summary() == mod.merged_trace.summary()


# ----------------------------------------------------------------------
# The functional=False + trace=False regression (old silent no-op)
# ----------------------------------------------------------------------

def test_no_work_launch_rejected():
    dev = Device()
    out = dev.alloc(64, np.float32, "out")
    with pytest.raises(CudaModelError, match="zero blocks"):
        launch(coords_writer, (2,), (32,), (out, 64), device=dev,
               functional=False, trace=False)


# ----------------------------------------------------------------------
# Trace memoization
# ----------------------------------------------------------------------

def test_memoization_reuses_interior_blocks():
    dev = Device()
    out = dev.alloc(32 * 64, np.float32, "out")
    plan = LaunchPlan.build(coords_writer, (32,), (64,),
                            (out, 32 * 64), device=dev,
                            functional=False, trace_blocks=8, memoize=True)
    # 8 sampled blocks of a 1-D grid: one lo, one hi, six interior —
    # the six interior blocks share one equivalence class
    classes = {plan.equivalence_class(b) for b in plan.traced}
    assert len(classes) == 3
    result = plan.execute("sequential")
    assert result.blocks_traced == 8
    assert result.blocks_executed == 3      # one run per class


def test_memoized_trace_matches_unmemoized_for_uniform_kernel():
    def one(memoize):
        dev = Device()
        out = dev.alloc(16 * 32, np.float32, "out")
        res = launch(coords_writer, (16,), (32,), (out, 16 * 32),
                     device=dev, functional=True, trace_blocks=4,
                     memoize=memoize)
        return res, out.to_host().copy()

    (r0, o0), (r1, o1) = one(False), one(True)
    np.testing.assert_array_equal(o0, o1)
    # coords_writer touches no caches, so replayed interior blocks
    # contribute exactly the statistics they would have traced
    assert r0.trace.summary() == r1.trace.summary()


# ----------------------------------------------------------------------
# Process-pool backend
# ----------------------------------------------------------------------

def test_process_pool_matches_sequential():
    try:
        import multiprocessing as mp
        mp.get_context("fork")
    except ValueError:
        pytest.skip("fork start method unavailable")

    def make(dev):
        out = dev.alloc(12 * 32, np.float32, "out")
        return (out, 12 * 32), [out]

    sides = []
    for ex in (SequentialExecutor(), ProcessPoolExecutor(workers=2)):
        dev = Device()
        args, arrays = make(dev)
        res = launch(coords_writer, (12,), (32,), args, device=dev,
                     executor=ex)
        sides.append((res, [a.to_host().copy() for a in arrays]))
    _assert_identical(sides)


# ----------------------------------------------------------------------
# Resolution / selection policy
# ----------------------------------------------------------------------

def test_resolve_executor_accepts_all_spellings():
    assert isinstance(resolve_executor(None), SequentialExecutor)
    assert isinstance(resolve_executor("batched"), BatchedExecutor)
    assert isinstance(resolve_executor("compiled"), CompiledExecutor)
    assert isinstance(resolve_executor(BatchedExecutor), BatchedExecutor)
    inst = SequentialExecutor()
    assert resolve_executor(inst) is inst
    with pytest.raises(CudaModelError, match="unknown executor"):
        resolve_executor("vectorized")


def test_auto_policy_prefers_compiled_for_functional_sweeps():
    dev = Device()
    out = dev.alloc(64 * 32, np.float32, "out")
    plan = LaunchPlan.build(coords_writer, (64,), (32,), (out, 64 * 32),
                            device=dev, functional=True)
    assert isinstance(choose_executor(plan), CompiledExecutor)
    perf = LaunchPlan.build(coords_writer, (64,), (32,), (out, 64 * 32),
                            device=dev, functional=False)
    assert isinstance(choose_executor(perf), SequentialExecutor)


def test_auto_policy_tiny_grids_stay_sequential():
    # a 2-block sweep is below MIN_VECTOR_BLOCKS: vectorization setup
    # costs more than it saves, so "auto" keeps the reference backend
    dev = Device()
    out = dev.alloc(2 * 32, np.float32, "out")
    plan = LaunchPlan.build(coords_writer, (2,), (32,), (out, 2 * 32),
                            device=dev, functional=True)
    assert isinstance(choose_executor(plan), SequentialExecutor)


def test_unsupported_construct_falls_back_to_batched():
    """A kernel the lowerer refuses (data-dependent Python while loop
    over a lane value would need scalar control flow) must still run
    under executor="compiled" via the batched-interpreter fallback and
    match the reference bits."""

    @kernel("generator_probe", regs_per_thread=4)
    def probe(ctx, out):
        i = ctx.global_tid()
        # generator expressions lower to a nested lambda-like scope the
        # grid compiler deliberately refuses
        total = sum(x for x in (1.0, 2.0))
        ctx.st_global(out, i, (i * 0.0 + total).astype(np.float32))

    from repro.compile import compile_status
    ok, reason = compile_status(probe)
    assert not ok and reason

    def make(dev):
        out = dev.alloc(6 * 32, np.float32, "out")
        return (out,), [out]

    _assert_identical(_run_pair(
        probe, (6,), (32,), make,
        executors=(SequentialExecutor(), CompiledExecutor())))


def test_non_batchable_kernel_falls_back_to_sequential():
    scalar_probe = coords_writer.fn

    @kernel("scalar_block_probe", regs_per_thread=6, batchable=False)
    def probe(ctx, out, width):
        # Python-level use of the scalar block coordinate: legal only
        # on the sequential backend, hence batchable=False
        _offset = int(ctx.block_linear) * 0.0
        scalar_probe(ctx, out, width)

    dev = Device()
    out = dev.alloc(8 * 32, np.float32, "out")
    res = launch(probe, (8,), (32,), (out, 8 * 32), device=dev,
                 executor=BatchedExecutor())
    dev2 = Device()
    out2 = dev2.alloc(8 * 32, np.float32, "out")
    launch(coords_writer, (8,), (32,), (out2, 8 * 32), device=dev2)
    np.testing.assert_array_equal(out.to_host(), out2.to_host())
    assert res.blocks_executed == 8
