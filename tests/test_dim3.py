"""Tests for CUDA-style Dim3 coordinates."""

import pytest
from hypothesis import given, strategies as st

from repro.cuda import Dim3, as_dim3


class TestDim3:
    def test_defaults_are_ones(self):
        d = Dim3()
        assert (d.x, d.y, d.z) == (1, 1, 1)
        assert d.size == 1

    def test_size(self):
        assert Dim3(16, 16).size == 256
        assert Dim3(4, 5, 6).size == 120

    def test_linear_x_fastest(self):
        d = Dim3(16, 16)
        assert d.linear(0, 0) == 0
        assert d.linear(1, 0) == 1
        assert d.linear(0, 1) == 16
        assert d.linear(3, 2) == 35

    def test_iteration_order_matches_linear(self):
        d = Dim3(3, 2, 2)
        coords = list(d)
        assert len(coords) == d.size
        for i, (x, y, z) in enumerate(coords):
            assert d.linear(x, y, z) == i

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Dim3(0)
        with pytest.raises(ValueError):
            Dim3(4, -1)

    def test_as_dim3_int(self):
        assert as_dim3(256) == Dim3(256)

    def test_as_dim3_tuple(self):
        assert as_dim3((16, 16)) == Dim3(16, 16)
        assert as_dim3((2, 3, 4)) == Dim3(2, 3, 4)

    def test_as_dim3_passthrough(self):
        d = Dim3(8, 8)
        assert as_dim3(d) is d

    def test_as_dim3_rejects_bad_inputs(self):
        with pytest.raises(TypeError):
            as_dim3("16")
        with pytest.raises(ValueError):
            as_dim3((1, 2, 3, 4))

    def test_str(self):
        assert str(Dim3(16, 16)) == "(16, 16, 1)"


@given(
    dims=st.tuples(st.integers(1, 32), st.integers(1, 32), st.integers(1, 8)),
    data=st.data(),
)
def test_linear_unlinear_roundtrip(dims, data):
    d = Dim3(*dims)
    idx = data.draw(st.integers(0, d.size - 1))
    assert d.linear(*d.unlinear(idx)) == idx


@given(dims=st.tuples(st.integers(1, 16), st.integers(1, 16), st.integers(1, 4)))
def test_unlinear_in_bounds(dims):
    d = Dim3(*dims)
    x, y, z = d.unlinear(d.size - 1)
    assert 0 <= x < d.x and 0 <= y < d.y and 0 <= z < d.z
