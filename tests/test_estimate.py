"""Static performance estimator: census, liveness, bounds, advisor.

Covers the contracts of the PR's static cost model:

* the static instruction census agrees with the dynamic
  ``LaunchProfiler`` trace counters on three apps (matmul, saxpy, cp)
  when every block is traced — same accounting rules, no execution;
* liveness reproduces the paper's register anecdotes exactly
  (tiled 10, +unroll 9, +prefetch 11) and never exceeds the declared
  counts on any shipped kernel;
* golden ``PerfEstimate`` values for the matmul ladder and saxpy:
  closed-form anchors (43.2 / 93.72 GFLOPS potentials, 173 GB/s
  naive demand), binding bottlenecks, blocks/SM;
* property: predicted GFLOPS and every closed-form bound stay under
  the 345.6 (SP) / 388.8 (SP+SFU) peaks across the variant space;
* the advisor ranks tiling first on the naive kernel, unrolling first
  on the tiled kernel, and flags prefetching's occupancy cliff with a
  negative payoff;
* the autotuner's static-bound pruning preserves the exhaustive
  winner while skipping most simulations, and reports what it
  pruned;
* the golden-ratio regression gate detects drift.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import Severity
from repro.analysis.advisor import advise_estimate, advise_target
from repro.analysis.census import census_target
from repro.analysis.estimate import estimate_app, estimate_target
from repro.analysis.liveness import estimate_registers
from repro.analysis.validate import (
    MATMUL_LADDER,
    estimator_checks,
    estimator_pairs,
    estimator_ratios,
    golden_checks,
    main as validate_main,
)
from repro.apps.registry import app_names, get_app
from repro.arch.device import DEFAULT_DEVICE
from repro.obs import LaunchProfiler
from repro.obs.registry import MetricsRegistry, set_registry
from repro.sim.autotuner import MatmulAutotuner
from repro.trace.instr import InstrClass

GOLDEN_PATH = Path(__file__).parent / "golden_estimates.json"


def _matmul_target(variant: str):
    app = get_app("matmul")
    return next(t for t in app.lint_targets() if t.note == variant)


# ----------------------------------------------------------------------
# Census vs dynamic trace counters (3 apps, every block traced)
# ----------------------------------------------------------------------

# (app, workload tracing every block, lint-target note, whether DRAM
# traffic is statically exact — cp stages atoms through constant
# memory, and the census assumes const caches are resident while the
# simulator charges cold misses, so only issue-side counters compare)
CENSUS_CASES = [
    ("matmul", {"n": 64, "variant": "naive", "tile": 16,
                "trace_blocks": 16}, "naive", True),
    ("matmul", {"n": 64, "variant": "prefetch", "tile": 16,
                "trace_blocks": 16}, "prefetch", True),
    ("saxpy", {"n": 4096, "a": 2.5, "iterations": 1,
               "trace_blocks": 16}, "", True),
    ("cp", {"width": 32, "height": 32, "natoms": 64, "spacing": 0.1,
            "trace_blocks": 4}, None, False),
]


class TestCensusAgreement:
    @pytest.mark.parametrize("app_name,workload,note,exact_memory",
                             CENSUS_CASES)
    def test_census_matches_launch_profiler(self, app_name, workload,
                                            note, exact_memory):
        app = get_app(app_name)
        targets = app.lint_targets()
        target = targets[0] if note is None else \
            next(t for t in targets if t.note == note)
        census = census_target(target)

        with LaunchProfiler(estimate=False) as prof:
            app.run(dict(workload), functional=False)
        record = prof.records[0]
        assert record.kernel == census.kernel

        assert census.trace.total_warp_insts == \
            pytest.approx(record.warp_insts, rel=1e-9)
        assert census.trace.flops == pytest.approx(record.flops,
                                                   rel=1e-9)
        assert census.trace.syncs == pytest.approx(record.syncs,
                                                   rel=1e-9)
        assert census.trace.shared_conflict_cycles == \
            pytest.approx(record.bank_conflict_cycles, rel=1e-9)
        if exact_memory:
            assert census.trace.global_transactions == \
                pytest.approx(record.global_transactions, rel=1e-9)

    def test_census_per_class_counts_match_trace(self):
        # full per-class comparison on the whole matmul ladder
        app = get_app("matmul")
        for target in app.lint_targets():
            census = census_target(target)
            run = app.run({"n": 64, "variant": target.note, "tile": 16,
                           "trace_blocks": 16}, functional=False)
            trace = run.launches[0].trace
            for cls in InstrClass:
                assert census.trace.warp_insts[cls] == pytest.approx(
                    trace.warp_insts[cls], rel=1e-9, abs=1e-9), \
                    f"{target.note}: {cls.value}"
            assert census.trace.global_bus_bytes == \
                pytest.approx(trace.global_bus_bytes, rel=1e-9)
            assert census.trace.global_useful_bytes == \
                pytest.approx(trace.global_useful_bytes, rel=1e-9)

    def test_census_fp_useful_fraction_naive_is_an_eighth(self):
        census = census_target(_matmul_target("naive"))
        # the paper's "1 out of 8 operations is a fused multiply-add"
        assert census.fp_useful_fraction == pytest.approx(1 / 8,
                                                          rel=0.05)


# ----------------------------------------------------------------------
# Liveness register estimates
# ----------------------------------------------------------------------

class TestLiveness:
    def test_paper_register_anecdotes(self):
        expected = {"tiled": 10, "tiled_unrolled": 9, "prefetch": 11}
        for note, regs in expected.items():
            est = estimate_registers(_matmul_target(note).kernel)
            assert not est.fallback
            assert est.regs == regs, f"{note}: {est.peak_names}"

    def test_unrolling_frees_the_induction_register(self):
        tiled = estimate_registers(_matmul_target("tiled").kernel)
        unrolled = estimate_registers(
            _matmul_target("tiled_unrolled").kernel)
        assert "k" in tiled.peak_names
        assert "k" not in unrolled.peak_names
        assert tiled.regs - unrolled.regs == 1

    def test_never_exceeds_declared_across_the_suite(self):
        for name in app_names():
            for target in get_app(name).lint_targets():
                est = estimate_registers(target.kernel)
                declared = target.kernel.regs_per_thread
                assert est.regs <= declared, \
                    f"{name}/{target.kernel.name}: static {est.regs} " \
                    f"> declared {declared} ({est.peak_names})"

    def test_fallback_on_unanalyzable_callable(self):
        est = estimate_registers(abs)          # no source available
        assert est.fallback


# ----------------------------------------------------------------------
# Golden PerfEstimate values (lint-target geometry, n=64)
# ----------------------------------------------------------------------

class TestGoldenEstimates:
    def test_naive_matmul(self):
        est = estimate_target(_matmul_target("naive"))
        assert est.bounds.memory_bound
        assert est.bound == "memory bandwidth"
        # Section 4.1: 1/8 * 345.6 = 43.2 GFLOPS, 173 GB/s demand
        assert est.compute_bound_gflops == pytest.approx(43.2, abs=1.0)
        assert est.bounds.bandwidth_demand_gbs == pytest.approx(173.0,
                                                               abs=3.0)
        assert est.occupancy.blocks_per_sm == 3

    def test_tiled_unrolled_matmul(self):
        est = estimate_target(_matmul_target("tiled_unrolled"))
        assert not est.bounds.memory_bound
        # Section 4.3: 16/59 * 345.6 = 93.72 GFLOPS potential
        assert est.compute_bound_gflops == pytest.approx(93.72, abs=4.0)
        assert est.registers.regs == 9
        assert est.occupancy.blocks_per_sm == 3

    def test_prefetch_occupancy_cliff(self):
        est = estimate_target(_matmul_target("prefetch"))
        assert est.registers.regs == 11
        assert est.occupancy.blocks_per_sm == 2
        assert est.occupancy.limiter == "registers"

    def test_saxpy(self):
        est = estimate_app("saxpy")[0]
        assert est.bounds.memory_bound
        assert est.bound == "memory bandwidth"
        # 1 FMA per 8 slots, 12 useful bytes per flop pair
        assert est.compute_bound_gflops == pytest.approx(43.2, abs=0.5)
        assert est.bounds.bandwidth_demand_gbs == pytest.approx(259.2,
                                                               abs=3.0)
        assert est.registers.regs <= 5

    def test_estimates_cover_every_app(self):
        for name in app_names():
            for est in estimate_app(name):
                assert est.predicted_seconds > 0
                assert est.bound != ""


# ----------------------------------------------------------------------
# Property: predictions never exceed the hardware peaks
# ----------------------------------------------------------------------

class TestPeakProperty:
    @settings(max_examples=12, deadline=None)
    @given(variant=st.sampled_from(MATMUL_LADDER),
           tile=st.sampled_from([4, 8, 16]),
           n=st.sampled_from([64, 128, 256]))
    def test_matmul_space_under_peaks(self, variant, tile, n):
        from repro.analysis.targets import LintTarget, garr
        from repro.apps.matmul import build_kernel
        block = 16 if variant == "naive" else tile
        if n % block:
            n = -(-n // block) * block
        args = (garr("A", n * n), garr("B", n * n), garr("C", n * n), n)
        target = LintTarget(build_kernel(variant, tile),
                            (n // block, n // block), (block, block),
                            args, note=variant)
        est = estimate_target(target)
        peak = DEFAULT_DEVICE.peak_gflops_with_sfu          # 388.8
        for value in (est.predicted_gflops, est.compute_bound_gflops,
                      est.bandwidth_bound_gflops,
                      est.static_bound_gflops):
            assert value <= peak + 1e-6

    def test_suite_estimates_under_peaks(self):
        peak = DEFAULT_DEVICE.peak_gflops_with_sfu
        for name in app_names():
            for est in estimate_app(name):
                assert est.predicted_gflops <= peak + 1e-6, est.label
                assert est.compute_bound_gflops <= peak + 1e-6, est.label


# ----------------------------------------------------------------------
# Advisor
# ----------------------------------------------------------------------

class TestAdvisor:
    def test_tiling_tops_the_naive_kernel(self):
        report = advise_target(_matmul_target("naive"))
        assert report.advice, "no advice for the naive kernel"
        assert report.best().pass_name == "tiling"
        assert report.best().payoff_gflops > 0

    def test_unrolling_tops_the_tiled_kernel(self):
        report = advise_target(_matmul_target("tiled"))
        assert report.best().pass_name == "unrolling"
        assert report.best().payoff_gflops > 0

    def test_prefetch_cliff_is_flagged_negative(self):
        report = advise_target(_matmul_target("tiled"))
        pre = next(a for a in report.advice
                   if a.pass_name == "prefetching")
        assert pre.payoff_gflops < 0
        assert pre.occupancy_cliff
        assert pre.blocks_per_sm_after == 2

    def test_findings_flow_through_lint_plumbing(self):
        est = estimate_target(_matmul_target("naive"))
        report = advise_estimate(est)
        findings = report.findings()
        assert findings
        assert all(f.rule == "advisor" for f in findings)
        assert all(f.severity == Severity.INFO for f in findings)
        assert "tiling" in findings[0].message

    def test_advice_is_sorted_by_payoff(self):
        report = advise_target(_matmul_target("tiled"))
        payoffs = [a.payoff_gflops for a in report.advice]
        assert payoffs == sorted(payoffs, reverse=True)


# ----------------------------------------------------------------------
# Estimator vs timing simulator (shared fixture: ~4 s once)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def pairs():
    return estimator_pairs()


class TestEstimatorValidation:
    def test_all_checks_agree(self, pairs):
        checks = estimator_checks(pairs=pairs)
        bad = [c.format() for c in checks if not c.ok]
        assert not bad, "\n".join(bad)

    def test_golden_file_matches(self, pairs):
        golden = json.loads(GOLDEN_PATH.read_text())
        checks = golden_checks(golden, pairs=pairs)
        bad = [c.format() for c in checks if not c.ok]
        assert not bad, "\n".join(bad)

    def test_golden_gate_detects_drift(self, pairs):
        golden = json.loads(GOLDEN_PATH.read_text())
        drifted = {k: {**v, "ratio": v["ratio"] * 1.5}
                   for k, v in golden.items()}
        checks = golden_checks(drifted, pairs=pairs)
        assert any(not c.ok for c in checks)

    def test_golden_gate_flags_unlisted_kernels(self, pairs):
        golden = json.loads(GOLDEN_PATH.read_text())
        partial = dict(list(golden.items())[:2])
        checks = golden_checks(partial, pairs=pairs)
        missing = [c for c in checks
                   if c.dynamic == "absent from golden file"]
        assert len(missing) == len(golden) - 2

    def test_ratios_are_finite(self, pairs):
        for label, entry in estimator_ratios(pairs=pairs).items():
            assert math.isfinite(entry["ratio"]), label
            assert entry["simulated_gflops"] > 0, label


# ----------------------------------------------------------------------
# Autotuner static-bound pruning
# ----------------------------------------------------------------------

class TestAutotunerPruning:
    def test_pruned_search_matches_exhaustive_winner(self):
        registry = MetricsRegistry(enabled=True)
        previous = set_registry(registry)
        try:
            full = MatmulAutotuner(n=512, trace_blocks=2).exhaustive()
            tuner = MatmulAutotuner(n=512, trace_blocks=2)
            pruned = tuner.exhaustive(prune=True)
        finally:
            set_registry(previous)
        assert pruned.best == full.best
        assert pruned.best_gflops == pytest.approx(full.best_gflops)
        # pruning must actually save simulations, and account for all
        # skipped points (no silent caps)
        assert pruned.pruned
        assert len(pruned.evaluations) + len(pruned.pruned) == \
            len(tuner.space())
        names = {name for name, _labels, _kind, _value
                 in registry.snapshot()}
        assert "autotuner.pruned" in names
        assert "autotuner.evaluated" in names

    def test_static_bounds_ceil_the_evaluations(self):
        tuner = MatmulAutotuner(n=512, trace_blocks=2)
        from repro.sim.autotuner import PRUNE_MARGIN
        for point in tuner.space():
            bound = tuner.static_bound(point)
            measured = tuner.evaluate(point)
            assert measured <= bound * (1.0 + PRUNE_MARGIN), \
                f"{point}: measured {measured:.2f} > " \
                f"ceiling {bound:.2f}"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestValidateCli:
    def test_golden_flag_passes(self, capsys):
        assert validate_main(["--golden", str(GOLDEN_PATH)]) == 0
        assert "0 disagreement(s)" in capsys.readouterr().out

    def test_write_golden_round_trips(self, tmp_path, capsys):
        path = tmp_path / "golden.json"
        assert validate_main(["--write-golden", str(path)]) == 0
        capsys.readouterr()
        written = json.loads(path.read_text())
        checked_in = json.loads(GOLDEN_PATH.read_text())
        assert set(written) == set(checked_in)

    def test_lint_estimate_flag(self, capsys):
        from repro.analysis.lint import main as lint_main
        assert lint_main(["saxpy", "--estimate", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        est = payload["reports"][0]["estimate"]
        assert est["bound"] == "memory bandwidth"
        assert est["compute_bound_gflops"] == pytest.approx(43.2,
                                                            abs=0.5)

    def test_lint_advise_flag(self, capsys):
        from repro.analysis.lint import main as lint_main
        assert lint_main(["matmul", "--advise", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        naive = next(r for r in payload["reports"]
                     if r["note"] == "naive")
        assert naive["advice"]
        assert naive["advice"][0]["pass"] == "tiling"
        assert any(f["rule"] == "advisor" for f in naive["findings"])
