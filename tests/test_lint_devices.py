"""Static lint sweep over every registered device profile.

The hazard rules, coalescing verdicts and occupancy checks must hold
(and stay HIGH-clean) for all 13 applications on every device the
registry knows — G80 variants, Fermi and Ampere alike.
"""

import json

import pytest

from repro.analysis.lint import JSON_SCHEMA_VERSION, main as lint_main
from repro.apps.registry import app_names
from repro.arch.registry import device_names


@pytest.mark.parametrize("device", device_names())
def test_suite_lints_clean_on_device(device, capsys):
    rc = lint_main(["--json", "--fail-on", "high", "--device", device])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["schema_version"] == JSON_SCHEMA_VERSION == 5
    assert payload["device"] == device
    covered = {report["app"] for report in payload["reports"]}
    assert covered == set(app_names())
    for report in payload["reports"]:
        highs = [f for f in report["findings"] if f["severity"] == "high"]
        assert not highs, (device, report["kernel"], highs)


def test_unknown_device_is_a_usage_error(capsys):
    assert lint_main(["--device", "voodoo2"]) == 2
    capsys.readouterr()
