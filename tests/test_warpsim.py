"""Tests for the event-driven warp simulator and its agreement with
the analytical model (the DESIGN.md cross-check)."""

import numpy as np
import pytest

from repro.arch import DEFAULT_DEVICE
from repro.cuda import Device, kernel, launch
from repro.sim.warpsim import StreamEvent, simulate_launch, simulate_sm
from repro.trace.instr import InstrClass


def compute_stream(n_insts, cls=InstrClass.FMA):
    return [StreamEvent(cls) for _ in range(n_insts)]


class TestSimulateSm:
    def test_empty_stream(self):
        r = simulate_sm([], 8, 3)
        assert r.cycles == 0.0 and r.instructions_issued == 0

    def test_single_warp_compute(self):
        r = simulate_sm(compute_stream(100), warps_per_block=1,
                        blocks_per_sm=1)
        assert r.cycles == pytest.approx(400.0)   # 100 insts x 4 cycles
        assert r.issue_utilization == pytest.approx(1.0)

    def test_issue_unit_serializes_warps(self):
        # 24 warps of pure compute: issue-bound, 24x one warp's work
        one = simulate_sm(compute_stream(50), 1, 1)
        many = simulate_sm(compute_stream(50), 8, 3)
        assert many.cycles == pytest.approx(24 * one.cycles, rel=0.01)

    def test_sfu_instructions_cost_more(self):
        sp = simulate_sm(compute_stream(50, InstrClass.FMA), 1, 1)
        sfu = simulate_sm(compute_stream(50, InstrClass.SFU), 1, 1)
        assert sfu.cycles == pytest.approx(4 * sp.cycles)   # 16 vs 4

    def test_memory_latency_exposed_with_one_warp(self):
        stream = [StreamEvent(InstrClass.LD_GLOBAL, 1, 2.0, 128.0)]
        r = simulate_sm(stream, 1, 1)
        assert r.cycles >= DEFAULT_DEVICE.timing.global_latency_cycles

    def test_many_warps_hide_latency(self):
        # each warp: 1 load then 50 compute; with 24 warps the latency
        # should overlap with other warps' issue
        stream = ([StreamEvent(InstrClass.LD_GLOBAL, 1, 2.0, 128.0)]
                  + compute_stream(50))
        alone = simulate_sm(stream, 1, 1)
        crowd = simulate_sm(stream, 8, 3)
        # 24x the work in much less than 24x one warp's total walltime
        assert crowd.cycles < 24 * alone.cycles * 0.6

    def test_barrier_joins_block(self):
        stream = (compute_stream(10) + [StreamEvent(InstrClass.SYNC)]
                  + compute_stream(10))
        r = simulate_sm(stream, warps_per_block=4, blocks_per_sm=1)
        # all warps issue both phases; barrier does not deadlock
        assert r.instructions_issued == 4 * 20
        assert r.cycles >= 20 * 4 * 4

    def test_two_blocks_barriers_are_independent(self):
        stream = (compute_stream(5) + [StreamEvent(InstrClass.SYNC)]
                  + compute_stream(5))
        r = simulate_sm(stream, warps_per_block=2, blocks_per_sm=2)
        assert r.instructions_issued == 4 * 10


@kernel("stream_probe", regs_per_thread=8)
def stream_probe(ctx, x, n):
    i = ctx.global_tid()
    ctx.address_ops(2)
    v = ctx.ld_global(x, i)
    for _ in range(8):
        v = ctx.fma(v, 1.0001, 0.5)
    ctx.st_global(x, i, v)


class TestSimulateLaunch:
    def _launch(self, record=True):
        dev = Device()
        n = 256 * 48
        x = dev.to_device(np.ones(n, np.float32), "x")
        return launch(stream_probe, (48,), (256,), (x, n), device=dev,
                      functional=False, trace_blocks=1,
                      record_stream=record)

    def test_stream_recorded(self):
        res = self._launch()
        assert res.stream is not None
        classes = [e.cls for e in res.stream]
        assert classes.count(InstrClass.FMA) == 8
        assert classes.count(InstrClass.LD_GLOBAL) == 1
        ld = next(e for e in res.stream if e.cls is InstrClass.LD_GLOBAL)
        assert ld.bus_bytes_per_warp == pytest.approx(128.0)  # 2 x 64 B

    def test_unrecorded_launch_rejected(self):
        res = self._launch(record=False)
        with pytest.raises(ValueError, match="record_stream"):
            simulate_launch(res)

    def test_agrees_with_analytical_model(self):
        res = self._launch()
        ana = res.estimate().seconds
        sim = simulate_launch(res).seconds
        assert sim == pytest.approx(ana, rel=0.35)

    def test_matmul_variants_agree_with_analytical(self):
        from repro.apps.matmul import build_kernel
        for variant, ratio_tol in (("naive", 0.25), ("tiled", 0.25),
                                   ("tiled_unrolled", 0.25)):
            dev = Device()
            n = 256
            a = dev.to_device(np.zeros((n, n), np.float32), "A")
            b = dev.to_device(np.zeros((n, n), np.float32), "B")
            c = dev.alloc((n, n), np.float32, "C")
            res = launch(build_kernel(variant, 16), (n // 16, n // 16),
                         (16, 16), (a, b, c, n), device=dev,
                         functional=False, trace_blocks=1,
                         record_stream=True)
            ana = res.estimate().seconds
            sim = simulate_launch(res).seconds
            assert sim == pytest.approx(ana, rel=ratio_tol), variant

    def test_issue_utilization_bounded(self):
        res = self._launch()
        sim = simulate_launch(res)
        assert 0.0 < sim.issue_utilization <= 1.0
