"""Tests for kernel launch machinery, trace scaling and device memory."""

import numpy as np
import pytest

from repro.cuda import (
    CudaModelError,
    Device,
    OutOfDeviceMemory,
    kernel,
    launch,
)
from repro.trace import InstrClass


@kernel("double_it", regs_per_thread=4)
def double_it(ctx, x):
    i = ctx.global_tid()
    v = ctx.ld_global(x, i)
    ctx.st_global(x, i, ctx.fmul(v, 2.0))


@kernel("block_id_writer", regs_per_thread=4)
def block_id_writer(ctx, out):
    i = ctx.global_tid()
    ctx.st_global(out, i, float(ctx.block_linear))


class TestLaunchValidation:
    def test_block_too_large(self):
        dev = Device()
        x = dev.alloc(2048, np.float32)
        with pytest.raises(CudaModelError, match="512-thread"):
            launch(double_it, (2,), (1024,), (x,), device=dev)

    def test_grid_dim_limit(self):
        with pytest.raises(CudaModelError, match="per-dimension"):
            launch(double_it, (70000,), (32,), (None,), device=Device())

    def test_3d_grid_rejected(self):
        with pytest.raises(CudaModelError, match="two-dimensional"):
            launch(double_it, (2, 2, 2), (32,), (None,), device=Device())


class TestFunctionalExecution:
    def test_all_blocks_execute(self):
        dev = Device()
        x = dev.to_device(np.ones(1024, np.float32), "x")
        result = launch(double_it, (4,), (256,), (x,), device=dev)
        assert result.blocks_executed == 4
        np.testing.assert_array_equal(x.to_host(), 2.0)

    def test_2d_grid_block_coordinates(self):
        dev = Device()
        out = dev.alloc(16 * 4, np.float32, "out")
        result = launch(block_id_writer, (2, 2), (16,), (out,), device=dev)
        host = out.to_host()
        # blocks 0..3 each wrote their linear id into their 16 slots
        for b in range(4):
            assert (host[b * 16:(b + 1) * 16] == b).all()
        assert result.num_blocks == 4

    def test_perf_only_mode_runs_sample(self):
        dev = Device()
        x = dev.to_device(np.ones(256 * 64, np.float32), "x")
        result = launch(double_it, (64,), (256,), (x,), device=dev,
                        functional=False, trace_blocks=4)
        assert result.blocks_executed == 4
        assert result.blocks_traced == 4
        # untouched blocks remain at 1.0
        assert (x.to_host() == 1.0).sum() >= 60 * 256


class TestTraceScaling:
    def test_trace_scales_to_grid(self):
        dev = Device()
        x = dev.to_device(np.ones(256 * 64, np.float32), "x")
        result = launch(double_it, (64,), (256,), (x,), device=dev,
                        functional=False, trace_blocks=4)
        t = result.trace
        # 64 blocks x 8 warps x 1 FMUL each
        assert t.warp_insts[InstrClass.FMUL] == pytest.approx(64 * 8)
        assert t.thread_insts[InstrClass.FMUL] == pytest.approx(64 * 256)
        assert t.threads_traced == pytest.approx(64 * 256)

    def test_trace_disabled(self):
        dev = Device()
        x = dev.to_device(np.ones(256, np.float32), "x")
        result = launch(double_it, (1,), (256,), (x,), device=dev,
                        trace=False)
        assert result.trace.total_warp_insts == 0

    def test_full_trace_matches_sampled_trace_for_uniform_kernel(self):
        dev1, dev2 = Device(), Device()
        x1 = dev1.to_device(np.ones(256 * 16, np.float32), "x")
        x2 = dev2.to_device(np.ones(256 * 16, np.float32), "x")
        full = launch(double_it, (16,), (256,), (x1,), device=dev1,
                      trace_blocks=16)
        sampled = launch(double_it, (16,), (256,), (x2,), device=dev2,
                         trace_blocks=2)
        assert sampled.trace.total_warp_insts == pytest.approx(
            full.trace.total_warp_insts)
        assert sampled.trace.global_bus_bytes == pytest.approx(
            full.trace.global_bus_bytes)

    def test_occupancy_accessor(self):
        dev = Device()
        x = dev.to_device(np.ones(512, np.float32), "x")
        result = launch(double_it, (2,), (256,), (x,), device=dev)
        occ = result.occupancy()
        assert occ.blocks_per_sm == 3
        assert result.total_threads == 512


class TestDeviceMemory:
    def test_alignment(self):
        dev = Device()
        a = dev.alloc(3, np.float32)
        b = dev.alloc(3, np.float32)
        assert a.base_addr % 256 == 0
        assert b.base_addr % 256 == 0
        assert b.base_addr > a.base_addr

    def test_out_of_memory(self):
        dev = Device()
        with pytest.raises(OutOfDeviceMemory):
            dev.alloc(900 * 1024 * 1024 // 4, np.float32)   # > 768 MB

    def test_constant_space_limit(self):
        dev = Device()
        dev.to_constant(np.zeros(8000, np.float32))     # 32 KB ok
        with pytest.raises(OutOfDeviceMemory, match="constant"):
            dev.to_constant(np.zeros(9000, np.float32))  # 36 KB more

    def test_transfer_ledger(self):
        dev = Device()
        x = dev.to_device(np.zeros(1 << 20, np.float32), "x")  # 4 MB
        dev.from_device(x)
        assert dev.transfer_bytes("h2d") == 4 << 20
        assert dev.transfer_bytes("d2h") == 4 << 20
        # h2d at 1.5 GB/s ~ 2.8 ms + overhead
        assert dev.transfer_seconds("h2d") == pytest.approx(
            15e-6 + (4 << 20) / 1.5e9, rel=1e-6)
        dev.reset_transfers()
        assert dev.transfer_seconds() == 0.0

    def test_name_collision_resolved(self):
        dev = Device()
        a = dev.alloc(4, np.float32, "x")
        b = dev.alloc(4, np.float32, "x")
        assert a.name != b.name

    def test_2d_array_flattening(self):
        dev = Device()
        m = np.arange(12, dtype=np.float32).reshape(3, 4)
        d = dev.to_device(m, "m")
        assert d.shape == (3, 4)
        np.testing.assert_array_equal(d.to_host(), m)
        np.testing.assert_array_equal(d.data, m.ravel())

    def test_addresses(self):
        dev = Device()
        d = dev.to_device(np.zeros(8, np.float64), "m")
        idx = np.array([0, 1, 2])
        np.testing.assert_array_equal(
            d.addresses(idx), d.base_addr + idx * 8)
