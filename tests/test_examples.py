"""Smoke tests: every example script runs to completion.

Examples double as integration tests of the public API; they are run
in-process (imported and ``main()`` called) with output captured, at
sizes small enough for the unit-test budget.
"""

import importlib.util
import pathlib
import sys

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    names = sorted(p.stem for p in EXAMPLES.glob("*.py"))
    assert "quickstart" in names
    assert len(names) >= 3


def test_quickstart(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "functional check vs NumPy: OK" in out
    assert "bound by" in out


def test_matmul_walkthrough(capsys):
    load_example("matmul_optimization_walkthrough").main(n=256)
    out = capsys.readouterr().out
    assert "Step 4" in out
    assert "Figure 4" in out
    assert "BACKFIRES" in out


def test_mri_reconstruction(capsys):
    load_example("mri_reconstruction").main()
    out = capsys.readouterr().out
    assert "functional check vs NumPy reference OK" in out
    assert "SFU share of the speedup" in out


def test_autotuning_search(capsys):
    load_example("autotuning_search").main(n=256)
    out = capsys.readouterr().out
    assert "global optimum" in out
    assert "STUCK at a local maximum" in out


def test_lbm_flow(capsys):
    load_example("lbm_flow").main()
    out = capsys.readouterr().out
    assert "matches NumPy reference: OK" in out
    assert "Figure 5" in out
