"""Tests for the benchmark harness (runners, formatting, paper data)."""

from repro.bench import (
    format_table,
    run_figure4,
    run_figure5,
    run_section4,
    run_table1,
    run_table2,
    run_table3,
)
from repro.data import paper


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"],
                            [("alpha", 1.0), ("b", 123.456)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "alpha" in lines[2] and "123" in lines[3]

    def test_title(self):
        text = format_table(["a"], [("x",)], title="My Table")
        assert text.startswith("My Table\n========")

    def test_float_formatting(self):
        text = format_table(["v"], [(0.1234,), (12.3456,), (1234.5,)])
        assert "0.123" in text and "12.35" in text and "1234" in text


class TestPaperData:
    def test_prose_anchors(self):
        assert paper.MATMUL_GFLOPS["naive"].provenance == paper.PROSE
        assert float(paper.MATMUL_GFLOPS["naive"]) == 10.58
        assert paper.MATMUL_BW_DEMAND_GBS.value == 173.0

    def test_reconstructed_marked(self):
        assert paper.FIGURE4_GFLOPS["8x8"].mark == " (r)"
        assert paper.FIGURE4_GFLOPS["not tiled"].mark == ""

    def test_table2_covers_suite(self):
        from repro.apps import suite_names
        assert set(paper.TABLE2) == set(suite_names())
        assert paper.TABLE2["fdtd"].kernel_fraction == 0.164
        assert paper.TABLE2["h264"].source_lines == 34811

    def test_table3_ranges(self):
        kernels = [r.kernel_speedup.value for r in paper.TABLE3.values()]
        assert min(kernels) == paper.KERNEL_SPEEDUP_RANGE[0]
        assert max(kernels) == paper.KERNEL_SPEEDUP_RANGE[1]
        apps = [r.app_speedup.value for r in paper.TABLE3.values()]
        assert min(apps) == paper.APP_SPEEDUP_RANGE[0]
        assert max(apps) == paper.APP_SPEEDUP_RANGE[1]


class TestRunners:
    """Smoke-level runs at reduced problem sizes (the benchmarks/ tree
    runs them at paper scale)."""

    def test_table1(self):
        res = run_table1()
        assert len(res.rows) == 5
        assert "Table 1" in res.render()

    def test_section4_small(self):
        res = run_section4(n=512, trace_blocks=1)
        measured = {row[0]: row[1] for row in res.rows}
        assert measured["tiled_unrolled"] > measured["naive"] * 5
        assert "43.2" in res.notes[0]

    def test_figure4_small(self):
        res = run_figure4(n=512, trace_blocks=1)
        assert len(res.rows) == 9
        g = {row[0]: row[1] for row in res.rows}
        assert g["16x16 unrolled"] == max(g.values())

    def test_table2(self):
        res = run_table2()
        assert len(res.rows) == 12
        assert all(row[4] > 50 for row in res.rows)   # our modules exist

    def test_table3_subset(self):
        res = run_table3(scale="test", names=["saxpy", "cp"])
        assert len(res.rows) == 2
        rendered = res.render()
        assert "saxpy" in rendered and "cp" in rendered

    def test_figure5_small(self):
        res = run_figure5(nx=64, ny=32)
        layouts = [row[0] for row in res.rows]
        assert layouts == ["aos", "soa", "texture"]
        assert "2.8X" in res.notes[0]
