"""Kernel IR, uniformity lattice and R8 divergence analysis.

Pins the PR-9 contract surface:

* the CFG/dominator IR lowers real kernels into the expected block /
  loop / reconvergence structure;
* the uniformity lattice is a join-semilattice (hypothesis: join is
  commutative, idempotent, associative and monotone) and the interp's
  mask stack always balances (push/pop under random nesting);
* R8 classifies the broken catalogue's divergent barriers HIGH and
  proven-uniform branches INFO (golden verdicts);
* the trace's divergence counters agree with the warpsim replay of
  the same launch, and a uniform kernel records zeros everywhere;
* the compiler's uniformity gate admits masked barriers the dataflow
  proves uniform (bit-identical to the sequential executor) while
  still refusing thread-varying ones;
* ``lint --list-rules`` prints the full R1–R8 catalogue and the JSON
  envelope carries it at schema v4;
* the cross-validation harness agrees on a clean app + the broken
  catalogue.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.divergence import (
    SEED_UNIFORMITY,
    Uniformity,
    analyze_divergence,
    join,
    uniform_mask_lines,
)
from repro.analysis.findings import Severity
from repro.analysis.interp import LintContext, Recorder
from repro.analysis.ir import lower_kernel
from repro.analysis.rules import RULES, analyze_target, rule_divergence
from repro.analysis.targets import LintTarget, garr
from repro.arch import DEFAULT_DEVICE
from repro.compile import CompileError, compile_kernel, compile_status
from repro.cuda import (
    CompiledExecutor,
    Device,
    Dim3,
    SequentialExecutor,
    kernel,
    launch,
)

N = 256


# ----------------------------------------------------------------------
# Kernels under test (must live in a real file for inspect.getsource)
# ----------------------------------------------------------------------

@kernel("div_half_warp", regs_per_thread=4)
def div_half_warp(ctx, x, out, n):
    """Every warp diverges: odd lanes take the branch."""
    tid = ctx.tid
    v = ctx.ld_global(x, tid)
    with ctx.masked(tid % 2 == 0):
        v = ctx.fadd(v, 1.0)
    ctx.st_global(out, tid, v)


@kernel("div_uniform", regs_per_thread=4)
def div_uniform(ctx, x, out, n):
    """Branch on a scalar parameter: provably uniform."""
    tid = ctx.tid
    v = ctx.ld_global(x, tid)
    with ctx.masked(n > 0):
        v = ctx.fadd(v, 1.0)
    ctx.st_global(out, tid, v)


@kernel("uniform_masked_sync", regs_per_thread=4)
def uniform_masked_sync(ctx, x, out, flag):
    """Barrier under a scalar-parameter mask — uniform, compilable."""
    tid = ctx.tid
    buf = ctx.shared_alloc(N, np.float32, "buf")
    ctx.st_shared(buf, tid, ctx.ld_global(x, tid))
    with ctx.masked(flag > 0):
        ctx.sync()
    ctx.st_global(out, tid, ctx.ld_shared(buf, tid))


@kernel("block_masked_sync", regs_per_thread=4)
def block_masked_sync(ctx, x, out, n):
    """Barrier under a block-uniform mask — no thread of a false
    block reaches it, so lowering it unconditionally is sound."""
    tid = ctx.tid
    buf = ctx.shared_alloc(N, np.float32, "buf")
    ctx.st_shared(buf, tid, ctx.ld_global(x, tid))
    with ctx.masked(ctx.bx == 0):
        ctx.sync()
    ctx.st_global(out, tid, ctx.ld_shared(buf, tid))


@kernel("varying_masked_sync", regs_per_thread=4)
def varying_masked_sync(ctx, x, out, n):
    """Barrier under a thread-varying mask — must stay refused."""
    tid = ctx.tid
    buf = ctx.shared_alloc(N, np.float32, "buf")
    ctx.st_shared(buf, tid, ctx.ld_global(x, tid))
    with ctx.masked(tid < 8):
        ctx.sync()
    ctx.st_global(out, tid, ctx.ld_shared(buf, tid))


def _target(kern, extra=0):
    return LintTarget(kern, (1,), (N,),
                      (garr("x", N), garr("out", N), extra))


def _run(kern, executor, flag=1):
    dev = Device()
    x = dev.to_device(np.arange(N, dtype=np.float32), "x")
    out = dev.alloc(N, np.float32, "out")
    launch(kern, (2,), (N,), (x, out, flag), device=dev,
           executor=executor)
    return out.to_host()


# ----------------------------------------------------------------------
# IR structure
# ----------------------------------------------------------------------

def test_ir_lowers_branchy_kernel():
    ir = lower_kernel(div_half_warp)
    assert ir.name == "div_half_warp"
    assert len(ir.blocks) >= 3          # entry, masked body, join
    assert ir.entry in ir.reachable
    # the masked region reconverges: some block post-dominates the
    # branch head and is not inside its influence region
    heads = [b.index for b in ir.blocks if len(b.succs) > 1]
    assert heads, "branch head missing from the CFG"
    for head in heads:
        join_block = ir.reconvergence(head)
        assert join_block is not None
        assert join_block not in ir.influence_region(head)


def test_ir_is_memoized():
    assert lower_kernel(div_half_warp) is lower_kernel(div_half_warp)


# ----------------------------------------------------------------------
# Uniformity lattice (hypothesis)
# ----------------------------------------------------------------------

uniformity = st.sampled_from(list(Uniformity))


@settings(max_examples=60, deadline=None)
@given(a=uniformity, b=uniformity)
def test_join_is_commutative(a, b):
    assert join(a, b) == join(b, a)


@settings(max_examples=30, deadline=None)
@given(a=uniformity)
def test_join_is_idempotent(a):
    assert join(a, a) == a


@settings(max_examples=60, deadline=None)
@given(a=uniformity, b=uniformity, c=uniformity)
def test_join_is_associative(a, b, c):
    assert join(join(a, b), c) == join(a, join(b, c))


@settings(max_examples=60, deadline=None)
@given(a=uniformity, b=uniformity, c=uniformity)
def test_join_is_monotone(a, b, c):
    # a <= b  implies  a v c <= b v c (the dataflow only ever climbs)
    if a <= b:
        assert join(a, c) <= join(b, c)


def test_lattice_seeds_cover_thread_and_block_ids():
    assert SEED_UNIFORMITY["tid"] is Uniformity.VARYING
    assert SEED_UNIFORMITY["bx"] is Uniformity.BLOCK_UNIFORM
    assert Uniformity.UNIFORM < Uniformity.BLOCK_UNIFORM \
        < Uniformity.VARYING


# ----------------------------------------------------------------------
# Interp mask stack balance (hypothesis)
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_interp_mask_stack_balances(data):
    ctx = LintContext(DEFAULT_DEVICE, Dim3(1), Dim3(64), (0, 0, 0),
                      Recorder())
    depth = data.draw(st.integers(1, 5))
    cutoffs = [data.draw(st.integers(0, 64)) for _ in range(depth)]

    def nest(level):
        if level == len(cutoffs):
            ctx.fadd(1.0, 2.0)
            return
        with ctx.masked(ctx.tid < cutoffs[level]):
            nest(level + 1)

    nest(0)
    assert len(ctx._mask_stack) == 1        # balanced after exit
    trace = ctx.census
    assert 0 <= trace.divergent_branch_warps <= trace.branch_warps
    assert trace.divergence_serialized_warp_insts \
        <= trace.total_warp_insts
    assert 0.0 <= trace.divergent_branch_fraction <= 1.0
    assert 0.0 <= trace.divergence_serialized_fraction <= 1.0


# ----------------------------------------------------------------------
# R8 golden verdicts
# ----------------------------------------------------------------------

def test_r8_flags_divergent_sync_high():
    from repro.san.broken import broken_by_name
    for name in ("divergent_sync", "nested_divergent_sync",
                 "data_dependent_sync"):
        report = analyze_target(broken_by_name(name).target())
        highs = [f for f in report.findings
                 if f.rule == "divergence" and f.severity is Severity.HIGH]
        assert highs, f"{name}: R8 HIGH missing"
        assert "thread-varying" in highs[0].message
        assert report.divergence["divergent_syncs"] >= 1


def test_r8_proven_uniform_branch_is_info():
    findings, summary = rule_divergence(div_uniform, "div_uniform")
    assert summary["varying_branches"] == 0
    assert summary["divergent_syncs"] == 0
    infos = [f for f in findings if f.severity is Severity.INFO]
    assert infos and "uniform" in infos[0].message


def test_r8_summary_reports_static_fractions():
    report = analyze_target(_target(div_half_warp))
    frac = report.divergence["static_divergent_branch_fraction"]
    assert frac == pytest.approx(1.0)   # every warp splits on tid % 2
    assert report.divergence["static_serialized_fraction"] > 0
    assert not any(f.rule == "divergence"
                   and f.severity is Severity.HIGH
                   for f in report.findings)


def test_analysis_is_memoized_and_classifies_block_uniform():
    assert analyze_divergence(block_masked_sync) \
        is analyze_divergence(block_masked_sync)
    analysis = analyze_divergence(block_masked_sync)
    assert not analysis.divergent_syncs
    lines = uniform_mask_lines(block_masked_sync)
    assert lines        # the bx == 0 mask is provably block-uniform


# ----------------------------------------------------------------------
# Dynamic counters: trace vs warpsim
# ----------------------------------------------------------------------

def test_trace_and_warpsim_agree_on_divergent_kernel():
    from repro.sim.warpsim import simulate_launch
    dev = Device()
    x = dev.to_device(np.arange(N, dtype=np.float32), "x")
    out = dev.alloc(N, np.float32, "out")
    result = launch(div_half_warp, (2,), (N,), (x, out, N), device=dev,
                    record_stream=True)
    trace = result.trace
    assert trace.divergent_branch_warps > 0
    assert trace.divergent_branch_fraction == pytest.approx(1.0)
    sim = simulate_launch(result)
    assert sim.divergent_branches > 0
    assert sim.divergence_serialized_fraction == pytest.approx(
        trace.divergence_serialized_fraction, abs=1e-9)


def test_uniform_kernel_records_no_divergence():
    dev = Device()
    x = dev.to_device(np.arange(N, dtype=np.float32), "x")
    out = dev.alloc(N, np.float32, "out")
    result = launch(div_uniform, (2,), (N,), (x, out, 1), device=dev,
                    record_stream=True)
    trace = result.trace
    assert trace.divergent_branch_warps == 0
    assert trace.divergence_serialized_warp_insts == 0
    from repro.sim.warpsim import simulate_launch
    sim = simulate_launch(result)
    assert sim.divergent_branches == 0
    assert sim.divergence_serialized_fraction == 0.0


def test_profiler_record_carries_divergence_counters():
    from repro.obs.profiler import LaunchProfiler
    dev = Device()
    x = dev.to_device(np.arange(N, dtype=np.float32), "x")
    out = dev.alloc(N, np.float32, "out")
    with LaunchProfiler(estimate=False) as prof:
        launch(div_half_warp, (2,), (N,), (x, out, N), device=dev)
    rec = prof.records[0]
    assert rec.divergent_branch_fraction == pytest.approx(1.0)
    assert rec.divergence_serialized_fraction > 0
    counters = rec.to_dict()["counters"]
    assert counters["divergent_branch_warps"] == \
        rec.divergent_branch_warps
    assert "div_branch=" in rec.digest()


# ----------------------------------------------------------------------
# Compiler uniformity gate (the previously-refused kernels)
# ----------------------------------------------------------------------

def test_uniform_masked_sync_now_compiles_bit_identical():
    ok, reason = compile_status(uniform_masked_sync)
    assert ok, reason
    sequential = _run(uniform_masked_sync, SequentialExecutor())
    compiled = _run(uniform_masked_sync, CompiledExecutor())
    np.testing.assert_array_equal(sequential, compiled)


def test_block_uniform_masked_sync_compiles_bit_identical():
    ok, reason = compile_status(block_masked_sync)
    assert ok, reason
    sequential = _run(block_masked_sync, SequentialExecutor())
    compiled = _run(block_masked_sync, CompiledExecutor())
    np.testing.assert_array_equal(sequential, compiled)


def test_varying_masked_sync_still_refused():
    with pytest.raises(CompileError, match="divergent"):
        compile_kernel(varying_masked_sync)
    ok, reason = compile_status(varying_masked_sync)
    assert not ok and "divergent" in reason


# ----------------------------------------------------------------------
# Rule catalogue / CLI
# ----------------------------------------------------------------------

def test_rules_catalogue_lists_r1_through_r8():
    ids = [r.id for r in RULES]
    assert ids == [f"R{i}" for i in range(1, 9)]
    r8 = RULES[-1]
    assert "divergence" in r8.finding_rules
    assert "high" in r8.severities


def test_lint_list_rules_cli(capsys):
    from repro.analysis.lint import main as lint_main
    assert lint_main(["--list-rules"]) == 0
    text = capsys.readouterr().out
    for rule in RULES:
        assert rule.id in text


def test_lint_json_envelope_carries_rules(capsys):
    from repro.analysis.lint import main as lint_main
    import json
    assert lint_main(["saxpy", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == 5
    assert [r["id"] for r in payload["rules"]] \
        == [r.id for r in RULES]


# ----------------------------------------------------------------------
# Cross-validation harness smoke
# ----------------------------------------------------------------------

def test_divergence_checks_agree_on_clean_app_and_broken():
    from repro.analysis.validate import divergence_checks
    checks = divergence_checks(apps=("tpacf",))
    assert checks
    bad = [c.format() for c in checks if not c.ok]
    assert not bad, "\n".join(bad)
    subjects = {c.kernel for c in checks}
    assert any(s.startswith("broken/") for s in subjects)
