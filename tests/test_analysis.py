"""Static kernel analyzer: golden findings and dynamic agreement.

Covers the contracts of :mod:`repro.analysis`:

* deliberately-broken kernels trip exactly the rule they violate
  (coalescing, bank conflicts, shared races, divergent sync, static
  bounds, occupancy, batch safety);
* every shipped kernel lints with zero ``high`` findings — the
  analyzer must not cry wolf on the paper's own code;
* the batch-safety rule agrees with each app's declared ``batchable``
  flag (rpes/tpacf justify ``False``; matmul/saxpy are hazard-free);
* the static verdicts agree with the simulator's dynamic trace
  counters over the Section 4 matmul ladder (validation harness);
* the ``lint`` CLI gates on severity and emits parseable JSON;
* :data:`repro.cuda.context.CTX_OPS` stays in sync with the
  ``BlockContext`` surface the analyzer models.
"""

from __future__ import annotations

import inspect
import json

import numpy as np
import pytest

from repro.analysis import (
    KernelReport,
    LintTarget,
    Severity,
    analyze_target,
    garr,
)
from repro.analysis.lint import lint_app, main as lint_main
from repro.analysis.validate import main as validate_main, validation_checks
from repro.apps.registry import app_names
from repro.cuda import kernel
from repro.cuda.context import BlockContext, CTX_OPS
from repro.opt.passes import descriptor_from_report


# ----------------------------------------------------------------------
# Deliberately broken kernels (golden findings)
# ----------------------------------------------------------------------

def strided_kernel():
    """Every thread loads x[4*i]: strided, never coalescable."""

    @kernel("bad_strided", regs_per_thread=8)
    def bad_strided(ctx, x, y, n):
        i = ctx.global_tid()
        v = ctx.ld_global(x, i * 4)
        ctx.st_global(y, i, v)

    return bad_strided


def racy_kernel():
    """Tile staging with the __syncthreads() removed."""

    @kernel("bad_race", regs_per_thread=8, batchable=False)
    def bad_race(ctx, x, n):
        buf = ctx.shared_alloc((256,), np.float32, "buf")
        v = ctx.ld_global(x, ctx.tid)
        ctx.st_shared(buf, ctx.tx, v)
        w = ctx.ld_shared(buf, (ctx.tx + 1) % 256)   # neighbour's slot
        ctx.st_global(x, ctx.tid, w)

    return bad_race


def divergent_sync_kernel():
    """__syncthreads() reachable by only part of the block."""

    @kernel("bad_divsync", regs_per_thread=8)
    def bad_divsync(ctx, x, n):
        with ctx.masked(ctx.tx < 8):
            ctx.sync()
            ctx.st_global(x, ctx.tid, 1.0)

    return bad_divsync


def oob_kernel():
    """Reads one full block past the end of its input."""

    @kernel("bad_oob", regs_per_thread=8)
    def bad_oob(ctx, x, y, n):
        v = ctx.ld_global(x, ctx.tid + n)
        ctx.st_global(y, ctx.tid, v)

    return bad_oob


def bank_conflict_kernel():
    """Stride-2 shared reads: every lane pair collides on a bank."""

    @kernel("bad_bank", regs_per_thread=8)
    def bad_bank(ctx, x, n):
        buf = ctx.shared_alloc((512,), np.float32, "buf")
        ctx.st_shared(buf, ctx.tx, ctx.ld_global(x, ctx.tid))
        ctx.sync()
        v = ctx.ld_shared(buf, ctx.tx * 2)
        ctx.st_global(x, ctx.tid, v)

    return bad_bank


def reg_hog_kernel():
    """256 threads x 64 registers: cannot fit a single block on an SM."""

    @kernel("bad_regs", regs_per_thread=64)
    def bad_regs(ctx, x, n):
        ctx.st_global(x, ctx.tid, 0.0)

    return bad_regs


def unbatchable_kernel():
    """Declared batchable but coerces a block coordinate to a scalar."""

    @kernel("bad_batch", regs_per_thread=8, batchable=True)
    def bad_batch(ctx, x, n):
        base = int(ctx.bx) * ctx.blockDim.x
        ctx.st_global(x, base + ctx.tx, 0.0)

    return bad_batch


def _report(kern, n=1024, grid=(2,), block=(256,),
            extra=()) -> KernelReport:
    args = (garr("x", n),) + tuple(extra) + (n,)
    target = LintTarget(kern, grid, block, args)
    return analyze_target(target, app="test")


def _rules(report: KernelReport, severity=None):
    return {f.rule for f in report.findings
            if severity is None or f.severity == severity}


class TestGoldenFindings:
    def test_strided_load_is_medium_coalescing(self):
        report = _report(strided_kernel(), n=4096,
                         extra=(garr("y", 4096),))
        bad = [f for f in report.findings
               if f.rule == "coalescing" and f.array == "x"]
        assert bad and all(f.severity == Severity.MEDIUM for f in bad)
        acc = report.access("x")
        assert acc.coalesced is False
        assert acc.pattern.startswith("strided")
        # the output stream stays clean
        assert report.access("y").coalesced is True

    def test_missing_sync_is_high_shared_race(self):
        report = _report(racy_kernel())
        races = [f for f in report.findings if f.rule == "shared-race"]
        assert races and all(f.severity == Severity.HIGH for f in races)
        assert races[0].array == "buf"

    def test_divergent_sync_is_high(self):
        report = _report(divergent_sync_kernel())
        assert "divergent-sync" in _rules(report, Severity.HIGH)

    def test_static_out_of_bounds_is_high(self):
        report = _report(oob_kernel(), extra=(garr("y", 1024),))
        oob = [f for f in report.findings if f.rule == "bounds"]
        assert oob and oob[0].severity == Severity.HIGH
        assert oob[0].array == "x"
        assert "1024" in oob[0].message      # names the declared size

    def test_stride_two_shared_read_is_bank_conflict(self):
        report = _report(bank_conflict_kernel())
        conflicts = [f for f in report.findings
                     if f.rule == "bank-conflict"]
        assert conflicts
        assert conflicts[0].severity == Severity.MEDIUM
        assert "2-way" in conflicts[0].message
        assert report.access("buf").conflict_degree == 2
        # the staged store/load is synchronized: no race finding
        assert "shared-race" not in _rules(report)

    def test_unschedulable_launch_is_high_occupancy(self):
        report = _report(reg_hog_kernel())
        occ = [f for f in report.findings if f.rule == "occupancy"]
        assert occ and occ[0].severity == Severity.HIGH
        assert report.occupancy["blocks/SM"] == 0

    def test_contradicted_batchable_flag_is_high(self):
        report = _report(unbatchable_kernel())
        batch = [f for f in report.findings if f.rule == "batch-safety"]
        assert batch and batch[0].severity == Severity.HIGH
        assert "batchable=True" in batch[0].message
        assert "scalar-coerce" in report.batch_hazards


# ----------------------------------------------------------------------
# Shipped kernels: no false alarms
# ----------------------------------------------------------------------

class TestShippedKernels:
    def test_no_high_findings_across_the_suite(self):
        for name in app_names():
            for report in lint_app(name):
                high = [f.format() for f in report.findings
                        if f.severity == Severity.HIGH]
                assert not high, f"{name}/{report.label}: {high}"

    def test_every_app_declares_lint_targets(self):
        from repro.apps.registry import get_app
        for name in app_names():
            assert get_app(name).lint_targets(), \
                f"{name} declares no lint targets"

    def test_matmul_ladder_verdicts(self):
        reports = {r.note: r for r in lint_app("matmul")}
        # naive: the A row element is broadcast across the half-warp
        naive_a = reports["naive"].access("A")
        assert naive_a.coalesced is False
        assert naive_a.pattern == "broadcast"
        assert reports["naive"].count(Severity.MEDIUM) >= 1
        # tiled variants coalesce both streams and stay conflict-free
        for note in ("tiled", "tiled_unrolled", "prefetch"):
            report = reports[note]
            for array in ("A", "B", "C"):
                assert report.access(array).coalesced is True, \
                    f"{note}/{array}"
            for array in ("As", "Bs"):
                assert report.access(array).conflict_degree == 1
        # the Section 4.4 register cost: prefetch drops to 2 blocks/SM
        assert reports["tiled"].occupancy["blocks/SM"] == 3
        assert reports["prefetch"].occupancy["blocks/SM"] == 2

    def test_batch_safety_agrees_with_declared_flags(self):
        for name in ("rpes", "tpacf"):
            for report in lint_app(name):
                assert report.batchable_declared is False
                assert report.batch_hazards, report.label
                justified = [f for f in report.findings
                             if f.rule == "batch-safety"]
                assert justified
                assert justified[0].severity == Severity.INFO
        for name in ("matmul", "saxpy"):
            for report in lint_app(name):
                assert report.batchable_declared is True
                assert not report.batch_hazards, report.label


# ----------------------------------------------------------------------
# Static vs. dynamic cross-validation
# ----------------------------------------------------------------------

class TestValidation:
    def test_static_verdicts_match_trace_counters(self):
        checks = validation_checks()
        bad = [c.format() for c in checks if not c.ok]
        assert not bad, "\n".join(bad)
        # the harness exercises all three comparison families
        assert any("coalesced" in c.check for c in checks)
        assert any(c.check == "bank conflicts" for c in checks)
        assert any(c.check == "occupancy" for c in checks)

    def test_validate_cli_exits_clean(self, capsys):
        assert validate_main([]) == 0
        out = capsys.readouterr().out
        assert "0 disagreement(s)" in out


# ----------------------------------------------------------------------
# CLI behaviour
# ----------------------------------------------------------------------

class TestLintCli:
    def test_json_output_parses(self, capsys):
        assert lint_main(["matmul", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 5
        for report in payload["reports"]:
            assert report["compile"] == {"ok": True, "reason": None}
        assert payload["device"] == "geforce_8800_gtx"
        reports = payload["reports"]
        assert {r["note"] for r in reports} == \
            {"naive", "tiled", "tiled_unrolled", "prefetch"}
        for report in reports:
            for finding in report["findings"]:
                assert finding["severity"] in ("info", "medium", "high")
            # deterministic (kernel, line, rule) ordering for CI diffs
            keys = [(f["kernel"], f["line"] or 0, f["rule"])
                    for f in report["findings"]]
            assert keys == sorted(keys)

    def test_fail_on_high_passes_the_suite(self):
        assert lint_main(["--fail-on", "high"]) == 0

    def test_fail_on_medium_trips_on_intentional_baselines(self, capsys):
        # naive matmul's broadcast A load is a medium by design
        assert lint_main(["matmul", "--fail-on", "medium"]) == 1

    def test_unknown_severity_is_rejected(self):
        with pytest.raises(ValueError):
            lint_main(["--fail-on", "catastrophic"])


# ----------------------------------------------------------------------
# Integration points
# ----------------------------------------------------------------------

class TestIntegration:
    def test_descriptor_from_report_reproduces_the_cliff(self):
        tiled = next(r for r in lint_app("matmul") if r.note == "tiled")
        base = descriptor_from_report(tiled)
        assert base.regs_per_thread == tiled.regs_declared
        assert base.smem_bytes == tiled.smem_bytes
        assert base.occupancy().blocks_per_sm == 3
        # prefetching's +2 registers cross the Section 4.2 cliff
        prefetched = descriptor_from_report(tiled, ("prefetching",))
        assert prefetched.occupancy().blocks_per_sm == 2

    def test_ctx_ops_covers_the_blockcontext_surface(self):
        props = {name for name, member
                 in inspect.getmembers(BlockContext)
                 if isinstance(inspect.getattr_static(BlockContext, name,
                                                      None), property)}
        methods = {name for name, member
                   in inspect.getmembers(BlockContext,
                                         predicate=inspect.isfunction)
                   if not name.startswith("_")}
        uncovered = methods - props - set(CTX_OPS)
        assert not uncovered, \
            f"BlockContext methods missing from CTX_OPS: {uncovered}"
        missing = set(CTX_OPS) - methods
        assert not missing, \
            f"CTX_OPS entries with no BlockContext method: {missing}"
