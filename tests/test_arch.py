"""Tests for the hardware description layer (paper Section 3.2 / Table 1)."""

import pytest

from repro.arch import (
    DEFAULT_DEVICE,
    DeviceSpec,
    format_memory_table,
    geforce_8800_gtx,
    memory_table,
)


class TestDeviceSpec:
    def test_paper_peak_mad_gflops(self):
        # 16 SMs * 8 SPs * 2 flops * 1.35 GHz = 345.6 GFLOPS (Section 3.2)
        assert DEFAULT_DEVICE.peak_mad_gflops == pytest.approx(345.6)

    def test_paper_peak_with_sfu(self):
        # 16 SMs * 18 FLOPS/SM * 1.35 GHz = 388.8 GFLOPS (Section 3.2)
        assert DEFAULT_DEVICE.peak_gflops_with_sfu == pytest.approx(388.8)

    def test_total_sps(self):
        assert DEFAULT_DEVICE.num_sps == 128

    def test_max_warps_per_sm(self):
        # 768 threads / 32-thread warps = 24 warps
        assert DEFAULT_DEVICE.max_warps_per_sm == 24

    def test_device_wide_thread_limit(self):
        # Table 3 is capped at 12288 simultaneously active threads
        assert DEFAULT_DEVICE.max_active_threads == 12288

    def test_coalescing_segment_is_16_words(self):
        assert DEFAULT_DEVICE.coalesce_segment_words == 16
        assert DEFAULT_DEVICE.coalesce_segment_bytes == 64

    def test_dram_bandwidth(self):
        assert DEFAULT_DEVICE.dram_bandwidth_gbs == pytest.approx(86.4)
        assert DEFAULT_DEVICE.dram_bandwidth_bytes_per_cycle == pytest.approx(64.0)

    def test_register_file_and_shared_sizes(self):
        assert DEFAULT_DEVICE.registers_per_sm == 8192
        assert DEFAULT_DEVICE.shared_mem_per_sm == 16 * 1024

    def test_factory_returns_equivalent_spec(self):
        assert geforce_8800_gtx() == DEFAULT_DEVICE

    def test_with_timing_overrides_only_timing(self):
        spec = DEFAULT_DEVICE.with_timing(dram_efficiency=0.5)
        assert spec.timing.dram_efficiency == 0.5
        assert spec.num_sms == DEFAULT_DEVICE.num_sms
        # original untouched (frozen dataclasses)
        assert DEFAULT_DEVICE.timing.dram_efficiency != 0.5

    def test_with_timing_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            DEFAULT_DEVICE.with_timing(not_a_knob=1.0)

    def test_describe_contains_headline_numbers(self):
        d = DEFAULT_DEVICE.describe()
        assert d["SMs"] == 16
        assert d["peak MAD GFLOPS"] == pytest.approx(345.6)

    def test_spec_is_immutable(self):
        with pytest.raises(Exception):
            DEFAULT_DEVICE.num_sms = 32  # type: ignore[misc]

    def test_alternative_device_scales_peaks(self):
        half = DeviceSpec(name="half-G80", num_sms=8)
        assert half.peak_mad_gflops == pytest.approx(172.8)
        assert half.max_active_threads == 6144


class TestMemoryTable:
    def test_five_spaces(self):
        names = [row.name for row in memory_table()]
        assert names == ["Global", "Shared", "Constant", "Texture", "Local"]

    def test_read_only_flags(self):
        ro = {row.name: row.read_only for row in memory_table()}
        assert ro["Constant"] and ro["Texture"]
        assert not ro["Global"] and not ro["Shared"] and not ro["Local"]

    def test_cached_flags(self):
        cached = {row.name: row.cached for row in memory_table()}
        assert cached["Constant"] and cached["Texture"]
        assert not cached["Global"]

    def test_scopes(self):
        scope = {row.name: row.scope for row in memory_table()}
        assert scope["Shared"] == "thread block"
        assert scope["Local"] == "single thread"
        assert "grid" in scope["Global"]

    def test_sizes_follow_spec(self):
        rows = {row.name: row for row in memory_table()}
        assert "768 MB" in rows["Global"].size
        assert "16 KB" in rows["Shared"].size
        assert "64 KB" in rows["Constant"].size

    def test_format_renders_all_rows(self):
        text = format_memory_table()
        for name in ("Global", "Shared", "Constant", "Texture", "Local"):
            assert name in text
        # header separator present
        assert "---" in text

    def test_table_respects_custom_spec(self):
        spec = DeviceSpec(dram_capacity_bytes=512 * 1024 * 1024)
        rows = {row.name: row for row in memory_table(spec)}
        assert "512 MB" in rows["Global"].size
