"""Perf history: manifest flattening, JSONL round trips, the gate CLI.

The regression gate is itself gated here: a clean run must exit 0 and
a synthetically injected slowdown must trip it — the property CI's
``obs-history`` job re-checks on every push.
"""

import json

import pytest

from repro.bench.history import collect_manifests, main as history_main
from repro.obs.history import (append_history, baseline_from_manifests,
                               compare_to_baseline, format_comparison,
                               load_baseline, load_history,
                               manifest_from_devices,
                               manifest_from_pipeline, run_provenance)

DEVICES_PAYLOAD = {
    "benchmark": "cross_device_retune",
    "n": 256,
    "git_sha": "abc123def4567890abc123def4567890abc123de",
    "timestamp": "2026-08-08T00:00:00+00:00",
    "devices": [
        {"device": "geforce_8800_gtx",
         "ladder_gflops": {"naive": 10.5, "tiled": 42.7},
         "autotune": {"winner": {"label": "16x16 unrolled"},
                      "winner_gflops": 87.2}},
        {"device": "gtx_480",
         "ladder_gflops": {"naive": 46.4},
         "autotune": {"winner": {"label": "24x24 unrolled"},
                      "winner_gflops": 294.7}},
    ],
}

PIPELINE_PAYLOAD = {
    "benchmark": "pipeline_perf_smoke",
    "device": "GeForce 8800 GTX",
    "git_sha": "abc123def4567890abc123def4567890abc123de",
    "timestamp": "2026-08-08T00:00:00+00:00",
    "sequential_seconds": 20.0,
    "batched_seconds": 2.0,
    "speedup": 10.0,
    "profiler_overhead": {"overhead_pct": 1.2},
}


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------

def test_devices_manifest_flattens_with_n_in_key():
    m = manifest_from_devices(DEVICES_PAYLOAD)
    assert m["source"] == "devices"
    assert m["git_sha"].startswith("abc123")
    assert m["metrics"]["devices.n256.geforce_8800_gtx.ladder.naive"] \
        == pytest.approx(10.5)
    assert m["metrics"]["devices.n256.gtx_480.winner_gflops"] \
        == pytest.approx(294.7)
    assert m["winners"]["gtx_480"] == "24x24 unrolled"


def test_pipeline_manifest_records_wallclock_metrics():
    m = manifest_from_pipeline(PIPELINE_PAYLOAD)
    assert m["source"] == "pipeline"
    assert m["device"] == "GeForce 8800 GTX"
    assert m["metrics"]["pipeline.speedup"] == pytest.approx(10.0)
    assert m["metrics"]["pipeline.profiler_overhead_pct"] \
        == pytest.approx(1.2)


def test_provenance_stamp_shape():
    prov = run_provenance()
    assert set(prov) == {"git_sha", "timestamp"}
    assert len(prov["git_sha"]) == 40          # runs inside the repo
    assert "T" in prov["timestamp"]


# ----------------------------------------------------------------------
# History file + baseline comparison
# ----------------------------------------------------------------------

def test_history_append_and_load_round_trip(tmp_path):
    path = tmp_path / "hist.jsonl"
    m1 = manifest_from_devices(DEVICES_PAYLOAD)
    m2 = manifest_from_pipeline(PIPELINE_PAYLOAD)
    append_history([m1], path)
    append_history([m2], path)
    loaded = load_history(path)
    assert [m["source"] for m in loaded] == ["devices", "pipeline"]
    assert loaded[0]["metrics"] == m1["metrics"]
    assert load_history(tmp_path / "absent.jsonl") == []


def test_baseline_uses_only_deterministic_metrics():
    payload = baseline_from_manifests([
        manifest_from_devices(DEVICES_PAYLOAD),
        manifest_from_pipeline(PIPELINE_PAYLOAD),
    ])
    assert all(k.startswith("devices.") for k in payload["gate_metrics"])
    assert payload["gate_metrics"]


def test_compare_statuses():
    baseline = {"m.ok": 100.0, "m.regressed": 100.0,
                "m.improved": 100.0, "m.gone": 100.0}
    manifests = [{"source": "devices",
                  "metrics": {"m.ok": 95.0, "m.regressed": 80.0,
                              "m.improved": 120.0}}]
    rows = compare_to_baseline(manifests, baseline, gate_pct=10.0)
    status = {r["metric"]: r["status"] for r in rows}
    assert status == {"m.ok": "ok", "m.regressed": "regression",
                      "m.improved": "improved", "m.gone": "missing"}
    text = format_comparison(rows, 10.0)
    assert "regression" in text and "MISSING" in text
    assert "2 failing / 4 gated" in text


# ----------------------------------------------------------------------
# CLI (the acceptance self-test)
# ----------------------------------------------------------------------

def _cli_files(tmp_path):
    devices = tmp_path / "BENCH_devices.json"
    devices.write_text(json.dumps(DEVICES_PAYLOAD))
    history = tmp_path / "BENCH_history.jsonl"
    baseline = tmp_path / "baseline.json"
    return devices, history, baseline


def _run(devices, history, baseline, *extra):
    return history_main([
        "--pipeline", "/nonexistent/BENCH_pipeline.json",
        "--devices", str(devices), "--history", str(history),
        "--baseline", str(baseline), *extra])


def test_cli_update_baseline_then_clean_gate(tmp_path, capsys):
    devices, history, baseline = _cli_files(tmp_path)
    assert _run(devices, history, baseline, "--update-baseline") == 0
    assert load_baseline(baseline)
    # real (unchanged) run passes a 10% gate and appends to history
    assert _run(devices, history, baseline, "--gate", "10") == 0
    assert len(load_history(history)) == 2
    assert "OK" in capsys.readouterr().out


def test_cli_gate_trips_on_injected_slowdown(tmp_path, capsys):
    devices, history, baseline = _cli_files(tmp_path)
    _run(devices, history, baseline, "--update-baseline")
    code = _run(devices, history, baseline, "--gate", "10",
                "--inject-slowdown", "15", "--no-append")
    assert code == 3
    out = capsys.readouterr()
    assert "regression" in out.out
    # --no-append left the history at the update run only
    assert len(load_history(history)) == 1


def test_cli_small_slowdown_stays_within_gate(tmp_path):
    devices, history, baseline = _cli_files(tmp_path)
    _run(devices, history, baseline, "--update-baseline")
    assert _run(devices, history, baseline, "--gate", "10",
                "--inject-slowdown", "5", "--no-append") == 0


def test_cli_errors(tmp_path):
    devices, history, baseline = _cli_files(tmp_path)
    # no envelopes at all
    assert history_main(["--pipeline", "/none", "--devices", "/none"]) == 2
    # gate without a baseline file
    assert _run(devices, history, tmp_path / "no_baseline.json",
                "--gate", "10") == 2


def test_collect_manifests_skips_absent(tmp_path):
    devices, _, _ = _cli_files(tmp_path)
    manifests = collect_manifests(tmp_path / "absent.json", devices)
    assert [m["source"] for m in manifests] == ["devices"]


def test_committed_baseline_matches_schema():
    """The repo's committed baseline must stay loadable and gated on
    deterministic devices metrics only."""
    from repro.bench.history import DEFAULT_BASELINE
    assert DEFAULT_BASELINE.exists()
    baseline = load_baseline(DEFAULT_BASELINE)
    assert baseline
    assert all(k.startswith("devices.n256.") for k in baseline)
