"""Whole-application AOT modules: fusion legality, trace replay, the
on-disk artifact cache and the executor policy knobs.

The module layer's contract mirrors the executors': running an app
through :meth:`Application.run_module` must be *observationally
identical* to the sequential per-launch path — same output bits, same
merged trace statistics — whatever mix of fused execution, trace
replay and per-launch fallback the fusion plan picked.
"""

import json
import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.apps.fdtd import Fdtd
from repro.apps.lbm import Lbm
from repro.apps.mri_q import MriQ
from repro.apps.registry import ALL_APPS
from repro.compile import (
    ArtifactCache,
    HostStep,
    clear_program_cache,
    fuse_schedule,
    get_program,
    kernel_fingerprint,
    plan_context,
    use_artifact_cache,
)
from repro.cuda import CudaModelError, Device, LaunchPlan, kernel
from repro.cuda.executors import ExecutorPolicy, get_policy, use_policy
from repro.obs.registry import MetricsRegistry, use_registry

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _sequential_run(app_cls, workload):
    app = app_cls()
    app.executor = "sequential"
    return app.run(dict(workload), functional=True)


def _assert_runs_identical(ref, mod):
    assert set(ref.outputs) == set(mod.outputs)
    for key in ref.outputs:
        np.testing.assert_array_equal(ref.outputs[key], mod.outputs[key])
    assert ref.merged_trace.summary() == mod.merged_trace.summary()


# ----------------------------------------------------------------------
# Fusion legality (R7 as the oracle)
# ----------------------------------------------------------------------

def test_fdtd_schedule_is_one_fused_group():
    app = Fdtd()
    wl = app.default_workload("test")          # steps=3 -> 6 launches
    schedule = app.module_schedule(wl)
    fusion = fuse_schedule(schedule)
    assert len(fusion.groups) == 1
    group = fusion.groups[0]
    assert group.fused and group.reason == ""
    assert len(group.steps) == 2 * int(wl["steps"])
    # the three fields flow around the timestep loop: loop-carried,
    # kept device-resident across the group's launches
    assert set(group.carried) == {"Ez", "Hx", "Hy"}
    assert fusion.fuse_applied == 2 * int(wl["steps"]) - 1


def test_lbm_soa_schedule_fuses():
    app = Lbm()
    wl = app.default_workload("test")          # soa layout, steps=2
    fusion = fuse_schedule(app.module_schedule(wl))
    assert [g.fused for g in fusion.groups] == [True]
    assert fusion.fuse_applied == int(wl["steps"]) - 1


def test_lbm_texture_host_steps_break_groups():
    app = Lbm()
    wl = {"nx": 32, "ny": 16, "steps": 2, "total_steps": 2,
          "layout": "texture"}
    schedule = app.module_schedule(wl)
    # launch / host re-bind copy / launch / host re-bind copy
    kinds = [isinstance(s, HostStep) for s in schedule.steps]
    assert kinds == [False, True, False, True]
    fusion = fuse_schedule(schedule)
    assert all(not g.fused for g in fusion.groups)
    assert fusion.fuse_applied == 0
    for group in fusion.groups:
        assert "host step barrier" in group.reason


def test_host_step_caps_but_does_not_unfuse_the_run_before_it():
    """A barrier ends a group; the launches before it still fuse."""
    app = Fdtd()
    wl = app.default_workload("test")
    schedule = app.module_schedule(wl)
    noted = []
    schedule.steps.append(HostStep(lambda: noted.append(1), note="drain"))
    fusion = fuse_schedule(schedule)
    assert [g.fused for g in fusion.groups] == [True]
    assert len(fusion.groups[0].steps) == 2 * int(wl["steps"])


def test_groups_below_threshold_are_refused():
    app = Fdtd()
    wl = {"nx": 32, "ny": 32, "steps": 1, "total_steps": 1}  # 2 launches
    schedule = app.module_schedule(wl)
    fusion = fuse_schedule(
        schedule, policy=ExecutorPolicy(min_fuse_steps=3))
    assert [g.fused for g in fusion.groups] == [False]
    assert "below the fusion threshold (3)" in fusion.groups[0].reason
    # and with the threshold lowered the same schedule fuses
    fusion = fuse_schedule(
        schedule, policy=ExecutorPolicy(min_fuse_steps=2))
    assert [g.fused for g in fusion.groups] == [True]


# ----------------------------------------------------------------------
# Bit-identity of the module path + replay accounting
# ----------------------------------------------------------------------

@pytest.mark.parametrize("app_cls", [Lbm, Fdtd, MriQ])
def test_module_run_identical_to_sequential(app_cls):
    wl = app_cls().default_workload("test")
    ref = _sequential_run(app_cls, wl)
    mod = app_cls().run_module(dict(wl))
    _assert_runs_identical(ref, mod)


def test_fdtd_module_replays_repeated_configurations():
    wl = Fdtd().default_workload("test")       # steps=3 -> 6 launches
    mod = Fdtd().run_module(dict(wl))
    module = mod.module
    assert module is not None
    # 2 distinct configurations (H update, E update) trace once each;
    # the other 4 launches replay
    assert module.stats["fused_launches"] == 2
    assert module.stats["trace_replays"] == 2 * int(wl["steps"]) - 2
    assert module.stats["fuse_applied"] == 2 * int(wl["steps"]) - 1
    replayed = [l for l in mod.launches if l.executor == "module"]
    assert len(replayed) == module.stats["trace_replays"]
    # replayed launches carry the recorded configuration's accounting
    traced = [l for l in mod.launches if l.executor == "compiled"]
    assert {l.trace.summary()["flops"] for l in replayed} <= \
        {l.trace.summary()["flops"] for l in traced}


def test_replay_disabled_by_policy_retraces_every_launch():
    wl = Fdtd().default_workload("test")
    with use_policy(ExecutorPolicy(module_trace_replay=False)):
        mod = Fdtd().run_module(dict(wl))
    assert mod.module.stats["trace_replays"] == 0
    assert mod.module.stats["fused_launches"] == 2 * int(wl["steps"])
    _assert_runs_identical(_sequential_run(Fdtd, wl), mod)


def test_module_counters_reach_the_registry():
    reg = MetricsRegistry()
    with use_registry(reg):
        Fdtd().run_module()
    assert reg.value("module.fuse_applied", app="fdtd") == 5
    assert reg.value("module.trace_replays", app="fdtd") == 4
    assert reg.value("module.fused_launches", app="fdtd") == 2


def test_apps_without_schedule_fall_back_to_plain_run():
    app = ALL_APPS["saxpy"]()
    wl = app.default_workload("test")
    mod = app.run_module(dict(wl))
    assert mod.module is None
    _assert_runs_identical(_sequential_run(ALL_APPS["saxpy"], wl), mod)


# ----------------------------------------------------------------------
# Executor policy knobs
# ----------------------------------------------------------------------

def test_policy_from_env_overrides():
    policy = ExecutorPolicy.from_env({
        "REPRO_MIN_VECTOR_BLOCKS": "7",
        "REPRO_MIN_FUSE_STEPS": "5",
        "REPRO_MODULE_TRACE_REPLAY": "0",
    })
    assert policy.min_vector_blocks == 7
    assert policy.min_fuse_steps == 5
    assert policy.module_trace_replay is False
    assert ExecutorPolicy.from_env({}) == ExecutorPolicy()


def test_policy_from_env_rejects_garbage():
    with pytest.raises(CudaModelError, match="REPRO_MIN_VECTOR_BLOCKS"):
        ExecutorPolicy.from_env({"REPRO_MIN_VECTOR_BLOCKS": "many"})


def test_use_policy_scopes_the_global():
    base = get_policy()
    with use_policy(ExecutorPolicy(min_fuse_steps=9)):
        assert get_policy().min_fuse_steps == 9
    assert get_policy() == base


# ----------------------------------------------------------------------
# Artifact cache: round-trip, staleness, corruption
# ----------------------------------------------------------------------

@kernel("artifact_probe", regs_per_thread=4)
def artifact_probe(ctx, out, n):
    i = ctx.global_tid()
    with ctx.masked(i < n):
        ctx.st_global(out, i, (i * 2).astype(np.float32))


def _probe_plan():
    dev = Device()
    out = dev.alloc(64, np.float32, "out")
    return LaunchPlan.build(artifact_probe, (2,), (32,), (out, 64),
                            device=dev, functional=True), out


def test_artifact_roundtrip_in_process(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    with use_artifact_cache(cache):
        clear_program_cache()
        plan, out = _probe_plan()
        plan.execute("compiled")
        first = out.to_host().copy()
        assert cache.stats["writes"] == 1
        assert cache.stats["cold_hits"] == 0
        # a fresh memory cache now loads from disk instead of lowering
        clear_program_cache()
        plan, out = _probe_plan()
        plan.execute("compiled")
        assert cache.stats["cold_hits"] == 1
        assert cache.stats["writes"] == 1
        np.testing.assert_array_equal(first, out.to_host())
    clear_program_cache()


def test_artifact_roundtrip_across_processes(tmp_path):
    """A cold process with a warm REPRO_AOT_CACHE reloads the compiled
    programs from disk and produces the same output bits."""
    script = (
        "import hashlib, json\n"
        "from repro.apps.fdtd import Fdtd\n"
        "from repro.compile import active_artifact_cache\n"
        "run = Fdtd().run_module()\n"
        "cache = active_artifact_cache()\n"
        "print(json.dumps({\n"
        "    'checksums': {k: hashlib.sha256(v.tobytes()).hexdigest()\n"
        "                  for k, v in sorted(run.outputs.items())},\n"
        "    'writes': cache.stats['writes'],\n"
        "    'cold_hits': cache.stats['cold_hits'],\n"
        "}))\n")
    env = dict(os.environ, PYTHONPATH=SRC,
               REPRO_AOT_CACHE=str(tmp_path))

    def child():
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, check=True)
        return json.loads(proc.stdout)

    cold = child()
    warm = child()
    assert cold["writes"] == 2 and cold["cold_hits"] == 0
    assert warm["cold_hits"] == 2 and warm["writes"] == 0
    assert cold["checksums"] == warm["checksums"]


def test_stale_artifact_is_invalidated(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    plan, _ = _probe_plan()
    program = get_program(artifact_probe)
    assert cache.store(artifact_probe, program, *plan_context(plan))
    path = cache.path_for(artifact_probe, *plan_context(plan))
    # simulate an edited kernel: same file name, different fingerprint
    with open(path, "rb") as fh:
        wrapper = pickle.loads(fh.read())
    wrapper["fingerprint"] = "0" * 64
    with open(path, "wb") as fh:
        fh.write(pickle.dumps(wrapper))
    assert cache.load(artifact_probe, *plan_context(plan)) is None
    assert cache.stats["invalidated"] == 1
    assert not os.path.exists(path)            # stale file removed
    # the rewrite is clean: store + load round-trips again
    assert cache.store(artifact_probe, program, *plan_context(plan))
    assert cache.load(artifact_probe, *plan_context(plan)) is not None


def test_corrupt_artifact_is_discarded(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    plan, _ = _probe_plan()
    program = get_program(artifact_probe)
    assert cache.store(artifact_probe, program, *plan_context(plan))
    path = cache.path_for(artifact_probe, *plan_context(plan))
    with open(path, "wb") as fh:
        fh.write(b"not a pickle")
    assert cache.load(artifact_probe, *plan_context(plan)) is None
    assert cache.stats["corrupt"] == 1
    assert not os.path.exists(path)


def test_fingerprint_tracks_closure_constants():
    from repro.apps.lbm import lbm_step_kernel
    assert kernel_fingerprint(lbm_step_kernel("aos")) != \
        kernel_fingerprint(lbm_step_kernel("soa"))
    assert kernel_fingerprint(lbm_step_kernel("aos")) == \
        kernel_fingerprint(lbm_step_kernel("aos"))


# ----------------------------------------------------------------------
# Negative-cache observability (R6 surfacing)
# ----------------------------------------------------------------------

@kernel("module_sync_in_branch", regs_per_thread=4)
def module_sync_in_branch(ctx, out):
    i = ctx.global_tid()
    with ctx.masked(i < 8):
        ctx.sync()
    ctx.st_global(out, i, i.astype(np.float32))


def test_negative_cache_hits_reach_the_registry():
    clear_program_cache()
    reg = MetricsRegistry()
    with use_registry(reg):
        from repro.compile import compile_status
        assert compile_status(module_sync_in_branch)[0] is False
        assert compile_status(module_sync_in_branch)[0] is False
    assert reg.value("compile.negative_cache_hits",
                     kernel="module_sync_in_branch") >= 1
    clear_program_cache()
