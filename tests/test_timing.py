"""Tests for the analytical timing model, the bound analysis and the
CPU baseline model."""

import pytest

from repro.arch import DEFAULT_DEVICE
from repro.sim.bounds import analyze_bounds
from repro.sim.cpumodel import (
    CpuCostParams,
    estimate_cpu_time,
)
from repro.sim.timing import LaunchConfigError, estimate_time
from repro.trace import InstrClass, KernelTrace


def synthetic_trace(
    fma=0.0, ialu=0.0, ld_global=0.0, sfu=0.0, syncs=0.0,
    threads=768 * 16, bus_bytes=0.0, useful_bytes=None, uncoal=0.0,
):
    """Build a trace with the given *warp*-instruction counts."""
    t = KernelTrace()
    warp = 32
    for cls, n in ((InstrClass.FMA, fma), (InstrClass.IALU, ialu),
                   (InstrClass.LD_GLOBAL, ld_global), (InstrClass.SFU, sfu),
                   (InstrClass.SYNC, syncs)):
        if n:
            t.record_instr(cls, n, n * warp)
    if bus_bytes:
        t.record_global_access(
            "x", warp_accesses=ld_global * 2, transactions=bus_bytes / 64,
            bus_bytes=bus_bytes,
            useful_bytes=useful_bytes if useful_bytes is not None else bus_bytes,
            coalesced_accesses=(bus_bytes / 64) - uncoal)
        t.uncoalesced_transactions = uncoal
    t.threads_traced = threads
    return t


class TestIssueBound:
    def test_pure_fma_kernel_hits_peak(self):
        # all-FMA instruction stream at full occupancy -> 345.6 GFLOPS
        t = synthetic_trace(fma=1e8)
        est = estimate_time(t, num_blocks=16 * 3, threads_per_block=256,
                            regs_per_thread=10)
        assert est.gflops == pytest.approx(345.6, rel=0.01)
        assert est.bound == "instruction issue"

    def test_gflops_scale_with_fma_fraction(self):
        t = synthetic_trace(fma=1e8, ialu=1e8)
        est = estimate_time(t, 48, 256, 10)
        assert est.gflops == pytest.approx(172.8, rel=0.01)

    def test_sync_overhead_slows_kernel(self):
        base = estimate_time(synthetic_trace(fma=1e6), 48, 256, 10)
        with_sync = estimate_time(synthetic_trace(fma=1e6, syncs=2e5),
                                  48, 256, 10)
        assert with_sync.seconds > base.seconds

    def test_uncoalesced_replay_slows_kernel(self):
        t0 = synthetic_trace(fma=1e6, ld_global=1e5, bus_bytes=64e5)
        t1 = synthetic_trace(fma=1e6, ld_global=1e5, bus_bytes=64e5,
                             uncoal=16e5)
        a = estimate_time(t0, 48, 256, 10)
        b = estimate_time(t1, 48, 256, 10)
        assert b.seconds > a.seconds
        assert b.bound == "memory bandwidth"   # replay-dominated rename


class TestSfuPipe:
    def test_sfu_heavy_kernel_is_sfu_bound(self):
        t = synthetic_trace(fma=1e5, sfu=2e5)
        est = estimate_time(t, 48, 256, 10)
        assert est.bound == "SFU throughput"
        # SFU pipe: 16 cycles/warp-inst vs 4 issue cycles
        assert est.sfu_seconds > est.issue_seconds

    def test_sfu_light_kernel_is_not(self):
        t = synthetic_trace(fma=1e6, sfu=1e5)
        est = estimate_time(t, 48, 256, 10)
        assert est.bound == "instruction issue"


class TestBandwidthBound:
    def test_streaming_kernel_bound_by_dram(self):
        # few instructions, lots of bytes
        t = synthetic_trace(fma=1e4, ld_global=3e4, bus_bytes=1e10)
        est = estimate_time(t, 48, 256, 10)
        assert est.bound == "memory bandwidth"
        expected = 1e10 / (86.4e9 * DEFAULT_DEVICE.timing.dram_efficiency)
        assert est.bandwidth_seconds == pytest.approx(expected)

    def test_efficiency_knob(self):
        t = synthetic_trace(fma=1e4, ld_global=3e4, bus_bytes=1e10)
        slow = estimate_time(t, 48, 256, 10,
                             spec=DEFAULT_DEVICE.with_timing(
                                 dram_efficiency=0.4))
        fast = estimate_time(t, 48, 256, 10)
        assert slow.seconds > fast.seconds


class TestLatencyBound:
    def _mem_heavy(self, threads):
        # one global load every 2 instructions, few warps
        return synthetic_trace(fma=1e5, ld_global=1e5, bus_bytes=64e5,
                               threads=threads)

    def test_low_occupancy_exposes_latency(self):
        t = self._mem_heavy(threads=128 * 16)
        low = estimate_time(t, 16, 128, 60)     # 1 block/SM (regs)
        high = estimate_time(self._mem_heavy(threads=768 * 16 * 1),
                             48, 256, 10)
        assert low.latency_seconds > low.issue_seconds
        # relative latency exposure shrinks with occupancy
        assert (low.latency_seconds / low.issue_seconds
                > high.latency_seconds / high.issue_seconds)

    def test_barrier_phased_kernels_only_count_other_blocks(self):
        t = synthetic_trace(fma=1e5, ld_global=1e5, bus_bytes=64e5,
                            syncs=1e4)
        one_block = estimate_time(t, 16, 256, 30)   # 1 block/SM
        three_blocks = estimate_time(t, 48, 256, 10)
        assert one_block.latency_seconds / one_block.issue_seconds >= \
            three_blocks.latency_seconds / three_blocks.issue_seconds


class TestConfigEffects:
    def test_unschedulable_kernel_raises(self):
        t = synthetic_trace(fma=1e4)
        with pytest.raises(LaunchConfigError):
            estimate_time(t, 16, 512, 20)   # 10240 regs/block > 8192

    def test_small_grid_uses_fewer_sms(self):
        t = synthetic_trace(fma=1e8)
        one = estimate_time(t, 1, 256, 10)
        many = estimate_time(t, 48, 256, 10)
        assert one.seconds > many.seconds
        # one block runs on one SM: 16x fewer SMs and 1/3 the per-SM
        # concurrency bookkeeping -> 16x the issue time
        assert one.issue_seconds == pytest.approx(
            many.issue_seconds * 16, rel=0.01)

    def test_wave_quantization(self):
        t = synthetic_trace(fma=1e6)
        # 49 blocks of 256 threads = 48 concurrent + 1 straggler
        est49 = estimate_time(t, 49, 256, 10)
        est48 = estimate_time(t, 48, 256, 10)
        assert est49.seconds > est48.seconds

    def test_launch_overhead_floor(self):
        t = synthetic_trace(fma=1.0)
        est = estimate_time(t, 1, 32, 10)
        assert est.seconds >= DEFAULT_DEVICE.timing.kernel_launch_overhead_s

    def test_components_accessor(self):
        est = estimate_time(synthetic_trace(fma=1e5), 48, 256, 10)
        comps = est.components()
        assert set(comps) == {"instruction issue", "SFU throughput",
                              "memory bandwidth", "memory latency"}
        assert est.seconds == pytest.approx(
            max(comps.values()) + est.launch_overhead_seconds)


class TestBoundAnalysis:
    def test_empty_trace(self):
        ba = analyze_bounds(KernelTrace())
        assert ba.potential_gflops == 0.0
        assert not ba.memory_bound

    def test_pure_fma_potential_is_peak(self):
        t = synthetic_trace(fma=1e5)
        ba = analyze_bounds(t)
        assert ba.potential_gflops == pytest.approx(345.6)

    def test_sfu_credit_capped_at_388(self):
        t = synthetic_trace(fma=8e5, sfu=8e5)
        ba = analyze_bounds(t)
        assert ba.potential_gflops <= 388.8 + 1e-9

    def test_bandwidth_limited_gflops(self):
        t = synthetic_trace(fma=1e5, ld_global=1e5, bus_bytes=1e9,
                            useful_bytes=1e9)
        ba = analyze_bounds(t)
        if ba.memory_bound:
            assert ba.bandwidth_limited_gflops < ba.potential_gflops


class TestCpuModel:
    def test_scalar_instruction_cost(self):
        t = synthetic_trace(fma=1e6, threads=32e6)
        est = estimate_cpu_time(t, CpuCostParams(miss_fraction=0.0))
        # 32e6 scalar FMAs at 1/cycle on 2.2 GHz
        assert est.seconds == pytest.approx(32e6 / 2.2e9, rel=1e-6)

    def test_simd_speeds_up_float_work(self):
        t = synthetic_trace(fma=1e6, threads=32e6)
        scalar = estimate_cpu_time(t, CpuCostParams(miss_fraction=0))
        simd = estimate_cpu_time(t, CpuCostParams(simd=True, miss_fraction=0))
        assert scalar.seconds / simd.seconds == pytest.approx(4.0)

    def test_trig_is_expensive_on_cpu(self):
        t = synthetic_trace(sfu=1e6, threads=32e6)
        est = estimate_cpu_time(t, CpuCostParams(miss_fraction=0))
        assert est.seconds == pytest.approx(32e6 * 30 / 2.2e9, rel=1e-6)

    def test_libm_trig_even_more(self):
        t = synthetic_trace(sfu=1e6, threads=32e6)
        fast = estimate_cpu_time(t, CpuCostParams(miss_fraction=0))
        slow = estimate_cpu_time(t, CpuCostParams(miss_fraction=0,
                                                  fast_math=False))
        assert slow.seconds == pytest.approx(4 * fast.seconds)

    def test_streaming_bound(self):
        t = synthetic_trace(fma=1.0, ld_global=1.0, bus_bytes=64,
                            useful_bytes=1e10)
        est = estimate_cpu_time(t, CpuCostParams(miss_fraction=1.0))
        assert est.seconds == pytest.approx(1e10 / 3.0e9)
        assert est.mem_seconds > est.op_seconds

    def test_op_scale(self):
        t = synthetic_trace(ialu=1e6, threads=32e6)
        a = estimate_cpu_time(t, CpuCostParams(miss_fraction=0, op_scale=1.0))
        b = estimate_cpu_time(t, CpuCostParams(miss_fraction=0, op_scale=0.5))
        assert a.seconds == pytest.approx(2 * b.seconds)

    def test_gflops_property(self):
        t = synthetic_trace(fma=1e6, threads=32e6)
        est = estimate_cpu_time(t, CpuCostParams(miss_fraction=0))
        assert est.gflops == pytest.approx(2 * 2.2, rel=1e-6)
