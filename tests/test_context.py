"""Tests for the kernel DSL: instruction accounting, divergence,
memory semantics and error checking."""

import numpy as np
import pytest

from repro.arch import DEFAULT_DEVICE
from repro.cuda import CudaModelError, Device, Dim3
from repro.cuda.context import BlockContext
from repro.sim.memsys import DirectMappedCache
from repro.trace import InstrClass, KernelTrace


def make_ctx(block=(256,), grid=(1,), coord=(0, 0, 0), traced=True,
             caches=None):
    trace = KernelTrace() if traced else None
    return BlockContext(DEFAULT_DEVICE, Dim3(*grid), Dim3(*block), coord,
                        trace=trace, caches=caches)


class TestThreadIdentity:
    def test_1d_coordinates(self):
        ctx = make_ctx((64,))
        assert ctx.nthreads == 64
        np.testing.assert_array_equal(ctx.tx, np.arange(64))
        assert (ctx.ty == 0).all() and (ctx.tz == 0).all()

    def test_2d_coordinates_x_fastest(self):
        ctx = make_ctx((16, 16))
        assert ctx.tx[17] == 1 and ctx.ty[17] == 1
        assert ctx.tx[255] == 15 and ctx.ty[255] == 15

    def test_global_tid(self):
        ctx = make_ctx((128,), grid=(4,), coord=(2, 0, 0))
        np.testing.assert_array_equal(ctx.global_tid(),
                                      2 * 128 + np.arange(128))

    def test_global_tid_xy(self):
        ctx = make_ctx((16, 16), grid=(8, 8), coord=(3, 5, 0))
        assert ctx.global_tid_x()[0] == 3 * 16
        assert ctx.global_tid_y()[0] == 5 * 16

    def test_warp_count_rounds_up(self):
        assert make_ctx((144,)).nwarps == 5
        assert make_ctx((16,)).nwarps == 1
        assert make_ctx((256,)).nwarps == 8


class TestInstructionAccounting:
    def test_full_block_warp_count(self):
        ctx = make_ctx((256,))
        ctx.fma(1.0, 2.0, 3.0)
        assert ctx.trace.warp_insts[InstrClass.FMA] == 8
        assert ctx.trace.thread_insts[InstrClass.FMA] == 256
        assert ctx.trace.flops == 512

    def test_half_empty_warp_still_issues(self):
        # 16-thread block (4x4 tile): one warp instruction, 16 threads
        ctx = make_ctx((16,))
        ctx.fadd(1.0, 1.0)
        assert ctx.trace.warp_insts[InstrClass.FADD] == 1
        assert ctx.trace.thread_insts[InstrClass.FADD] == 16

    def test_arithmetic_values(self):
        ctx = make_ctx((8,))
        x = ctx.fma(np.full(8, 2.0, np.float32), 3.0, 1.0)
        np.testing.assert_allclose(x, 7.0)
        assert ctx.fmul(2.0, 4.0)[0] == 8.0
        assert ctx.fsub(5.0, 2.0)[0] == 3.0
        assert ctx.fdiv(1.0, 4.0)[0] == 0.25
        assert ctx.iadd(2, 3)[0] == 5
        assert ctx.ishl(1, 4)[0] == 16
        assert ctx.ixor(6, 3)[0] == 5

    def test_flop_accounting_mix(self):
        ctx = make_ctx((32,))
        ctx.fadd(1.0, 1.0)     # 1 flop/thread
        ctx.fma(1.0, 1.0, 1.0)  # 2 flops/thread
        ctx.iadd(1, 1)          # 0
        assert ctx.trace.flops == 32 * 3

    def test_sfu_ops(self):
        ctx = make_ctx((32,))
        s = ctx.sfu_sin(np.full(32, np.pi / 2, np.float32))
        np.testing.assert_allclose(s, 1.0, rtol=1e-6)
        r = ctx.sfu_rsqrt(np.full(32, 4.0, np.float32))
        np.testing.assert_allclose(r, 0.5, rtol=1e-6)
        assert ctx.trace.warp_insts[InstrClass.SFU] == 2

    def test_loop_tail_emits_three_classes(self):
        ctx = make_ctx((32,))
        ctx.loop_tail(2)
        assert ctx.trace.warp_insts[InstrClass.IALU] == 2
        assert ctx.trace.warp_insts[InstrClass.SETP] == 1
        assert ctx.trace.warp_insts[InstrClass.BRANCH] == 1

    def test_untraced_context_is_silent(self):
        ctx = make_ctx((32,), traced=False)
        ctx.fma(1.0, 1.0, 1.0)   # must not crash
        assert ctx.trace is None

    def test_select_predication(self):
        ctx = make_ctx((8,))
        out = ctx.select(ctx.tid % 2 == 0, 1.0, -1.0)
        np.testing.assert_array_equal(out[:4], [1.0, -1.0, 1.0, -1.0])
        assert ctx.trace.warp_insts[InstrClass.SETP] == 1


class TestDivergence:
    def test_masked_counts_only_active_warps(self):
        ctx = make_ctx((256,))   # 8 warps
        with ctx.masked(ctx.tid < 32):
            ctx.fma(1.0, 1.0, 1.0)
        # only warp 0 has active threads
        assert ctx.trace.warp_insts[InstrClass.FMA] == 1
        assert ctx.trace.thread_insts[InstrClass.FMA] == 32

    def test_divergent_warp_pays_both_paths(self):
        ctx = make_ctx((32,))
        cond = ctx.tid < 16
        with ctx.masked(cond):
            ctx.fadd(1.0, 1.0)
        with ctx.masked(~cond):
            ctx.fadd(1.0, 1.0)
        # one warp executes both sides: 2 warp instructions
        assert ctx.trace.warp_insts[InstrClass.FADD] == 2

    def test_nested_masks_intersect(self):
        ctx = make_ctx((64,))
        with ctx.masked(ctx.tid < 48):
            with ctx.masked(ctx.tid >= 16):
                ctx.fadd(1.0, 1.0)
                assert ctx.mask.sum() == 32
        assert ctx.mask.all()

    def test_masked_store_only_writes_active_lanes(self):
        dev = Device()
        arr = dev.alloc(32, np.float32, "out")
        ctx = make_ctx((32,))
        with ctx.masked(ctx.tid < 10):
            ctx.st_global(arr, ctx.tid, 5.0)
        host = arr.to_host()
        assert (host[:10] == 5.0).all() and (host[10:] == 0.0).all()

    def test_any_active(self):
        ctx = make_ctx((32,))
        with ctx.masked(ctx.tid < 4):
            assert ctx.any_active(ctx.tid == 3)
            assert not ctx.any_active(ctx.tid == 20)

    def test_sync_inside_divergence_raises(self):
        ctx = make_ctx((32,))
        with ctx.masked(ctx.tid < 16):
            with pytest.raises(CudaModelError, match="divergent"):
                ctx.sync()

    def test_sync_with_uniform_true_mask_allowed(self):
        ctx = make_ctx((32,))
        with ctx.masked(np.ones(32, bool)):
            ctx.sync()
        assert ctx.trace.warp_insts[InstrClass.SYNC] == 1


class TestGlobalMemory:
    def test_load_store_roundtrip(self):
        dev = Device()
        arr = dev.to_device(np.arange(64, dtype=np.float32), "x")
        ctx = make_ctx((64,))
        v = ctx.ld_global(arr, ctx.tid)
        ctx.st_global(arr, ctx.tid, v * 2)
        np.testing.assert_array_equal(arr.to_host(),
                                      np.arange(64, dtype=np.float32) * 2)

    def test_coalesced_access_recorded(self):
        dev = Device()
        arr = dev.to_device(np.zeros(256, np.float32), "x")
        ctx = make_ctx((256,))
        ctx.ld_global(arr, ctx.tid)
        t = ctx.trace
        assert t.global_transactions == 16           # 16 half-warps
        assert t.uncoalesced_transactions == 0
        assert t.global_bus_bytes == 256 * 4
        assert t.per_array["x"].transactions_per_access == 1.0

    def test_strided_access_serializes(self):
        dev = Device()
        arr = dev.to_device(np.zeros(1024, np.float32), "x")
        ctx = make_ctx((256,))
        ctx.ld_global(arr, ctx.tid * 4)
        t = ctx.trace
        assert t.coalesced_fraction == 0.0
        assert t.per_array["x"].transactions_per_access == 16.0

    def test_out_of_bounds_raises(self):
        dev = Device()
        arr = dev.to_device(np.zeros(16, np.float32), "x")
        ctx = make_ctx((32,))
        with pytest.raises(CudaModelError, match="out-of-bounds"):
            ctx.ld_global(arr, ctx.tid)

    def test_out_of_bounds_masked_off_is_fine(self):
        dev = Device()
        arr = dev.to_device(np.zeros(16, np.float32), "x")
        ctx = make_ctx((32,))
        with ctx.masked(ctx.tid < 16):
            ctx.ld_global(arr, ctx.tid)   # inactive lanes point past end

    def test_space_confusion_rejected(self):
        dev = Device()
        const = dev.to_constant(np.zeros(8, np.float32), "c")
        ctx = make_ctx((8,))
        with pytest.raises(CudaModelError):
            ctx.ld_global(const, ctx.tid)

    def test_atomic_add_accumulates_duplicates(self):
        dev = Device()
        arr = dev.alloc(4, np.float32, "hist")
        ctx = make_ctx((64,))
        ctx.atom_global_add(arr, ctx.tid % 4, 1.0)
        np.testing.assert_array_equal(arr.to_host(), [16, 16, 16, 16])
        assert ctx.trace.warp_insts[InstrClass.ATOM_GLOBAL] == 2


class TestSharedMemory:
    def test_alloc_and_roundtrip(self):
        ctx = make_ctx((64,))
        sh = ctx.shared_alloc(64, np.float32, "buf")
        ctx.st_shared(sh, ctx.tid, ctx.tid.astype(np.float32))
        v = ctx.ld_shared(sh, 63 - ctx.tid)
        np.testing.assert_array_equal(v, (63 - ctx.tid).astype(np.float32))

    def test_smem_metering(self):
        ctx = make_ctx((64,))
        ctx.shared_alloc((16, 16), np.float32)
        assert ctx.smem_bytes == 1024
        ctx.shared_alloc((16, 16), np.float32)
        assert ctx.smem_bytes == 2048

    def test_smem_overflow_raises(self):
        ctx = make_ctx((64,))
        with pytest.raises(CudaModelError, match="shared memory overflow"):
            ctx.shared_alloc(5000, np.float32)  # 20 KB > 16 KB

    def test_bank_conflicts_recorded(self):
        ctx = make_ctx((16,))
        sh = ctx.shared_alloc(256, np.float32)
        ctx.ld_shared(sh, ctx.tid * 2)    # stride 2 -> degree 2
        assert ctx.trace.shared_conflict_cycles > 0

    def test_conflict_free_access_records_nothing(self):
        ctx = make_ctx((16,))
        sh = ctx.shared_alloc(64, np.float32)
        ctx.ld_shared(sh, ctx.tid)
        assert ctx.trace.shared_conflict_cycles == 0

    def test_shared_store_oob(self):
        ctx = make_ctx((16,))
        sh = ctx.shared_alloc(8, np.float32)
        with pytest.raises(CudaModelError, match="out of bounds"):
            ctx.st_shared(sh, ctx.tid, 1.0)


class TestCachedPaths:
    def test_constant_broadcast_hits(self):
        dev = Device()
        c = dev.to_constant(np.arange(16, dtype=np.float32), "coef")
        caches = {"const": DirectMappedCache(8 * 1024)}
        ctx = make_ctx((64,), caches=caches)
        v = ctx.ld_const(c, np.zeros(64, dtype=np.int64))
        assert (v == 0.0).all()
        ctx.ld_const(c, np.zeros(64, dtype=np.int64))
        assert ctx.trace.const_hits >= 1
        assert ctx.trace.warp_insts[InstrClass.LD_CONST] == 4

    def test_texture_miss_generates_dram_traffic(self):
        dev = Device()
        t = dev.to_texture(np.zeros((64, 64), np.float32), "grid")
        caches = {"tex": DirectMappedCache(8 * 1024)}
        ctx = make_ctx((64,), caches=caches)
        ctx.ld_tex(t, ctx.tid * 64)   # 64 distinct lines -> misses
        assert ctx.trace.tex_misses > 0
        assert ctx.trace.global_bus_bytes > 0

    def test_ld_const_on_global_array_rejected(self):
        dev = Device()
        g = dev.to_device(np.zeros(8, np.float32))
        ctx = make_ctx((8,))
        with pytest.raises(CudaModelError):
            ctx.ld_const(g, ctx.tid)
