"""Tests for KernelTrace aggregation, scaling and derived metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace import (
    ArrayAccessStats,
    InstrClass,
    KernelTrace,
    flops_of,
    is_global_memory,
    is_sfu,
)


def sample_trace(fma=10.0, lds=5.0, ldg=3.0, sync=1.0):
    t = KernelTrace()
    t.record_instr(InstrClass.FMA, fma, fma * 32)
    t.record_instr(InstrClass.LD_SHARED, lds, lds * 32)
    t.record_instr(InstrClass.LD_GLOBAL, ldg, ldg * 32)
    t.record_instr(InstrClass.SYNC, sync, sync * 32)
    t.record_global_access("x", warp_accesses=6, transactions=8,
                           bus_bytes=512, useful_bytes=384,
                           coalesced_accesses=5)
    t.record_shared_conflict(10.0)
    t.record_cache("const", hits=7, misses=3)
    t.blocks_traced = 1
    t.threads_traced = 256
    return t


class TestInstrHelpers:
    def test_flops_of(self):
        assert flops_of(InstrClass.FMA) == 2
        assert flops_of(InstrClass.FADD) == 1
        assert flops_of(InstrClass.IALU) == 0
        assert flops_of(InstrClass.SFU) == 1

    def test_class_predicates(self):
        assert is_global_memory(InstrClass.LD_GLOBAL)
        assert is_global_memory(InstrClass.ATOM_GLOBAL)
        assert not is_global_memory(InstrClass.LD_SHARED)
        assert is_sfu(InstrClass.SFU) and is_sfu(InstrClass.FDIV)
        assert not is_sfu(InstrClass.FMA)


class TestRecording:
    def test_flop_accounting(self):
        t = sample_trace()
        assert t.flops == 10 * 32 * 2

    def test_sync_counted(self):
        assert sample_trace().syncs == 1.0

    def test_fma_fraction(self):
        t = sample_trace()
        assert t.fma_fraction == pytest.approx(10 / 19)

    def test_memory_to_compute_ratio(self):
        t = sample_trace()
        assert t.memory_to_compute_ratio == pytest.approx(3 / 16)

    def test_coalesced_fraction(self):
        t = sample_trace()
        # 8 transactions, 5 of them from coalesced accesses
        assert t.coalesced_fraction == pytest.approx(1 - 3 / 8)

    def test_per_array_stats(self):
        s = sample_trace().per_array["x"]
        assert s.transactions_per_access == pytest.approx(8 / 6)
        assert s.bus_efficiency == pytest.approx(384 / 512)

    def test_cache_recording(self):
        t = sample_trace()
        assert t.const_hits == 7 and t.const_misses == 3
        t.record_cache("l2", 2, 1)       # a real level on cached devices
        assert t.l2_hits == 2 and t.l2_misses == 1
        with pytest.raises(ValueError):
            t.record_cache("l3", 1, 1)

    def test_instruction_mix_normalized(self):
        mix = sample_trace().instruction_mix()
        assert sum(mix.values()) == pytest.approx(1.0)
        assert mix["fma"] == pytest.approx(10 / 19)

    def test_empty_trace_metrics(self):
        t = KernelTrace()
        assert t.fma_fraction == 0.0
        assert t.coalesced_fraction == 1.0
        assert t.memory_to_compute_ratio == 0.0
        assert t.instruction_mix() == {}

    def test_pure_memory_trace_ratio_inf(self):
        t = KernelTrace()
        t.record_instr(InstrClass.LD_GLOBAL, 4, 128)
        assert t.memory_to_compute_ratio == float("inf")


class TestMergeAndScale:
    def test_merge_adds_everything(self):
        a, b = sample_trace(), sample_trace()
        a.merge(b)
        assert a.warp_insts[InstrClass.FMA] == 20
        assert a.flops == 2 * 10 * 32 * 2
        assert a.global_bus_bytes == 1024
        assert a.per_array["x"].transactions == 16
        assert a.shared_conflict_cycles == 20.0
        assert a.const_hits == 14
        assert a.blocks_traced == 2

    def test_merge_distinct_arrays(self):
        a = sample_trace()
        b = KernelTrace()
        b.record_global_access("y", 1, 1, 64, 64, 1)
        a.merge(b)
        assert set(a.per_array) == {"x", "y"}

    @settings(max_examples=30, deadline=None)
    @given(factor=st.floats(0.1, 100.0))
    def test_scaling_is_linear(self, factor):
        t = sample_trace()
        s = t.scaled(factor)
        assert s.total_warp_insts == pytest.approx(
            t.total_warp_insts * factor)
        assert s.flops == pytest.approx(t.flops * factor)
        assert s.global_bus_bytes == pytest.approx(
            t.global_bus_bytes * factor)
        assert s.syncs == pytest.approx(t.syncs * factor)

    @settings(max_examples=30, deadline=None)
    @given(factor=st.floats(0.1, 100.0))
    def test_scaling_preserves_ratios(self, factor):
        t = sample_trace()
        s = t.scaled(factor)
        assert s.fma_fraction == pytest.approx(t.fma_fraction)
        assert s.coalesced_fraction == pytest.approx(t.coalesced_fraction)
        assert s.memory_to_compute_ratio == pytest.approx(
            t.memory_to_compute_ratio)
        assert s.per_array["x"].bus_efficiency == pytest.approx(
            t.per_array["x"].bus_efficiency)

    def test_scale_then_merge_equals_merge_then_scale(self):
        a1, a2 = sample_trace(), sample_trace()
        merged = KernelTrace()
        merged.merge(a1)
        merged.merge(a2)
        merged_scaled = merged.scaled(3.0)

        s1, s2 = a1.scaled(3.0), a2.scaled(3.0)
        scaled_merged = KernelTrace()
        scaled_merged.merge(s1)
        scaled_merged.merge(s2)
        assert merged_scaled.total_warp_insts == pytest.approx(
            scaled_merged.total_warp_insts)
        assert merged_scaled.global_bus_bytes == pytest.approx(
            scaled_merged.global_bus_bytes)

    def test_summary_keys(self):
        s = sample_trace().summary()
        for key in ("warp_insts", "flops", "fma_fraction",
                    "global_transactions", "coalesced_fraction"):
            assert key in s


class TestArrayAccessStats:
    def test_empty_stats(self):
        s = ArrayAccessStats("z")
        assert s.transactions_per_access == 0.0
        assert s.bus_efficiency == 1.0

    def test_scaled(self):
        s = ArrayAccessStats("z", 2, 4, 256, 128, 1).scaled(2.0)
        assert s.warp_accesses == 4 and s.transactions == 8
        assert s.bus_efficiency == pytest.approx(0.5)
