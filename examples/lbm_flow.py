"""Lattice-Boltzmann fluid flow and the Figure 5 layout study.

Runs the D2Q9 LBM functionally (checking mass conservation and
agreement with the NumPy reference), then replays the paper's
memory-layout experiment: cell-major (array-of-structures, the layout
the SPEC code arrives with), plane-major (structure-of-arrays), and
the texture-cache path that Section 5.2 credits with a 2.8X kernel
improvement over global-only access.

Run:  python examples/lbm_flow.py
"""

import numpy as np

from repro.apps.lbm import Lbm, lbm_reference
from repro.bench import run_figure5


def main():
    app = Lbm()

    # ---- physics sanity at small scale -------------------------------
    wl = {"nx": 64, "ny": 32, "steps": 8, "total_steps": 8,
          "layout": "soa"}
    run = app.run(wl, functional=True)
    f = run.outputs["f"]
    ref = lbm_reference(64, 32, 8)
    np.testing.assert_allclose(f, ref, rtol=1e-3, atol=1e-4)
    mass0 = lbm_reference(64, 32, 0).sum()
    print("D2Q9 lattice-Boltzmann, 64x32 torus, 8 steps")
    print("  matches NumPy reference: OK")
    print(f"  mass conservation: initial {mass0:.3f}, "
          f"final {f.sum():.3f} "
          f"(drift {abs(f.sum() - mass0) / mass0:.2e})")
    u_max = np.abs(f).max()
    print(f"  max |f| = {u_max:.4f} (stable)")

    # ---- the paper's layout study -------------------------------------
    print("\nFigure 5 — global load access patterns")
    print(run_figure5(nx=256, ny=256).render())

    # ---- time-sliced kernel structure ----------------------------------
    full = app.run(app.default_workload("full"), functional=False)
    print(f"\ntime-sliced execution: {len(full.launches)} traced kernel "
          f"launches stand in for "
          f"{int(full.workload['total_steps'])} steps")
    print(f"  every step streams the whole lattice through DRAM — "
          f"bottleneck: {full.bottleneck}")
    print(f"  kernel speedup {full.kernel_speedup:.1f}x, app speedup "
          f"{full.app_speedup:.1f}x (paper: ~12.5x / ~12.3x)")


if __name__ == "__main__":
    main()
