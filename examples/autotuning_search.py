"""Automatic optimization-space exploration (the paper's Section 6).

"It is also possible to get stuck in local maximums of performance
when attempting to follow a particular optimization strategy. ...
Better tools ... that allow programmers to ... automatically
experiment with their performance effects would greatly reduce the
optimization effort."

This example runs that tool over the matmul variant space
(tile size x unrolling x prefetching): an exhaustive model-driven
sweep, identification of every local maximum, and greedy hill-climbing
runs that demonstrate the trap — from the naive kernel the first
tiling step (4x4) is a *regression*, so a one-step-at-a-time tuner
never finds the 16x16-unrolled global optimum.

Run:  python examples/autotuning_search.py [n]
"""

import sys

from repro.bench.tables import format_table
from repro.sim.autotuner import MatmulAutotuner, Point


def label(p: Point) -> str:
    return p.config.label if p.tile else "not tiled"


def main(n: int = 1024) -> None:
    tuner = MatmulAutotuner(n=n, trace_blocks=2)

    print(f"exhaustive sweep of {len(tuner.space())} matmul variants "
          f"at {n}x{n}\n" + "=" * 60)
    result = tuner.exhaustive()
    rows = sorted(((label(p), round(g, 2)) for p, g in
                   result.evaluations.items()), key=lambda r: -r[1])
    print(format_table(["configuration", "GFLOPS"], rows))

    print(f"\nglobal optimum: {label(result.best)} "
          f"({result.best_gflops:.1f} GFLOPS)")
    print("local maxima under one-transformation moves:")
    for p, g in result.local_maxima:
        kind = "GLOBAL" if result.is_global(p) else "local trap"
        print(f"  {label(p):16s} {g:7.2f} GFLOPS  [{kind}]")

    print("\ngreedy hill-climbing (Section 6's cautionary tale)")
    print("-" * 60)
    for start in (Point(0, False, False), Point(8, False, False),
                  Point(16, True, True)):
        end, gflops, path = tuner.hill_climb(start)
        trail = " -> ".join(label(p) for p in path)
        verdict = "reached the global optimum" if result.is_global(end) \
            else f"STUCK at a local maximum ({gflops:.1f} GFLOPS)"
        print(f"  from {label(start):12s}: {trail}\n"
              f"    {verdict}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1024)
