"""Non-Cartesian MRI reconstruction on the simulated GPU.

Runs the paper's two MRI kernels end to end — the Q-matrix
precomputation and the F^H d vector — and demonstrates *why* they top
Table 3: trigonometry executes on the SFUs, sample data broadcasts
from the constant cache, and there is almost no global traffic.  The
script finishes with the Section 5.1 SFU ablation ("approximately 30%
of the speedup").

Run:  python examples/mri_reconstruction.py
"""

from repro.apps import get_app
from repro.sim.timing import estimate_time
from repro.trace.instr import InstrClass


def describe(run, name):
    trace = run.merged_trace
    est = run.kernel_estimates()[0]
    print(f"\n{name}:")
    print(f"  SFU share of instructions : "
          f"{trace.sfu_warp_insts / trace.total_warp_insts:.1%}")
    print(f"  constant-cache hit rate   : "
          f"{trace.const_hits / max(trace.const_hits + trace.const_misses, 1):.1%}")
    print(f"  memory/compute ratio      : "
          f"{trace.memory_to_compute_ratio:.4f}")
    print(f"  bound                     : {est.bound}")
    print(f"  kernel speedup vs Opteron : {run.kernel_speedup:.0f}x "
          f"(paper: 457x for MRI-Q, 316x for MRI-FHD)")
    print(f"  app speedup (Amdahl+PCIe) : {run.app_speedup:.0f}x")


def sfu_ablation(run):
    """Re-time MRI-Q with each sin/cos lowered to ~5 SP instructions
    (a range-limited polynomial evaluated on the SP pipe)."""
    launched = run.launches[0]
    trace = launched.trace.scaled(1.0)
    warps = trace.warp_insts.pop(InstrClass.SFU, 0.0)
    threads = trace.thread_insts.pop(InstrClass.SFU, 0.0)
    trace.warp_insts[InstrClass.FMA] += warps * 5
    trace.thread_insts[InstrClass.FMA] += threads * 5
    est = estimate_time(trace, launched.num_blocks,
                        launched.threads_per_block,
                        launched.kernel.regs_per_thread,
                        launched.smem_bytes_per_block, spec=launched.spec)
    slow = est.seconds * len(run.launches)
    return run.cpu_kernel_seconds / slow


def main():
    print("MRI reconstruction kernels (Stone et al. via Ryoo et al.)")
    print("=" * 60)

    for name in ("mri-q", "mri-fhd"):
        app = get_app(name)
        # functional check at test scale first
        app.verify()
        print(f"{name}: functional check vs NumPy reference OK")
        run = app.run(app.default_workload("full"), functional=False)
        describe(run, name)
        if name == "mri-q":
            q_run = run

    print("\nSFU ablation (Section 5.1: trig on SFUs ~= 30% of speedup)")
    print("-" * 60)
    without = sfu_ablation(q_run)
    with_sfu = q_run.kernel_speedup
    print(f"  with SFUs    : {with_sfu:.0f}x")
    print(f"  without SFUs : {without:.0f}x")
    print(f"  SFU share of the speedup: {1 - without / with_sfu:.0%}")


if __name__ == "__main__":
    main()
