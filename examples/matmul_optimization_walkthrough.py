"""The Section 4 optimization walkthrough, narrated.

Replays the paper's matrix-multiplication journey on the simulated
GeForce 8800 GTX, printing the same analysis the paper performs at
each step: instruction mix, potential throughput, bandwidth demand,
occupancy, and the achieved GFLOPS — ending with the Figure 4 sweep
and the prefetching cautionary tale of Section 4.4.

Run:  python examples/matmul_optimization_walkthrough.py [n]
      (n defaults to 1024; the paper uses 4096)
"""

import sys

from repro.apps.matmul import MatMul
from repro.bench import run_figure4
from repro.data import paper
from repro.sim.bounds import analyze_bounds

NARRATIVE = {
    "naive": (
        "Step 1 — naive kernel (Figure 3(a)): one thread per result\n"
        "element, dot product straight from global memory."),
    "tiled": (
        "Step 2 — 16x16 tiling (Figure 3(b)): stage input tiles in\n"
        "shared memory; global loads drop 16x and coalesce."),
    "tiled_unrolled": (
        "Step 3 — full inner-loop unrolling (Section 4.3): delete the\n"
        "branches, induction updates and address arithmetic; one\n"
        "register is freed (the induction variable)."),
    "prefetch": (
        "Step 4 — register prefetching (Section 4.4): overlap the next\n"
        "tile's loads with computation.  Two extra registers push the\n"
        "kernel from 3 to 2 blocks/SM: the optimization BACKFIRES."),
}


def main(n: int = 1024) -> None:
    app = MatMul()
    print(f"matrix multiplication study at {n}x{n} "
          f"(paper: 4096x4096)\n" + "=" * 60)
    prev = None
    for variant in ("naive", "tiled", "tiled_unrolled", "prefetch"):
        print("\n" + NARRATIVE[variant])
        run = app.run({"n": n, "variant": variant, "tile": 16,
                       "trace_blocks": 2}, functional=False)
        launched = run.launches[0]
        est = launched.estimate()
        bounds = analyze_bounds(launched.trace, launched.spec)
        occ = est.occupancy
        ref = paper.MATMUL_GFLOPS[variant].value

        print(f"  instruction mix : FMA fraction "
              f"{launched.trace.fma_fraction:.3f} "
              f"-> potential {bounds.potential_gflops:.1f} GFLOPS")
        print(f"  bandwidth demand: {bounds.bandwidth_demand_gbs:.1f} GB/s "
              f"(available: {bounds.bandwidth_available_gbs} GB/s)")
        print(f"  occupancy       : {occ.blocks_per_sm} blocks/SM, "
              f"{occ.active_threads_per_sm} threads/SM "
              f"({launched.kernel.regs_per_thread} regs/thread)")
        print(f"  ACHIEVED        : {est.gflops:6.2f} GFLOPS "
              f"(paper: {ref}) — bound by {est.bound}")
        if prev is not None:
            print(f"  change vs previous step: {est.gflops / prev:.2f}x")
        prev = est.gflops

    print("\nFigure 4 — tile size sweep\n" + "-" * 60)
    print(run_figure4(n=n, trace_blocks=2).render())
    print("\nLessons (paper Section 4): balance threads per SM against\n"
          "per-thread resources; more optimization is not always faster.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1024)
