"""Quickstart: write a kernel, launch it, and read the performance model.

This walks the core loop of the library in ~60 lines:

1. allocate device arrays on the simulated GeForce 8800 GTX;
2. write a kernel against the CUDA-like DSL;
3. launch over a grid of thread blocks (functionally correct results
   *and* an architectural trace come back);
4. ask the paper's questions: what's the occupancy, the instruction
   mix, the potential throughput, and which resource bounds the run?

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.arch import DEFAULT_DEVICE
from repro.cuda import Device, kernel, launch
from repro.sim.bounds import analyze_bounds


@kernel("smooth3", regs_per_thread=8)
def smooth3(ctx, src, dst, n):
    """1D three-point smoothing: dst[i] = (src[i-1]+src[i]+src[i+1])/3."""
    i = ctx.global_tid()
    ctx.address_ops(2)
    with ctx.masked((i > 0) & (i < n - 1)):
        left = ctx.ld_global(src, i - 1)    # misaligned: uncoalesced!
        mid = ctx.ld_global(src, i)
        right = ctx.ld_global(src, i + 1)   # misaligned the other way
        s = ctx.fadd(ctx.fadd(left, mid), right)
        ctx.st_global(dst, i, ctx.fmul(s, np.float32(1.0 / 3.0)))


def main():
    print(f"device: {DEFAULT_DEVICE.name}")
    print(f"  peak MAD throughput : {DEFAULT_DEVICE.peak_mad_gflops} GFLOPS")
    print(f"  DRAM bandwidth      : {DEFAULT_DEVICE.dram_bandwidth_gbs} GB/s")

    n = 1 << 16
    dev = Device()
    rng = np.random.default_rng(0)
    data = rng.standard_normal(n).astype(np.float32)
    d_src = dev.to_device(data, "src")
    d_dst = dev.alloc(n, np.float32, "dst")

    result = launch(smooth3, grid=(n // 256,), block=(256,),
                    args=(d_src, d_dst, n), device=dev)

    # functional result, checked against NumPy
    out = dev.from_device(d_dst)
    expect = np.zeros_like(data)
    expect[1:-1] = (data[:-2] + data[1:-1] + data[2:]) / 3.0
    np.testing.assert_allclose(out, expect, rtol=1e-5, atol=1e-6)
    print(f"\nfunctional check vs NumPy: OK ({n} elements)")

    # the paper's analysis vocabulary
    occ = result.occupancy()
    print(f"\noccupancy: {occ.blocks_per_sm} blocks/SM, "
          f"{occ.active_threads_per_sm} threads/SM "
          f"(limited by {occ.limiter})")

    trace = result.trace
    print(f"instruction mix: {trace.instruction_mix()}")
    print(f"coalesced fraction of global transactions: "
          f"{trace.coalesced_fraction:.2f}  "
          f"(the +-1-offset loads serialize on the G80)")

    bounds = analyze_bounds(trace, result.spec)
    print(f"potential throughput: {bounds.potential_gflops:.1f} GFLOPS, "
          f"bandwidth demand {bounds.bandwidth_demand_gbs:.1f} GB/s")

    est = result.estimate()
    print(f"\nmodelled kernel time: {est.seconds * 1e6:.1f} us "
          f"-> {est.gflops:.2f} GFLOPS, bound by {est.bound}")
    for name, seconds in est.components().items():
        print(f"  {name:18s} {seconds * 1e6:8.1f} us")


if __name__ == "__main__":
    main()
