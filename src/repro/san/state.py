"""Shared sanitizer state: shadow memory, findings, launch logs.

One :class:`SanState` lives across every launch of a sanitized run
(the :class:`~repro.cuda.executors.SanitizedExecutor` holds it), so
definedness shadow bits survive from the launch that writes an array
to the launch that reads it, and the per-launch global read/write logs
accumulate into the dynamic mirror of the static inter-launch
dataflow rule (R7 in :mod:`repro.analysis.rules`).

Shadow structures:

* **bounds map** — every registered :class:`DeviceArray`'s simulated
  byte range, so an out-of-bounds index can be attributed to the
  neighbouring allocation its address lands in;
* **definedness bits** — one boolean per array cell, lazily created:
  arrays uploaded from the host start fully defined, ``alloc``-ed
  arrays start fully undefined (the model zero-fills them, real
  hardware does not);
* **pending uninitialized reads** — resolved at :meth:`finalize`:
  cells never written anywhere are HIGH, cells written only *later*
  (code relying on the model's zero-fill) are MEDIUM.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..analysis.findings import Finding, Severity

#: rules the sanitizer tools emit, mapped to the owning tool
SAN_RULES: Dict[str, str] = {
    "oob-global": "memcheck",
    "oob-shared": "memcheck",
    "shared-race": "racecheck",
    "divergent-sync": "synccheck",
    "barrier-mismatch": "synccheck",
    "uninit-global": "initcheck",
    "uninit-shared": "initcheck",
}

TOOLS: Tuple[str, ...] = ("memcheck", "racecheck", "synccheck", "initcheck")


class SanState:
    """Findings, shadow memory and launch logs for one sanitized run."""

    def __init__(self, tools: Optional[Iterable[str]] = None) -> None:
        tools = tuple(tools) if tools is not None else TOOLS
        unknown = set(tools) - set(TOOLS)
        if unknown:
            raise ValueError(
                f"unknown sanitizer tool(s) {sorted(unknown)}; "
                f"expected a subset of {list(TOOLS)}")
        self.tools = frozenset(tools)
        self.findings: List[Finding] = []
        self._seen: set = set()
        #: per-array definedness bits, keyed by array object identity
        self._defined: Dict[int, np.ndarray] = {}
        #: uninitialized reads awaiting the never-written/written-later
        #: verdict: (array, cells, line, kernel)
        self._pending: List[Tuple[object, np.ndarray, Optional[int], str]] = []
        #: simulated address ranges for OOB provenance:
        #: (base, end, name) sorted by base
        self._bounds: List[Tuple[int, int, str]] = []
        self._bounds_names: set = set()
        #: per-launch global-memory footprints (the dynamic R7 log)
        self.launch_log: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Tool gating / finding emission
    # ------------------------------------------------------------------
    def enabled(self, tool: str) -> bool:
        return tool in self.tools

    def emit(self, rule: str, severity: Severity, kernel: str,
             message: str, line: Optional[int] = None,
             array: str = "") -> None:
        # one finding per (rule, site, severity): the same hazard
        # re-observed in every block would otherwise repeat with only
        # the cell ranges / thread ids varying
        key = (rule, kernel, line, array, severity)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(rule, severity, kernel, message,
                                     line=line, array=array))

    def high_findings(self) -> List[Finding]:
        return [f for f in self.all_findings()
                if f.severity >= Severity.HIGH]

    # ------------------------------------------------------------------
    # Bounds shadow map (memcheck provenance)
    # ------------------------------------------------------------------
    def register_arrays(self, arrays: Iterable[object]) -> None:
        for arr in arrays:
            name = getattr(arr, "name", None)
            base = getattr(arr, "base_addr", None)
            if name is None or base is None or name in self._bounds_names:
                continue
            self._bounds_names.add(name)
            self._bounds.append((base, base + arr.nbytes, name))
        self._bounds.sort()

    def owner_of(self, addr: int) -> Optional[str]:
        """Name of the allocation a simulated byte address lands in."""
        for base, end, name in self._bounds:
            if base <= addr < end:
                return name
        return None

    # ------------------------------------------------------------------
    # Definedness shadow bits (initcheck)
    # ------------------------------------------------------------------
    def defined_bits(self, arr) -> np.ndarray:
        bits = self._defined.get(id(arr))
        if bits is None:
            initialized = bool(getattr(arr, "host_initialized", False))
            bits = np.full(arr.size, initialized, dtype=bool)
            self._defined[id(arr)] = bits
        return bits

    def note_write(self, arr, cells: np.ndarray) -> None:
        self.defined_bits(arr)[cells] = True

    def note_read(self, arr, cells: np.ndarray, line: Optional[int],
                  kernel: str) -> None:
        """Queue the undefined subset of a read for later triage."""
        bits = self.defined_bits(arr)
        undef = np.unique(cells[~bits[cells]])
        if undef.size:
            self._pending.append((arr, undef, line, kernel))

    def finalize(self) -> None:
        """Resolve pending uninitialized reads against the final shadow
        state: never-written cells are HIGH, written-only-later cells
        (zero-fill reliance) are MEDIUM."""
        pending, self._pending = self._pending, []
        for arr, cells, line, kernel in pending:
            bits = self._defined.get(id(arr))
            never = cells if bits is None else cells[~bits[cells]]
            space = getattr(arr, "space", "global")
            rule = "uninit-shared" if space == "shared" else "uninit-global"
            if never.size:
                self.emit(rule, Severity.HIGH, kernel,
                          f"read of {space} {arr.name!r} cells "
                          f"[{int(never.min())}, {int(never.max())}] never "
                          f"written anywhere — zero-filled in this model, "
                          f"garbage on real hardware",
                          line=line, array=arr.name)
            later = cells[bits[cells]] if bits is not None else \
                np.empty(0, dtype=cells.dtype)
            if later.size:
                self.emit(rule, Severity.MEDIUM, kernel,
                          f"read of {space} {arr.name!r} cells "
                          f"[{int(later.min())}, {int(later.max())}] not yet "
                          f"written at this point (written only later) — "
                          f"relies on the model's zero-fill",
                          line=line, array=arr.name)

    def all_findings(self) -> List[Finding]:
        """Findings with pending initcheck reads resolved, sorted."""
        self.finalize()
        return sorted(self.findings,
                      key=lambda f: (-int(f.severity), f.line or 0, f.rule))

    # ------------------------------------------------------------------
    # Launch log (dynamic R7 mirror)
    # ------------------------------------------------------------------
    def begin_launch(self, plan) -> None:
        self.launch_log.append({
            "index": len(self.launch_log),
            "kernel": plan.kernel.name,
            "reads": [],
            "writes": [],
            "first_op": {},
        })
        if plan.device is not None:
            self.register_arrays(plan.device.arrays.values())
        self.register_arrays(
            a for a in plan.args if hasattr(a, "base_addr"))

    def note_global_access(self, array: str, op: str) -> None:
        if not self.launch_log:
            return
        entry = self.launch_log[-1]
        if op in ("ld", "atom") and array not in entry["reads"]:
            entry["reads"].append(array)
        if op in ("st", "atom") and array not in entry["writes"]:
            entry["writes"].append(array)
        entry["first_op"].setdefault(array, "ld" if op != "st" else "st")

    def launch_accesses(self):
        """The run's launch sequence as
        :class:`repro.analysis.rules.LaunchAccess` records — feed these
        to :func:`repro.analysis.rules.classify_dataflow` for the
        dynamic side of the R7 cross-check."""
        from ..analysis.rules import LaunchAccess
        out = []
        for entry in self.launch_log:
            incoming = tuple(a for a in entry["reads"]
                             if entry["first_op"].get(a) == "ld")
            out.append(LaunchAccess(
                index=entry["index"], kernel=entry["kernel"],
                reads=tuple(entry["reads"]),
                writes=tuple(entry["writes"]),
                reads_incoming=incoming))
        return out

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "tools": sorted(self.tools),
            "findings": [f.to_dict() for f in self.all_findings()],
            "launches": [la.to_dict() for la in self.launch_accesses()],
        }

    def format_report(self) -> str:
        findings = self.all_findings()
        lines = [f"sanitizer report ({', '.join(sorted(self.tools))}): "
                 f"{len(findings)} finding(s)"]
        for f in findings:
            tool = SAN_RULES.get(f.rule, "?")
            lines.append(f"  {tool}: {f.format()}")
        return "\n".join(lines)
