"""Cross-validation: the static analyzer against the dynamic sanitizers.

Two independent detectors look at the same kernels — the abstract
interpreter with its hazard rules (:mod:`repro.analysis`) and the
shadow-memory sanitizers running real executions (:mod:`repro.san`).
This harness demands they agree:

* **clean sweep** — every registered application's test workload must
  be flagged by *neither* side (no HIGH findings statically, none
  dynamically);
* **broken sweep** — every kernel in :data:`repro.san.broken.BROKEN`
  must be caught at HIGH by *both* sides, through the expected rule;
* **dataflow sweep** — the static inter-launch dataflow rule (R7)
  must classify every array exactly as the sanitizer's observed
  launch log does, for the multi-launch applications;
* **identity sweep** — sanitizing must not perturb results: the
  sanitized run's outputs are bit-identical to the plain run's.

Run as ``python -m repro.san.validate`` (exit 1 on any disagreement);
the CI ``san`` job gates on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.findings import Severity
from ..analysis.lint import lint_app
from ..analysis.rules import classify_dataflow, launch_dataflow
from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from .broken import BROKEN
from .state import SanState

#: static-analyzer rules that mirror a sanitizer tool (the lint suite
#: also emits performance rules — coalescing, occupancy — that have no
#: dynamic counterpart and stay out of the verdict)
STATIC_SAN_RULES = frozenset(
    {"shared-race", "divergent-sync", "bounds", "shared-uninit",
     "divergence"})

#: multi-launch applications whose R7 classification is cross-checked
DATAFLOW_APPS = ("lbm", "fdtd", "mri-fhd")

#: applications for the bit-identity sweep (one global-only, one
#: shared-tiled, one multi-launch)
IDENTITY_APPS = ("saxpy", "matmul", "lbm")


@dataclass
class Check:
    """One static-vs-dynamic agreement check."""

    subject: str
    check: str
    static: object
    dynamic: object
    ok: bool

    def format(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        return (f"[{mark}] {self.subject}: {self.check}: "
                f"static={self.static} dynamic={self.dynamic}")

    def to_dict(self) -> Dict[str, object]:
        return {"subject": self.subject, "check": self.check,
                "static": self.static, "dynamic": self.dynamic,
                "ok": self.ok}


def _static_verdict(app_name: str, spec: DeviceSpec) -> bool:
    """True when the static analyzer flags a sanitizer-class HIGH."""
    for report in lint_app(app_name, spec):
        for f in report.findings:
            if f.severity >= Severity.HIGH and f.rule in STATIC_SAN_RULES:
                return True
    return False


def _sanitized_run(app_name: str, spec: DeviceSpec):
    """Run one app's test workload under the sanitizer; returns
    (SanState, AppRun)."""
    from ..apps.registry import get_app
    from ..cuda.executors import SanitizedExecutor
    app = get_app(app_name, spec)
    ex = SanitizedExecutor()
    app.executor = ex
    run = app.run(app.default_workload("test"), functional=True)
    return ex.state, run


def _dynamic_verdict(state: SanState) -> bool:
    return bool(state.high_findings())


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------

def clean_checks(spec: DeviceSpec = DEFAULT_DEVICE,
                 apps: Optional[Sequence[str]] = None) -> List[Check]:
    from ..apps.registry import app_names
    checks = []
    for name in (apps if apps else app_names()):
        static = _static_verdict(name, spec)
        state, _run = _sanitized_run(name, spec)
        dynamic = _dynamic_verdict(state)
        checks.append(Check(name, "clean app unflagged by both sides",
                            static, dynamic,
                            ok=not static and not dynamic))
    return checks


def broken_checks(spec: DeviceSpec = DEFAULT_DEVICE) -> List[Check]:
    from ..analysis.rules import analyze_target
    checks = []
    for bk in BROKEN:
        report = analyze_target(bk.target(), app="broken", spec=spec)
        static_hit = {f.rule for f in report.findings
                      if f.severity >= Severity.HIGH
                      and f.rule in STATIC_SAN_RULES}
        result = bk.run()
        dynamic_hit = {f.rule for f in result.san.all_findings()
                       if f.severity >= Severity.HIGH}
        static = bool(static_hit & bk.static_rules)
        dynamic = bool(dynamic_hit & bk.dynamic_rules)
        checks.append(Check(
            bk.name, f"caught by both sides ({bk.bug}; tool={bk.tool})",
            sorted(static_hit) if static else "MISSED",
            sorted(dynamic_hit) if dynamic else "MISSED",
            ok=static and dynamic))
    return checks


def dataflow_checks(spec: DeviceSpec = DEFAULT_DEVICE) -> List[Check]:
    """R7's abstract-interpretation classification vs the launch log
    the sanitizer actually observed."""
    checks = []
    for name in DATAFLOW_APPS:
        flow = launch_dataflow(name, spec)
        state, _run = _sanitized_run(name, spec)
        observed = classify_dataflow(state.launch_accesses())
        for array in sorted(set(flow.arrays) | set(observed)):
            s = flow.arrays.get(array)
            d = observed.get(array)
            s_cls = s.classification if s else "absent"
            d_cls = d.classification if d else "absent"
            checks.append(Check(
                f"{name}/{array}", "launch-dataflow class agrees",
                s_cls, d_cls, ok=s_cls == d_cls))
    return checks


def identity_checks(spec: DeviceSpec = DEFAULT_DEVICE) -> List[Check]:
    """Sanitized execution must not perturb functional results."""
    from ..apps.registry import get_app
    checks = []
    for name in IDENTITY_APPS:
        wl = get_app(name, spec).default_workload("test")
        plain = get_app(name, spec).run(wl, functional=True)
        _state, sanitized = _sanitized_run(name, spec)
        identical = set(plain.outputs) == set(sanitized.outputs) and all(
            np.array_equal(plain.outputs[k], sanitized.outputs[k])
            for k in plain.outputs)
        checks.append(Check(name, "sanitized outputs bit-identical",
                            "reference", "identical" if identical
                            else "DIVERGED", ok=identical))
    return checks


def all_checks(spec: DeviceSpec = DEFAULT_DEVICE) -> List[Check]:
    return (clean_checks(spec) + broken_checks(spec)
            + dataflow_checks(spec) + identity_checks(spec))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.san.validate",
        description="cross-validate the static analyzer against the "
                    "dynamic sanitizers")
    parser.add_argument("--json", action="store_true",
                        help="emit checks as JSON")
    parser.add_argument("--device", metavar="NAME", default=None,
                        help="device profile to validate on")
    args = parser.parse_args(argv)
    spec = DEFAULT_DEVICE
    if args.device:
        from ..arch.registry import device_by_name
        spec = device_by_name(args.device)
    checks = all_checks(spec)
    failed = [c for c in checks if not c.ok]
    if args.json:
        json.dump({"device": spec.name,
                   "checks": [c.to_dict() for c in checks],
                   "failed": len(failed)},
                  sys.stdout, indent=1)
        sys.stdout.write("\n")
    else:
        for c in checks:
            print(c.format())
        print(f"\n{len(checks)} checks, {len(failed)} failed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
