"""Deliberately broken kernels — the sanitizer's negative test suite.

Each :class:`BrokenKernel` carries one classic CUDA bug in a minimal
kernel, plus everything both detection sides need: a
:class:`~repro.analysis.targets.LintTarget` for the static analyzer
and a runnable sanitized launch for the dynamic tools.  The
cross-validation harness (:mod:`repro.san.validate`) requires every
entry to be caught at HIGH severity by **both** sides, and the CI
``san`` job sweeps them via ``python -m repro.san.check --broken``.

The bug catalogue mirrors what ``cuda-memcheck`` ships tools for:
missing barriers in a tree reduction, a barrier inside a divergent
branch, off-by-one tile edges, stores past either end of global
memory, never-initialized accumulators, and two threads electing the
same shared cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

import numpy as np

from ..analysis.targets import LintTarget, garr
from ..cuda import Device, kernel, launch
from ..cuda.launch import Kernel, LaunchResult

N = 256
GRID = (1,)
BLOCK = (N,)


# ----------------------------------------------------------------------
# The kernels
# ----------------------------------------------------------------------

@kernel("racy_reduction", regs_per_thread=8)
def racy_reduction(ctx, x, out, n):
    """Tree reduction with the in-loop ``__syncthreads()`` deleted."""
    tid = ctx.tid
    buf = ctx.shared_alloc(N, np.float32, "buf")
    ctx.st_shared(buf, tid, ctx.ld_global(x, ctx.global_tid()))
    ctx.sync()
    for stride in (128, 64, 32, 16, 8, 4, 2, 1):
        with ctx.masked(tid < stride):
            a = ctx.ld_shared(buf, tid)
            b = ctx.ld_shared(buf, tid + stride)
            ctx.st_shared(buf, tid, a + b)
        # missing: ctx.sync() — thread t's store races t+stride's load
    with ctx.masked(tid == 0):
        ctx.st_global(out, tid * 0, ctx.ld_shared(buf, tid * 0))


@kernel("divergent_sync", regs_per_thread=6)
def divergent_sync(ctx, x, out, n):
    """``__syncthreads()`` only a few threads reach."""
    tid = ctx.tid
    buf = ctx.shared_alloc(N, np.float32, "buf")
    ctx.st_shared(buf, tid, ctx.ld_global(x, tid))
    with ctx.masked(tid < 8):
        ctx.sync()
    ctx.st_global(out, tid, ctx.ld_shared(buf, tid))


@kernel("nested_divergent_sync", regs_per_thread=6)
def nested_divergent_sync(ctx, x, out, n):
    """Barrier under a thread-varying mask nested in a block-uniform
    one — only the R8 uniformity dataflow proves the nesting divergent
    statically."""
    tid = ctx.tid
    buf = ctx.shared_alloc(N, np.float32, "buf")
    ctx.st_shared(buf, tid, ctx.ld_global(x, tid))
    with ctx.masked(ctx.bx == 0):
        with ctx.masked(tid < n // 2):
            ctx.sync()
    ctx.st_global(out, tid, ctx.ld_shared(buf, tid))


@kernel("data_dependent_sync", regs_per_thread=6)
def data_dependent_sync(ctx, x, out, n):
    """Barrier predicated on loaded data: lanes of a warp disagree
    whenever the data does (statically thread-varying, dynamically a
    synccheck deadlock on the canonical input)."""
    tid = ctx.tid
    v = ctx.ld_global(x, tid)
    with ctx.masked(v > 64.0):
        ctx.sync()
    ctx.st_global(out, tid, v)


@kernel("tile_edge_oob", regs_per_thread=6)
def tile_edge_oob(ctx, x, out, n):
    """Off-by-one at the tile edge: the last thread loads ``x[n]``."""
    i = ctx.global_tid()
    v = ctx.ld_global(x, i + 1)
    ctx.st_global(out, i, v)


@kernel("uninit_acc", regs_per_thread=6)
def uninit_acc(ctx, x, out, n):
    """Accumulator read before any thread ever initializes it."""
    tid = ctx.tid
    acc = ctx.shared_alloc(N, np.float32, "acc")
    v = ctx.ld_shared(acc, tid)
    ctx.st_global(out, tid, v + ctx.ld_global(x, tid))


@kernel("racy_ww", regs_per_thread=6)
def racy_ww(ctx, x, out, n):
    """Two threads elect the same shared cell in one store."""
    tid = ctx.tid
    buf = ctx.shared_alloc(N // 2, np.float32, "buf")
    ctx.st_shared(buf, tid // 2, ctx.ld_global(x, tid))
    ctx.sync()
    ctx.st_global(out, tid, ctx.ld_shared(buf, tid // 2))


@kernel("shared_oob_store", regs_per_thread=6)
def shared_oob_store(ctx, x, out, n):
    """Shared stores shifted one past the end of the buffer."""
    tid = ctx.tid
    buf = ctx.shared_alloc(N, np.float32, "buf")
    ctx.st_shared(buf, tid + 1, ctx.ld_global(x, tid))
    ctx.sync()
    ctx.st_global(out, tid, ctx.ld_shared(buf, tid))


@kernel("missing_sync_stage", regs_per_thread=6)
def missing_sync_stage(ctx, x, out, n):
    """Neighbour exchange through shared memory with no barrier."""
    tid = ctx.tid
    buf = ctx.shared_alloc(N, np.float32, "buf")
    ctx.st_shared(buf, tid, ctx.ld_global(x, tid))
    v = ctx.ld_shared(buf, (tid + 1) % N)
    ctx.st_global(out, tid, v)


@kernel("global_oob_store", regs_per_thread=6)
def global_oob_store(ctx, x, out, n):
    """Every store lands past the end of the output array."""
    i = ctx.global_tid()
    ctx.st_global(out, i + n, ctx.ld_global(x, i))


# ----------------------------------------------------------------------
# Catalogue
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BrokenKernel:
    """One bug: the kernel, how to detect it, what must be reported."""

    name: str
    kern: Kernel
    bug: str
    #: sanitizer tool responsible for the dynamic catch
    tool: str
    #: rules (static analyzer vocabulary) that may carry the HIGH
    static_rules: FrozenSet[str] = field(default_factory=frozenset)
    #: rules (sanitizer vocabulary) that may carry the HIGH
    dynamic_rules: FrozenSet[str] = field(default_factory=frozenset)

    def target(self) -> LintTarget:
        """The static analyzer's view of the canonical launch."""
        return LintTarget(self.kern, GRID, BLOCK,
                          (garr("x", N), garr("out", N), N),
                          note="broken")

    def run(self, state=None) -> LaunchResult:
        """Execute the canonical launch under the sanitizer."""
        from ..cuda.executors import SanitizedExecutor
        dev = Device()
        x = dev.to_device(np.arange(N, dtype=np.float32), "x")
        out = dev.alloc(N, np.float32, "out")
        return launch(self.kern, GRID, BLOCK, (x, out, N), device=dev,
                      executor=SanitizedExecutor(state), sanitize=True)


def _bk(kern: Kernel, bug: str, tool: str, static_rules, dynamic_rules
        ) -> BrokenKernel:
    return BrokenKernel(kern.name, kern, bug, tool,
                        frozenset(static_rules), frozenset(dynamic_rules))


BROKEN: Tuple[BrokenKernel, ...] = (
    _bk(racy_reduction, "tree reduction without in-loop barriers",
        "racecheck", {"shared-race"}, {"shared-race"}),
    _bk(divergent_sync, "__syncthreads() under a divergent mask",
        "synccheck", {"divergent-sync"}, {"divergent-sync"}),
    _bk(nested_divergent_sync,
        "barrier under a varying mask nested in a uniform one",
        "synccheck", {"divergence"}, {"divergent-sync"}),
    _bk(data_dependent_sync, "barrier predicated on loaded data",
        "synccheck", {"divergence"}, {"divergent-sync"}),
    _bk(tile_edge_oob, "off-by-one global load at the tile edge",
        "memcheck", {"bounds"}, {"oob-global"}),
    _bk(uninit_acc, "shared accumulator never initialized",
        "initcheck", {"shared-uninit"}, {"uninit-shared"}),
    _bk(racy_ww, "two threads store the same shared cell",
        "racecheck", {"shared-race"}, {"shared-race"}),
    _bk(shared_oob_store, "shared store one past the buffer end",
        "memcheck", {"bounds"}, {"oob-shared"}),
    _bk(missing_sync_stage, "shared neighbour exchange with no barrier",
        "racecheck", {"shared-race"}, {"shared-race"}),
    _bk(global_oob_store, "global stores past the array end",
        "memcheck", {"bounds"}, {"oob-global"}),
)


def broken_by_name(name: str) -> BrokenKernel:
    for bk in BROKEN:
        if bk.name == name:
            return bk
    raise KeyError(f"unknown broken kernel {name!r}; "
                   f"known: {[b.name for b in BROKEN]}")
