"""Dynamic sanitizers — a mold of ``cuda-memcheck`` for the DSL.

Four tools run against real kernel executions and report typed
findings with exact thread/block/array provenance:

* **memcheck** — out-of-bounds global/shared accesses, including the
  loads :class:`~repro.cuda.context.BlockContext` silently clips, with
  the neighbouring allocation the stray address lands in;
* **racecheck** — shared-memory data races: a store racing a load or
  store from another thread inside the same barrier interval;
* **synccheck** — ``__syncthreads()`` under divergent control flow and
  barrier-count mismatches between warps (via the warp simulator);
* **initcheck** — reads of global or shared cells no thread ever
  wrote (the model zero-fills; real hardware hands back garbage).

Entry points: ``launch(..., sanitize=True)``, the
:class:`~repro.cuda.executors.SanitizedExecutor` backend (set it as an
application's ``executor`` to sanitize whole app runs), and the CLI
``python -m repro.san.check``.  Findings reuse
:class:`repro.analysis.findings.Finding`, so static-analyzer reports
and sanitizer reports render and serialize identically —
:mod:`repro.san.validate` exploits that to cross-validate the two
sides against each other.
"""

from .state import SanState, SAN_RULES
from .context import SanitizedContext

__all__ = ["SanState", "SanitizedContext", "SAN_RULES"]
