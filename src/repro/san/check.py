"""Sanitizer CLI — the suite's ``cuda-memcheck`` front-end.

Usage::

    python -m repro.san.check                      # all apps, all tools
    python -m repro.san.check matmul lbm           # selected apps
    python -m repro.san.check --tool racecheck     # one tool (repeatable)
    python -m repro.san.check --json               # machine-readable
    python -m repro.san.check --fail-on high       # CI gate
    python -m repro.san.check --device gtx_480     # another device profile
    python -m repro.san.check --broken             # negative sweep

Each selected application's test workload runs to completion under a
:class:`~repro.cuda.executors.SanitizedExecutor`; like the real tool,
one run reports *every* violation (out-of-bounds accesses are clamped
and execution continues).  With ``--fail-on SEVERITY`` the process
exits non-zero when any finding at or above that severity is emitted —
CI gates the application suite on ``high``.

``--broken`` sweeps the deliberately broken kernels of
:mod:`repro.san.broken` instead and *inverts* the gate: the exit code
is non-zero unless every kernel is caught at HIGH severity through its
expected rule — the sanitizer's own regression test.

JSON output is an object ``{"schema_version": 1, "device": NAME,
"tools": [...], "reports": [...]}`` with per-app findings and the
observed launch-dataflow log, deterministically ordered.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ..analysis.findings import Severity
from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from .broken import BROKEN
from .state import SAN_RULES, SanState, TOOLS

#: version of the ``--json`` envelope; bump on shape changes
JSON_SCHEMA_VERSION = 1


def check_app(name: str, tools: Optional[Sequence[str]],
              spec: DeviceSpec) -> SanState:
    """Run one application's test workload under the sanitizer."""
    from ..apps.registry import get_app
    from ..cuda.executors import SanitizedExecutor
    app = get_app(name, spec)
    ex = SanitizedExecutor(tools=tools)
    app.executor = ex
    app.run(app.default_workload("test"), functional=True)
    return ex.state


def _format_app(name: str, state: SanState) -> str:
    findings = state.all_findings()
    if not findings:
        return f"{name}: clean"
    lines = [f"{name}: {len(findings)} finding(s)"]
    for f in findings:
        lines.append(f"    {SAN_RULES.get(f.rule, '?')}: {f.format()}")
    return "\n".join(lines)


def _run_apps(args, spec: DeviceSpec) -> int:
    from ..apps.registry import app_names
    names = args.apps if args.apps else app_names()
    tools = args.tool if args.tool else None
    reports = []
    worst = 0
    for name in names:
        state = check_app(name, tools, spec)
        findings = state.all_findings()
        worst = max(worst, max((int(f.severity) for f in findings),
                               default=0))
        reports.append((name, state))
    if args.json:
        json.dump({
            "schema_version": JSON_SCHEMA_VERSION,
            "device": spec.name,
            "tools": sorted(tools) if tools else sorted(TOOLS),
            "reports": [{"app": name, **state.to_dict()}
                        for name, state in reports],
        }, sys.stdout, indent=1)
        sys.stdout.write("\n")
    else:
        for name, state in reports:
            print(_format_app(name, state))
    if args.fail_on is not None and worst >= int(Severity.parse(args.fail_on)):
        return 1
    return 0


def _run_broken(args, spec: DeviceSpec) -> int:
    tools = args.tool if args.tool else None
    reports = []
    missed: List[str] = []
    for bk in BROKEN:
        state = SanState(tools)
        bk.run(state)
        hit = {f.rule for f in state.all_findings()
               if f.severity >= Severity.HIGH}
        caught = bool(hit & bk.dynamic_rules)
        if not caught:
            missed.append(bk.name)
        reports.append((bk, state, caught))
    if args.json:
        json.dump({
            "schema_version": JSON_SCHEMA_VERSION,
            "device": spec.name,
            "mode": "broken",
            "reports": [{
                "kernel": bk.name, "bug": bk.bug, "tool": bk.tool,
                "caught": caught, **state.to_dict(),
            } for bk, state, caught in reports],
            "missed": missed,
        }, sys.stdout, indent=1)
        sys.stdout.write("\n")
    else:
        for bk, state, caught in reports:
            mark = "caught" if caught else "MISSED"
            print(f"{bk.name}: {mark} ({bk.bug}; tool={bk.tool})")
            for f in state.all_findings():
                print(f"    {SAN_RULES.get(f.rule, '?')}: {f.format()}")
        print(f"\n{len(reports)} broken kernels, {len(missed)} missed")
    return 1 if missed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.san.check",
        description="run the dynamic sanitizers over application "
                    "test workloads")
    parser.add_argument("apps", nargs="*",
                        help="application names (default: all registered)")
    parser.add_argument("--tool", action="append", choices=list(TOOLS),
                        metavar="TOOL",
                        help=f"enable one tool of {list(TOOLS)} "
                             f"(repeatable; default: all)")
    parser.add_argument("--json", action="store_true",
                        help="emit reports as JSON")
    parser.add_argument("--fail-on", metavar="SEVERITY", default=None,
                        help="exit 1 if any finding is at or above this "
                             "severity (info|medium|high)")
    parser.add_argument("--device", metavar="NAME", default=None,
                        help="device profile to sanitize on")
    parser.add_argument("--broken", action="store_true",
                        help="sweep the deliberately broken kernels; "
                             "exit 1 unless every one is caught")
    args = parser.parse_args(argv)
    spec = DEFAULT_DEVICE
    if args.device:
        from ..arch.registry import device_by_name
        spec = device_by_name(args.device)
    if args.broken:
        return _run_broken(args, spec)
    return _run_apps(args, spec)


if __name__ == "__main__":
    sys.exit(main())
