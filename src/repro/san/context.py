"""The sanitizing execution context.

:class:`SanitizedContext` subclasses the DSL's
:class:`~repro.cuda.context.BlockContext` and interposes on every
memory operation and barrier:

* **memcheck** — bounds are checked *before* the base class would
  raise (global) or silently clip (shared loads); violations become
  findings with thread/block provenance and the neighbouring
  allocation the stray address lands in, the offending lanes are
  clamped, and execution continues — like ``cuda-memcheck``, one run
  reports every error, not just the first;
* **racecheck** — per shared-cell last-writer/last-reader logs,
  segmented into barrier intervals (reset at every ``sync()``): a
  store racing a read or write from another thread inside the same
  interval reports both access sites;
* **synccheck** — ``sync()`` under a divergent mask reports instead
  of raising, and barrier intervals keep advancing;
* **initcheck** — reads are checked against the
  :class:`~repro.san.state.SanState` definedness bits (global, shared
  across launches) or a per-allocation bitmap (shared memory).

A clean kernel takes exactly the base-class data path — same indices,
same masks, same stores — so unsanitized and sanitized results are
bit-identical.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional

import numpy as np

from ..analysis.findings import Severity
from ..cuda.context import ArrayLike, BlockContext
from ..cuda.memory import DeviceArray, SharedArray
from ..trace.instr import InstrClass
from .state import SanState

#: module paths whose frames are skipped when attributing a finding to
#: a source line — the first frame outside these is the kernel
_OWN_FILES = (__file__, sys.modules[BlockContext.__module__].__file__)


class _SharedShadow:
    """Racecheck + initcheck shadow state of one shared allocation."""

    __slots__ = ("writer", "writer_line", "reader", "reader_line",
                 "defined", "ever_written")

    def __init__(self, size: int) -> None:
        self.writer = np.full(size, -1, dtype=np.int64)
        self.writer_line = np.zeros(size, dtype=np.int64)
        self.reader = np.full(size, -1, dtype=np.int64)
        self.reader_line = np.zeros(size, dtype=np.int64)
        self.defined = np.zeros(size, dtype=bool)
        self.ever_written = np.zeros(size, dtype=bool)

    def new_interval(self) -> None:
        self.writer.fill(-1)
        self.reader.fill(-1)


class SanitizedContext(BlockContext):
    """A :class:`BlockContext` with all four sanitizer tools armed."""

    def __init__(self, san: SanState, plan, linear: int,
                 trace=None, stream=None) -> None:
        super().__init__(
            plan.spec, plan.grid, plan.block, plan.grid.unlinear(linear),
            trace=trace, caches=plan.caches, stream=stream,
            kernel_name=plan.kernel.name)
        self.san = san
        self._shadow: Dict[int, _SharedShadow] = {}
        #: pending uninit-shared reads of this block:
        #: {(id(sh), line): (shadow, cells)}
        self._shared_pending: Dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # Provenance helpers
    # ------------------------------------------------------------------
    def _san_line(self) -> Optional[int]:
        frame = sys._getframe(1)
        while frame is not None and frame.f_code.co_filename in _OWN_FILES:
            frame = frame.f_back
        return frame.f_lineno if frame is not None else None

    def _lane_id(self, lane: int) -> str:
        return (f"thread ({int(self.tx[lane])},{int(self.ty[lane])},"
                f"{int(self.tz[lane])}) of block "
                f"({self.bx},{self.by},{self.bz})")

    # ------------------------------------------------------------------
    # memcheck: global bounds with provenance, clamp-and-continue
    # ------------------------------------------------------------------
    def _checked_global(self, arr: DeviceArray, index: ArrayLike,
                        op: str) -> np.ndarray:
        idx = self._flat_index(index)
        mask = self.mask
        bad = mask & ((idx < 0) | (idx >= arr.size))
        if bad.any() and self.san.enabled("memcheck"):
            lane = int(np.argmax(bad))
            stray = int(idx[lane])
            addr = arr.base_addr + stray * arr.itemsize
            owner = self.san.owner_of(addr)
            landing = (f", landing inside allocation {owner!r}"
                       if owner and owner != arr.name else "")
            self.san.emit(
                "oob-global", Severity.HIGH, self.kernel_name,
                f"out-of-bounds global {op} on {arr.name!r}: {self._lane_id(lane)} "
                f"accesses index {stray} (array has {arr.size} elements; "
                f"{int(bad.sum())} thread(s) affected{landing})",
                line=self._san_line(), array=arr.name)
        if bad.any():
            idx = np.where(bad, np.clip(idx, 0, arr.size - 1), idx)
        return idx

    def _initcheck_global(self, arr: DeviceArray, idx: np.ndarray,
                          op: str) -> None:
        if not self.san.enabled("initcheck"):
            return
        cells = idx[self.mask]
        if op == "ld":
            self.san.note_read(arr, cells, self._san_line(),
                               self.kernel_name)
        else:                       # st and atom both define the cells
            self.san.note_write(arr, cells)

    def ld_global(self, arr: DeviceArray, index: ArrayLike) -> np.ndarray:
        idx = self._checked_global(arr, index, "load")
        self._initcheck_global(arr, idx, "ld")
        self.san.note_global_access(arr.name, "ld")
        return super().ld_global(arr, idx)

    def st_global(self, arr: DeviceArray, index: ArrayLike,
                  value: ArrayLike) -> None:
        idx = self._checked_global(arr, index, "store")
        self._initcheck_global(arr, idx, "st")
        self.san.note_global_access(arr.name, "st")
        super().st_global(arr, idx, value)

    def atom_global_add(self, arr: DeviceArray, index: ArrayLike,
                        value: ArrayLike) -> None:
        idx = self._checked_global(arr, index, "atomic")
        self._initcheck_global(arr, idx, "st")
        self.san.note_global_access(arr.name, "atom")
        super().atom_global_add(arr, idx, value)

    # ------------------------------------------------------------------
    # Shared memory: bounds + races + definedness
    # ------------------------------------------------------------------
    def shared_alloc(self, shape, dtype=np.float32,
                     name: str = "smem") -> SharedArray:
        arr = super().shared_alloc(shape, dtype, name=name)
        self._shadow[id(arr)] = _SharedShadow(arr.size)
        return arr

    def _checked_shared(self, sh: SharedArray, index: ArrayLike,
                        op: str) -> np.ndarray:
        idx = self._flat_index(index)
        mask = self.mask
        bad = mask & ((idx < 0) | (idx >= sh.size))
        if bad.any() and self.san.enabled("memcheck"):
            lane = int(np.argmax(bad))
            clipped = (" (the model silently clips shared loads — the "
                       "kernel reads the wrong cell)" if op == "load" else "")
            self.san.emit(
                "oob-shared", Severity.HIGH, self.kernel_name,
                f"out-of-bounds shared {op} on {sh.name!r}: "
                f"{self._lane_id(lane)} accesses index {int(idx[lane])} "
                f"(buffer has {sh.size} elements; {int(bad.sum())} "
                f"thread(s) affected){clipped}",
                line=self._san_line(), array=sh.name)
        if bad.any():
            idx = np.where(bad, np.clip(idx, 0, sh.size - 1), idx)
        return idx

    def _race_store(self, sh: SharedArray, shadow: _SharedShadow,
                    cells: np.ndarray, tids: np.ndarray) -> None:
        line = self._san_line()
        # two active lanes of this very store writing one cell
        order = np.argsort(cells, kind="stable")
        srt = cells[order]
        dup = srt[1:] == srt[:-1]
        if dup.any():
            cell = int(srt[1:][dup][0])
            lanes = tids[order][np.concatenate([[False], dup]) |
                                np.concatenate([dup, [False]])]
            self.san.emit(
                "shared-race", Severity.HIGH, self.kernel_name,
                f"write-write race on shared {sh.name!r}[{cell}]: threads "
                f"{int(lanes[0])} and {int(lanes[1])} store to the same "
                f"cell in one instruction (line {line})",
                line=line, array=sh.name)
        prior_w = shadow.writer[cells]
        ww = (prior_w >= 0) & (prior_w != tids)
        if ww.any():
            i = int(np.argmax(ww))
            self.san.emit(
                "shared-race", Severity.HIGH, self.kernel_name,
                f"write-write race on shared {sh.name!r}"
                f"[{int(cells[i])}]: store at line {line} by thread "
                f"{int(tids[i])} races the store at line "
                f"{int(shadow.writer_line[cells[i]])} by thread "
                f"{int(prior_w[i])} — no barrier between them",
                line=line, array=sh.name)
        prior_r = shadow.reader[cells]
        rw = (prior_r >= 0) & (prior_r != tids)
        if rw.any():
            i = int(np.argmax(rw))
            self.san.emit(
                "shared-race", Severity.HIGH, self.kernel_name,
                f"read-write race on shared {sh.name!r}"
                f"[{int(cells[i])}]: store at line {line} by thread "
                f"{int(tids[i])} races the load at line "
                f"{int(shadow.reader_line[cells[i]])} by thread "
                f"{int(prior_r[i])} — no barrier between them",
                line=line, array=sh.name)
        shadow.writer[cells] = tids
        shadow.writer_line[cells] = line or 0

    def _race_load(self, sh: SharedArray, shadow: _SharedShadow,
                   cells: np.ndarray, tids: np.ndarray) -> None:
        line = self._san_line()
        prior_w = shadow.writer[cells]
        wr = (prior_w >= 0) & (prior_w != tids)
        if wr.any():
            i = int(np.argmax(wr))
            self.san.emit(
                "shared-race", Severity.HIGH, self.kernel_name,
                f"write-read race on shared {sh.name!r}"
                f"[{int(cells[i])}]: load at line {line} by thread "
                f"{int(tids[i])} races the store at line "
                f"{int(shadow.writer_line[cells[i]])} by thread "
                f"{int(prior_w[i])} — no barrier between them",
                line=line, array=sh.name)
        shadow.reader[cells] = tids
        shadow.reader_line[cells] = line or 0

    def ld_shared(self, sh: SharedArray, index: ArrayLike) -> np.ndarray:
        idx = self._checked_shared(sh, index, "load")
        shadow = self._shadow.get(id(sh))
        if shadow is not None:
            cells = idx[self.mask]
            tids = self.tid[self.mask]
            if self.san.enabled("racecheck"):
                self._race_load(sh, shadow, cells, tids)
            if self.san.enabled("initcheck"):
                undef = np.unique(cells[~shadow.defined[cells]])
                if undef.size:
                    key = (id(sh), self._san_line())
                    if key not in self._shared_pending:
                        self._shared_pending[key] = (sh, shadow, undef)
        return super().ld_shared(sh, idx)

    def st_shared(self, sh: SharedArray, index: ArrayLike,
                  value: ArrayLike) -> None:
        idx = self._checked_shared(sh, index, "store")
        shadow = self._shadow.get(id(sh))
        if shadow is not None:
            cells = idx[self.mask]
            tids = self.tid[self.mask]
            if self.san.enabled("racecheck"):
                self._race_store(sh, shadow, cells, tids)
            shadow.defined[cells] = True
            shadow.ever_written[cells] = True
        super().st_shared(sh, idx, value)

    # ------------------------------------------------------------------
    # synccheck: report divergent barriers, keep executing
    # ------------------------------------------------------------------
    def sync(self) -> None:
        if len(self._mask_stack) > 1 and not self.mask.all():
            if self.san.enabled("synccheck"):
                idle = int((~self.mask).sum())
                self.san.emit(
                    "divergent-sync", Severity.HIGH, self.kernel_name,
                    f"__syncthreads() inside divergent control flow in "
                    f"block ({self.bx},{self.by},{self.bz}): {idle} of "
                    f"{self.nthreads} threads never reach the barrier — "
                    f"deadlock on real hardware",
                    line=self._san_line())
        self._emit(InstrClass.SYNC)
        for shadow in self._shadow.values():
            shadow.new_interval()

    # ------------------------------------------------------------------
    # End of block: resolve pending shared uninit reads
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Triage this block's uninitialized shared reads: cells no
        store ever touched are HIGH, cells written only after the read
        are MEDIUM (zero-fill reliance)."""
        for (_sid, line), (sh, shadow, cells) in self._shared_pending.items():
            never = cells[~shadow.ever_written[cells]]
            if never.size:
                self.san.emit(
                    "uninit-shared", Severity.HIGH, self.kernel_name,
                    f"read of shared {sh.name!r} cells [{int(never.min())}, "
                    f"{int(never.max())}] never written anywhere — "
                    f"zero-filled in this model, garbage on real hardware",
                    line=line, array=sh.name)
            later = cells[shadow.ever_written[cells]]
            if later.size:
                self.san.emit(
                    "uninit-shared", Severity.MEDIUM, self.kernel_name,
                    f"read of shared {sh.name!r} cells [{int(later.min())}, "
                    f"{int(later.max())}] not yet written at this point "
                    f"(written only later) — relies on the model's "
                    f"zero-fill",
                    line=line, array=sh.name)
        self._shared_pending.clear()
