"""Static kernel analysis: AST/abstract-interpretation hazard linter.

The analyzer executes a kernel's Python source symbolically — concrete
lane vectors for thread identities, opaque symbolic values for data —
and checks the recorded event stream against the paper's optimization
rules: barrier safety (Section 5.1), global-memory coalescing
(Sections 3.2/4.1), shared-memory bank conflicts (Section 5.1),
register/shared occupancy (Section 4.2) and batched-execution safety.

Entry points:

* :func:`analyze_target` — analyze one :class:`LintTarget`.
* ``python -m repro.analysis.lint`` — lint registered applications.
* ``python -m repro.analysis.validate`` — cross-validate static
  verdicts against dynamic trace counters.
"""

from .findings import AccessSummary, Finding, KernelReport, Severity
from .rules import analyze_target, sample_coords
from .targets import LintArray, LintTarget, carr, garr, tarr

__all__ = [
    "AccessSummary",
    "Finding",
    "KernelReport",
    "LintArray",
    "LintTarget",
    "Severity",
    "analyze_target",
    "carr",
    "garr",
    "sample_coords",
    "tarr",
]
