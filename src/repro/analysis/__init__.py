"""Static kernel analysis: AST/abstract-interpretation hazard linter.

The analyzer executes a kernel's Python source symbolically — concrete
lane vectors for thread identities, opaque symbolic values for data —
and checks the recorded event stream against the paper's optimization
rules: barrier safety (Section 5.1), global-memory coalescing
(Sections 3.2/4.1), shared-memory bank conflicts (Section 5.1),
register/shared occupancy (Section 4.2) and batched-execution safety.

Entry points:

* :func:`analyze_target` — analyze one :class:`LintTarget`.
* :func:`estimate_target` — static performance estimate (instruction
  census + liveness registers + Section-4 bounds, no execution).
* :func:`advise_target` — rank optimization passes by predicted payoff.
* ``python -m repro.analysis.lint`` — lint registered applications
  (``--estimate`` / ``--advise`` add the performance model).
* ``python -m repro.analysis.validate`` — cross-validate static
  verdicts against dynamic trace counters and the timing simulator.
"""

from .advisor import Advice, AdvisorReport, advise_app, advise_target
from .census import KernelCensus, census_target
from .estimate import PerfEstimate, estimate_app, estimate_target
from .findings import AccessSummary, Finding, KernelReport, Severity
from .liveness import RegisterEstimate, estimate_registers
from .rules import (ArrayDataflow, LaunchAccess, LaunchDataflow,
                    analyze_launch_sequence, analyze_target,
                    classify_dataflow, launch_dataflow, sample_coords)
from .targets import LintArray, LintTarget, carr, garr, tarr

__all__ = [
    "AccessSummary",
    "Advice",
    "AdvisorReport",
    "ArrayDataflow",
    "Finding",
    "KernelCensus",
    "KernelReport",
    "LaunchAccess",
    "LaunchDataflow",
    "LintArray",
    "LintTarget",
    "PerfEstimate",
    "RegisterEstimate",
    "Severity",
    "advise_app",
    "advise_target",
    "analyze_launch_sequence",
    "analyze_target",
    "carr",
    "census_target",
    "classify_dataflow",
    "estimate_app",
    "estimate_registers",
    "estimate_target",
    "garr",
    "launch_dataflow",
    "sample_coords",
    "tarr",
]
