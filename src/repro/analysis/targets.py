"""Lint targets: concrete geometries the static analyzer runs against.

The analyzer symbolically executes a kernel *for a representative
launch*: a grid/block geometry plus lightweight stand-ins for the
device arrays the kernel would receive.  Each application exposes its
geometries through :meth:`repro.apps.base.Application.lint_targets`,
which returns a list of :class:`LintTarget`.

Array arguments are described with :class:`LintArray` markers — name,
memory space, element count and dtype are all the analyzer needs to
classify access patterns and check static bounds; no data is ever
allocated.  Scalar arguments are passed as plain Python numbers so the
interpreter can evaluate index arithmetic concretely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class LintArray:
    """Stand-in for a device array argument of a kernel under analysis."""

    name: str
    space: str = "global"          # global | const | tex
    size: Optional[int] = None     # element count, for bounds checks
    dtype: str = "float32"

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize

    @property
    def is_integer(self) -> bool:
        return np.dtype(self.dtype).kind in "iu"


def garr(name: str, size: Optional[int] = None,
         dtype: str = "float32") -> LintArray:
    """Global-memory array marker."""
    return LintArray(name, "global", size, dtype)


def carr(name: str, size: Optional[int] = None,
         dtype: str = "float32") -> LintArray:
    """Constant-memory array marker."""
    return LintArray(name, "const", size, dtype)


def tarr(name: str, size: Optional[int] = None,
         dtype: str = "float32") -> LintArray:
    """Texture-memory array marker."""
    return LintArray(name, "tex", size, dtype)


@dataclass(frozen=True)
class LintTarget:
    """One kernel + representative launch geometry to analyze.

    ``args`` mirrors the kernel's positional arguments after ``ctx``:
    :class:`LintArray` markers for arrays, plain numbers/bools for
    scalars.
    """

    kernel: object                  # repro.cuda.launch.Kernel
    grid: Tuple[int, ...]
    block: Tuple[int, ...]
    args: Tuple[object, ...] = field(default_factory=tuple)
    note: str = ""

    @property
    def label(self) -> str:
        name = getattr(self.kernel, "name", str(self.kernel))
        return f"{name}[{self.note}]" if self.note else name
