"""Hazard rules: replay a kernel's event stream into typed findings.

Each rule is a pure function over the event list one sample block
produced (:mod:`repro.analysis.interp`); :func:`analyze_target` runs
the interpreter for up to three representative block coordinates
(first, middle, last in grid-linear order), applies every rule, and
merges the results into one :class:`KernelReport`.

The rules mirror the paper's optimization checklist:

* **R1 barriers** — ``__syncthreads`` under divergent control flow,
  and shared-memory store→load pairs with no intervening barrier
  whose lanes can alias (Section 5.1 / correctness).
* **R2 coalescing** — global-memory index shape per coalescing group
  against the device's rule: aligned segments on CUDA 1.x
  (Section 3.2 / 4.1), cache lines on Fermi and later.
* **R3 shared memory** — bank-conflict degree mod the device's bank
  count (Section 5.1)
  and static bounds violations; constant reads with a varying index
  (serialized broadcast).
* **R4 resources** — occupancy from register/shared pressure, cliff
  and low-occupancy advisories (Section 4.2).
* **R5 batch safety** — constructs that break the
  ``BatchedExecutor``'s all-blocks-at-once widening, cross-checked
  against the kernel's declared ``batchable`` flag.
* **R6 compilability** — whether the grid compiler
  (:mod:`repro.compile`) can lower the kernel to a whole-grid
  program; failures are INFO findings naming the construct so the
  ``compiled`` executor's per-kernel fallback is visible in reports.
* **R7 launch dataflow** — cross-launch def-use chains over the
  application's recorded launch sequence (fusion legality).
* **R8 divergence** — the uniformity/divergence dataflow over the
  kernel IR (:mod:`repro.analysis.divergence`): barriers under
  thread-varying control flow (the static twin of synccheck), hot
  divergent branches, and proven-uniform predication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from ..cuda.dim3 import as_dim3
from ..sim.occupancy import compute_occupancy
from ..trace.trace import KernelTrace
from .findings import AccessSummary, Finding, KernelReport, Severity
from .interp import HazardEvent, MemEvent, SyncEvent, interpret
from .symbolic import (
    classify_global,
    classify_shared,
    cross_lane_disjoint,
    is_varying,
)
from .targets import LintTarget

_PATTERN_RANK = ("coalesced", "broadcast", "data-dependent", "misaligned",
                 "strided", "irregular")

_HAZARD_LABELS = {
    "scalar-coerce": "block-varying scalar coerced to a host scalar",
    "scalar-range": "Python loop bound derived from block-varying state",
    "python-if-coord": "Python branch on block coordinates",
    "nthreads-index": "ctx.nthreads used in an access index",
    "nthreads-shared-shape": "shared array sized by ctx.nthreads",
    "shared-data": "raw .data access on a shared array",
}


def _rank(pattern: str) -> int:
    base = pattern.split("(")[0]
    return _PATTERN_RANK.index(base) if base in _PATTERN_RANK else 0


# ----------------------------------------------------------------------
# Rule catalogue — the source of truth for README's table and
# ``python -m repro.analysis.lint --list-rules``
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RuleInfo:
    """One analyzer rule family: id, finding vocabulary, severity span."""

    id: str
    name: str
    #: ``Finding.rule`` strings this family emits
    finding_rules: Tuple[str, ...]
    #: severity range, e.g. "medium-high"
    severities: str
    summary: str

    def to_dict(self) -> Dict[str, object]:
        return {"id": self.id, "name": self.name,
                "finding_rules": list(self.finding_rules),
                "severities": self.severities, "summary": self.summary}


RULES: Tuple[RuleInfo, ...] = (
    RuleInfo("R1", "barriers",
             ("divergent-sync", "shared-race", "shared-uninit"),
             "medium-high",
             "shared-memory races across barrier intervals, divergent "
             "__syncthreads, reads of never-written shared cells"),
    RuleInfo("R2", "coalescing", ("coalescing",), "info-medium",
             "global access shape per coalescing group vs the device "
             "rule (segments on CUDA 1.x, cache lines on Fermi+)"),
    RuleInfo("R3", "shared memory", ("bank-conflict", "bounds"),
             "info-high",
             "bank-conflict degree mod the bank count, static bounds "
             "violations, serialized constant broadcasts"),
    RuleInfo("R4", "resources", ("occupancy",), "info-high",
             "occupancy from register/shared pressure, cliffs and "
             "low-occupancy advisories"),
    RuleInfo("R5", "batch safety", ("batch-safety",), "info-high",
             "constructs that break BatchedExecutor widening, checked "
             "against the kernel's declared batchable flag"),
    RuleInfo("R6", "compilability", ("compile",), "info",
             "whether the grid compiler can lower the kernel; failures "
             "name the construct behind the interpreter fallback"),
    RuleInfo("R7", "launch dataflow", ("launch-dataflow",), "info",
             "cross-launch global def-use chains: fusable-private vs "
             "loop-carried intermediates (fusion legality)"),
    RuleInfo("R8", "divergence", ("divergence",), "info-high",
             "uniformity dataflow over the kernel IR: barriers under "
             "thread-varying control flow, hot divergent branches, "
             "proven-uniform predication"),
)


def sample_coords(grid) -> List[Tuple[int, int, int]]:
    """First, middle and last block in grid-linear order (deduped)."""
    grid = as_dim3(grid)
    total = grid.size
    ids = sorted({0, total // 2, total - 1})
    return [grid.unlinear(i) for i in ids]


# ----------------------------------------------------------------------
# R1: barriers — happens-before over barrier intervals
# ----------------------------------------------------------------------
#
# Every ``__syncthreads()`` closes a *barrier interval*; two shared
# accesses in the same interval have no happens-before edge between
# different threads.  A write racing a read or write from another lane
# in the same interval is a HIGH finding — the generalization of the
# old store→load pair heuristic to all three hazard directions
# (st→ld, ld→st, st→st), mirroring the dynamic racecheck tool in
# :mod:`repro.san`.  The same pass tracks cell definedness: shared
# reads of cells never stored anywhere in the stream are HIGH
# (garbage on real hardware), reads of cells stored only *later* are
# MEDIUM (reliance on this model's zero-fill).


def _concrete_cells(ev: MemEvent, nthreads: int) -> Optional[np.ndarray]:
    """Active-lane index values of an event, or None when symbolic
    or under an inexactly-known mask."""
    if not ev.mask_exact:
        return None
    from .symbolic import as_sym
    value = as_sym(ev.index).concrete_value()
    if value is None:
        return None
    lanes = np.broadcast_to(np.asarray(value, dtype=np.int64), (nthreads,))
    mask = np.asarray(ev.mask, dtype=bool) if ev.mask is not None \
        else np.ones(nthreads, dtype=bool)
    if mask.shape[0] != lanes.shape[0]:
        return None
    return lanes[mask]


def _intra_write_conflict(ev: MemEvent, nthreads: int) -> bool:
    """True when one vectorized store hits the same cell from two
    different active lanes (a W-W race inside a single site)."""
    from .symbolic import as_sym
    value = as_sym(ev.index).concrete_value()
    if value is None or not ev.mask_exact:
        return False
    lanes = np.broadcast_to(np.asarray(value, dtype=np.int64), (nthreads,))
    mask = np.asarray(ev.mask, dtype=bool) if ev.mask is not None \
        else np.ones(nthreads, dtype=bool)
    if mask.shape[0] != lanes.shape[0]:
        return False
    active = lanes[mask]
    return active.size != np.unique(active).size


def _event_fingerprint(ev: MemEvent) -> object:
    """Collapse identical loop-repeated events before pair checking."""
    from .symbolic import as_sym
    sym = as_sym(ev.index)
    value = sym.concrete_value()
    mask_key = ev.mask.tobytes() if ev.mask is not None else b""
    if value is not None:
        return (ev.line, np.asarray(value, dtype=np.int64).tobytes(),
                mask_key)
    return (ev.line, id(ev.index), mask_key)


def _pair_races(a: MemEvent, b: MemEvent, nthreads: int) -> bool:
    """Can lane i's access in ``a`` alias a *different* lane's in ``b``?"""
    a_mask = a.mask if a.mask_exact else None
    b_mask = b.mask if b.mask_exact else None
    return not cross_lane_disjoint(a.index, a_mask, b.index, b_mask,
                                   nthreads)


def rule_barriers(events: List[object], nthreads: int,
                  kernel: str) -> List[Finding]:
    findings: List[Finding] = []
    seen: set = set()

    def add(rule: str, severity: Severity, message: str, line: int,
            array: str = "") -> None:
        key = (rule, array, line, message)
        if key not in seen:
            seen.add(key)
            findings.append(Finding(rule, severity, kernel, message,
                                    line, array=array))

    # -- divergent barriers + interval grouping ------------------------
    intervals: Dict[Tuple[int, str], List[MemEvent]] = {}
    for ev in events:
        if isinstance(ev, SyncEvent):
            if ev.divergent:
                add("divergent-sync", Severity.HIGH,
                    "__syncthreads() reachable under divergent control "
                    "flow (deadlocks on hardware)", ev.line)
        elif isinstance(ev, MemEvent) and ev.space == "shared":
            intervals.setdefault((ev.interval, ev.array), []).append(ev)

    # -- happens-before: pairwise hazards inside each interval ---------
    for (_interval, array), evs in intervals.items():
        # collapse loop-repeated duplicates of one site
        reps: Dict[object, MemEvent] = {}
        for ev in evs:
            reps.setdefault(_event_fingerprint(ev), ev)
        uniq = list(reps.values())
        stores = [e for e in uniq if e.op == "st"]
        loads = [e for e in uniq if e.op == "ld"]
        for i, st in enumerate(stores):
            if _intra_write_conflict(st, nthreads):
                add("shared-race", Severity.HIGH,
                    f"two lanes store the same shared {array!r} cell in "
                    f"one access (last writer wins nondeterministically)",
                    st.line, array)
            for other in stores[i + 1:]:
                if _pair_races(st, other, nthreads):
                    add("shared-race", Severity.HIGH,
                        f"shared {array!r} store may race another lane's "
                        f"store (line {st.line}) in the same barrier "
                        f"interval", other.line, array)
            for ld in loads:
                if _pair_races(st, ld, nthreads):
                    add("shared-race", Severity.HIGH,
                        f"shared {array!r} read may observe another "
                        f"lane's store (line {st.line}) with no "
                        f"__syncthreads() between them", ld.line, array)

    # -- definedness: reads of never-written / not-yet-written cells ---
    findings.extend(_shared_uninit(events, nthreads, kernel))
    return findings


def _shared_uninit(events: List[object], nthreads: int,
                   kernel: str) -> List[Finding]:
    defined: Dict[str, np.ndarray] = {}
    opaque_write: set = set()
    pending: List[Tuple[MemEvent, np.ndarray]] = []
    for ev in events:
        if not isinstance(ev, MemEvent) or ev.space != "shared" \
                or ev.size is None:
            continue
        d = defined.setdefault(ev.array, np.zeros(ev.size, dtype=bool))
        cells = _concrete_cells(ev, nthreads)
        if ev.op == "st":
            if cells is None:
                # unknown store target: assume it may define anything
                opaque_write.add(ev.array)
            else:
                inb = cells[(cells >= 0) & (cells < ev.size)]
                d[inb] = True
        elif ev.op == "ld" and cells is not None \
                and ev.array not in opaque_write:
            inb = cells[(cells >= 0) & (cells < ev.size)]
            undef = np.unique(inb[~d[inb]])
            if undef.size:
                pending.append((ev, undef))

    findings: List[Finding] = []
    seen: set = set()
    for ev, undef in pending:
        final = defined[ev.array]
        never = ev.array in opaque_write or not final[undef].all()
        if never and not (ev.array in opaque_write):
            severity, what = Severity.HIGH, "never written anywhere"
        elif never:
            continue            # opaque store may have defined them
        else:
            severity, what = Severity.MEDIUM, \
                "not yet written at this point (written only later)"
        key = (ev.array, ev.line, severity)
        if key in seen:
            continue
        seen.add(key)
        lo, hi = int(undef.min()), int(undef.max())
        findings.append(Finding(
            "shared-uninit", severity, kernel,
            f"read of shared {ev.array!r} cells [{lo}, {hi}] {what} — "
            f"zero-filled in this model, garbage on real hardware",
            ev.line, array=ev.array))
    return findings


# ----------------------------------------------------------------------
# R2 / R3: memory access classification
# ----------------------------------------------------------------------

def rule_memory(events: List[object], nthreads: int, kernel: str,
                spec: DeviceSpec,
                ) -> Tuple[List[Finding], Dict[Tuple[str, str],
                                               AccessSummary]]:
    findings: List[Finding] = []
    summaries: Dict[Tuple[str, str], AccessSummary] = {}
    classified: set = set()
    # one source line inside a Python loop produces many events — keep
    # the *worst* verdict per site, then emit one finding for it
    sites: Dict[Tuple[str, str, int], Dict[str, object]] = {}

    def summarize(ev: MemEvent, pattern: str,
                  coalesced: Optional[bool],
                  degree: Optional[int] = None) -> None:
        key = (ev.space, ev.array)
        cur = summaries.get(key)
        if cur is None:
            summaries[key] = AccessSummary(
                ev.array, ev.space, pattern, coalesced, degree, (ev.line,))
            return
        if _rank(pattern) > _rank(cur.pattern):
            cur.pattern = pattern
        if coalesced is False or cur.coalesced is False:
            cur.coalesced = False
        elif coalesced is None or cur.coalesced is None:
            cur.coalesced = None
        if degree is not None:
            cur.conflict_degree = max(cur.conflict_degree or 1, degree)
        if ev.line not in cur.sites:
            cur.sites = tuple(sorted(cur.sites + (ev.line,)))

    def worst_at(ev: MemEvent) -> Dict[str, object]:
        site = (ev.space, ev.array, ev.line)
        cur = sites.get(site)
        if cur is None:
            cur = sites[site] = {
                "ev": ev, "pattern": "coalesced", "coalesced": True,
                "degree": 1, "exact": False,
            }
        return cur

    for ev in events:
        if not isinstance(ev, MemEvent):
            continue
        site = (ev.space, ev.array, ev.line)
        if ev.space == "global":
            pattern, coalesced = classify_global(
                ev.index, ev.mask, nthreads, ev.itemsize, spec)
            summarize(ev, pattern, coalesced)
            cur = worst_at(ev)
            bad = pattern == "data-dependent" or coalesced is False
            if bad and _rank(pattern) >= _rank(str(cur["pattern"])):
                cur["pattern"] = pattern
                cur["coalesced"] = coalesced
                # MEDIUM only when some offending event has an exact mask
                cur["exact"] = bool(cur["exact"]) or ev.mask_exact
        elif ev.space == "shared":
            pattern, degree = classify_shared(
                ev.index, ev.mask, nthreads, ev.word_scale,
                ev.word_offset, spec)
            summarize(ev, pattern,
                      None if degree is None else degree <= 1, degree)
            if degree is not None and degree > 1:
                cur = worst_at(ev)
                cur["degree"] = max(int(cur["degree"]), degree)
                cur["exact"] = bool(cur["exact"]) or ev.mask_exact
        elif ev.space == "const":
            varying = is_varying(ev.index)
            summarize(ev, "varying" if varying else "uniform", None)
            if varying and site not in classified:
                classified.add(site)
                findings.append(Finding(
                    "coalescing", Severity.INFO, kernel,
                    f"constant read from {ev.array!r} with a thread-"
                    f"varying index: the constant cache broadcasts one "
                    f"word per cycle, so divergent reads serialize",
                    ev.line, array=ev.array))
        else:   # tex: cached, no coalescing constraint to enforce
            summarize(ev, "cached", None)

        findings.extend(_bounds_check(ev, nthreads, kernel, classified))

    for (space, array, line), cur in sorted(sites.items(),
                                            key=lambda kv: kv[0][2]):
        ev = cur["ev"]
        severity = Severity.MEDIUM if cur["exact"] else Severity.INFO
        qualifier = "" if cur["exact"] else " (under a data-dependent mask)"
        if space == "global":
            if spec.has_cached_global_loads:
                rule_desc = (f"{spec.cache_line_bytes} B cache-line rule")
            else:
                rule_desc = (f"{spec.coalesce_segment_words}-word segment "
                             f"rule, Section 3.2")
            group_desc = (f"{spec.coalesce_group}-thread group")
            if cur["pattern"] == "data-dependent":
                # a gather is a gather whatever the mask's provenance
                findings.append(Finding(
                    "coalescing", Severity.MEDIUM, kernel,
                    f"data-dependent {ev.op} index on {array!r}: "
                    f"cannot coalesce a gather/scatter ({rule_desc})",
                    line, array=array))
            elif cur["coalesced"] is False:
                findings.append(Finding(
                    "coalescing", severity, kernel,
                    f"uncoalesced {ev.op} on {array!r}: pattern "
                    f"{cur['pattern']}{qualifier} — one transaction per "
                    f"active thread instead of one per {group_desc}",
                    line, array=array))
        elif space == "shared" and int(cur["degree"]) > 1:
            findings.append(Finding(
                "bank-conflict", severity, kernel,
                f"{cur['degree']}-way bank conflict on shared {array!r} "
                f"({spec.shared_mem_banks} banks, word-interleaved; "
                f"Section 5.1)",
                line, array=array))
    return findings, summaries


def _bounds_check(ev: MemEvent, nthreads: int, kernel: str,
                  classified: set) -> List[Finding]:
    if ev.size is None or not ev.mask_exact:
        return []
    from .symbolic import as_sym
    sym = as_sym(ev.index)
    value = sym.concrete_value()
    if value is None:
        return []
    lanes = np.broadcast_to(np.asarray(value, dtype=np.int64),
                            (nthreads,))
    active = np.asarray(ev.mask, dtype=bool) if ev.mask is not None \
        else np.ones(nthreads, dtype=bool)
    if not active.any():
        return []
    used = lanes[active[:lanes.shape[0]]] if lanes.shape[0] == \
        active.shape[0] else lanes
    lo, hi = int(used.min()), int(used.max())
    if lo >= 0 and hi < ev.size:
        return []
    key = ("bounds", ev.array, ev.line)
    if key in classified:
        return []
    classified.add(key)
    return [Finding(
        "bounds", Severity.HIGH, kernel,
        f"static out-of-bounds {ev.op} on {ev.space} {ev.array!r}: "
        f"indices span [{lo}, {hi}] vs size {ev.size}", ev.line,
        array=ev.array)]


# ----------------------------------------------------------------------
# R4: occupancy
# ----------------------------------------------------------------------

def rule_occupancy(threads_per_block: int, regs: int, smem_bytes: int,
                   kernel: str, spec: DeviceSpec,
                   ) -> Tuple[List[Finding], Dict[str, object]]:
    occ = compute_occupancy(threads_per_block, regs, smem_bytes, spec)
    findings: List[Finding] = []
    if occ.blocks_per_sm == 0:
        findings.append(Finding(
            "occupancy", Severity.HIGH, kernel,
            f"launch cannot be scheduled: {threads_per_block} threads/"
            f"block, {regs} regs/thread, {smem_bytes} B shared exceed "
            f"the per-SM limits (limiter: {occ.limiter})"))
        return findings, occ.describe()
    cliff = compute_occupancy(threads_per_block, regs + 1, smem_bytes,
                              spec)
    if cliff.blocks_per_sm < occ.blocks_per_sm:
        findings.append(Finding(
            "occupancy", Severity.INFO, kernel,
            f"occupancy cliff: one more register per thread drops "
            f"blocks/SM from {occ.blocks_per_sm} to "
            f"{cliff.blocks_per_sm} (Section 4.2)"))
    if occ.occupancy < 1 / 3:
        findings.append(Finding(
            "occupancy", Severity.INFO, kernel,
            f"low occupancy {occ.occupancy:.2f} "
            f"({occ.active_threads_per_sm}/{spec.max_threads_per_sm} "
            f"thread contexts; limiter: {occ.limiter})"))
    return findings, occ.describe()


# ----------------------------------------------------------------------
# R5: batch safety
# ----------------------------------------------------------------------

def rule_batch_safety(hazards: List[HazardEvent], kernel: str,
                      declared: Optional[bool]) -> List[Finding]:
    findings: List[Finding] = []
    kinds = sorted({h.kind for h in hazards})
    if declared is None:
        return findings
    if declared and hazards:
        seen = set()
        for h in hazards:
            if h.kind in seen:
                continue
            seen.add(h.kind)
            findings.append(Finding(
                "batch-safety", Severity.HIGH, kernel,
                f"declared batchable=True but {h.detail}", h.line))
    elif not declared and not hazards:
        findings.append(Finding(
            "batch-safety", Severity.MEDIUM, kernel,
            "declared batchable=False but no construct that breaks "
            "batched execution was found — flag may be stale"))
    elif not declared and hazards:
        labels = ", ".join(_HAZARD_LABELS.get(k, k) for k in kinds)
        findings.append(Finding(
            "batch-safety", Severity.INFO, kernel,
            f"batchable=False is justified: {labels}"))
    return findings


# ----------------------------------------------------------------------
# R6: grid compilability
# ----------------------------------------------------------------------

def _compile_status_safe(kernel) -> Tuple[bool, str]:
    """``compile_status`` that never raises (analyzer must survive)."""
    from ..compile import compile_status
    try:
        return compile_status(kernel)
    except Exception as exc:
        return False, f"{type(exc).__name__}: {exc}"


def rule_compilability(kernel, name: str) -> List[Finding]:
    """INFO when the grid compiler cannot lower the kernel — the
    ``compiled`` executor (and ``executor="auto"``) will fall back to
    the batched interpreter for it.  Silent on success."""
    ok, reason = _compile_status_safe(kernel)
    if ok:
        return []
    return [Finding(
        "compile", Severity.INFO, name,
        f"not grid-compilable ({reason}); the compiled executor falls "
        f"back to the batched interpreter")]


# ----------------------------------------------------------------------
# R7: inter-launch dataflow — the fusion-legality oracle
# ----------------------------------------------------------------------
#
# Runs the abstract interpreter over an application's *whole launch
# sequence* (captured via :func:`repro.cuda.plan.observe_plans`),
# derives per-launch global read/write sets, and chains them into
# per-array def-use across launches.  An intermediate written by one
# launch and consumed by a later one with a single producing segment
# is **fusable-private** (safe to keep in registers/shared inside a
# fused producer→consumer module); an array whose value flows around a
# launch loop — re-defined and re-consumed, or accumulated
# read-modify-write — is **loop-carried** and any fusion must preserve
# the carried dependence.

from dataclasses import dataclass as _dataclass, field as _field


@_dataclass
class LaunchAccess:
    """Global-memory footprint of one launch, derived statically."""

    index: int
    kernel: str
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    #: arrays whose *incoming* value the launch observes (first access
    #: in event order is a load — includes read-modify-write
    #: accumulators)
    reads_incoming: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {"index": self.index, "kernel": self.kernel,
                "reads": list(self.reads), "writes": list(self.writes),
                "reads_incoming": list(self.reads_incoming)}


@_dataclass
class ArrayDataflow:
    """Cross-launch classification of one global array."""

    array: str
    classification: str   # input | live-out | fusable-private | loop-carried
    defs: Tuple[int, ...] = ()          # launches that write it
    uses: Tuple[int, ...] = ()          # launches that read incoming value
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"array": self.array,
                "classification": self.classification,
                "defs": list(self.defs), "uses": list(self.uses),
                "detail": self.detail}


@_dataclass
class LaunchDataflow:
    """R7 output: the launch sequence plus per-array verdicts."""

    app: str
    launches: List[LaunchAccess] = _field(default_factory=list)
    arrays: Dict[str, ArrayDataflow] = _field(default_factory=dict)
    findings: List[Finding] = _field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {"app": self.app,
                "launches": [la.to_dict() for la in self.launches],
                "arrays": {k: v.to_dict()
                           for k, v in sorted(self.arrays.items())},
                "findings": [f.to_dict() for f in self.findings]}


def _plan_access(plan, spec: DeviceSpec) -> LaunchAccess:
    """Abstractly interpret one recorded plan: global read/write sets."""
    from ..cuda.memory import DeviceArray
    from .targets import LintArray
    args = []
    for a in plan.args:
        if isinstance(a, DeviceArray):
            args.append(LintArray(a.name, getattr(a, "space", "global"),
                                  a.size, str(a.data.dtype)))
        else:
            args.append(a)
    grid = (plan.grid.x, plan.grid.y, plan.grid.z)
    block = (plan.block.x, plan.block.y, plan.block.z)
    target = LintTarget(plan.kernel, grid, block, tuple(args))
    recorder, _ctx = interpret(target, sample_coords(plan.grid)[0], spec)
    reads: List[str] = []
    writes: List[str] = []
    first_op: Dict[str, str] = {}
    for ev in recorder.events:
        if not isinstance(ev, MemEvent) or ev.space != "global":
            continue
        if ev.op in ("ld", "atom") and ev.array not in reads:
            reads.append(ev.array)
        if ev.op in ("st", "atom") and ev.array not in writes:
            writes.append(ev.array)
        first_op.setdefault(ev.array, "ld" if ev.op != "st" else "st")
    incoming = tuple(a for a in reads if first_op.get(a) == "ld")
    return LaunchAccess(index=0, kernel=plan.kernel.name,
                        reads=tuple(reads), writes=tuple(writes),
                        reads_incoming=incoming)


def classify_dataflow(launches: List[LaunchAccess],
                      ) -> Dict[str, ArrayDataflow]:
    """Chain per-launch footprints into per-array def-use verdicts."""
    arrays: Dict[str, ArrayDataflow] = {}
    names: List[str] = []
    for la in launches:
        for name in (*la.reads, *la.writes):
            if name not in names:
                names.append(name)
    for name in names:
        defs = tuple(la.index for la in launches if name in la.writes)
        uses = tuple(la.index for la in launches
                     if name in la.reads_incoming)
        if not defs:
            arrays[name] = ArrayDataflow(
                name, "input", defs, uses,
                "read-only: defined by the host, never written on device")
            continue
        # def segments whose value a later (or same, for accumulators)
        # launch observes
        defs_used: set = set()
        initial_read = False
        last_def: Optional[int] = None
        for la in launches:
            if name in la.reads_incoming:
                if last_def is None:
                    initial_read = True
                else:
                    defs_used.add(last_def)
            if name in la.writes:
                last_def = la.index
        if not defs_used:
            arrays[name] = ArrayDataflow(
                name, "live-out", defs, uses,
                "written on device, never re-read by a later launch")
            continue
        carried = len(defs_used) >= 2 or (initial_read and defs_used)
        if carried:
            arrays[name] = ArrayDataflow(
                name, "loop-carried", defs, uses,
                f"value flows across launch iterations (defs at "
                f"launches {sorted(defs_used)} are re-consumed); fusion "
                f"must preserve the carried dependence")
        else:
            arrays[name] = ArrayDataflow(
                name, "fusable-private", defs, uses,
                f"single producing segment (launch {sorted(defs_used)[0]}) "
                f"consumed only by later launches — a legal "
                f"producer→consumer fusion candidate")
    return arrays


def analyze_launch_sequence(plans: List[object], app: str = "",
                            spec: DeviceSpec = DEFAULT_DEVICE,
                            ) -> LaunchDataflow:
    """R7 over an already-recorded launch sequence."""
    flow = LaunchDataflow(app=app)
    cache: Dict[Tuple, LaunchAccess] = {}
    for i, plan in enumerate(plans):
        names = tuple(getattr(a, "name", None) for a in plan.args)
        key = plan.arg_signature() + (plan.grid, names)
        access = cache.get(key)
        if access is None:
            access = cache[key] = _plan_access(plan, spec)
        access = LaunchAccess(index=i, kernel=access.kernel,
                              reads=access.reads, writes=access.writes,
                              reads_incoming=access.reads_incoming)
        flow.launches.append(access)
    flow.arrays = classify_dataflow(flow.launches)
    for df in flow.arrays.values():
        if df.classification in ("fusable-private", "loop-carried"):
            flow.findings.append(Finding(
                "launch-dataflow", Severity.INFO,
                flow.launches[df.defs[0]].kernel if df.defs else app,
                f"{df.array!r} is {df.classification}: {df.detail}",
                array=df.array))
    return flow


def launch_dataflow(app_name: str, spec: DeviceSpec = DEFAULT_DEVICE,
                    scale: str = "test") -> LaunchDataflow:
    """Run one application's ``test`` workload, record its launch
    sequence, and classify every device array's cross-launch role."""
    from ..apps.registry import get_app
    from ..cuda.plan import observe_plans
    app = get_app(app_name, spec)
    plans: List[object] = []
    with observe_plans(plans.append):
        app.run(app.default_workload(scale), functional=True)
    return analyze_launch_sequence(plans, app=app_name, spec=spec)


# ----------------------------------------------------------------------
# R8: divergence — uniformity dataflow over the kernel IR
# ----------------------------------------------------------------------

def rule_divergence(kernel, name: str,
                    census: Optional[KernelTrace] = None,
                    ) -> Tuple[List[Finding], Dict[str, object]]:
    """Static divergence verdicts from the IR dataflow
    (:mod:`repro.analysis.divergence`), the static twin of the dynamic
    synccheck tool:

    * HIGH — ``__syncthreads`` reachable under thread-varying control
      flow (deadlocks on hardware; synccheck catches it dynamically);
    * MEDIUM — a thread-varying branch inside a loop (hot: both paths
      serialize every iteration, Section 4's issue-rate derate);
    * INFO — a ``ctx.masked`` region whose condition is proven uniform
      or block-uniform: every lane of a block agrees, so the compiler
      may un-predicate it (no divergence cost).

    ``census``, when supplied, contributes the sample-block static
    divergent-warp fractions to the returned summary dict.
    """
    from .divergence import Uniformity, analyze_divergence
    try:
        analysis = analyze_divergence(kernel)
    except Exception:              # IR lowering is best-effort
        return [], {}
    findings: List[Finding] = []
    for s in analysis.divergent_syncs:
        findings.append(Finding(
            "divergence", Severity.HIGH, name,
            "__syncthreads() reachable under thread-varying control "
            "flow — the uniformity dataflow proves lanes of a warp can "
            "disagree on the enclosing branch (deadlocks on hardware)",
            s.line))
    for b in analysis.branches:
        if b.uniformity is Uniformity.VARYING:
            if b.in_loop and b.kind in ("masked", "if"):
                findings.append(Finding(
                    "divergence", Severity.MEDIUM, name,
                    f"thread-varying {b.kind} branch inside a loop: "
                    f"divergent warps serialize both paths every "
                    f"iteration (issue-rate derate, Section 4)", b.line))
        elif b.kind == "masked":
            findings.append(Finding(
                "divergence", Severity.INFO, name,
                f"masked branch condition is {b.uniformity}: every "
                f"lane of a block agrees, so the predication is "
                f"removable (compiler may lower it branch-free)",
                b.line))
    summary = analysis.summary()
    if census is not None:
        summary["static_divergent_branch_fraction"] = round(
            census.divergent_branch_fraction, 6)
        summary["static_serialized_fraction"] = round(
            census.divergence_serialized_fraction, 6)
    return findings, summary


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def analyze_target(target: LintTarget, app: str = "",
                   spec: DeviceSpec = DEFAULT_DEVICE) -> KernelReport:
    """Run every rule against one lint target and merge the verdicts."""
    kernel = target.kernel
    name = getattr(kernel, "name", "<kernel>")
    grid = as_dim3(tuple(target.grid))
    block = as_dim3(tuple(target.block))
    nthreads = block.size
    declared = getattr(kernel, "batchable", None)
    regs_declared = getattr(kernel, "regs_per_thread", 10)
    static_smem = getattr(kernel, "static_smem_bytes", 0)

    report = KernelReport(
        kernel=name, app=app, grid=tuple(target.grid),
        block=tuple(target.block), note=target.note,
        threads_per_block=nthreads, regs_declared=regs_declared,
        batchable_declared=declared)

    seen_findings: set = set()
    merged_access: Dict[Tuple[str, str], AccessSummary] = {}
    hazards: List[HazardEvent] = []
    hazard_keys: set = set()
    smem_bytes = static_smem
    regs_estimated = 0
    notes: List[Tuple[int, str]] = []
    census_total = KernelTrace()

    def add(findings: List[Finding]) -> None:
        for f in findings:
            key = (f.rule, f.line, f.array, f.message)
            if key not in seen_findings:
                seen_findings.add(key)
                report.findings.append(f)

    for coord in sample_coords(grid):
        recorder, ctx = interpret(target, coord, spec)
        events = recorder.events
        add(rule_barriers(events, nthreads, name))
        mem_findings, summaries = rule_memory(events, nthreads, name,
                                              spec)
        add(mem_findings)
        for key, summary in summaries.items():
            cur = merged_access.get(key)
            if cur is None:
                merged_access[key] = summary
                continue
            if _rank(summary.pattern) > _rank(cur.pattern):
                cur.pattern = summary.pattern
            if summary.coalesced is False or cur.coalesced is False:
                cur.coalesced = False
            elif summary.coalesced is None or cur.coalesced is None:
                cur.coalesced = None
            if summary.conflict_degree is not None:
                cur.conflict_degree = max(cur.conflict_degree or 1,
                                          summary.conflict_degree)
            cur.sites = tuple(sorted(set(cur.sites) | set(summary.sites)))
        for ev in events:
            if isinstance(ev, HazardEvent):
                if (ev.kind, ev.line) not in hazard_keys:
                    hazard_keys.add((ev.kind, ev.line))
                    hazards.append(ev)
        smem_bytes = max(smem_bytes, ctx.smem_bytes + static_smem)
        regs_estimated = max(regs_estimated, recorder.live_regs_max)
        census_total.merge(ctx.census)
        for note in recorder.notes:
            if note not in notes:
                notes.append(note)

    occ_findings, occ_desc = rule_occupancy(
        nthreads, regs_declared, smem_bytes, name, spec)
    add(occ_findings)
    add(rule_batch_safety(hazards, name, declared))
    add(rule_compilability(kernel, name))
    ok, reason = _compile_status_safe(kernel)
    report.compile = {"ok": ok, "reason": None if ok else reason}
    div_findings, div_summary = rule_divergence(kernel, name, census_total)
    add(div_findings)
    report.divergence = div_summary
    add([Finding("analysis", Severity.INFO, name, message, line or None)
         for line, message in notes])

    report.accesses = sorted(merged_access.values(),
                             key=lambda s: (s.space, s.array))
    report.smem_bytes = smem_bytes
    report.regs_estimated = regs_estimated
    report.occupancy = occ_desc
    report.batch_hazards = sorted({h.kind for h in hazards})
    report.findings.sort(
        key=lambda f: (-int(f.severity), f.line or 0, f.rule))
    return report
