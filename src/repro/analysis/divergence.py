"""Uniformity & divergence dataflow over the kernel IR — rule R8.

The Section 4 issue-rate story depends on control flow: a branch whose
condition differs *within* a warp serializes both paths, and a
``__syncthreads`` reached under such a mask deadlocks real hardware
(the DSL raises; ``san.synccheck`` reports).  Everything the repo
had so far observes this dynamically.  This module proves it
statically, in the style of classic GPU divergence analyses: a
three-point **uniformity lattice**

    UNIFORM  <  BLOCK_UNIFORM  <  VARYING

(``uniform``: one value per grid; ``block-uniform``: one value per
block — e.g. anything derived from ``ctx.bx``; ``thread-varying``:
lanes may disagree — anything derived from ``ctx.tid``), and a
monotone forward dataflow to fixpoint over the
:class:`~repro.analysis.ir.KernelIR` CFG.  Control uniformity is
propagated through branch *influence regions* (the blocks between a
branch and its reconvergence point, i.e. its immediate
post-dominator), so a value assigned under a thread-varying branch is
itself thread-varying at the join.

The lattice seeds mirror the PR-3 ``SymVal`` taints: ``block-coord``
tainted values are what BLOCK_UNIFORM covers, per-lane identity
vectors are VARYING, and scalars with neither taint are UNIFORM.

Consumers:

* :func:`repro.analysis.rules.rule_divergence` turns verdicts into R8
  findings (HIGH divergent sync, MEDIUM hot divergent branch, INFO
  provably-uniform predication);
* :mod:`repro.compile.lower` queries :func:`uniform_mask_lines` to
  lower ``__syncthreads`` under *proven-uniform* ``ctx.masked``
  regions instead of refusing the kernel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Tuple

from .ir import KernelIR, lower_kernel

__all__ = ["Uniformity", "join", "BranchVerdict", "SyncVerdict",
           "DivergenceAnalysis", "analyze_divergence",
           "uniform_mask_lines"]


class Uniformity(enum.IntEnum):
    """The lattice; ``join`` is ``max`` (VARYING is top)."""

    UNIFORM = 0
    BLOCK_UNIFORM = 1
    VARYING = 2

    def __str__(self) -> str:
        return {Uniformity.UNIFORM: "uniform",
                Uniformity.BLOCK_UNIFORM: "block-uniform",
                Uniformity.VARYING: "thread-varying"}[self]


def join(a: Uniformity, b: Uniformity) -> Uniformity:
    """Least upper bound of two lattice points."""
    return a if a >= b else b


#: lattice seeding of the ``ctx`` identity surface (attribute reads
#: and query calls surfaced as IR seed tokens); anything absent —
#: ``nthreads``, ``blockDim``, ``spec``, ... — is grid-constant
SEED_UNIFORMITY: Dict[str, Uniformity] = {
    "tx": Uniformity.VARYING, "ty": Uniformity.VARYING,
    "tz": Uniformity.VARYING, "tid": Uniformity.VARYING,
    "global_tid": Uniformity.VARYING,
    "global_tid_x": Uniformity.VARYING,
    "global_tid_y": Uniformity.VARYING,
    "mask": Uniformity.VARYING,
    "bx": Uniformity.BLOCK_UNIFORM, "by": Uniformity.BLOCK_UNIFORM,
    "bz": Uniformity.BLOCK_UNIFORM,
    "block_linear": Uniformity.BLOCK_UNIFORM,
}


@dataclass(frozen=True)
class BranchVerdict:
    """One classified branch."""

    line: int
    kind: str                  # "masked" | "if" | "loop" | "while"
    uniformity: Uniformity
    in_loop: bool
    block: int


@dataclass(frozen=True)
class SyncVerdict:
    """One ``ctx.sync()`` site with its control uniformity."""

    line: int
    control: Uniformity
    block: int

    @property
    def divergent(self) -> bool:
        return self.control is Uniformity.VARYING


@dataclass
class DivergenceAnalysis:
    """Fixpoint result: per-name uniformity, branch and sync verdicts."""

    ir: KernelIR
    var_uniformity: Dict[str, Uniformity]
    branches: List[BranchVerdict]
    syncs: List[SyncVerdict]

    @property
    def divergent_syncs(self) -> List[SyncVerdict]:
        return [s for s in self.syncs if s.divergent]

    @property
    def varying_branches(self) -> List[BranchVerdict]:
        return [b for b in self.branches
                if b.uniformity is Uniformity.VARYING]

    def uniform_masked_lines(self) -> FrozenSet[int]:
        """Absolute lines of ``ctx.masked`` branches whose condition is
        proven uniform or block-uniform (all lanes of any block agree)."""
        return frozenset(b.line for b in self.branches
                         if b.kind == "masked"
                         and b.uniformity is not Uniformity.VARYING)

    def summary(self) -> Dict[str, object]:
        counts = {u: 0 for u in Uniformity}
        for b in self.branches:
            counts[b.uniformity] += 1
        return {
            "branches": len(self.branches),
            "uniform_branches": counts[Uniformity.UNIFORM],
            "block_uniform_branches": counts[Uniformity.BLOCK_UNIFORM],
            "varying_branches": counts[Uniformity.VARYING],
            "divergent_syncs": len(self.divergent_syncs),
        }


# ----------------------------------------------------------------------
# The dataflow
# ----------------------------------------------------------------------

def _expr_uniformity(srcs: Tuple[str, ...], seeds: Tuple[str, ...],
                     env: Dict[str, Uniformity]) -> Uniformity:
    u = Uniformity.UNIFORM
    for s in srcs:
        u = join(u, env.get(s, Uniformity.UNIFORM))
    for seed in seeds:
        u = join(u, SEED_UNIFORMITY.get(seed, Uniformity.UNIFORM))
    return u


def _run_dataflow(ir: KernelIR, param_seed: Uniformity
                  ) -> DivergenceAnalysis:
    # params other than ctx start at the seed (UNIFORM for kernel
    # entries: scalar launch arguments are one value per grid)
    entry_env: Dict[str, Uniformity] = {
        p: param_seed for p in ir.params[1:]}
    out_env: Dict[int, Dict[str, Uniformity]] = {
        b: {} for b in ir.reachable}
    ctrl: Dict[int, Uniformity] = {
        b: Uniformity.UNIFORM for b in ir.reachable}
    regions = {b.index: ir.influence_region(b.index)
               for b in ir.branch_blocks()}

    for _ in range(64):                       # fixpoint (lattice is tiny)
        changed = False
        # 1) propagate values block by block in reverse post-order
        for idx in ir.rpo:
            blk = ir.blocks[idx]
            preds = [p for p in blk.preds if p in ir.reachable]
            if idx == ir.entry:
                env = dict(entry_env)
            else:
                env = {}
                for p in preds:
                    for name, u in out_env[p].items():
                        env[name] = join(env.get(name, Uniformity.UNIFORM),
                                         u) if name in env else u
            c = ctrl[idx]
            for instr in blk.instrs:
                u = join(_expr_uniformity(instr.srcs, instr.seeds, env), c)
                for d in instr.dests:
                    env[d] = u
            if env != out_env[idx]:
                out_env[idx] = env
                changed = True
        # 2) recompute control uniformity from branch conditions
        new_ctrl = {b: Uniformity.UNIFORM for b in ir.reachable}
        for bidx, region in regions.items():
            blk = ir.blocks[bidx]
            u = join(_expr_uniformity(blk.branch.srcs, blk.branch.seeds,
                                      out_env[bidx]),
                     ctrl[bidx])
            for n in region:
                if n in new_ctrl:
                    new_ctrl[n] = join(new_ctrl[n], u)
        if new_ctrl != ctrl:
            ctrl = new_ctrl
            changed = True
        if not changed:
            break

    branches = []
    for blk in ir.branch_blocks():
        u = _expr_uniformity(blk.branch.srcs, blk.branch.seeds,
                             out_env[blk.index])
        branches.append(BranchVerdict(blk.branch.line, blk.branch.kind,
                                      u, ir.in_loop(blk.index), blk.index))
    syncs = [SyncVerdict(line, ctrl[block], block)
             for block, line in ir.sync_sites()]

    final_env: Dict[str, Uniformity] = {}
    for env in out_env.values():
        for name, u in env.items():
            final_env[name] = join(final_env.get(name, Uniformity.UNIFORM),
                                   u)
    return DivergenceAnalysis(ir, final_env,
                              sorted(branches, key=lambda b: b.line),
                              sorted(syncs, key=lambda s: s.line))


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

_CACHE: Dict[Tuple[int, Uniformity], Tuple[Callable, DivergenceAnalysis]] = {}


def analyze_divergence(fn: Callable,
                       param_seed: Uniformity = Uniformity.UNIFORM
                       ) -> DivergenceAnalysis:
    """Run the uniformity/divergence dataflow on a kernel function (or
    :class:`~repro.cuda.launch.Kernel`); memoized per function.

    ``param_seed`` is the lattice point assumed for the non-``ctx``
    parameters — UNIFORM for kernel entries (launch arguments are
    grid constants); pass VARYING when analyzing a helper that may be
    called with per-lane arguments.
    """
    raw = getattr(fn, "fn", fn)
    key = (id(raw), param_seed)
    hit = _CACHE.get(key)
    if hit is not None and hit[0] is raw:
        return hit[1]
    analysis = _run_dataflow(lower_kernel(raw), param_seed)
    if len(_CACHE) > 256:
        _CACHE.clear()
    _CACHE[key] = (raw, analysis)
    return analysis


def uniform_mask_lines(fn: Callable) -> FrozenSet[int]:
    """Absolute source lines of ``ctx.masked`` branches the analysis
    proves uniform/block-uniform — the grid compiler's license to keep
    a ``__syncthreads`` under such a mask (every lane of a block
    agrees on the condition, so the barrier is never divergent)."""
    try:
        return analyze_divergence(fn).uniform_masked_lines()
    except (OSError, SyntaxError, ValueError, TypeError):
        return frozenset()
