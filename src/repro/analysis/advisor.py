"""Optimization advisor: rank Section-4 transformations by payoff.

Given a kernel's static census and register estimate, the advisor
asks, for each transformation in the paper's catalogue
(:data:`repro.opt.passes.OPTIMIZATION_PASSES`): *if this pass were
applied, what would the performance estimate become?*  Each pass's
effect is modelled on the census trace the same way the paper reasons
about PTX —

* **tiling** stages global tiles through shared memory: global
  traffic divides by the tile dimension, staging becomes coalesced,
  shared accesses and two barriers per tile appear (Section 4.2);
* **unrolling** deletes the per-iteration branch/compare/increment
  bookkeeping and frees the induction register (Section 4.3,
  125 -> 59 instructions);
* **prefetching** double-buffers through registers: two more
  registers, a register move per staged element (Section 4.4) — the
  advisor reproduces the paper's *negative* payoff when the extra
  registers cross an occupancy cliff;
* **register tiling** keeps an output tile in registers, removing
  address recomputation at a 4-register cost (Section 5.2);
* **predication** flattens thread-varying branches the R8 divergence
  census saw diverge: the per-branch SETP/BRANCH pair disappears and
  partial-mask warps stop wasting issue slots.

The adjusted census is re-estimated through the identical
bounds/timing pipeline, so predicted payoffs and the real variant
ladder are directly comparable (validated in
:mod:`repro.analysis.validate`).  Advice is emitted as ``advisor``
findings at ``info`` severity through the standard lint plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from ..opt.passes import OPTIMIZATION_PASSES, OptimizationPass
from ..trace.instr import InstrClass
from ..trace.trace import KernelTrace
from .estimate import PerfEstimate, estimate_census, estimate_target
from .findings import Finding, Severity
from .targets import LintTarget

#: tile dimension the tiling model assumes (the paper's 16x16 tiles)
TILE_DIM = 16

ADVISOR_RULE = "advisor"


@dataclass(frozen=True)
class Advice:
    """Predicted consequence of applying one pass to one kernel."""

    pass_name: str
    description: str
    predicted_gflops: float         # estimate after the pass
    payoff_gflops: float            # delta vs the base estimate
    bound_after: str
    blocks_per_sm_before: int
    blocks_per_sm_after: int
    regs_after: int

    @property
    def payoff_fraction(self) -> float:
        base = self.predicted_gflops - self.payoff_gflops
        return self.payoff_gflops / base if base > 0 else 0.0

    @property
    def occupancy_cliff(self) -> bool:
        return self.blocks_per_sm_after < self.blocks_per_sm_before

    def to_dict(self) -> Dict[str, object]:
        return {
            "pass": self.pass_name,
            "predicted_gflops": round(self.predicted_gflops, 2),
            "payoff_gflops": round(self.payoff_gflops, 2),
            "payoff_fraction": round(self.payoff_fraction, 4),
            "bound_after": self.bound_after,
            "blocks_per_sm_before": self.blocks_per_sm_before,
            "blocks_per_sm_after": self.blocks_per_sm_after,
            "regs_after": self.regs_after,
            "occupancy_cliff": self.occupancy_cliff,
        }


@dataclass
class AdvisorReport:
    """Ranked transformation advice for one lint target."""

    kernel: str
    note: str
    base: PerfEstimate
    advice: List[Advice]            # sorted by payoff, best first

    @property
    def label(self) -> str:
        return f"{self.kernel}[{self.note}]" if self.note else self.kernel

    def best(self) -> Optional[Advice]:
        return self.advice[0] if self.advice else None

    def findings(self) -> List[Finding]:
        """Advisor findings in the lint vocabulary (all ``info``)."""
        out: List[Finding] = []
        for adv in self.advice:
            sign = "+" if adv.payoff_gflops >= 0 else ""
            message = (
                f"{adv.pass_name}: predicted {adv.predicted_gflops:.1f} "
                f"GFLOPS ({sign}{adv.payoff_gflops:.1f} vs base "
                f"{self.base.predicted_gflops:.1f}), bound: "
                f"{adv.bound_after}")
            if adv.occupancy_cliff:
                message += (
                    f"; WARNING: {adv.regs_after} regs/thread drops "
                    f"occupancy {adv.blocks_per_sm_before} -> "
                    f"{adv.blocks_per_sm_after} blocks/SM")
            out.append(Finding(
                rule=ADVISOR_RULE, severity=Severity.INFO,
                kernel=self.kernel, message=message))
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "note": self.note,
            "base": self.base.to_dict(),
            "advice": [a.to_dict() for a in self.advice],
        }


def _loop_iterations(trace: KernelTrace) -> float:
    """Warp-level loop-iteration estimate: each materialized iteration
    emits exactly one BRANCH via ``ctx.loop_tail`` (divergent ``if``
    blocks also emit BRANCH, so this overcounts for branchy kernels —
    acceptable for ranking, documented in DESIGN.md)."""
    return float(trace.warp_insts[InstrClass.BRANCH])


def _apply_pass_to_trace(trace: KernelTrace, opt: OptimizationPass
                         ) -> KernelTrace:
    """Model a pass's effect on a census trace (see module docs)."""
    new = trace.scaled(1.0)         # deep-ish copy with identical stats
    iters = _loop_iterations(trace)

    if opt.name == "unrolling":
        # delete the per-iteration compare / branch / induction update
        for cls in (InstrClass.BRANCH, InstrClass.SETP, InstrClass.IALU):
            removed = min(iters, new.warp_insts[cls])
            new.warp_insts[cls] -= removed
            new.thread_insts[cls] = max(
                0.0, new.thread_insts[cls] - removed * 32)
    elif opt.name == "prefetching":
        # one register move per staged element, amortized per iteration
        moves = abs(opt.insts_per_iter_delta) * iters
        new.warp_insts[InstrClass.CVT] += moves
        new.thread_insts[InstrClass.CVT] += moves * 32
    elif opt.name == "tiling":
        # stage TILE_DIM-wide tiles through shared memory: each element
        # is fetched once per tile instead of once per thread, the
        # staging loads coalesce, and reads move to shared memory
        loads = new.warp_insts[InstrClass.LD_GLOBAL]
        staged = loads / TILE_DIM
        new.warp_insts[InstrClass.LD_GLOBAL] = staged
        new.thread_insts[InstrClass.LD_GLOBAL] /= TILE_DIM
        new.warp_insts[InstrClass.LD_SHARED] += loads
        new.thread_insts[InstrClass.LD_SHARED] += \
            trace.thread_insts[InstrClass.LD_GLOBAL]
        new.warp_insts[InstrClass.ST_SHARED] += staged
        new.thread_insts[InstrClass.ST_SHARED] += \
            trace.thread_insts[InstrClass.LD_GLOBAL] / TILE_DIM
        new.warp_insts[InstrClass.SYNC] += 2 * iters / TILE_DIM
        new.syncs += 2 * iters / TILE_DIM
        new.global_transactions /= TILE_DIM
        new.global_bus_bytes /= TILE_DIM
        new.global_useful_bytes /= TILE_DIM
        new.uncoalesced_transactions = 0.0
        for stats in new.per_array.values():
            scaled = stats.scaled(1.0 / TILE_DIM)
            stats.warp_accesses = scaled.warp_accesses
            stats.transactions = scaled.transactions
            stats.bus_bytes = scaled.bus_bytes
            stats.useful_bytes = scaled.useful_bytes
            stats.coalesced_accesses = scaled.transactions
    elif opt.name == "register_tiling":
        removed = min(iters, new.warp_insts[InstrClass.IALU])
        new.warp_insts[InstrClass.IALU] -= removed
        new.thread_insts[InstrClass.IALU] = max(
            0.0, new.thread_insts[InstrClass.IALU] - removed * 32)
    elif opt.name == "predication":
        # flatten divergent branches: each divergent branch execution
        # loses its SETP/BRANCH pair and its partial-mask warps stop
        # occupying issue slots with idle lanes
        div = trace.divergent_branch_warps
        for cls in (InstrClass.BRANCH, InstrClass.SETP):
            removed = min(div, new.warp_insts[cls])
            new.warp_insts[cls] -= removed
            new.thread_insts[cls] = max(
                0.0, new.thread_insts[cls] - removed * 32)
        new.branch_warps = max(0.0, new.branch_warps - div)
        new.divergent_branch_warps = 0.0
        new.divergence_serialized_warp_insts = 0.0

    return new


def _applicable(base: PerfEstimate, opt: OptimizationPass) -> bool:
    trace = base.census.trace
    has_induction = "induction" in base.registers.classes.values()
    if opt.name == "tiling":
        return (trace.warp_insts[InstrClass.LD_GLOBAL] > 0
                and base.census.smem_bytes == 0
                and _loop_iterations(trace) > 0)
    if opt.name == "unrolling":
        return has_induction
    if opt.name == "prefetching":
        # needs a shared-memory staging loop and no register
        # double-buffering yet (register moves emit ``cvt``)
        return (base.census.smem_bytes > 0
                and trace.warp_insts[InstrClass.CVT] == 0
                and trace.warp_insts[InstrClass.LD_GLOBAL] > 0)
    if opt.name == "register_tiling":
        return has_induction and trace.warp_insts[InstrClass.FMA] > 0
    if opt.name == "predication":
        # only priced when the static census saw warps actually diverge
        return trace.divergent_branch_warps > 0
    return False


def advise_estimate(base: PerfEstimate,
                    spec: DeviceSpec = DEFAULT_DEVICE) -> AdvisorReport:
    """Rank the catalogue's applicable passes against a base estimate."""
    advice: List[Advice] = []
    for opt in OPTIMIZATION_PASSES.values():
        if not _applicable(base, opt):
            continue
        new_trace = _apply_pass_to_trace(base.census.trace, opt)
        new_census = replace(
            base.census, trace=new_trace,
            smem_bytes=max(0, base.census.smem_bytes
                           + opt.smem_delta_bytes))
        regs_after = max(1, base.registers.regs + opt.regs_delta)
        after = estimate_census(new_census, base.registers, spec,
                                regs_per_thread=regs_after)
        advice.append(Advice(
            pass_name=opt.name,
            description=opt.description,
            predicted_gflops=after.predicted_gflops,
            payoff_gflops=after.predicted_gflops - base.predicted_gflops,
            bound_after=after.bound,
            blocks_per_sm_before=base.occupancy.blocks_per_sm,
            blocks_per_sm_after=after.occupancy.blocks_per_sm,
            regs_after=regs_after,
        ))
    advice.sort(key=lambda a: (-a.payoff_gflops, a.pass_name))
    return AdvisorReport(kernel=base.kernel, note=base.note,
                         base=base, advice=advice)


def advise_target(target: LintTarget,
                  spec: DeviceSpec = DEFAULT_DEVICE) -> AdvisorReport:
    """Census, estimate, then advise one lint target."""
    return advise_estimate(estimate_target(target, spec), spec)


def advise_app(app, spec: DeviceSpec = DEFAULT_DEVICE
               ) -> List[AdvisorReport]:
    """Advisor reports for every lint target of an application."""
    if isinstance(app, str):
        from ..apps.registry import get_app
        app = get_app(app)
    return [advise_target(t, spec) for t in app.lint_targets()]


def format_advice(report: AdvisorReport) -> str:
    lines = [f"{report.label}: base {report.base.predicted_gflops:.2f} "
             f"GFLOPS ({report.base.bound})"]
    if not report.advice:
        lines.append("    no applicable transformations")
    for adv in report.advice:
        sign = "+" if adv.payoff_gflops >= 0 else ""
        cliff = (f"  [occupancy {adv.blocks_per_sm_before}->"
                 f"{adv.blocks_per_sm_after} blocks/SM]"
                 if adv.occupancy_cliff else "")
        lines.append(
            f"    {adv.pass_name:16s} -> {adv.predicted_gflops:7.2f} "
            f"GFLOPS ({sign}{adv.payoff_gflops:.2f}){cliff}")
    return "\n".join(lines)
