"""Typed findings the static analyzer emits, and the per-kernel report.

Severity policy (the CI gate fails on ``high``):

* ``high`` — definite correctness hazards: shared-memory read-after-
  write races with no intervening barrier, ``__syncthreads`` under
  divergent control flow, static out-of-bounds accesses, launches
  whose resource demands make occupancy zero, and ``batchable=True``
  declarations contradicted by detected batch hazards.
* ``medium`` — definite performance hazards: uncoalesced global
  access patterns (Section 3.2's 16-word segment rule), shared-memory
  bank conflicts of degree > 1 (Section 5.1), and ``batchable=False``
  declarations the analysis cannot justify.
* ``info`` — advisory: occupancy cliffs (Section 4.2), low occupancy,
  data-dependent access patterns the analyzer cannot classify,
  divergent constant reads, and analysis-coverage notes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Severity(enum.IntEnum):
    INFO = 1
    MEDIUM = 2
    HIGH = 3

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.name.lower() for s in cls]}") from None

    def __str__(self) -> str:  # "high", not "Severity.HIGH"
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One statically detected hazard, anchored to a source line."""

    rule: str                 # divergent-sync | shared-race | coalescing |
    #                           bank-conflict | occupancy | batch-safety |
    #                           bounds | divergence | analysis
    severity: Severity
    kernel: str
    message: str
    line: Optional[int] = None     # absolute line in the kernel's file
    array: str = ""                # array the finding concerns, if any

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "kernel": self.kernel,
            "message": self.message,
            "line": self.line,
            "array": self.array,
        }

    def format(self) -> str:
        loc = f":{self.line}" if self.line else ""
        return (f"[{self.severity}] {self.rule} {self.kernel}{loc}: "
                f"{self.message}")


@dataclass
class AccessSummary:
    """Merged verdict for one array (or shared buffer) of a kernel."""

    array: str
    space: str                     # global | shared | const | tex
    pattern: str                   # worst pattern seen across sites
    coalesced: Optional[bool]      # None when data-dependent / cached
    conflict_degree: Optional[int] = None   # shared only; None = unknown
    sites: Tuple[int, ...] = ()    # source lines involved

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "array": self.array,
            "space": self.space,
            "pattern": self.pattern,
            "coalesced": self.coalesced,
            "sites": list(self.sites),
        }
        if self.space == "shared":
            out["conflict_degree"] = self.conflict_degree
        return out


@dataclass
class KernelReport:
    """Everything the analyzer learned about one lint target."""

    kernel: str
    app: str
    grid: Tuple[int, ...]
    block: Tuple[int, ...]
    note: str = ""
    findings: List[Finding] = field(default_factory=list)
    accesses: List[AccessSummary] = field(default_factory=list)
    smem_bytes: int = 0
    regs_declared: int = 0
    regs_estimated: int = 0
    threads_per_block: int = 0
    occupancy: Dict[str, object] = field(default_factory=dict)
    batch_hazards: List[str] = field(default_factory=list)
    batchable_declared: Optional[bool] = None
    #: R8 summary: branch verdict counts + static divergence fractions
    divergence: Dict[str, object] = field(default_factory=dict)
    #: R6 verdict: ``{"ok": bool, "reason": Optional[str]}`` — whether
    #: the grid compiler can lower this kernel, and why not when it
    #: can't (mirrors :func:`repro.compile.compile_status`)
    compile: Dict[str, object] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.kernel}[{self.note}]" if self.note else self.kernel

    def max_severity(self) -> Optional[Severity]:
        return max((f.severity for f in self.findings), default=None)

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    def access(self, array: str) -> Optional[AccessSummary]:
        for summary in self.accesses:
            if summary.array == array:
                return summary
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "app": self.app,
            "note": self.note,
            "grid": list(self.grid),
            "block": list(self.block),
            "findings": [f.to_dict() for f in self.findings],
            "accesses": [a.to_dict() for a in self.accesses],
            "smem_bytes": self.smem_bytes,
            "regs_declared": self.regs_declared,
            "regs_estimated": self.regs_estimated,
            "threads_per_block": self.threads_per_block,
            "occupancy": self.occupancy,
            "batch_hazards": self.batch_hazards,
            "batchable_declared": self.batchable_declared,
            "divergence": self.divergence,
            "compile": self.compile,
        }
