"""Def-use liveness over kernel ASTs: static registers-per-thread.

Section 4.2 of the paper turns on register pressure: 10 registers per
thread let three 256-thread matmul blocks share an SM (the full 768
thread contexts), one more register would drop that to two, and the
prefetching variant's 11 registers actually do.  This module estimates
a kernel's register demand the way that anecdote reasons: the peak
number of *per-thread* values simultaneously live at any program
point.

The analysis runs on the kernel's Python AST with the closure
environment resolved (tile size, ``unrolled``/``prefetch`` flags), so
configuration branches are pruned before liveness.  Values are
classified by data flow:

* **varying** — derived from thread identity (``ctx.tx``,
  ``ctx.global_tid*``) or loaded data: needs a register per thread;
* **uniform** — derived only from kernel parameters and constants
  (``ntiles = n // tile``): kept in shared/constant storage or
  rematerialized by the compiler, no per-thread register;
* **induction** — a ``for`` target whose loop survives at the ISA
  level.  The DSL marks that explicitly: a loop body that calls
  ``ctx.loop_tail`` pays per-iteration bookkeeping, so its induction
  variable occupies a register; a fully unrolled loop (no
  ``loop_tail``) folds the index into immediates — exactly the
  Section 4.3 "frees the induction register" effect;
* **shared** — handles from ``ctx.shared_alloc``: compile-time base
  addresses, no register.

The estimate is a *lower bound* (compiler temporaries for address
arithmetic are not modeled), but it reproduces the ladder anecdotes
exactly: tiled 10, +unroll 9, +prefetch 11 registers — and therefore
the 3/3/2 blocks-per-SM occupancy the paper derives from them.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

#: ctx methods whose result is per-thread regardless of arguments
VARYING_CALLS = frozenset({
    "global_tid", "global_tid_x", "global_tid_y",
    "ld_global", "ld_shared", "ld_const", "ld_tex", "atom_global_add",
})

#: ctx attributes that are per-thread lane vectors
VARYING_ATTRS = frozenset({"tx", "ty", "tz", "tid"})

#: np constructors that build per-thread accumulator arrays
ARRAY_CTORS = frozenset({"zeros", "ones", "empty", "full", "arange"})

#: fixpoint iteration cap for loop liveness/classification
_MAX_PASSES = 8


@dataclass(frozen=True)
class RegisterEstimate:
    """Static register-pressure estimate for one kernel."""

    kernel: str
    regs: int                       # peak simultaneously-live values
    peak_names: Tuple[str, ...]     # the values live at the peak
    classes: Dict[str, str] = field(default_factory=dict)
    fallback: bool = False          # AST analysis failed; regs is the
    #                                 kernel's declared count

    def to_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "regs": self.regs,
            "peak_names": list(self.peak_names),
            "fallback": self.fallback,
        }


def _kernel_ast(fn) -> Tuple[ast.FunctionDef, Dict[str, object]]:
    lines, _start = inspect.getsourcelines(fn)
    tree = ast.parse(textwrap.dedent("".join(lines)))
    fdef = next(n for n in tree.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)))
    closure: Dict[str, object] = {}
    if fn.__closure__:
        closure = dict(zip(fn.__code__.co_freevars,
                           [c.cell_contents for c in fn.__closure__]))
    return fdef, closure


def _const_eval(node: ast.AST, env: Dict[str, object]):
    """Evaluate a configuration expression against the closure env.
    Returns the value, or None when it involves runtime state."""
    try:
        expr = ast.Expression(body=node)
        code = compile(ast.fix_missing_locations(expr), "<cfg>", "eval")
        names = {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}
        if not names <= set(env):
            return None
        return eval(code, {"__builtins__": {}}, dict(env))  # noqa: S307
    except Exception:
        return None


def _uses(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)}


def _target_names(target: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for n in ast.walk(target):
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store):
            out.add(n.id)
    return out


def _has_loop_tail(body: List[ast.stmt], env: Dict[str, object]) -> bool:
    """Does this loop body (excluding nested loops, respecting
    configuration-branch pruning) call ``ctx.loop_tail``?  That is the
    DSL's marker for a loop that survives at the ISA level."""
    for stmt in body:
        if isinstance(stmt, (ast.For, ast.While)):
            continue
        if isinstance(stmt, ast.If):
            value = _const_eval(stmt.test, env)
            arms = [stmt.body, stmt.orelse] if value is None \
                else [stmt.body if value else stmt.orelse]
            if any(_has_loop_tail(arm, env) for arm in arms):
                return True
            continue
        if isinstance(stmt, ast.With):
            if _has_loop_tail(stmt.body, env):
                return True
            continue
        for n in ast.walk(stmt):
            if (isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr == "loop_tail"):
                return True
    return False


class _Liveness:
    """Backward liveness with data-flow value classification."""

    def __init__(self, fdef: ast.FunctionDef,
                 env: Dict[str, object]) -> None:
        self.fdef = fdef
        self.env = env
        self.params = {a.arg for a in fdef.args.args}
        self.varying: Set[str] = set()
        self.shared: Set[str] = set()
        self.induction: Set[str] = set()     # materialized for targets
        self.peak = 0
        self.peak_names: Tuple[str, ...] = ()

    # -- branch pruning --------------------------------------------------
    def _arms(self, stmt: ast.If) -> List[List[ast.stmt]]:
        value = _const_eval(stmt.test, self.env)
        if value is None:
            return [stmt.body, stmt.orelse]
        return [stmt.body if value else stmt.orelse]

    # -- classification (forward, to fixpoint) ---------------------------
    def _expr_varying(self, node: ast.AST) -> bool:
        for n in ast.walk(node):
            if isinstance(n, ast.Attribute) and n.attr in VARYING_ATTRS \
                    and isinstance(n.value, ast.Name) \
                    and n.value.id == "ctx":
                return True
            if isinstance(n, ast.Call) and isinstance(n.func,
                                                      ast.Attribute):
                if n.func.attr in VARYING_CALLS:
                    return True
                if n.func.attr in ARRAY_CTORS \
                        and isinstance(n.func.value, ast.Name) \
                        and n.func.value.id == "np":
                    return True
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load) \
                    and n.id in self.varying:
                return True
        return False

    def _classify_stmts(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Assign, ast.AugAssign,
                                 ast.AnnAssign)):
                value = getattr(stmt, "value", None)
                if value is None:
                    continue
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                names: Set[str] = set()
                for t in targets:
                    names |= _target_names(t)
                is_alloc = (isinstance(value, ast.Call)
                            and isinstance(value.func, ast.Attribute)
                            and value.func.attr == "shared_alloc")
                if is_alloc:
                    self.shared |= names
                elif self._expr_varying(value) \
                        or (isinstance(stmt, ast.AugAssign)
                            and names & self.varying):
                    self.varying |= names - self.shared
            elif isinstance(stmt, ast.If):
                for arm in self._arms(stmt):
                    self._classify_stmts(arm)
            elif isinstance(stmt, (ast.For, ast.While)):
                if isinstance(stmt, ast.For):
                    names = _target_names(stmt.target)
                    if _has_loop_tail(stmt.body, self.env):
                        self.induction |= names
                    if self._expr_varying(stmt.iter):
                        self.varying |= names
                self._classify_stmts(stmt.body)
                self._classify_stmts(stmt.orelse)
            elif isinstance(stmt, ast.With):
                self._classify_stmts(stmt.body)

    def classify(self) -> None:
        for _ in range(_MAX_PASSES):
            before = (len(self.varying), len(self.shared),
                      len(self.induction))
            self._classify_stmts(self.fdef.body)
            if (len(self.varying), len(self.shared),
                    len(self.induction)) == before:
                break

    # -- liveness (backward, loops to fixpoint) --------------------------
    def _counted(self, live: Set[str]) -> Set[str]:
        return {n for n in live
                if n in self.varying or n in self.induction}

    def _note(self, live: Set[str]) -> None:
        counted = self._counted(live)
        if len(counted) > self.peak:
            self.peak = len(counted)
            self.peak_names = tuple(sorted(counted))

    def _stmts(self, stmts: List[ast.stmt],
               live: Set[str]) -> Set[str]:
        for stmt in reversed(stmts):
            live = self._stmt(stmt, live)
        return live

    def _stmt(self, stmt: ast.stmt, live: Set[str]) -> Set[str]:
        if isinstance(stmt, ast.Assign):
            defs: Set[str] = set()
            uses: Set[str] = _uses(stmt.value)
            for t in stmt.targets:
                if isinstance(t, (ast.Name, ast.Tuple, ast.List)):
                    defs |= _target_names(t)
                else:           # subscript/attribute store: pure use
                    uses |= _uses(t)
            live = (live - defs) | uses
        elif isinstance(stmt, ast.AugAssign):
            live = live | _uses(stmt.value) | _target_names(stmt.target) \
                | _uses(stmt.target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                live = (live - _target_names(stmt.target)) \
                    | _uses(stmt.value)
        elif isinstance(stmt, ast.Expr):
            live = live | _uses(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                live = live | _uses(stmt.value)
        elif isinstance(stmt, ast.If):
            arms = self._arms(stmt)
            merged: Set[str] = set()
            for arm in arms:
                merged |= self._stmts(arm, set(live))
            live = merged
            if len(arms) > 1:
                live = live | _uses(stmt.test)
        elif isinstance(stmt, (ast.For, ast.While)):
            live = self._loop(stmt, live)
        elif isinstance(stmt, ast.With):
            cond_uses: Set[str] = set()
            for item in stmt.items:
                cond_uses |= _uses(item.context_expr)
            live = self._stmts(stmt.body, live) | cond_uses
        self._note(live)
        return live

    def _loop(self, stmt, live_after: Set[str]) -> Set[str]:
        targets: Set[str] = _target_names(stmt.target) \
            if isinstance(stmt, ast.For) else set()
        head_uses = _uses(stmt.iter) if isinstance(stmt, ast.For) \
            else _uses(stmt.test)
        # a materialized induction variable is live for the whole
        # iteration (it is incremented at the loop tail), so it joins
        # the body's live-out, not just the range of its last use
        carried = targets & self.induction
        cur = set(live_after)
        for _ in range(_MAX_PASSES):
            body_in = self._stmts(stmt.body, cur | carried)
            new = (body_in | live_after | head_uses) - targets
            if new <= cur:
                break
            cur |= new
        return cur | head_uses

    # -- entry -----------------------------------------------------------
    def run(self) -> Tuple[int, Tuple[str, ...], Dict[str, str]]:
        self.classify()
        self._stmts(self.fdef.body, set())
        classes: Dict[str, str] = {}
        for name in sorted(self.varying):
            classes[name] = "varying"
        for name in sorted(self.shared):
            classes[name] = "shared"
        for name in sorted(self.induction):
            classes[name] = "induction"
        return max(1, self.peak), self.peak_names, classes


def estimate_registers(kernel) -> RegisterEstimate:
    """Estimate registers/thread for a DSL kernel (see module docs).

    Falls back to the kernel's declared ``regs_per_thread`` when its
    source is unavailable or uses constructs the AST pass cannot
    follow — the estimate then carries ``fallback=True``.
    """
    name = getattr(kernel, "name", "<kernel>")
    declared = int(getattr(kernel, "regs_per_thread", 10))
    fn = getattr(kernel, "fn", kernel)
    try:
        fdef, env = _kernel_ast(fn)
        analysis = _Liveness(fdef, env)
        regs, peak_names, classes = analysis.run()
        return RegisterEstimate(name, regs, peak_names, classes)
    except Exception:
        return RegisterEstimate(name, declared, (), {}, fallback=True)


def static_registers(kernel, prefer_declared: bool = False) -> int:
    """The register count downstream occupancy math should use."""
    if prefer_declared:
        return int(getattr(kernel, "regs_per_thread", 10))
    return estimate_registers(kernel).regs
