"""Closed-form static performance estimates (Section 4 bounds).

The paper's optimization workflow is analytical: before running
anything, Ryoo et al. bound a kernel three ways and compare —

* **compute bound** — FP-useful issue-slot fraction times the active
  device's SP multiply-add peak (plus parallel-SFU credit up to the
  co-issue peak): on the paper's G80, ``1/8`` of peak for naive
  matmul and ``16/59`` of peak after tiling + unrolling;
* **bandwidth bound** — the off-chip traffic the kernel needs per
  flop against the device's DRAM peak: naive matmul demands roughly
  double the G80's pin bandwidth at full rate, so bandwidth halves
  its potential;
* **occupancy-capped issue bound** — issue slots on the critical SM,
  degraded by memory latency the resident warps cannot cover: the
  term that punishes a 4x4 tile (2 warps/block) or a register-pressure
  occupancy cliff.

All three derive from the static :class:`~repro.analysis.census.KernelCensus`
(no execution), registers come from the
:mod:`~repro.analysis.liveness` AST analysis, and the predicted time
reuses :func:`repro.sim.timing.estimate_time` unchanged — so a static
estimate and a simulated launch disagree only where the census
approximates (data-dependent indices, cache residency), which
:mod:`repro.analysis.validate` checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from ..sim.bounds import BoundAnalysis, analyze_bounds
from ..sim.occupancy import Occupancy, compute_occupancy
from ..sim.timing import KernelTimeEstimate, LaunchConfigError, estimate_time
from .census import KernelCensus, census_target
from .liveness import RegisterEstimate, estimate_registers
from .targets import LintTarget


@dataclass(frozen=True)
class PerfEstimate:
    """Static performance estimate for one lint target.

    ``predicted_gflops``/``bound`` come from running the timing model
    on the static census; the three closed-form bounds are the paper's
    back-of-envelope numbers and always bracket the prediction from
    above.
    """

    kernel: str
    note: str
    census: KernelCensus
    bounds: BoundAnalysis
    registers: RegisterEstimate
    occupancy: Occupancy
    time: Optional[KernelTimeEstimate]      # None when unschedulable
    config_error: Optional[str] = None

    # -- the three Section-4 bounds ------------------------------------
    @property
    def compute_bound_gflops(self) -> float:
        """FP-useful fraction x the device's peak issue rate (SP peak,
        with SFU co-issue credit up to the combined peak)."""
        return self.bounds.potential_gflops

    @property
    def bandwidth_bound_gflops(self) -> float:
        """Compute bound degraded by off-chip bandwidth demand."""
        return self.bounds.bandwidth_limited_gflops

    @property
    def issue_bound_gflops(self) -> float:
        """Occupancy-capped issue bound: flops over critical-SM issue
        time including latency the resident warps leave exposed."""
        if self.time is None:
            return 0.0
        limit = max(self.time.issue_seconds, self.time.latency_seconds)
        if limit <= 0:
            return self.compute_bound_gflops
        return self.time.flops / limit / 1e9

    @property
    def static_bound_gflops(self) -> float:
        """The tightest closed-form ceiling — what the autotuner uses
        to prune configurations without simulating them."""
        gflops = min(self.compute_bound_gflops, self.bandwidth_bound_gflops)
        if self.time is not None:
            gflops = min(gflops, self.issue_bound_gflops)
        return gflops

    # -- divergence derate (R8) ----------------------------------------
    @property
    def divergent_branch_fraction(self) -> float:
        """Static share of branch executions whose warp lanes disagree
        (sample-block census counters, R8's quantitative side)."""
        return self.census.trace.divergent_branch_fraction

    @property
    def divergence_serialized_fraction(self) -> float:
        """Static share of warp issue slots spent on partial-mask
        warps — lanes idle under divergence but the slot is consumed."""
        return self.census.trace.divergence_serialized_fraction

    @property
    def divergence_derated_issue_gflops(self) -> float:
        """Issue bound with the divergence-serialized issue share
        removed: partial-mask warp instructions occupy issue slots
        whose idle lanes do no useful FP work, so a divergent kernel
        cannot reach the plain issue bound (advisory — the reported
        ``static_bound_gflops`` is unchanged)."""
        return self.issue_bound_gflops * (
            1.0 - self.divergence_serialized_fraction)

    # -- prediction ----------------------------------------------------
    @property
    def predicted_gflops(self) -> float:
        return self.time.gflops if self.time is not None else 0.0

    @property
    def predicted_seconds(self) -> float:
        return self.time.seconds if self.time is not None else float("inf")

    @property
    def bound(self) -> str:
        """Binding bottleneck, in the timing model's vocabulary."""
        if self.time is None:
            return "launch config"
        return self.time.bound

    @property
    def label(self) -> str:
        return self.census.label

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kernel": self.kernel,
            "note": self.note,
            "fp_useful_fraction": round(self.bounds.fma_fraction, 4),
            "compute_bound_gflops": round(self.compute_bound_gflops, 2),
            "bandwidth_demand_gbs": round(
                self.bounds.bandwidth_demand_gbs, 2),
            "bandwidth_bound_gflops": round(
                self.bandwidth_bound_gflops, 2),
            "issue_bound_gflops": round(self.issue_bound_gflops, 2),
            "divergent_branch_fraction": round(
                self.divergent_branch_fraction, 4),
            "divergence_serialized_fraction": round(
                self.divergence_serialized_fraction, 4),
            "divergence_derated_issue_gflops": round(
                self.divergence_derated_issue_gflops, 2),
            "static_bound_gflops": round(self.static_bound_gflops, 2),
            "memory_bound": self.bounds.memory_bound,
            "predicted_gflops": round(self.predicted_gflops, 2),
            "predicted_seconds": self.predicted_seconds,
            "bound": self.bound,
            "regs_static": self.registers.regs,
            "blocks_per_sm": self.occupancy.blocks_per_sm,
            "occupancy": round(self.occupancy.occupancy, 4),
            "occupancy_limited_by": self.occupancy.limiter,
        }
        if self.registers.fallback:
            out["regs_fallback"] = True
        if self.config_error:
            out["config_error"] = self.config_error
        if self.census.limits:
            out["limits"] = list(self.census.limits)
        return out


def estimate_census(census: KernelCensus,
                    registers: RegisterEstimate,
                    spec: DeviceSpec = DEFAULT_DEVICE,
                    regs_per_thread: Optional[int] = None) -> PerfEstimate:
    """Assemble a :class:`PerfEstimate` from an existing census.

    ``regs_per_thread`` overrides the liveness estimate for the
    occupancy calculation (used when cross-validating against launches
    that honour the kernel's declared register count).
    """
    bounds = analyze_bounds(census.trace, spec)
    regs = regs_per_thread if regs_per_thread is not None else registers.regs
    occ = compute_occupancy(census.threads_per_block, regs,
                            census.smem_bytes, spec)
    time: Optional[KernelTimeEstimate] = None
    config_error: Optional[str] = None
    try:
        time = estimate_time(
            census.trace, census.num_blocks, census.threads_per_block,
            regs, census.smem_bytes, spec, occupancy=occ)
    except LaunchConfigError as exc:
        config_error = str(exc)
    return PerfEstimate(
        kernel=census.kernel, note=census.note, census=census,
        bounds=bounds, registers=registers, occupancy=occ,
        time=time, config_error=config_error)


def estimate_target(target: LintTarget,
                    spec: DeviceSpec = DEFAULT_DEVICE,
                    use_declared_regs: bool = False) -> PerfEstimate:
    """Static performance estimate of one lint target: census the
    kernel, estimate registers by liveness, bound and time it."""
    census = census_target(target, spec)
    registers = estimate_registers(target.kernel)
    regs = int(target.kernel.regs_per_thread) if use_declared_regs else None
    return estimate_census(census, registers, spec, regs_per_thread=regs)


def estimate_app(app, spec: DeviceSpec = DEFAULT_DEVICE,
                 use_declared_regs: bool = False) -> List[PerfEstimate]:
    """Estimates for every lint target of an application (accepts an
    Application instance or a registry name)."""
    if isinstance(app, str):
        from ..apps.registry import get_app
        app = get_app(app)
    return [estimate_target(t, spec, use_declared_regs=use_declared_regs)
            for t in app.lint_targets()]


def format_estimate(est: PerfEstimate) -> str:
    """One-paragraph human-readable rendering (lint --estimate)."""
    lines = [f"{est.label}: predicted {est.predicted_gflops:.2f} GFLOPS "
             f"({est.bound})"]
    lines.append(
        f"  compute bound {est.compute_bound_gflops:.2f} GFLOPS "
        f"(FP-useful {est.bounds.fma_fraction:.3f}), "
        f"bandwidth bound {est.bandwidth_bound_gflops:.2f} GFLOPS "
        f"(demand {est.bounds.bandwidth_demand_gbs:.1f} GB/s), "
        f"issue bound {est.issue_bound_gflops:.2f} GFLOPS")
    if est.divergence_serialized_fraction > 0:
        lines.append(
            f"  divergence: {est.divergent_branch_fraction:.1%} of "
            f"branches divergent, {est.divergence_serialized_fraction:.1%}"
            f" of issue slots partial-mask -> derated issue bound "
            f"{est.divergence_derated_issue_gflops:.2f} GFLOPS")
    regs = est.registers
    occ = est.occupancy
    fallback = " (declared)" if regs.fallback else ""
    lines.append(
        f"  {regs.regs} regs/thread{fallback} -> {occ.blocks_per_sm} "
        f"blocks/SM, occupancy {occ.occupancy:.2f} "
        f"(limited by {occ.limiter})")
    if est.config_error:
        lines.append(f"  UNSCHEDULABLE: {est.config_error}")
    for limit in est.census.limits:
        lines.append(f"  note: {limit}")
    return "\n".join(lines)


EstimateLike = Union[PerfEstimate, KernelCensus]
