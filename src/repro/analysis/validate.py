"""Cross-validate static analyzer verdicts against dynamic traces.

The analyzer's value rests on its verdicts *agreeing with the
simulator*: a statically "coalesced" array must show 1.0 transactions
per half-warp access when the kernel actually runs, a "conflict-free"
shared buffer must produce zero bank-conflict serialization cycles,
and the occupancy the analyzer predicts from declared resources must
match what :func:`repro.sim.occupancy.occupancy_for_launch` computes
for the executed launch.

This harness runs the Section 4 matmul ladder (naive → tiled →
tiled_unrolled → prefetch) plus saxpy **twice** — once statically
through :func:`repro.analysis.rules.analyze_target` and once
dynamically under a :class:`repro.obs.LaunchProfiler` — and checks the
verdicts pairwise::

    python -m repro.analysis.validate            # human-readable
    python -m repro.analysis.validate --json     # machine-readable

Exit status is non-zero if any check disagrees; the test suite runs
the same checks via :func:`validation_checks`.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from ..obs import LaunchProfiler
from ..sim.occupancy import occupancy_for_launch
from .findings import KernelReport
from .rules import analyze_target

#: matmul variants in the paper's optimization order
MATMUL_LADDER = ("naive", "tiled", "tiled_unrolled", "prefetch")


@dataclass
class Check:
    """One static-vs-dynamic agreement check."""

    kernel: str
    check: str                # what was compared
    static: object            # the analyzer's verdict
    dynamic: object           # the simulator's measurement
    ok: bool

    def format(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        return (f"[{mark}] {self.kernel}: {self.check}: "
                f"static={self.static} dynamic={self.dynamic}")

    def to_dict(self) -> Dict[str, object]:
        return {"kernel": self.kernel, "check": self.check,
                "static": self.static, "dynamic": self.dynamic,
                "ok": self.ok}


def _coalescing_checks(report: KernelReport, record,
                       tol: float = 1e-9) -> List[Check]:
    """Per-array: static coalesced ⇔ dynamic transactions/access == 1."""
    checks: List[Check] = []
    for acc in report.accesses:
        if acc.space != "global":
            continue
        tpa = record.transactions_per_access.get(acc.array)
        if tpa is None or tpa == 0.0:   # array untouched in the trace
            continue
        if acc.coalesced is True:
            ok = abs(tpa - 1.0) <= 1e-3
            checks.append(Check(report.kernel,
                                f"{acc.array} coalesced", True,
                                f"tpa={tpa}", ok))
        elif acc.coalesced is False:
            checks.append(Check(report.kernel,
                                f"{acc.array} uncoalesced ({acc.pattern})",
                                False, f"tpa={tpa}", tpa > 1.0 + tol))
        # coalesced is None (data-dependent verdict withheld): nothing
        # definite to cross-check
    return checks


def _conflict_check(report: KernelReport, record) -> List[Check]:
    """Static max bank-conflict degree ⇔ dynamic serialization cycles."""
    degrees = [acc.conflict_degree or 1 for acc in report.accesses
               if acc.space == "shared"]
    if not degrees:
        return []
    worst = max(degrees)
    cycles = record.bank_conflict_cycles
    ok = (cycles == 0.0) if worst <= 1 else (cycles > 0.0)
    return [Check(report.kernel, "bank conflicts",
                  f"degree={worst}", f"cycles={cycles}", ok)]


def _occupancy_check(report: KernelReport, result) -> List[Check]:
    """Static resource-derived occupancy ⇔ executed-launch occupancy."""
    dyn = occupancy_for_launch(result).describe()
    sta = report.occupancy
    keys = ("blocks/SM", "threads/SM", "occupancy", "limited by")
    ok = all(sta.get(k) == dyn.get(k) for k in keys)
    return [Check(report.kernel, "occupancy",
                  {k: sta.get(k) for k in keys},
                  {k: dyn.get(k) for k in keys}, ok)]


def _validate_app(name: str, workloads: Sequence[Dict[str, object]],
                  spec: DeviceSpec) -> List[Check]:
    from ..apps.registry import get_app
    app = get_app(name, spec)
    targets = {t.note: t for t in app.lint_targets()}
    checks: List[Check] = []
    for workload in workloads:
        note = str(workload.get("variant", ""))
        target = targets.get(note)
        if target is None:
            raise KeyError(f"{name} has no lint target noted {note!r}")
        report = analyze_target(target, app=name, spec=spec)
        with LaunchProfiler(estimate=False) as prof:
            run = app.run(dict(workload), functional=False)
        result = run.launches[0]
        record = prof.records[0]
        assert record.kernel == report.kernel, \
            f"profiler saw {record.kernel}, analyzer saw {report.kernel}"
        checks.extend(_coalescing_checks(report, record))
        checks.extend(_conflict_check(report, record))
        checks.extend(_occupancy_check(report, result))
    return checks


def validation_checks(spec: DeviceSpec = DEFAULT_DEVICE) -> List[Check]:
    """All static-vs-dynamic checks for the matmul ladder and saxpy."""
    checks = _validate_app(
        "matmul",
        [{"n": 64, "variant": v, "tile": 16, "trace_blocks": 16}
         for v in MATMUL_LADDER], spec)
    checks.extend(_validate_app(
        "saxpy",
        [{"n": 4096, "a": 2.5, "iterations": 1, "trace_blocks": 16}],
        spec))
    return checks


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.validate",
        description="cross-validate static verdicts against the "
                    "simulator's dynamic trace counters")
    parser.add_argument("--json", action="store_true",
                        help="emit checks as JSON")
    args = parser.parse_args(argv)

    checks = validation_checks()
    if args.json:
        print(json.dumps([c.to_dict() for c in checks], indent=2))
    else:
        for check in checks:
            print(check.format())
        bad = sum(1 for c in checks if not c.ok)
        print(f"{len(checks)} checks, {bad} disagreement(s)")
    return 0 if all(c.ok for c in checks) else 1


if __name__ == "__main__":
    sys.exit(main())
