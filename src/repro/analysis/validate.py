"""Cross-validate static analyzer verdicts against dynamic traces.

The analyzer's value rests on its verdicts *agreeing with the
simulator*: a statically "coalesced" array must show 1.0 transactions
per coalescing-group access when the kernel actually runs, a
"conflict-free"
shared buffer must produce zero bank-conflict serialization cycles,
and the occupancy the analyzer predicts from declared resources must
match what :func:`repro.sim.occupancy.occupancy_for_launch` computes
for the executed launch.

This harness runs the Section 4 matmul ladder (naive → tiled →
tiled_unrolled → prefetch) plus saxpy **twice** — once statically
through :func:`repro.analysis.rules.analyze_target` and once
dynamically under a :class:`repro.obs.LaunchProfiler` — and checks the
verdicts pairwise::

    python -m repro.analysis.validate            # human-readable
    python -m repro.analysis.validate --json     # machine-readable

It also validates the *static performance estimator*
(:mod:`repro.analysis.estimate`) against the timing simulator at
n=256, asserting that

* each kernel's statically predicted GFLOPS matches the simulated
  launch within tolerance, with matching bottleneck attribution;
* the ladder ordering reproduces the paper's Section 4 story
  (naive < tiled < tiled+unrolled, prefetch slightly *slower* than
  unrolled, 4x4 tiles *worse* than untiled — Figure 4);
* the closed-form anchors land where the paper computed them: naive
  is bandwidth-bound with a ~43.2 GFLOPS compute potential, the
  unrolled kernel compute-bound near 93.72 GFLOPS potential;
* liveness register estimates reproduce the 10/9/11 regs/thread
  anecdotes and the resulting blocks/SM.

``--golden PATH`` additionally gates each kernel's
predicted/simulated ratio against a checked-in golden file
(``--write-golden`` refreshes it), failing on >10% drift.

Exit status is non-zero if any check disagrees; the test suite runs
the same checks via :func:`validation_checks` and
:func:`estimator_checks`.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from ..obs import LaunchProfiler
from ..sim.occupancy import occupancy_for_launch
from ..sim.timing import KernelTimeEstimate, estimate_kernel_time
from .estimate import PerfEstimate, estimate_target
from .findings import KernelReport
from .rules import analyze_target

#: matmul variants in the paper's optimization order
MATMUL_LADDER = ("naive", "tiled", "tiled_unrolled", "prefetch")

#: problem size for estimator validation — large enough that the 12 µs
#: launch overhead is noise, small enough for the interpreter's loop cap
ESTIMATOR_N = 256

#: relative tolerance for static-vs-simulated GFLOPS agreement
ESTIMATOR_RTOL = 0.10

#: golden-file drift tolerance for the CI regression gate
GOLDEN_RTOL = 0.10


@dataclass
class Check:
    """One static-vs-dynamic agreement check."""

    kernel: str
    check: str                # what was compared
    static: object            # the analyzer's verdict
    dynamic: object           # the simulator's measurement
    ok: bool

    def format(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        return (f"[{mark}] {self.kernel}: {self.check}: "
                f"static={self.static} dynamic={self.dynamic}")

    def to_dict(self) -> Dict[str, object]:
        return {"kernel": self.kernel, "check": self.check,
                "static": self.static, "dynamic": self.dynamic,
                "ok": self.ok}


def _coalescing_checks(report: KernelReport, record,
                       tol: float = 1e-9) -> List[Check]:
    """Per-array: static coalesced ⇔ dynamic transactions/access == 1."""
    checks: List[Check] = []
    for acc in report.accesses:
        if acc.space != "global":
            continue
        tpa = record.transactions_per_access.get(acc.array)
        if tpa is None or tpa == 0.0:   # array untouched in the trace
            continue
        if acc.coalesced is True:
            ok = abs(tpa - 1.0) <= 1e-3
            checks.append(Check(report.kernel,
                                f"{acc.array} coalesced", True,
                                f"tpa={tpa}", ok))
        elif acc.coalesced is False:
            checks.append(Check(report.kernel,
                                f"{acc.array} uncoalesced ({acc.pattern})",
                                False, f"tpa={tpa}", tpa > 1.0 + tol))
        # coalesced is None (data-dependent verdict withheld): nothing
        # definite to cross-check
    return checks


def _conflict_check(report: KernelReport, record) -> List[Check]:
    """Static max bank-conflict degree ⇔ dynamic serialization cycles."""
    degrees = [acc.conflict_degree or 1 for acc in report.accesses
               if acc.space == "shared"]
    if not degrees:
        return []
    worst = max(degrees)
    cycles = record.bank_conflict_cycles
    ok = (cycles == 0.0) if worst <= 1 else (cycles > 0.0)
    return [Check(report.kernel, "bank conflicts",
                  f"degree={worst}", f"cycles={cycles}", ok)]


def _occupancy_check(report: KernelReport, result) -> List[Check]:
    """Static resource-derived occupancy ⇔ executed-launch occupancy."""
    dyn = occupancy_for_launch(result).describe()
    sta = report.occupancy
    keys = ("blocks/SM", "threads/SM", "occupancy", "limited by")
    ok = all(sta.get(k) == dyn.get(k) for k in keys)
    return [Check(report.kernel, "occupancy",
                  {k: sta.get(k) for k in keys},
                  {k: dyn.get(k) for k in keys}, ok)]


def _validate_app(name: str, workloads: Sequence[Dict[str, object]],
                  spec: DeviceSpec) -> List[Check]:
    from ..apps.registry import get_app
    app = get_app(name, spec)
    targets = {t.note: t for t in app.lint_targets()}
    checks: List[Check] = []
    for workload in workloads:
        note = str(workload.get("variant", ""))
        target = targets.get(note)
        if target is None:
            raise KeyError(f"{name} has no lint target noted {note!r}")
        report = analyze_target(target, app=name, spec=spec)
        with LaunchProfiler(estimate=False) as prof:
            run = app.run(dict(workload), functional=False)
        result = run.launches[0]
        record = prof.records[0]
        assert record.kernel == report.kernel, \
            f"profiler saw {record.kernel}, analyzer saw {report.kernel}"
        checks.extend(_coalescing_checks(report, record))
        checks.extend(_conflict_check(report, record))
        checks.extend(_occupancy_check(report, result))
    return checks


def validation_checks(spec: DeviceSpec = DEFAULT_DEVICE) -> List[Check]:
    """All static-vs-dynamic checks for the matmul ladder and saxpy."""
    checks = _validate_app(
        "matmul",
        [{"n": 64, "variant": v, "tile": 16, "trace_blocks": 16}
         for v in MATMUL_LADDER], spec)
    checks.extend(_validate_app(
        "saxpy",
        [{"n": 4096, "a": 2.5, "iterations": 1, "trace_blocks": 16}],
        spec))
    return checks


# ----------------------------------------------------------------------
# Static performance estimator vs timing simulator
# ----------------------------------------------------------------------

def _matmul_estimator_target(variant: str, tile: int = 16,
                             note: Optional[str] = None):
    from ..apps.matmul import build_kernel
    from .targets import LintTarget, garr
    n = ESTIMATOR_N
    block = 16 if variant == "naive" else tile
    args = (garr("A", n * n), garr("B", n * n), garr("C", n * n), n)
    return LintTarget(build_kernel(variant, tile),
                      (n // block, n // block), (block, block),
                      args, note=note if note is not None else variant)


def _estimator_workloads() -> List[Tuple[str, str, Dict[str, object]]]:
    """(label, app, simulated workload) for every estimator target."""
    rows: List[Tuple[str, str, Dict[str, object]]] = []
    for variant in MATMUL_LADDER:
        rows.append((f"matmul/{variant}", "matmul",
                     {"n": ESTIMATOR_N, "variant": variant, "tile": 16,
                      "trace_blocks": 2}))
    rows.append(("matmul/tiled_4x4", "matmul",
                 {"n": ESTIMATOR_N, "variant": "tiled", "tile": 4,
                  "trace_blocks": 2}))
    rows.append(("saxpy", "saxpy",
                 {"n": 4096, "a": 2.5, "iterations": 1,
                  "trace_blocks": 4}))
    return rows


def _estimator_target(label: str, spec: DeviceSpec):
    if label == "matmul/tiled_4x4":
        return _matmul_estimator_target("tiled", tile=4, note="tiled_4x4")
    if label.startswith("matmul/"):
        return _matmul_estimator_target(label.split("/", 1)[1])
    from ..apps.registry import get_app
    return get_app("saxpy", spec).lint_targets()[0]


def estimator_pairs(spec: DeviceSpec = DEFAULT_DEVICE
                    ) -> List[Tuple[str, PerfEstimate,
                                    KernelTimeEstimate]]:
    """(label, static estimate, simulated estimate) for the matmul
    ladder (+4x4 tiles) and saxpy."""
    from ..apps.registry import get_app
    pairs = []
    for label, app_name, workload in _estimator_workloads():
        static = estimate_target(_estimator_target(label, spec), spec)
        run = get_app(app_name, spec).run(dict(workload),
                                          functional=False)
        simulated = estimate_kernel_time(run.launches[0])
        pairs.append((label, static, simulated))
    return pairs


def estimator_checks(spec: DeviceSpec = DEFAULT_DEVICE,
                     pairs: Optional[List[Tuple[str, PerfEstimate,
                                                KernelTimeEstimate]]]
                     = None) -> List[Check]:
    """Static-estimator validation (see module docstring)."""
    pairs = pairs if pairs is not None else estimator_pairs(spec)
    by_label = {label: (est, sim) for label, est, sim in pairs}
    checks: List[Check] = []

    # 1. each prediction brackets the simulator within tolerance,
    #    with matching bottleneck attribution
    for label, est, sim in pairs:
        ratio = est.predicted_gflops / sim.gflops if sim.gflops else 0.0
        checks.append(Check(
            label, "predicted/simulated GFLOPS",
            f"{est.predicted_gflops:.2f}", f"{sim.gflops:.2f}",
            abs(ratio - 1.0) <= ESTIMATOR_RTOL))
        checks.append(Check(label, "binding bottleneck",
                            est.bound, sim.bound, est.bound == sim.bound))
        ceiling = max(est.compute_bound_gflops, spec.peak_gflops_with_sfu)
        checks.append(Check(
            label, "prediction under closed-form ceiling",
            f"{est.predicted_gflops:.2f}",
            f"<= {ceiling:.2f}",
            est.predicted_gflops <= ceiling + 1e-6))

    def predicted(label: str) -> float:
        return by_label[label][0].predicted_gflops

    def simulated(label: str) -> float:
        return by_label[label][1].gflops

    # 2. the paper's Section 4 / Figure 4 ordering, both statically and
    #    in the simulator (10.58 -> 46.49 -> 91.14; prefetch ~ -5%;
    #    4x4 tiles worse than untiled)
    orderings = [
        ("naive < tiled", "matmul/naive", "matmul/tiled"),
        ("tiled < tiled_unrolled", "matmul/tiled",
         "matmul/tiled_unrolled"),
        ("prefetch < tiled_unrolled", "matmul/prefetch",
         "matmul/tiled_unrolled"),
        ("tiled_4x4 < naive", "matmul/tiled_4x4", "matmul/naive"),
    ]
    for name, lo, hi in orderings:
        checks.append(Check(
            "matmul ladder", f"static ordering: {name}",
            f"{predicted(lo):.2f} < {predicted(hi):.2f}",
            f"{simulated(lo):.2f} < {simulated(hi):.2f}",
            predicted(lo) < predicted(hi)
            and simulated(lo) < simulated(hi)))

    # 3. the closed-form anchors (Section 4.1's 1/8-of-peak = 43.2 and
    #    Section 4.3's 16/59-of-peak = 93.72, paper-computed G80 numbers)
    naive = by_label["matmul/naive"][0]
    unrolled = by_label["matmul/tiled_unrolled"][0]
    checks.append(Check(
        "matmul/naive", "bandwidth-bound, compute potential ~43.2",
        f"{naive.compute_bound_gflops:.2f} GFLOPS, "
        f"demand {naive.bounds.bandwidth_demand_gbs:.1f} GB/s",
        "43.2 GFLOPS potential, 173 GB/s demand (paper)",
        naive.bounds.memory_bound
        and abs(naive.compute_bound_gflops - 43.2) <= 3.0))
    checks.append(Check(
        "matmul/tiled_unrolled", "compute-bound, potential ~93.72",
        f"{unrolled.compute_bound_gflops:.2f} GFLOPS",
        "93.72 GFLOPS potential (paper)",
        not unrolled.bounds.memory_bound
        and abs(unrolled.compute_bound_gflops - 93.72) <= 8.0))

    # 4. liveness reproduces the register anecdotes (Sections 4.3/4.4)
    #    and the blocks/SM they imply
    expected_regs = {"matmul/tiled": 10, "matmul/tiled_unrolled": 9,
                     "matmul/prefetch": 11}
    for label, expect in expected_regs.items():
        est = by_label[label][0]
        checks.append(Check(
            label, "liveness regs/thread",
            est.registers.regs, expect,
            est.registers.regs == expect
            and not est.registers.fallback))
    for label, est, sim in pairs:
        checks.append(Check(
            label, "blocks/SM from static regs",
            est.occupancy.blocks_per_sm, sim.occupancy.blocks_per_sm,
            est.occupancy.blocks_per_sm == sim.occupancy.blocks_per_sm))

    return checks


def estimator_ratios(spec: DeviceSpec = DEFAULT_DEVICE,
                     pairs: Optional[List[Tuple[str, PerfEstimate,
                                                KernelTimeEstimate]]]
                     = None) -> Dict[str, Dict[str, float]]:
    """Predicted/simulated ratios in the golden-file shape."""
    pairs = pairs if pairs is not None else estimator_pairs(spec)
    out: Dict[str, Dict[str, float]] = {}
    for label, est, sim in pairs:
        ratio = est.predicted_gflops / sim.gflops if sim.gflops else 0.0
        out[label] = {
            "predicted_gflops": round(est.predicted_gflops, 4),
            "simulated_gflops": round(sim.gflops, 4),
            "ratio": round(ratio, 6),
        }
    return out


def golden_checks(golden: Dict[str, Dict[str, float]],
                  spec: DeviceSpec = DEFAULT_DEVICE,
                  pairs: Optional[List[Tuple[str, PerfEstimate,
                                             KernelTimeEstimate]]]
                  = None,
                  tolerance: float = GOLDEN_RTOL) -> List[Check]:
    """CI regression gate: each kernel's predicted/simulated ratio must
    stay within ``tolerance`` of the checked-in golden ratio."""
    current = estimator_ratios(spec, pairs)
    checks: List[Check] = []
    for label, entry in sorted(golden.items()):
        want = float(entry["ratio"])
        now = current.get(label)
        if now is None:
            checks.append(Check(label, "golden ratio", "missing",
                                want, False))
            continue
        drift = abs(now["ratio"] / want - 1.0) if want else float("inf")
        checks.append(Check(
            label, "predicted/simulated ratio drift vs golden",
            f"{now['ratio']:.4f}", f"{want:.4f} ±{tolerance:.0%}",
            drift <= tolerance))
    for label in sorted(set(current) - set(golden)):
        checks.append(Check(label, "golden ratio",
                            f"{current[label]['ratio']:.4f}",
                            "absent from golden file", False))
    return checks


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.validate",
        description="cross-validate static verdicts against the "
                    "simulator's dynamic trace counters")
    parser.add_argument("--json", action="store_true",
                        help="emit checks as JSON")
    parser.add_argument("--skip-estimator", action="store_true",
                        help="only run the hazard-analyzer checks")
    parser.add_argument("--golden", metavar="PATH", default=None,
                        help="gate predicted/simulated ratios against "
                             "this golden JSON file")
    parser.add_argument("--write-golden", metavar="PATH", default=None,
                        help="write the current ratios to PATH and exit")
    args = parser.parse_args(argv)

    checks = validation_checks()
    if not args.skip_estimator:
        pairs = estimator_pairs()
        if args.write_golden:
            ratios = estimator_ratios(pairs=pairs)
            with open(args.write_golden, "w") as fh:
                json.dump(ratios, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {len(ratios)} golden ratios to "
                  f"{args.write_golden}")
            return 0
        checks.extend(estimator_checks(pairs=pairs))
        if args.golden:
            with open(args.golden) as fh:
                golden = json.load(fh)
            checks.extend(golden_checks(golden, pairs=pairs))

    if args.json:
        print(json.dumps([c.to_dict() for c in checks], indent=2))
    else:
        for check in checks:
            print(check.format())
        bad = sum(1 for c in checks if not c.ok)
        print(f"{len(checks)} checks, {bad} disagreement(s)")
    return 0 if all(c.ok for c in checks) else 1


if __name__ == "__main__":
    sys.exit(main())
