"""Cross-validate static analyzer verdicts against dynamic traces.

The analyzer's value rests on its verdicts *agreeing with the
simulator*: a statically "coalesced" array must show 1.0 transactions
per coalescing-group access when the kernel actually runs, a
"conflict-free"
shared buffer must produce zero bank-conflict serialization cycles,
and the occupancy the analyzer predicts from declared resources must
match what :func:`repro.sim.occupancy.occupancy_for_launch` computes
for the executed launch.

This harness runs the Section 4 matmul ladder (naive → tiled →
tiled_unrolled → prefetch) plus saxpy **twice** — once statically
through :func:`repro.analysis.rules.analyze_target` and once
dynamically under a :class:`repro.obs.LaunchProfiler` — and checks the
verdicts pairwise::

    python -m repro.analysis.validate            # human-readable
    python -m repro.analysis.validate --json     # machine-readable

It also validates the *static performance estimator*
(:mod:`repro.analysis.estimate`) against the timing simulator at
n=256, asserting that

* each kernel's statically predicted GFLOPS matches the simulated
  launch within tolerance, with matching bottleneck attribution;
* the ladder ordering reproduces the paper's Section 4 story
  (naive < tiled < tiled+unrolled, prefetch slightly *slower* than
  unrolled, 4x4 tiles *worse* than untiled — Figure 4);
* the closed-form anchors land where the paper computed them: naive
  is bandwidth-bound with a ~43.2 GFLOPS compute potential, the
  unrolled kernel compute-bound near 93.72 GFLOPS potential;
* liveness register estimates reproduce the 10/9/11 regs/thread
  anecdotes and the resulting blocks/SM.

``--golden PATH`` additionally gates each kernel's
predicted/simulated ratio against a checked-in golden file
(``--write-golden`` refreshes it), failing on >10% drift.

Exit status is non-zero if any check disagrees; the test suite runs
the same checks via :func:`validation_checks` and
:func:`estimator_checks`.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from ..obs import LaunchProfiler
from ..sim.occupancy import occupancy_for_launch
from ..sim.timing import KernelTimeEstimate, estimate_kernel_time
from .estimate import PerfEstimate, estimate_target
from .findings import KernelReport
from .rules import analyze_target

#: matmul variants in the paper's optimization order
MATMUL_LADDER = ("naive", "tiled", "tiled_unrolled", "prefetch")

#: problem size for estimator validation — large enough that the 12 µs
#: launch overhead is noise, small enough for the interpreter's loop cap
ESTIMATOR_N = 256

#: relative tolerance for static-vs-simulated GFLOPS agreement
ESTIMATOR_RTOL = 0.10

#: golden-file drift tolerance for the CI regression gate
GOLDEN_RTOL = 0.10


@dataclass
class Check:
    """One static-vs-dynamic agreement check."""

    kernel: str
    check: str                # what was compared
    static: object            # the analyzer's verdict
    dynamic: object           # the simulator's measurement
    ok: bool

    def format(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        return (f"[{mark}] {self.kernel}: {self.check}: "
                f"static={self.static} dynamic={self.dynamic}")

    def to_dict(self) -> Dict[str, object]:
        return {"kernel": self.kernel, "check": self.check,
                "static": self.static, "dynamic": self.dynamic,
                "ok": self.ok}


def _coalescing_checks(report: KernelReport, record,
                       tol: float = 1e-9) -> List[Check]:
    """Per-array: static coalesced ⇔ dynamic transactions/access == 1."""
    checks: List[Check] = []
    for acc in report.accesses:
        if acc.space != "global":
            continue
        tpa = record.transactions_per_access.get(acc.array)
        if tpa is None or tpa == 0.0:   # array untouched in the trace
            continue
        if acc.coalesced is True:
            ok = abs(tpa - 1.0) <= 1e-3
            checks.append(Check(report.kernel,
                                f"{acc.array} coalesced", True,
                                f"tpa={tpa}", ok))
        elif acc.coalesced is False:
            checks.append(Check(report.kernel,
                                f"{acc.array} uncoalesced ({acc.pattern})",
                                False, f"tpa={tpa}", tpa > 1.0 + tol))
        # coalesced is None (data-dependent verdict withheld): nothing
        # definite to cross-check
    return checks


def _conflict_check(report: KernelReport, record) -> List[Check]:
    """Static max bank-conflict degree ⇔ dynamic serialization cycles."""
    degrees = [acc.conflict_degree or 1 for acc in report.accesses
               if acc.space == "shared"]
    if not degrees:
        return []
    worst = max(degrees)
    cycles = record.bank_conflict_cycles
    ok = (cycles == 0.0) if worst <= 1 else (cycles > 0.0)
    return [Check(report.kernel, "bank conflicts",
                  f"degree={worst}", f"cycles={cycles}", ok)]


def _occupancy_check(report: KernelReport, result) -> List[Check]:
    """Static resource-derived occupancy ⇔ executed-launch occupancy."""
    dyn = occupancy_for_launch(result).describe()
    sta = report.occupancy
    keys = ("blocks/SM", "threads/SM", "occupancy", "limited by")
    ok = all(sta.get(k) == dyn.get(k) for k in keys)
    return [Check(report.kernel, "occupancy",
                  {k: sta.get(k) for k in keys},
                  {k: dyn.get(k) for k in keys}, ok)]


def _validate_app(name: str, workloads: Sequence[Dict[str, object]],
                  spec: DeviceSpec) -> List[Check]:
    from ..apps.registry import get_app
    app = get_app(name, spec)
    targets = {t.note: t for t in app.lint_targets()}
    checks: List[Check] = []
    for workload in workloads:
        note = str(workload.get("variant", ""))
        target = targets.get(note)
        if target is None:
            raise KeyError(f"{name} has no lint target noted {note!r}")
        report = analyze_target(target, app=name, spec=spec)
        with LaunchProfiler(estimate=False) as prof:
            run = app.run(dict(workload), functional=False)
        result = run.launches[0]
        record = prof.records[0]
        assert record.kernel == report.kernel, \
            f"profiler saw {record.kernel}, analyzer saw {report.kernel}"
        checks.extend(_coalescing_checks(report, record))
        checks.extend(_conflict_check(report, record))
        checks.extend(_occupancy_check(report, result))
    return checks


def validation_checks(spec: DeviceSpec = DEFAULT_DEVICE) -> List[Check]:
    """All static-vs-dynamic checks for the matmul ladder and saxpy."""
    checks = _validate_app(
        "matmul",
        [{"n": 64, "variant": v, "tile": 16, "trace_blocks": 16}
         for v in MATMUL_LADDER], spec)
    checks.extend(_validate_app(
        "saxpy",
        [{"n": 4096, "a": 2.5, "iterations": 1, "trace_blocks": 16}],
        spec))
    return checks


# ----------------------------------------------------------------------
# Static performance estimator vs timing simulator
# ----------------------------------------------------------------------

def _matmul_estimator_target(variant: str, tile: int = 16,
                             note: Optional[str] = None):
    from ..apps.matmul import build_kernel
    from .targets import LintTarget, garr
    n = ESTIMATOR_N
    block = 16 if variant == "naive" else tile
    args = (garr("A", n * n), garr("B", n * n), garr("C", n * n), n)
    return LintTarget(build_kernel(variant, tile),
                      (n // block, n // block), (block, block),
                      args, note=note if note is not None else variant)


def _estimator_workloads() -> List[Tuple[str, str, Dict[str, object]]]:
    """(label, app, simulated workload) for every estimator target."""
    rows: List[Tuple[str, str, Dict[str, object]]] = []
    for variant in MATMUL_LADDER:
        rows.append((f"matmul/{variant}", "matmul",
                     {"n": ESTIMATOR_N, "variant": variant, "tile": 16,
                      "trace_blocks": 2}))
    rows.append(("matmul/tiled_4x4", "matmul",
                 {"n": ESTIMATOR_N, "variant": "tiled", "tile": 4,
                  "trace_blocks": 2}))
    rows.append(("saxpy", "saxpy",
                 {"n": 4096, "a": 2.5, "iterations": 1,
                  "trace_blocks": 4}))
    return rows


def _estimator_target(label: str, spec: DeviceSpec):
    if label == "matmul/tiled_4x4":
        return _matmul_estimator_target("tiled", tile=4, note="tiled_4x4")
    if label.startswith("matmul/"):
        return _matmul_estimator_target(label.split("/", 1)[1])
    from ..apps.registry import get_app
    return get_app("saxpy", spec).lint_targets()[0]


def estimator_pairs(spec: DeviceSpec = DEFAULT_DEVICE
                    ) -> List[Tuple[str, PerfEstimate,
                                    KernelTimeEstimate]]:
    """(label, static estimate, simulated estimate) for the matmul
    ladder (+4x4 tiles) and saxpy."""
    from ..apps.registry import get_app
    pairs = []
    for label, app_name, workload in _estimator_workloads():
        static = estimate_target(_estimator_target(label, spec), spec)
        run = get_app(app_name, spec).run(dict(workload),
                                          functional=False)
        simulated = estimate_kernel_time(run.launches[0])
        pairs.append((label, static, simulated))
    return pairs


def estimator_checks(spec: DeviceSpec = DEFAULT_DEVICE,
                     pairs: Optional[List[Tuple[str, PerfEstimate,
                                                KernelTimeEstimate]]]
                     = None) -> List[Check]:
    """Static-estimator validation (see module docstring)."""
    pairs = pairs if pairs is not None else estimator_pairs(spec)
    by_label = {label: (est, sim) for label, est, sim in pairs}
    checks: List[Check] = []

    # 1. each prediction brackets the simulator within tolerance,
    #    with matching bottleneck attribution
    for label, est, sim in pairs:
        ratio = est.predicted_gflops / sim.gflops if sim.gflops else 0.0
        checks.append(Check(
            label, "predicted/simulated GFLOPS",
            f"{est.predicted_gflops:.2f}", f"{sim.gflops:.2f}",
            abs(ratio - 1.0) <= ESTIMATOR_RTOL))
        checks.append(Check(label, "binding bottleneck",
                            est.bound, sim.bound, est.bound == sim.bound))
        ceiling = max(est.compute_bound_gflops, spec.peak_gflops_with_sfu)
        checks.append(Check(
            label, "prediction under closed-form ceiling",
            f"{est.predicted_gflops:.2f}",
            f"<= {ceiling:.2f}",
            est.predicted_gflops <= ceiling + 1e-6))

    def predicted(label: str) -> float:
        return by_label[label][0].predicted_gflops

    def simulated(label: str) -> float:
        return by_label[label][1].gflops

    # 2. the paper's Section 4 / Figure 4 ordering, both statically and
    #    in the simulator (10.58 -> 46.49 -> 91.14; prefetch ~ -5%;
    #    4x4 tiles worse than untiled)
    orderings = [
        ("naive < tiled", "matmul/naive", "matmul/tiled"),
        ("tiled < tiled_unrolled", "matmul/tiled",
         "matmul/tiled_unrolled"),
        ("prefetch < tiled_unrolled", "matmul/prefetch",
         "matmul/tiled_unrolled"),
        ("tiled_4x4 < naive", "matmul/tiled_4x4", "matmul/naive"),
    ]
    for name, lo, hi in orderings:
        checks.append(Check(
            "matmul ladder", f"static ordering: {name}",
            f"{predicted(lo):.2f} < {predicted(hi):.2f}",
            f"{simulated(lo):.2f} < {simulated(hi):.2f}",
            predicted(lo) < predicted(hi)
            and simulated(lo) < simulated(hi)))

    # 3. the closed-form anchors (Section 4.1's 1/8-of-peak = 43.2 and
    #    Section 4.3's 16/59-of-peak = 93.72, paper-computed G80 numbers)
    naive = by_label["matmul/naive"][0]
    unrolled = by_label["matmul/tiled_unrolled"][0]
    checks.append(Check(
        "matmul/naive", "bandwidth-bound, compute potential ~43.2",
        f"{naive.compute_bound_gflops:.2f} GFLOPS, "
        f"demand {naive.bounds.bandwidth_demand_gbs:.1f} GB/s",
        "43.2 GFLOPS potential, 173 GB/s demand (paper)",
        naive.bounds.memory_bound
        and abs(naive.compute_bound_gflops - 43.2) <= 3.0))
    checks.append(Check(
        "matmul/tiled_unrolled", "compute-bound, potential ~93.72",
        f"{unrolled.compute_bound_gflops:.2f} GFLOPS",
        "93.72 GFLOPS potential (paper)",
        not unrolled.bounds.memory_bound
        and abs(unrolled.compute_bound_gflops - 93.72) <= 8.0))

    # 4. liveness reproduces the register anecdotes (Sections 4.3/4.4)
    #    and the blocks/SM they imply
    expected_regs = {"matmul/tiled": 10, "matmul/tiled_unrolled": 9,
                     "matmul/prefetch": 11}
    for label, expect in expected_regs.items():
        est = by_label[label][0]
        checks.append(Check(
            label, "liveness regs/thread",
            est.registers.regs, expect,
            est.registers.regs == expect
            and not est.registers.fallback))
    for label, est, sim in pairs:
        checks.append(Check(
            label, "blocks/SM from static regs",
            est.occupancy.blocks_per_sm, sim.occupancy.blocks_per_sm,
            est.occupancy.blocks_per_sm == sim.occupancy.blocks_per_sm))

    return checks


def estimator_ratios(spec: DeviceSpec = DEFAULT_DEVICE,
                     pairs: Optional[List[Tuple[str, PerfEstimate,
                                                KernelTimeEstimate]]]
                     = None) -> Dict[str, Dict[str, float]]:
    """Predicted/simulated ratios in the golden-file shape."""
    pairs = pairs if pairs is not None else estimator_pairs(spec)
    out: Dict[str, Dict[str, float]] = {}
    for label, est, sim in pairs:
        ratio = est.predicted_gflops / sim.gflops if sim.gflops else 0.0
        out[label] = {
            "predicted_gflops": round(est.predicted_gflops, 4),
            "simulated_gflops": round(sim.gflops, 4),
            "ratio": round(ratio, 6),
        }
    return out


def golden_checks(golden: Dict[str, Dict[str, float]],
                  spec: DeviceSpec = DEFAULT_DEVICE,
                  pairs: Optional[List[Tuple[str, PerfEstimate,
                                             KernelTimeEstimate]]]
                  = None,
                  tolerance: float = GOLDEN_RTOL) -> List[Check]:
    """CI regression gate: each kernel's predicted/simulated ratio must
    stay within ``tolerance`` of the checked-in golden ratio."""
    current = estimator_ratios(spec, pairs)
    checks: List[Check] = []
    for label, entry in sorted(golden.items()):
        want = float(entry["ratio"])
        now = current.get(label)
        if now is None:
            checks.append(Check(label, "golden ratio", "missing",
                                want, False))
            continue
        drift = abs(now["ratio"] / want - 1.0) if want else float("inf")
        checks.append(Check(
            label, "predicted/simulated ratio drift vs golden",
            f"{now['ratio']:.4f}", f"{want:.4f} ±{tolerance:.0%}",
            drift <= tolerance))
    for label in sorted(set(current) - set(golden)):
        checks.append(Check(label, "golden ratio",
                            f"{current[label]['ratio']:.4f}",
                            "absent from golden file", False))
    return checks


# ----------------------------------------------------------------------
# R8 divergence: static census vs dynamic trace vs warpsim
# ----------------------------------------------------------------------

#: absolute tolerance for static-vs-dynamic divergent-branch-fraction
#: agreement.  The census samples three block coordinates and scales,
#: while the profiled workload runs its own geometry (edge blocks,
#: different trace_blocks), so the fraction can shift by several
#: percentage points either way without the verdict being wrong.
#: The static fraction is additionally a *pessimistic upper bound*
#: for data-dependent branches (the census seeds loaded values as
#: worst-case thread-varying — fem's row-length loop), so the check
#: is one-sided on that axis: dynamic may undershoot static freely,
#: but must never exceed it by more than the tolerance, and both
#: sides must agree on whether the kernel diverges at all.
DIVERGENCE_ATOL = 0.15

#: minimum divergent-branch fraction that counts as "diverges at all"
DIVERGENCE_MIN_FRACTION = 0.01

#: absolute tolerance for trace-vs-warpsim serialized-fraction
#: agreement — the two denominators differ (warp instructions vs issue
#: cycles), so SFU-heavy kernels can diverge by a few percent
WARPSIM_ATOL = 0.05


def _materialized_launch(target, spec: DeviceSpec):
    """Execute a lint target with stream recording (seeded inputs) —
    the same materialization :func:`repro.obs.timeline.timeline_for_target`
    uses, but returning the raw :class:`LaunchResult` for warpsim."""
    import numpy as np
    from ..cuda.launch import launch as run_launch
    from ..cuda.memory import Device
    from .targets import LintArray

    dev = Device(spec)
    rng = np.random.default_rng(7)
    # integer arrays are almost always indirection indices (SpMV column
    # indices, neighbour lists): keep them within the smallest float
    # array so the synthesized launch stays in bounds
    float_sizes = [a.size for a in target.args
                   if isinstance(a, LintArray) and not a.is_integer
                   and a.size]
    index_bound = min(float_sizes) if float_sizes else 1024

    def materialize(arg):
        if not isinstance(arg, LintArray):
            return arg
        n = arg.size if arg.size else 1024
        if arg.is_integer:
            host = rng.integers(0, max(2, index_bound),
                                size=n).astype(arg.dtype)
        else:
            host = rng.random(n).astype(arg.dtype)
        place = {"global": dev.to_device, "const": dev.to_constant,
                 "tex": dev.to_texture}[arg.space]
        return place(host, arg.name)

    args = tuple(materialize(a) for a in target.args)
    return run_launch(target.kernel, target.grid, target.block, args,
                      device=dev, functional=False, trace_blocks=1,
                      record_stream=True)


def divergence_checks(spec: DeviceSpec = DEFAULT_DEVICE,
                      apps: Optional[Sequence[str]] = None
                      ) -> List[Check]:
    """R8 cross-validation, three layers:

    1. **clean apps** — every suite application must carry no R8 HIGH
       statically, and each kernel's static census divergent-branch
       fraction must match the profiled dynamic fraction within
       :data:`DIVERGENCE_ATOL` (absolute);
    2. **trace vs warpsim** — for every lint target, the dynamic
       trace's divergence-serialized issue share must agree with the
       warpsim replay of the same recorded block stream within
       :data:`WARPSIM_ATOL`;
    3. **broken catalogue** — static R8 HIGH ⇔ the sanitizer's dynamic
       ``divergent-sync`` HIGH, kernel by kernel over
       :data:`repro.san.broken.BROKEN`.
    """
    from ..apps.registry import app_names, get_app
    from ..san.broken import BROKEN
    from ..sim.warpsim import simulate_launch
    from .findings import Severity

    names = list(apps) if apps is not None else app_names()
    checks: List[Check] = []

    for name in names:
        app = get_app(name, spec)
        reports: Dict[str, KernelReport] = {}
        for target in app.lint_targets():
            rep = analyze_target(target, app=name, spec=spec)
            reports[rep.kernel] = rep
            highs = [f for f in rep.findings
                     if f.rule == "divergence"
                     and f.severity is Severity.HIGH]
            checks.append(Check(
                f"{name}/{rep.kernel}", "no R8 divergent-sync HIGH",
                len(highs), 0, not highs))

            # layer 2: trace vs warpsim on the target's own geometry
            try:
                result = _materialized_launch(target, spec)
                sim = simulate_launch(result, spec)
            except Exception as exc:
                checks.append(Check(
                    f"{name}/{rep.kernel}",
                    "trace vs warpsim serialized fraction",
                    "error", f"{type(exc).__name__}: {exc}", False))
                continue
            t_frac = result.trace.divergence_serialized_fraction
            w_frac = sim.divergence_serialized_fraction
            checks.append(Check(
                f"{name}/{rep.kernel}",
                "trace vs warpsim serialized fraction",
                round(t_frac, 4), round(w_frac, 4),
                abs(t_frac - w_frac) <= WARPSIM_ATOL))

        # layer 1b: static census fraction vs the profiled workload
        with LaunchProfiler(estimate=False) as prof:
            app.run(app.default_workload("test"), functional=False)
        agg: Dict[str, List[float]] = {}
        for rec in prof.records:
            tot = agg.setdefault(rec.kernel, [0.0, 0.0])
            tot[0] += rec.branch_warps
            tot[1] += rec.divergent_branch_warps
        for kernel, (branches, divergent) in sorted(agg.items()):
            rep = reports.get(kernel)
            if rep is None or not rep.divergence:
                continue
            static_frac = float(rep.divergence.get(
                "static_divergent_branch_fraction", 0.0))
            dyn_frac = divergent / branches if branches else 0.0
            # one-sided: static is a pessimistic upper bound for
            # data-dependent branches; both sides must still agree on
            # whether the kernel diverges at all (see DIVERGENCE_ATOL)
            bounded = dyn_frac <= static_frac + DIVERGENCE_ATOL
            same_character = ((static_frac >= DIVERGENCE_MIN_FRACTION)
                              == (dyn_frac >= DIVERGENCE_MIN_FRACTION))
            checks.append(Check(
                f"{name}/{kernel}", "divergent-branch fraction",
                round(static_frac, 4), round(dyn_frac, 4),
                bounded and same_character))

    # layer 3: the broken catalogue, R8 vs synccheck
    for bk in BROKEN:
        rep = analyze_target(bk.target())
        static_hit = any(f.rule == "divergence"
                         and f.severity is Severity.HIGH
                         for f in rep.findings)
        res = bk.run()
        dynamic_hit = any(f.rule == "divergent-sync"
                          and f.severity is Severity.HIGH
                          for f in res.san.all_findings())
        checks.append(Check(
            f"broken/{bk.name}", "R8 HIGH == synccheck divergent-sync",
            static_hit, dynamic_hit, static_hit == dynamic_hit))
    return checks


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.validate",
        description="cross-validate static verdicts against the "
                    "simulator's dynamic trace counters")
    parser.add_argument("--json", action="store_true",
                        help="emit checks as JSON")
    parser.add_argument("--skip-estimator", action="store_true",
                        help="only run the hazard-analyzer checks")
    parser.add_argument("--divergence", action="store_true",
                        help="also run the R8 divergence cross-"
                             "validation: static census fractions vs "
                             "profiled counters vs warpsim over every "
                             "suite app and the broken catalogue")
    parser.add_argument("--golden", metavar="PATH", default=None,
                        help="gate predicted/simulated ratios against "
                             "this golden JSON file")
    parser.add_argument("--write-golden", metavar="PATH", default=None,
                        help="write the current ratios to PATH and exit")
    args = parser.parse_args(argv)

    checks = validation_checks()
    if args.divergence:
        checks.extend(divergence_checks())
    if not args.skip_estimator:
        pairs = estimator_pairs()
        if args.write_golden:
            ratios = estimator_ratios(pairs=pairs)
            with open(args.write_golden, "w") as fh:
                json.dump(ratios, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {len(ratios)} golden ratios to "
                  f"{args.write_golden}")
            return 0
        checks.extend(estimator_checks(pairs=pairs))
        if args.golden:
            with open(args.golden) as fh:
                golden = json.load(fh)
            checks.extend(golden_checks(golden, pairs=pairs))

    if args.json:
        print(json.dumps([c.to_dict() for c in checks], indent=2))
    else:
        for check in checks:
            print(check.format())
        bad = sum(1 for c in checks if not c.ok)
        print(f"{len(checks)} checks, {bad} disagreement(s)")
    return 0 if all(c.ok for c in checks) else 1


if __name__ == "__main__":
    sys.exit(main())
