"""Static instruction census: per-kernel counts without execution.

Section 4.1 of the paper reasons from the *instruction mix* of the
compiled PTX — "with the configuration shown in Fig. 3(a), only 1 out
of 8 operations is a fused multiply-add" — before any kernel runs.
This module produces that mix statically: the abstract interpreter
(:mod:`repro.analysis.interp`) already re-executes a kernel's source
for sample blocks, and its :class:`LintContext` records every DSL
operation into a :class:`~repro.trace.trace.KernelTrace` using exactly
the accounting rules of the dynamic DSL (divergence-aware warp counts,
the G80 coalescing rule for concrete indices, bank-conflict
serialization).  A :class:`KernelCensus` averages the sampled blocks
and extrapolates to the full grid, so every downstream consumer of a
dynamic trace — :func:`repro.sim.bounds.analyze_bounds`,
:func:`repro.sim.timing.estimate_time` — works unchanged on the
static census.

Approximations (documented in DESIGN.md):

* data-dependent global indices are charged one transaction per
  active thread (the gather/scatter worst case);
* constant/texture loads are assumed cache-resident (no DRAM bytes);
* a data-dependent ``while`` contributes two iterations, and both
  arms of a data-dependent Python ``if`` are counted — the SIMD cost
  a divergent warp actually pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from ..cuda.dim3 import as_dim3
from ..trace.instr import InstrClass
from ..trace.trace import KernelTrace
from .interp import interpret
from .rules import sample_coords
from .targets import LintTarget


@dataclass
class KernelCensus:
    """Static instruction census of one lint target.

    ``block_trace`` is the mean per-block trace over the sampled block
    coordinates; ``trace`` is the same extrapolated to the full grid —
    the shape :func:`repro.sim.timing.estimate_time` expects.
    """

    kernel: str
    note: str
    grid: Tuple[int, ...]
    block: Tuple[int, ...]
    num_blocks: int
    threads_per_block: int
    block_trace: KernelTrace
    trace: KernelTrace
    smem_bytes: int = 0
    blocks_sampled: int = 0
    limits: List[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        return f"{self.kernel}[{self.note}]" if self.note else self.kernel

    @property
    def fp_useful_fraction(self) -> float:
        """The paper's Section 4.1 metric: fraction of issue slots
        doing useful FP work (FMA slots; 1/8 naive, 16/59 unrolled)."""
        return self.trace.fma_fraction

    @property
    def flop_fraction(self) -> float:
        return self.trace.flop_fraction

    def counts(self) -> Dict[str, float]:
        """Grid-total warp-instruction counts keyed by class name."""
        return {cls.value: float(n)
                for cls, n in sorted(self.trace.warp_insts.items(),
                                     key=lambda kv: kv[0].value)}

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kernel": self.kernel,
            "note": self.note,
            "num_blocks": self.num_blocks,
            "threads_per_block": self.threads_per_block,
            "warp_insts": self.trace.total_warp_insts,
            "fp_useful_fraction": round(self.fp_useful_fraction, 4),
            "flops": self.trace.flops,
            "global_useful_bytes": self.trace.global_useful_bytes,
            "global_bus_bytes": self.trace.global_bus_bytes,
            "syncs": self.trace.syncs,
            "smem_bytes": self.smem_bytes,
            "counts": self.counts(),
        }
        if self.limits:
            out["limits"] = list(self.limits)
        return out


def census_block(target: LintTarget, coord: Tuple[int, int, int],
                 spec: DeviceSpec = DEFAULT_DEVICE) -> KernelTrace:
    """Instruction census of one sample block of a lint target."""
    _recorder, ctx = interpret(target, coord, spec)
    trace = ctx.census
    trace.blocks_traced = 1
    trace.threads_traced = float(ctx.threads_per_block)
    return trace


def census_target(target: LintTarget,
                  spec: DeviceSpec = DEFAULT_DEVICE) -> KernelCensus:
    """Census a lint target: sample representative blocks (first,
    middle, last in grid-linear order), average, extrapolate to the
    full grid."""
    kernel = target.kernel
    name = getattr(kernel, "name", "<kernel>")
    grid = as_dim3(tuple(target.grid))
    block = as_dim3(tuple(target.block))

    merged = KernelTrace()
    smem_bytes = getattr(kernel, "static_smem_bytes", 0)
    limits: List[str] = []
    coords = sample_coords(grid)
    for coord in coords:
        recorder, ctx = interpret(target, coord, spec)
        per_block = ctx.census
        per_block.blocks_traced = 1
        per_block.threads_traced = float(ctx.threads_per_block)
        merged.merge(per_block)
        smem_bytes = max(smem_bytes, ctx.smem_bytes
                         + getattr(kernel, "static_smem_bytes", 0))
        for _line, message in recorder.notes:
            if message.startswith("analysis stopped") \
                    and message not in limits:
                limits.append(message)

    block_trace = merged.scaled(1.0 / len(coords))
    block_trace.blocks_traced = 1
    full = merged.scaled(grid.size / len(coords))
    full.blocks_traced = len(coords)

    return KernelCensus(
        kernel=name, note=target.note,
        grid=tuple(target.grid), block=tuple(target.block),
        num_blocks=grid.size, threads_per_block=block.size,
        block_trace=block_trace, trace=full,
        smem_bytes=smem_bytes, blocks_sampled=len(coords),
        limits=limits)


def census_mix(census: KernelCensus) -> Dict[str, float]:
    """Normalized instruction mix of a census (report convenience)."""
    return census.trace.instruction_mix()


#: classes whose counts the cross-validation harness compares against
#: dynamic LaunchProfiler traces (every class the DSL emits)
VALIDATED_CLASSES = tuple(InstrClass)
