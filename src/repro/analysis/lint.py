"""Lint CLI: run the static kernel analyzer over registered apps.

Usage::

    python -m repro.analysis.lint                  # whole suite
    python -m repro.analysis.lint matmul lbm       # selected apps
    python -m repro.analysis.lint --json           # machine-readable
    python -m repro.analysis.lint --fail-on high   # CI gate
    python -m repro.analysis.lint --estimate       # + static PerfEstimate
    python -m repro.analysis.lint --advise         # + optimization advice
    python -m repro.analysis.lint --device gtx_480 # another device profile
    python -m repro.analysis.lint --list-rules     # the R1-R8 catalogue

Each application contributes the representative launch geometries it
declares via :meth:`repro.apps.base.Application.lint_targets`; every
target is symbolically executed (:mod:`repro.analysis.interp`) and
scored by the hazard rules (:mod:`repro.analysis.rules`).  With
``--fail-on SEVERITY`` the process exits non-zero when any finding at
or above that severity is emitted — the repository gates CI on
``high`` (correctness hazards) and keeps ``medium``/``info``
advisory, since several shipped kernels intentionally exhibit the
paper's uncoalesced baselines.

``--estimate`` adds the static performance model
(:mod:`repro.analysis.estimate`): Section-4 bounds, liveness register
estimate and the predicted GFLOPS/bottleneck.  ``--advise``
additionally runs the optimization advisor
(:mod:`repro.analysis.advisor`), whose ranked transformation advice is
appended to each report's findings at ``info`` severity.

``--device NAME`` analyzes against any registered device profile
(:mod:`repro.arch.registry`) — coalescing verdicts, occupancy and
estimates all follow that device's rules.

JSON output is an object ``{"schema_version": N, "device": NAME,
"reports": [...]}`` with findings sorted by ``(kernel, line, rule)``
so CI diffs are deterministic.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from .findings import Finding, KernelReport, Severity
from .rules import RULES, analyze_target

#: version of the ``--json`` envelope; bump on shape changes
#: (v3 added the top-level "device" field; v4 added the top-level
#: "rules" catalogue and per-report "divergence" summaries — R8;
#: v5 added per-report "compile" status — R6's verdict with the
#: compiler's refusal reason, mirroring ``compile_status``)
JSON_SCHEMA_VERSION = 5


def _finding_sort_key(finding: Finding):
    return (finding.kernel, finding.line or 0, finding.rule)


def lint_app(name: str, spec: DeviceSpec = DEFAULT_DEVICE
             ) -> List[KernelReport]:
    """Analyze every lint target one application declares."""
    from ..apps.registry import get_app
    app = get_app(name, spec)
    return [analyze_target(target, app=name, spec=spec)
            for target in app.lint_targets()]


def lint_apps(names: Optional[Sequence[str]] = None,
              spec: DeviceSpec = DEFAULT_DEVICE) -> List[KernelReport]:
    """Analyze several applications (default: all registered)."""
    from ..apps.registry import app_names
    reports: List[KernelReport] = []
    for name in (names if names else app_names()):
        reports.extend(lint_app(name, spec))
    return reports


def _format_report(report: KernelReport) -> str:
    occ = report.occupancy or {}
    lines = [
        f"{report.app}/{report.label}: grid={report.grid} "
        f"block={report.block} regs={report.regs_declared} "
        f"smem={report.smem_bytes}B "
        f"occupancy={occ.get('occupancy', 0.0):.2f} "
        f"(limiter: {occ.get('limited by', '?')})"
    ]
    for acc in report.accesses:
        verdict = acc.pattern
        if acc.space == "shared" and acc.conflict_degree is not None:
            verdict += f", {acc.conflict_degree}-way banks"
        elif acc.coalesced is True:
            verdict += ", coalesced"
        elif acc.coalesced is False:
            verdict += ", uncoalesced"
        lines.append(f"    {acc.space:6s} {acc.array:12s} {verdict}")
    for f in report.findings:
        lines.append("    " + f.format())
    if not report.findings:
        lines.append("    clean")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="static hazard analysis of the suite's kernels")
    parser.add_argument("apps", nargs="*",
                        help="application names (default: all registered)")
    parser.add_argument("--json", action="store_true",
                        help="emit reports as JSON")
    parser.add_argument("--fail-on", metavar="SEVERITY", default=None,
                        help="exit 1 if any finding is at or above this "
                             "severity (info|medium|high)")
    parser.add_argument("--estimate", action="store_true",
                        help="run the static performance estimator on "
                             "every target")
    parser.add_argument("--advise", action="store_true",
                        help="rank optimization passes by predicted "
                             "payoff (implies --estimate)")
    parser.add_argument("--device", metavar="NAME",
                        default="geforce_8800_gtx",
                        help="registered device profile to analyze "
                             "against (see repro.arch.registry)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the R1-R8 rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.name:16s} [{rule.severities:12s}] "
                  f"{rule.summary}")
        return 0

    from ..arch.registry import device_by_name
    try:
        spec = device_by_name(args.device)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    threshold = Severity.parse(args.fail_on) if args.fail_on else None
    reports = lint_apps(args.apps or None, spec)

    estimates = {}
    advisor_reports = {}
    if args.estimate or args.advise:
        from ..apps.registry import get_app
        from .advisor import advise_estimate
        from .estimate import estimate_target
        index = 0
        for name in (args.apps or None) or _registered_names():
            for target in get_app(name, spec).lint_targets():
                report = reports[index]
                est = estimate_target(target, spec)
                estimates[id(report)] = est
                if args.advise:
                    adv = advise_estimate(est, spec=spec)
                    advisor_reports[id(report)] = adv
                    report.findings.extend(adv.findings())
                index += 1

    for report in reports:
        report.findings.sort(key=_finding_sort_key)

    if args.json:
        payload = []
        for report in reports:
            entry = report.to_dict()
            est = estimates.get(id(report))
            if est is not None:
                entry["estimate"] = est.to_dict()
            adv = advisor_reports.get(id(report))
            if adv is not None:
                entry["advice"] = [a.to_dict() for a in adv.advice]
            payload.append(entry)
        print(json.dumps({"schema_version": JSON_SCHEMA_VERSION,
                          "device": args.device,
                          "rules": [r.to_dict() for r in RULES],
                          "reports": payload}, indent=2))
    else:
        from .advisor import format_advice
        from .estimate import format_estimate
        for report in reports:
            print(_format_report(report))
            est = estimates.get(id(report))
            if est is not None:
                print("    " + format_estimate(est).replace("\n", "\n    "))
            adv = advisor_reports.get(id(report))
            if adv is not None and adv.advice:
                print("    " + format_advice(adv).replace("\n", "\n    "))
        totals = {s: sum(r.count(s) for r in reports) for s in Severity}
        print(f"{len(reports)} kernels: "
              + ", ".join(f"{totals[s]} {s}" for s in
                          (Severity.HIGH, Severity.MEDIUM, Severity.INFO)))

    if threshold is not None:
        worst = [f for r in reports for f in r.findings
                 if f.severity >= threshold]
        if worst:
            print(f"FAIL: {len(worst)} finding(s) at or above "
                  f"{threshold}", file=sys.stderr)
            return 1
    return 0


def _registered_names() -> List[str]:
    from ..apps.registry import app_names
    return list(app_names())


if __name__ == "__main__":
    sys.exit(main())
