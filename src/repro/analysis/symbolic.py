"""The analyzer's abstract value domain and access-pattern classifiers.

The interpreter executes a kernel for a *concrete representative
block* (sampled grid coordinates, real thread-index vectors), so most
index arithmetic evaluates to exact per-lane integer vectors.  Three
things cannot be concrete and are carried symbolically by
:class:`SymVal`:

* **unknown integers** loaded from memory (e.g. CSR row pointers) —
  kept as affine terms ``sum(coeff * sym)`` over fresh per-lane
  symbols, so stride/modulus structure survives arithmetic;
* **opaque values** (floats, unknown bools) — no structure, only
  provenance;
* **taints** — provenance markers that power the batch-safety rule:
  ``block-coord`` for values derived from ``ctx.bx/by/bz`` and
  ``nthreads`` for values derived from ``ctx.nthreads`` (which widens
  under :class:`~repro.cuda.executors.BatchedExecutor`).

Classifiers at the bottom turn index vectors into coalescing / bank-
conflict verdicts by *reusing the dynamic model* in
:mod:`repro.sim.memsys` — the static verdict and the trace counters
cannot disagree on a concrete pattern by construction.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, FrozenSet, Optional, Tuple, Union

import numpy as np

from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from ..sim.memsys import bank_conflict_degree, coalesce_half_warp

#: taint labels
BLOCK_COORD = "block-coord"
NTHREADS = "nthreads"

_sym_counter = itertools.count(1)


def fresh_sym() -> int:
    """A new unknown per-lane integer symbol."""
    return next(_sym_counter)


class AnalysisLimit(Exception):
    """Raised when the interpreter meets a construct it cannot model;
    caught at statement level and degraded to an ``analysis`` note."""


class SymVal:
    """Abstract value: concrete lanes + affine unknown terms + taints.

    ``lanes`` is a NumPy vector (one entry per thread of the block), a
    scalar, or ``None`` when the value is opaque.  ``terms`` maps
    unknown-symbol ids to integer coefficients; the value denoted is
    ``lanes + sum(coeff * sym)`` where each symbol is an arbitrary
    per-lane integer.  Opaque floats/bools have ``lanes=None`` and no
    terms.
    """

    __slots__ = ("lanes", "terms", "kind", "taints", "varying")

    #: make NumPy defer binary ufuncs to our reflected operators
    __array_ufunc__ = None

    #: shared empty taint set (avoids call-in-default, flake8-bugbear B008)
    NO_TAINTS: FrozenSet[str] = frozenset()

    def __init__(self, lanes, terms: Optional[Dict[int, int]] = None,
                 kind: str = "int",
                 taints: FrozenSet[str] = NO_TAINTS,
                 varying: bool = False) -> None:
        self.lanes = lanes
        self.terms = dict(terms) if terms else {}
        self.kind = kind
        self.taints = frozenset(taints)
        self.varying = bool(varying) or bool(self.terms)

    # -- constructors ---------------------------------------------------
    @classmethod
    def concrete(cls, value, kind: str = "int",
                 taints: FrozenSet[str] = NO_TAINTS) -> "SymVal":
        varying = isinstance(value, np.ndarray) and value.ndim > 0 \
            and value.size > 1 and bool((value != value.flat[0]).any())
        return cls(value, None, kind, taints, varying)

    @classmethod
    def unknown_int(cls, taints: FrozenSet[str] = NO_TAINTS) -> "SymVal":
        return cls(0, {fresh_sym(): 1}, "int", taints, True)

    @classmethod
    def opaque(cls, kind: str = "float",
               taints: FrozenSet[str] = NO_TAINTS,
               varying: bool = True) -> "SymVal":
        return cls(None, None, kind, taints, varying)

    # -- inspection -----------------------------------------------------
    @property
    def is_opaque(self) -> bool:
        return self.lanes is None

    @property
    def is_concrete(self) -> bool:
        return self.lanes is not None and not self.terms

    def concrete_value(self):
        """The concrete lanes when fully known, else ``None``."""
        return self.lanes if self.is_concrete else None

    @property
    def is_scalar(self) -> bool:
        return self.lanes is not None and (
            not isinstance(self.lanes, np.ndarray) or self.lanes.ndim == 0)

    def same_expr(self, other: "SymVal") -> bool:
        """Symbolic identity: provably the same value lane-for-lane."""
        if self.is_opaque or other.is_opaque:
            return False
        if self.terms != other.terms:
            return False
        return bool(np.all(np.asarray(self.lanes) == np.asarray(other.lanes)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_opaque:
            return f"SymVal(opaque {self.kind}, taints={set(self.taints)})"
        return (f"SymVal({self.lanes!r} + {self.terms}, kind={self.kind}, "
                f"taints={set(self.taints)})")

    # -- conversions the interpreter polices ---------------------------
    def __bool__(self) -> bool:
        value = self.concrete_value()
        if value is None or self.varying:
            raise AnalysisLimit(
                "truth value of a data-dependent quantity used in Python "
                "control flow")
        return bool(np.asarray(value))

    def __index__(self) -> int:
        value = self.concrete_value()
        if value is None or self.varying:
            raise AnalysisLimit("data-dependent value used where a Python "
                                "int is required")
        return int(np.asarray(value))

    __int__ = __index__

    def __float__(self) -> float:
        value = self.concrete_value()
        if value is None or self.varying:
            raise AnalysisLimit("data-dependent value used where a Python "
                                "float is required")
        return float(np.asarray(value))

    def __iter__(self):
        raise AnalysisLimit("iteration over a per-thread value")

    def __hash__(self):
        raise TypeError("SymVal is unhashable")

    # -- helpers --------------------------------------------------------
    def _join_taints(self, other) -> FrozenSet[str]:
        if isinstance(other, SymVal):
            return self.taints | other.taints
        return self.taints

    def astype(self, dtype) -> "SymVal":
        """Mirror ``ndarray.astype`` on abstract values."""
        kind = "float" if np.dtype(_np_type(dtype)).kind == "f" else "int"
        if self.is_opaque:
            return SymVal.opaque(kind, self.taints, self.varying)
        if kind == "float" and self.kind != "float":
            value = np.asarray(self.lanes).astype(_np_type(dtype)) \
                if not self.terms else None
            if value is None:
                return SymVal.opaque("float", self.taints, self.varying)
            return SymVal(value, None, "float", self.taints, self.varying)
        if kind == "int" and self.kind == "float":
            if self.is_concrete:
                return SymVal(np.asarray(self.lanes).astype(_np_type(dtype)),
                              None, "int", self.taints, self.varying)
            return SymVal.opaque("int", self.taints, self.varying)
        return SymVal(self.lanes, self.terms, self.kind, self.taints,
                      self.varying)

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other):
        return _binop("add", self, other)

    def __radd__(self, other):
        return _binop("add", other, self)

    def __sub__(self, other):
        return _binop("sub", self, other)

    def __rsub__(self, other):
        return _binop("sub", other, self)

    def __mul__(self, other):
        return _binop("mul", self, other)

    def __rmul__(self, other):
        return _binop("mul", other, self)

    def __floordiv__(self, other):
        return _binop("floordiv", self, other)

    def __rfloordiv__(self, other):
        return _binop("floordiv", other, self)

    def __mod__(self, other):
        return _binop("mod", self, other)

    def __rmod__(self, other):
        return _binop("mod", other, self)

    def __truediv__(self, other):
        return _binop("truediv", self, other)

    def __rtruediv__(self, other):
        return _binop("truediv", other, self)

    def __neg__(self):
        return _binop("sub", 0, self)

    def __pos__(self):
        return self

    def __abs__(self):
        if self.is_concrete:
            return SymVal(np.abs(np.asarray(self.lanes)), None, self.kind,
                          self.taints, self.varying)
        return SymVal.opaque(self.kind, self.taints, self.varying)

    def __pow__(self, other):
        return _bitop("pow", self, other)

    def __and__(self, other):
        return _bitop("and", self, other)

    def __rand__(self, other):
        return _bitop("and", other, self)

    def __or__(self, other):
        return _bitop("or", self, other)

    def __ror__(self, other):
        return _bitop("or", other, self)

    def __xor__(self, other):
        return _bitop("xor", self, other)

    def __rxor__(self, other):
        return _bitop("xor", other, self)

    def __lshift__(self, other):
        return _bitop("lshift", self, other)

    def __rlshift__(self, other):
        return _bitop("lshift", other, self)

    def __rshift__(self, other):
        return _bitop("rshift", self, other)

    def __rrshift__(self, other):
        return _bitop("rshift", other, self)

    def __invert__(self):
        if self.kind == "bool":
            if self.is_concrete:
                return SymVal(~np.asarray(self.lanes), None, "bool",
                              self.taints, self.varying)
            return SymVal.opaque("bool", self.taints, self.varying)
        return _bitop("xor", self, -1)

    # -- comparisons ----------------------------------------------------
    def __lt__(self, other):
        return _compare("lt", self, other)

    def __le__(self, other):
        return _compare("le", self, other)

    def __gt__(self, other):
        return _compare("gt", self, other)

    def __ge__(self, other):
        return _compare("ge", self, other)

    def __eq__(self, other):  # noqa: A003 - value semantics intended
        return _compare("eq", self, other)

    def __ne__(self, other):
        return _compare("ne", self, other)


SymLike = Union[SymVal, np.ndarray, int, float, bool, np.generic]


def _np_type(dtype):
    """Unwrap an :class:`NpCaster`-style wrapper to the NumPy type."""
    return getattr(dtype, "np_type", dtype)


def as_sym(value: SymLike) -> SymVal:
    """Wrap a native value into the abstract domain."""
    if isinstance(value, SymVal):
        return value
    arr = np.asarray(value)
    if arr.dtype.kind == "b":
        kind = "bool"
    elif arr.dtype.kind == "f":
        kind = "float"
    else:
        kind = "int"
    return SymVal.concrete(value, kind)


def taints_of(value: SymLike) -> FrozenSet[str]:
    return value.taints if isinstance(value, SymVal) else frozenset()


def is_varying(value: SymLike) -> bool:
    if isinstance(value, SymVal):
        return value.varying
    arr = np.asarray(value)
    return arr.ndim > 0 and arr.size > 1 and (arr != arr.flat[0]).any()


def _native(value: SymLike):
    """The exact native value, or ``None`` if any part is unknown."""
    if isinstance(value, SymVal):
        return value.concrete_value()
    return value


def _result_kind(op: str, a: SymVal, b: SymVal) -> str:
    if op == "truediv":
        return "float"
    if a.kind == "float" or b.kind == "float":
        return "float"
    return "int"


def _binop(op: str, left: SymLike, right: SymLike) -> SymVal:
    a, b = as_sym(left), as_sym(right)
    taints = a.taints | b.taints
    varying = a.varying or b.varying
    kind = _result_kind(op, a, b)

    av, bv = a.concrete_value(), b.concrete_value()
    if av is not None and bv is not None:
        try:
            func = {"add": np.add, "sub": np.subtract,
                    "mul": np.multiply, "floordiv": np.floor_divide,
                    "mod": np.mod, "truediv": np.true_divide}[op]
            with np.errstate(all="ignore"):
                return SymVal(func(np.asarray(av), np.asarray(bv)),
                              None, kind, taints, varying)
        except Exception:
            return SymVal.opaque(kind, taints, varying)

    if kind == "float":
        return SymVal.opaque("float", taints, varying)

    if op in ("add", "sub"):
        if a.is_opaque or b.is_opaque:
            return SymVal.opaque("int", taints, varying)
        sign = 1 if op == "add" else -1
        terms = dict(a.terms)
        for sym, coeff in b.terms.items():
            terms[sym] = terms.get(sym, 0) + sign * coeff
            if terms[sym] == 0:
                del terms[sym]
        lanes = np.asarray(a.lanes) + sign * np.asarray(b.lanes)
        return SymVal(lanes, terms, "int", taints, varying)

    if op == "mul":
        # scaling an affine value by a concrete uniform integer keeps
        # the affine structure; everything else goes opaque
        for affine, scalar in ((a, b), (b, a)):
            sv = scalar.concrete_value()
            if sv is None or affine.is_opaque:
                continue
            sv_arr = np.asarray(sv)
            if sv_arr.ndim > 0 and sv_arr.size > 1 and np.ptp(sv_arr) != 0:
                if not affine.terms:
                    continue  # per-lane scale of affine terms: opaque
                return SymVal.opaque("int", taints, varying)
            factor = int(sv_arr.flat[0]) if sv_arr.ndim else int(sv_arr)
            terms = {sym: coeff * factor
                     for sym, coeff in affine.terms.items() if coeff * factor}
            lanes = np.asarray(affine.lanes) * factor
            return SymVal(lanes, terms, "int", taints, varying)
        return SymVal.opaque("int", taints, varying)

    if op in ("mod", "floordiv"):
        m = b.concrete_value()
        if m is not None and not a.is_opaque:
            m_arr = np.asarray(m)
            if m_arr.ndim == 0 or m_arr.size == 1 or np.ptp(m_arr) == 0:
                mod = int(m_arr.flat[0]) if m_arr.ndim else int(m_arr)
                if mod > 0 and all(c % mod == 0 for c in a.terms.values()):
                    # exact: floor((k*m)u + b, m) = k*u + floor(b, m)
                    if op == "mod":
                        return SymVal(np.asarray(a.lanes) % mod, None,
                                      "int", taints, varying)
                    terms = {sym: coeff // mod
                             for sym, coeff in a.terms.items()
                             if coeff // mod}
                    return SymVal(np.asarray(a.lanes) // mod, terms,
                                  "int", taints, varying)
        return SymVal.opaque("int", taints, varying)

    return SymVal.opaque("int", taints, varying)


def _bitop(op: str, left: SymLike, right: SymLike) -> SymVal:
    a, b = as_sym(left), as_sym(right)
    taints = a.taints | b.taints
    varying = a.varying or b.varying
    av, bv = a.concrete_value(), b.concrete_value()
    kind = "bool" if (a.kind == "bool" and b.kind == "bool"
                      and op in ("and", "or", "xor")) else "int"
    if av is not None and bv is not None:
        func = {"and": np.bitwise_and, "or": np.bitwise_or,
                "xor": np.bitwise_xor, "lshift": np.left_shift,
                "rshift": np.right_shift, "pow": np.power}[op]
        try:
            return SymVal(func(np.asarray(av), np.asarray(bv)), None,
                          kind, taints, varying)
        except Exception:
            return SymVal.opaque(kind, taints, varying)
    return SymVal.opaque(kind, taints, varying)


def _compare(op: str, left: SymLike, right: SymLike) -> SymVal:
    a, b = as_sym(left), as_sym(right)
    taints = a.taints | b.taints
    av, bv = a.concrete_value(), b.concrete_value()
    if av is not None and bv is not None:
        func = {"lt": np.less, "le": np.less_equal, "gt": np.greater,
                "ge": np.greater_equal, "eq": np.equal,
                "ne": np.not_equal}[op]
        result = func(np.asarray(av), np.asarray(bv))
        return SymVal(result, None, "bool", taints,
                      bool(result.ndim and result.size > 1
                           and result.any() != result.all()))
    return SymVal.opaque("bool", taints, True)


# ----------------------------------------------------------------------
# Access-pattern classification
# ----------------------------------------------------------------------

def classify_global(index: SymLike, mask: Optional[np.ndarray],
                    nthreads: int, itemsize: int = 4,
                    spec: DeviceSpec = DEFAULT_DEVICE,
                    ) -> Tuple[str, Optional[bool]]:
    """Classify a global access index vector per the Section 3.2 rule.

    Returns ``(pattern, coalesced)`` where ``pattern`` is one of
    ``coalesced``, ``broadcast``, ``strided(k)``, ``misaligned``,
    ``irregular`` or ``data-dependent`` and ``coalesced`` is ``None``
    when the verdict cannot be decided statically.
    """
    sym = as_sym(index)
    value = sym.concrete_value()
    if value is None:
        return "data-dependent", None
    lanes = np.broadcast_to(np.asarray(value, dtype=np.int64),
                            (nthreads,)).copy()
    active = np.ones(nthreads, dtype=bool) if mask is None \
        else np.asarray(mask, dtype=bool)

    group = spec.coalesce_group
    pad = (-nthreads) % group
    if pad:
        lanes = np.concatenate([lanes, np.zeros(pad, dtype=np.int64)])
        active = np.concatenate([active, np.zeros(pad, dtype=bool)])
    addr_rows = (lanes * itemsize).reshape(-1, group)
    act_rows = active.reshape(-1, group)

    worst = "coalesced"
    all_coalesced = True
    order = ["coalesced", "broadcast", "misaligned", "strided", "irregular"]

    def rank(p: str) -> int:
        return order.index(p.split("(")[0])

    for addrs, act in zip(addr_rows, act_rows):
        if not act.any():
            continue
        result = coalesce_half_warp(addrs, act, itemsize, spec)
        # <= 1 active lane costs one transaction either way, which is
        # exactly what a coalesced access costs — not a hazard.
        if result.coalesced or int(act.sum()) <= 1:
            continue
        all_coalesced = False
        vals = addrs[act] // itemsize
        if np.ptp(vals) == 0:
            label = "broadcast"
        else:
            diffs = np.diff(vals)
            if diffs.size and np.ptp(diffs) == 0:
                stride = int(diffs[0])
                label = "misaligned" if stride == 1 else f"strided({stride})"
            else:
                label = "irregular"
        if rank(label) > rank(worst):
            worst = label
    if all_coalesced:
        return "coalesced", True
    return worst, False


def classify_shared(index: SymLike, mask: Optional[np.ndarray],
                    nthreads: int, word_scale: int = 1,
                    word_offset: int = 0,
                    spec: DeviceSpec = DEFAULT_DEVICE,
                    ) -> Tuple[str, Optional[int]]:
    """Bank-conflict verdict for a shared access (Section 5.1).

    Returns ``(pattern, degree)``; ``degree`` is the worst
    access-group conflict degree, or ``None`` when unknown.  A value
    whose unknown terms all carry bank-count-divisible coefficients
    still gets a definite
    *conflict-free* verdict whenever its concrete residues hit
    distinct banks — the unknown parts cannot change the bank.
    """
    sym = as_sym(index)
    if sym.is_opaque:
        return "data-dependent", None
    nbanks = spec.shared_mem_banks
    active = np.ones(nthreads, dtype=bool) if mask is None \
        else np.asarray(mask, dtype=bool)
    value = sym.concrete_value()

    if value is not None:
        words = np.broadcast_to(np.asarray(value, dtype=np.int64),
                                (nthreads,)) * word_scale + word_offset
        hw = spec.shared_access_group
        pad = (-nthreads) % hw
        w = np.concatenate([words, np.zeros(pad, dtype=np.int64)]) \
            if pad else words
        a = np.concatenate([active, np.zeros(pad, dtype=bool)]) \
            if pad else active
        degree = 0
        for row_w, row_a in zip(w.reshape(-1, hw), a.reshape(-1, hw)):
            if row_a.any():
                degree = max(degree,
                             bank_conflict_degree(row_w, row_a, spec))
        degree = max(degree, 1)
        return ("conflict-free" if degree <= 1
                else f"{degree}-way"), degree

    # unknown affine terms: banks are decidable iff every coefficient
    # (scaled to words) is a multiple of the bank count
    if any((coeff * word_scale) % nbanks for coeff in sym.terms.values()):
        return "data-dependent", None
    residues = (np.broadcast_to(np.asarray(sym.lanes, dtype=np.int64),
                                (nthreads,)) * word_scale
                + word_offset) % nbanks
    hw = spec.shared_access_group
    pad = (-nthreads) % hw
    r = np.concatenate([residues, np.zeros(pad, dtype=np.int64)]) \
        if pad else residues
    a = np.concatenate([active, np.zeros(pad, dtype=bool)]) \
        if pad else active
    for row_r, row_a in zip(r.reshape(-1, hw), a.reshape(-1, hw)):
        vals = row_r[row_a]
        if vals.size and np.unique(vals).size != vals.size:
            # two lanes share a bank but their unknown words may differ
            return "data-dependent", None
    return "conflict-free", 1


def cross_lane_disjoint(store: SymLike, store_mask: Optional[np.ndarray],
                        load: SymLike, load_mask: Optional[np.ndarray],
                        nthreads: int) -> bool:
    """True when no lane's load can alias a *different* lane's store.

    Decides the shared-memory race rule: a st→ld pair with no barrier
    is safe iff each thread only reads back what it wrote itself.
    Three decision procedures, in order: symbolic identity, exact
    cross-lane comparison of concrete indices, and a gcd/residue
    argument when unknown terms share a common modulus.
    """
    st, ld = as_sym(store), as_sym(load)
    if st.is_opaque or ld.is_opaque:
        return False
    sm = np.ones(nthreads, dtype=bool) if store_mask is None \
        else np.asarray(store_mask, dtype=bool)
    lm = np.ones(nthreads, dtype=bool) if load_mask is None \
        else np.asarray(load_mask, dtype=bool)

    if st.same_expr(ld):
        return True

    sv, lv = st.concrete_value(), ld.concrete_value()
    if sv is not None and lv is not None:
        s = np.broadcast_to(np.asarray(sv, dtype=np.int64), (nthreads,))
        load_lanes = np.broadcast_to(np.asarray(lv, dtype=np.int64),
                                     (nthreads,))
        eq = load_lanes[:, None] == s[None, :]
        eq &= lm[:, None] & sm[None, :]
        np.fill_diagonal(eq, False)
        return not eq.any()

    # gcd/residue privacy: indices are  residue(lane) + multiple-of-g
    coeffs = [c for c in st.terms.values()] + [c for c in ld.terms.values()]
    if not coeffs:
        return False
    g = 0
    for c in coeffs:
        g = math.gcd(g, abs(c))
    if g <= 1:
        return False
    s_res = np.broadcast_to(np.asarray(st.lanes, dtype=np.int64),
                            (nthreads,)) % g
    l_res = np.broadcast_to(np.asarray(ld.lanes, dtype=np.int64),
                            (nthreads,)) % g
    eq = l_res[:, None] == s_res[None, :]
    eq &= lm[:, None] & sm[None, :]
    np.fill_diagonal(eq, False)
    return not eq.any()
