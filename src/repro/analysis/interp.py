"""Abstract interpreter: executes kernel source for one sample block.

The analyzer does not pattern-match source text.  It *runs* the kernel
the same way the simulator does — once per thread block with per-
thread NumPy vectors — but against a :class:`LintContext` that records
memory/barrier events instead of touching data, and with every value a
kernel cannot know statically (loaded data) represented by the
:class:`~repro.analysis.symbolic.SymVal` domain.  Because the sample
block's coordinates and the target's scalar arguments are concrete,
nearly all index arithmetic evaluates to exact per-lane vectors; the
rules in :mod:`repro.analysis.rules` then replay the event stream.

Dispatch over the ``ctx.*`` vocabulary is driven by
:data:`repro.cuda.context.CTX_OPS` — the context and the analyzer
share one description of the DSL surface.

Approximations (all deliberate, documented in DESIGN.md):

* ``ctx.select``/``ctx.merge``/``np.where`` under an *unknown*
  condition take the primary (new-value) branch and union taints;
* a data-dependent ``while`` runs its body twice;
* a data-dependent Python ``if`` runs both branches on forked scopes
  and merges, under an unknown divergence mask;
* ``for`` loops are bounded by :data:`LOOP_CAP` iterations.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from ..cuda.context import CTX_OPS
from ..cuda.dim3 import Dim3, as_dim3
from ..sim.memsys import block_bank_conflicts, coalesce_block_access
from ..trace.instr import InstrClass
from ..trace.trace import KernelTrace
from .symbolic import (
    AnalysisLimit,
    BLOCK_COORD,
    NTHREADS,
    SymVal,
    as_sym,
    is_varying,
    taints_of,
)
from .targets import LintArray, LintTarget

#: iteration bound for concrete loops (largest shipped loop is the
#: 256-iteration SAD accumulation in h264; rc5 mixes for 78)
LOOP_CAP = 512

#: iterations to run a data-dependent while loop for
UNKNOWN_WHILE_ITERS = 2

#: op-name -> instruction class for the static census, mirroring the
#: per-method _emit calls of :class:`~repro.cuda.context.BlockContext`
#: (fsub accounts as FADD, fmin/fmax as FCMP, exactly like the DSL)
CENSUS_FARITH: Dict[str, InstrClass] = {
    "fma": InstrClass.FMA,
    "fadd": InstrClass.FADD,
    "fsub": InstrClass.FADD,
    "fmul": InstrClass.FMUL,
    "fdiv": InstrClass.FDIV,
    "fmin": InstrClass.FCMP,
    "fmax": InstrClass.FCMP,
}

#: memory (op, space) -> instruction class for the static census
CENSUS_MEM: Dict[Tuple[str, str], InstrClass] = {
    ("ld", "global"): InstrClass.LD_GLOBAL,
    ("st", "global"): InstrClass.ST_GLOBAL,
    ("atom", "global"): InstrClass.ATOM_GLOBAL,
    ("ld", "shared"): InstrClass.LD_SHARED,
    ("st", "shared"): InstrClass.ST_SHARED,
    ("ld", "const"): InstrClass.LD_CONST,
    ("ld", "tex"): InstrClass.LD_TEX,
}


# ----------------------------------------------------------------------
# Event stream
# ----------------------------------------------------------------------

@dataclass
class MemEvent:
    """One memory access site execution (ld/st/atom, any space)."""

    line: int
    op: str                       # ld | st | atom
    space: str                    # global | shared | const | tex
    array: str
    index: object                 # SymVal or native snapshot
    itemsize: int
    size: Optional[int]           # element count when known
    mask: Optional[np.ndarray]    # concrete active-lane superset
    mask_exact: bool              # mask is exactly known
    mask_divergent: bool          # enclosing control flow diverges
    word_offset: int = 0          # shared only: first word of the array
    word_scale: int = 1           # shared only: words per element
    #: barrier interval: incremented at every __syncthreads(); two
    #: shared accesses in the same interval are concurrent (no
    #: happens-before edge orders them across threads)
    interval: int = 0


@dataclass
class SyncEvent:
    line: int
    divergent: bool
    #: the barrier interval this sync closes
    interval: int = 0


@dataclass
class AllocEvent:
    line: int
    name: str
    nbytes: int
    shape_taints: frozenset = frozenset()


@dataclass
class HazardEvent:
    """A construct that breaks :class:`BatchedExecutor` assumptions."""

    line: int
    kind: str      # scalar-coerce | scalar-range | python-if-coord |
    #                nthreads-index | nthreads-shared-shape | shared-data
    detail: str


@dataclass
class Recorder:
    """Collects the event stream of one sample-block execution."""

    events: List[object] = field(default_factory=list)
    notes: List[Tuple[int, str]] = field(default_factory=list)
    live_regs_max: int = 0
    current_line: int = 0
    live_counter: Optional[Callable[[], int]] = None
    _hazard_seen: set = field(default_factory=set)

    def emit(self, event) -> None:
        self.events.append(event)
        if self.live_counter is not None:
            self.live_regs_max = max(self.live_regs_max, self.live_counter())

    def hazard(self, kind: str, detail: str,
               line: Optional[int] = None) -> None:
        line = self.current_line if line is None else line
        key = (kind, line)
        if key in self._hazard_seen:
            return
        self._hazard_seen.add(key)
        self.events.append(HazardEvent(line, kind, detail))

    def note(self, message: str, line: Optional[int] = None) -> None:
        line = self.current_line if line is None else line
        if (line, message) not in self.notes and len(self.notes) < 20:
            self.notes.append((line, message))


# ----------------------------------------------------------------------
# Stand-ins handed to the interpreted kernel
# ----------------------------------------------------------------------

class OpaqueData:
    """Result of reading a shared array's raw ``.data`` attribute."""

    def __init__(self, owner: "LintShared") -> None:
        self._owner = owner

    def __getitem__(self, _index):
        kind = "int" if self._owner.dtype.kind in "iu" else "float"
        return SymVal.opaque(kind)

    def __setitem__(self, _index, _value) -> None:
        pass


class LintShared:
    """Shared-array stand-in produced by ``ctx.shared_alloc``."""

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: np.dtype,
                 word_offset: int, recorder: Recorder) -> None:
        self.name = name
        self.shape = shape
        self.dtype = dtype
        self.word_offset = word_offset
        self._recorder = recorder

    @property
    def size(self) -> int:
        out = 1
        for dim in self.shape:
            out *= dim
        return out

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def data(self) -> OpaqueData:
        self._recorder.hazard(
            "shared-data",
            f"raw .data access on shared array {self.name!r} bypasses the "
            f"lane model")
        return OpaqueData(self)


class _MaskedCM:
    """Context manager returned by the lint ``ctx.masked``."""

    def __init__(self, ctx: "LintContext", cond) -> None:
        self._ctx = ctx
        self._cond = cond

    def __enter__(self) -> None:
        # BlockContext.masked issues the predicate-set and branch under
        # the parent mask, before divergence takes effect
        self._ctx._census_branch(self._cond)
        self._ctx._census_emit(InstrClass.SETP)
        self._ctx._census_emit(InstrClass.BRANCH)
        self._ctx._push_mask(self._cond)

    def __exit__(self, *_exc) -> bool:
        self._ctx._pop_mask()
        return False


class LintContext:
    """Event-recording stand-in for
    :class:`~repro.cuda.context.BlockContext`.

    Method dispatch is generated from :data:`CTX_OPS`; a DSL method
    with no entry there simply does not exist here, which keeps the
    metadata table honest.
    """

    def __init__(self, spec: DeviceSpec, grid: Dim3, block: Dim3,
                 coord: Tuple[int, int, int], recorder: Recorder) -> None:
        self.spec = spec
        self.gridDim = grid
        self.blockDim = block
        self._recorder = recorder

        T = block.size
        tid = np.arange(T, dtype=np.int64)
        self.tid = tid
        self.tx = tid % block.x
        self.ty = (tid // block.x) % block.y
        self.tz = tid // (block.x * block.y)
        self.threads_per_block = T
        self.nwarps = -(-T // spec.warp_size)
        bx, by, bz = coord
        self.bx = SymVal.concrete(bx, "int", frozenset({BLOCK_COORD}))
        self.by = SymVal.concrete(by, "int", frozenset({BLOCK_COORD}))
        self.bz = SymVal.concrete(bz, "int", frozenset({BLOCK_COORD}))
        self.block_linear = SymVal.concrete(
            grid.linear(bx, by, bz), "int", frozenset({BLOCK_COORD}))
        #: widens to the whole batch under BatchedExecutor — tainted
        self.nthreads = SymVal.concrete(T, "int", frozenset({NTHREADS}))

        # (active-lane superset, exactly known?, divergent?)
        self._mask_stack: List[Tuple[np.ndarray, bool, bool]] = [
            (np.ones(T, dtype=bool), True, False)]
        #: current barrier interval (bumped by every __syncthreads())
        self._sync_interval = 0
        self._smem_words = 0
        self.shared_arrays: List[LintShared] = []
        #: static instruction census of this sample block — warp-level
        #: instruction counts recorded exactly the way BlockContext's
        #: _emit does, so :mod:`repro.analysis.census` can compare them
        #: against dynamic LaunchProfiler trace counters one-for-one
        self.census = KernelTrace()

        for op_name, op in CTX_OPS.items():
            if op.category == "identity":
                continue
            setattr(self, op_name, _bind_dispatch(self, op_name, op))

    # -- identity helpers (mirror BlockContext) -------------------------
    def global_tid_x(self):
        return self.bx * self.blockDim.x + self.tx

    def global_tid_y(self):
        return self.by * self.blockDim.y + self.ty

    def global_tid(self):
        return self.block_linear * self.blockDim.size + self.tid

    # -- mask machinery -------------------------------------------------
    @property
    def mask(self) -> np.ndarray:
        return self._mask_stack[-1][0]

    def _push_mask(self, cond) -> None:
        parent, parent_exact, parent_div = self._mask_stack[-1]
        sym = as_sym(cond)
        value = sym.concrete_value()
        if value is None:
            # unknown condition: active set is some subset of parent
            self._mask_stack.append((parent, False, True))
            return
        m = parent & np.broadcast_to(
            np.asarray(value, dtype=bool), parent.shape)
        divergent = parent_div or not bool(m.all())
        self._mask_stack.append((m, parent_exact, divergent))

    def _pop_mask(self) -> None:
        self._mask_stack.pop()

    def push_unknown_branch(self) -> None:
        """Divergence frame for a data-dependent Python ``if``."""
        parent, _exact, _div = self._mask_stack[-1]
        self._mask_stack.append((parent, False, True))

    def pop_unknown_branch(self) -> None:
        self._mask_stack.pop()

    def _mask_state(self) -> Tuple[np.ndarray, bool, bool]:
        return self._mask_stack[-1]

    # -- event helpers --------------------------------------------------
    @property
    def smem_bytes(self) -> int:
        return self._smem_words * 4

    def _line(self) -> int:
        return self._recorder.current_line

    # -- census (static instruction/byte accounting) --------------------
    def _census_lane_counts(self, mask: np.ndarray) -> np.ndarray:
        """Active-lane count per warp (mask padded to warp_size)."""
        ws = self.spec.warp_size
        pad = (-mask.shape[0]) % ws
        m = np.concatenate([mask, np.zeros(pad, dtype=bool)]) if pad \
            else mask
        return m.reshape(-1, ws).sum(axis=1)

    def _census_branch(self, cond) -> None:
        """Mirror of BlockContext.masked's branch bookkeeping: count the
        warps whose parent-active lanes disagree on ``cond``.  An
        unknown *thread-varying* condition (a data-dependent per-lane
        predicate) is charged pessimistically as all-warps-divergent;
        an unknown scalar is uniform — every lane agrees."""
        parent = self._mask_state()[0]
        counts = self._census_lane_counts(parent)
        warps = int((counts > 0).sum())
        if warps == 0:
            return
        sym = as_sym(cond)
        value = sym.concrete_value()
        if value is None:
            divergent = warps if is_varying(sym) else 0
        else:
            cvec = parent & np.broadcast_to(
                np.asarray(value, dtype=bool), parent.shape)
            taken = self._census_lane_counts(cvec)
            skipped = self._census_lane_counts(parent & ~cvec)
            divergent = int(((taken > 0) & (skipped > 0)).sum())
        self.census.record_branch(warps, divergent)

    def _census_emit(self, cls: InstrClass, count: int = 1) -> None:
        """Mirror of BlockContext._emit: one warp instruction per warp
        with any active lane, under the current divergence mask.  A
        partial-mask warp (divergence in effect) still occupies a full
        issue slot — counted toward the serialized-divergence total."""
        if count == 0:
            return
        mask = self._mask_state()[0]
        counts = self._census_lane_counts(mask)
        warps = int((counts > 0).sum())
        if warps == 0:
            return
        if len(self._mask_stack) > 1:
            base = self._census_lane_counts(self._mask_stack[0][0])
            partial = int(((counts > 0) & (counts < base)).sum())
            if partial:
                self.census.record_divergent_issue(partial * count)
        self.census.record_instr(cls, warps * count,
                                 int(mask.sum()) * count)

    def _census_global(self, name: str, index_sym: SymVal, itemsize: int,
                       mask: np.ndarray, kind: str = "ld") -> None:
        """Static coalescing outcome of one global access event, using
        the same :func:`coalesce_block_access` the simulator applies to
        real addresses (so the device's coalescing rule is honoured).
        A data-dependent index (a gather/scatter) is charged
        pessimistically: one transaction per active thread at the
        minimum bus granularity."""
        nthreads = mask.shape[0]
        value = index_sym.concrete_value()
        if value is not None:
            lanes = np.broadcast_to(np.asarray(value, dtype=np.int64),
                                    (nthreads,))
            wa, txn, bus, useful, coal = coalesce_block_access(
                lanes * itemsize, mask, itemsize, self.spec)
        else:
            n = int(mask.sum())
            if n == 0:
                return
            group = self.spec.coalesce_group
            wa = -(-n // group)
            txn = n
            bus = n * max(itemsize, self.spec.min_transaction_bytes)
            useful = n * itemsize
            coal = 0
        self.census.record_global_access(name, wa, txn, bus, useful, coal,
                                         kind=kind)

    def _census_shared(self, array: "LintShared", index_sym: SymVal,
                       mask: np.ndarray) -> None:
        """Static bank-conflict serialization cycles, mirroring
        BlockContext._record_bank_conflicts for concrete indices."""
        value = index_sym.concrete_value()
        if value is None:
            return
        nthreads = mask.shape[0]
        words = (np.broadcast_to(np.asarray(value, dtype=np.int64),
                                 (nthreads,))
                 * max(1, array.itemsize // 4) + array.word_offset)
        accesses, degree = block_bank_conflicts(words, mask, self.spec)
        group_share = self.spec.shared_access_group / self.spec.warp_size
        extra = (degree - accesses) * (
            self.spec.timing.issue_cycles_per_warp_inst * group_share)
        if extra:
            self.census.record_shared_conflict(extra)

    def _census_const(self, index_sym: SymVal, mask: np.ndarray) -> None:
        """Constant-cache broadcast serialization: threads of a
        coalescing group reading different words serialize one
        word/cycle."""
        value = index_sym.concrete_value()
        if value is None:
            return
        nthreads = mask.shape[0]
        words = np.broadcast_to(np.asarray(value, dtype=np.int64),
                                (nthreads,))
        group = self.spec.coalesce_group
        group_share = group / self.spec.warp_size
        pad = (-nthreads) % group
        w = np.concatenate([words, np.zeros(pad, np.int64)]) if pad \
            else words
        m = np.concatenate([mask, np.zeros(pad, bool)]) if pad else mask
        rows_w = w.reshape(-1, group)
        rows_m = m.reshape(-1, group)
        extra = 0.0
        for r in range(rows_w.shape[0]):
            if not rows_m[r].any():
                continue
            distinct = len(np.unique(rows_w[r][rows_m[r]]))
            extra += (distinct - 1) * (
                self.spec.timing.issue_cycles_per_warp_inst * group_share)
        if extra:
            self.census.record_shared_conflict(extra)

    def _record_access(self, op: str, space: str, array, index) -> None:
        mask, exact, divergent = self._mask_state()
        if isinstance(array, LintShared):
            name = array.name
            itemsize = array.itemsize
            size = array.size
            word_offset = array.word_offset
            word_scale = max(1, itemsize // 4)
        elif isinstance(array, LintArray):
            name = array.name
            itemsize = array.itemsize
            size = array.size
            word_offset = 0
            word_scale = 1
        else:
            raise AnalysisLimit(
                f"{op}_{space} on a non-array value {type(array).__name__}")
        index_sym = as_sym(index)
        if NTHREADS in index_sym.taints:
            self._recorder.hazard(
                "nthreads-index",
                f"ctx.nthreads feeds the index of {name!r} (widens under "
                f"batched execution; use ctx.threads_per_block)")
        self._recorder.emit(MemEvent(
            line=self._line(), op=op, space=space, array=name,
            index=index_sym, itemsize=itemsize, size=size,
            mask=mask.copy(), mask_exact=exact, mask_divergent=divergent,
            word_offset=word_offset, word_scale=word_scale,
            interval=self._sync_interval))
        self._census_emit(CENSUS_MEM[(op, space)])
        if space == "global":
            self._census_global(name, index_sym, itemsize, mask,
                                kind="atom" if op == "atom" else op)
        elif space == "shared":
            self._census_shared(array, index_sym, mask)
        elif space == "const":
            self._census_const(index_sym, mask)

    def _loaded_value(self, array) -> SymVal:
        if isinstance(array, LintShared):
            integer = array.dtype.kind in "iu"
        else:
            integer = array.is_integer
        return SymVal.unknown_int() if integer else SymVal.opaque("float")

    # -- CTX_OPS dispatch -----------------------------------------------
    def dispatch(self, name: str, op, *args, **kwargs):
        cat = op.category
        if cat in ("farith", "sfu"):
            self._census_emit(CENSUS_FARITH.get(name, InstrClass.SFU))
            taints = frozenset().union(*(taints_of(a) for a in args)) \
                if args else frozenset()
            varying = any(is_varying(a) for a in args)
            return SymVal.opaque("float", taints, varying)
        if cat == "iarith":
            self._census_emit(InstrClass.IMUL if name == "imul"
                              else InstrClass.IALU)
            return _int_arith(name, *args)
        if cat == "cvt":
            self._census_emit(InstrClass.CVT)
            value, dtype = args[0], args[1] if len(args) > 1 else np.float32
            return as_sym(value).astype(dtype)
        if cat == "select":
            self._census_emit(InstrClass.SETP)
            cond, new, old = args
            return _select(cond, new, old)
        if cat == "merge":
            new, old = args
            mask, exact, _div = self._mask_state()
            if exact:
                return _select(SymVal.concrete(mask, "bool"), new, old)
            return _select(SymVal.opaque("bool"), new, old)
        if cat == "global_ld":
            arr, index = args
            self._record_access("ld", "global", arr, index)
            return self._loaded_value(arr)
        if cat == "global_st":
            arr, index = args[0], args[1]
            self._record_access("st", "global", arr, index)
            return None
        if cat == "global_atomic":
            arr, index = args[0], args[1]
            self._record_access("atom", "global", arr, index)
            return self._loaded_value(arr)
        if cat == "shared_ld":
            sh, index = args
            self._record_access("ld", "shared", sh, index)
            return self._loaded_value(sh)
        if cat == "shared_st":
            sh, index = args[0], args[1]
            self._record_access("st", "shared", sh, index)
            return None
        if cat == "const_ld":
            arr, index = args
            self._record_access("ld", "const", arr, index)
            return self._loaded_value(arr)
        if cat == "tex_ld":
            arr, index = args
            self._record_access("ld", "tex", arr, index)
            return self._loaded_value(arr)
        if cat == "alloc":
            return self._shared_alloc(*args, **kwargs)
        if cat == "sync":
            _mask, exact, divergent = self._mask_state()
            self._recorder.emit(SyncEvent(self._line(),
                                          divergent=divergent or not exact,
                                          interval=self._sync_interval))
            self._sync_interval += 1
            self._census_emit(InstrClass.SYNC)
            return None
        if cat == "masked":
            return _MaskedCM(self, args[0])
        if cat == "query":      # any_active
            cond = as_sym(args[0])
            value = cond.concrete_value()
            if value is None:
                return SymVal.opaque("bool", cond.taints, True)
            mask = self._mask_state()[0]
            return bool(np.any(np.broadcast_to(
                np.asarray(value, dtype=bool), mask.shape) & mask))
        if cat == "meta":       # loop_tail / address_ops
            count = int(args[0]) if args else 1
            self._census_emit(InstrClass.IALU, count)
            if name == "loop_tail":
                self._census_emit(InstrClass.SETP)
                self._census_emit(InstrClass.BRANCH)
            return None
        raise AnalysisLimit(f"unmodeled ctx op {name!r} ({cat})")

    def _shared_alloc(self, shape, dtype=np.float32,
                      name: str = "smem") -> LintShared:
        dims: List[int] = []
        shape_taints: frozenset = frozenset()
        shape_seq = shape if isinstance(shape, (tuple, list)) else (shape,)
        for dim in shape_seq:
            if isinstance(dim, SymVal):
                shape_taints |= dim.taints
                value = dim.concrete_value()
                if value is None or dim.varying:
                    raise AnalysisLimit("shared_alloc shape is data-"
                                        "dependent")
                dims.append(int(np.asarray(value)))
            else:
                dims.append(int(dim))
        if NTHREADS in shape_taints:
            self._recorder.hazard(
                "nthreads-shared-shape",
                f"shared array {name!r} sized by ctx.nthreads (widens "
                f"under batched execution)")
        np_dtype = np.dtype(_np_dtype(dtype))
        arr = LintShared(name, tuple(dims), np_dtype, self._smem_words,
                         self._recorder)
        self._smem_words += max(1, np_dtype.itemsize // 4) * arr.size
        self._recorder.emit(AllocEvent(
            self._line(), name, arr.size * np_dtype.itemsize, shape_taints))
        self.shared_arrays.append(arr)
        return arr


def _bind_dispatch(ctx: LintContext, name: str, op):
    def bound(*args, **kwargs):
        return ctx.dispatch(name, op, *args, **kwargs)
    bound.__name__ = name
    return bound


def _int_arith(name: str, a, b):
    if name == "iadd":
        return as_sym(a) + b
    if name == "isub":
        return as_sym(a) - b
    if name == "imul":
        return as_sym(a) * b
    if name == "iand":
        return as_sym(a) & b
    if name == "ior":
        return as_sym(a) | b
    if name == "ixor":
        return as_sym(a) ^ b
    if name == "ishl":
        return as_sym(a) << b
    if name == "ishr":
        return as_sym(a) >> b
    raise AnalysisLimit(f"unknown integer op {name!r}")


def _select(cond, new, old):
    """``where(cond, new, old)`` in the abstract domain.

    Unknown condition: if both branches are provably the same value,
    keep it; otherwise take the *primary* (new) branch, mark varying
    and union taints — interior-block behaviour, good enough for the
    index structure the classifiers need.
    """
    c = as_sym(cond)
    cv = c.concrete_value()
    n, o = as_sym(new), as_sym(old)
    taints = c.taints | n.taints | o.taints
    if cv is not None:
        nv, ov = n.concrete_value(), o.concrete_value()
        if nv is not None and ov is not None:
            result = np.where(np.asarray(cv, dtype=bool), nv, ov)
            kind = "float" if (n.kind == "float" or o.kind == "float") \
                else n.kind
            return SymVal(result, None, kind, taints,
                          is_varying(result) or n.varying or o.varying)
        cond_arr = np.asarray(cv, dtype=bool)
        if bool(np.all(cond_arr)):
            return SymVal(n.lanes, n.terms, n.kind, taints, n.varying)
        if not bool(np.any(cond_arr)):
            return SymVal(o.lanes, o.terms, o.kind, taints, o.varying)
        primary = n if nv is not None or ov is None else o
        return SymVal(primary.lanes, primary.terms, primary.kind, taints,
                      True)
    if n.same_expr(o):
        return SymVal(n.lanes, n.terms, n.kind, taints, n.varying)
    return SymVal(n.lanes, n.terms, n.kind, taints, True)


# ----------------------------------------------------------------------
# NumPy shim
# ----------------------------------------------------------------------

_CASTER_NAMES = ("int8", "int16", "int32", "int64", "uint8", "uint16",
                 "uint32", "uint64", "float16", "float32", "float64")


class NpCaster:
    """Stand-in for ``np.int64`` & friends: usable both as a dtype and
    as a scalar-coercion call (the batch-safety flashpoint)."""

    def __init__(self, np_type, recorder: Recorder) -> None:
        self.np_type = np_type
        self._recorder = recorder

    def __call__(self, value):
        if isinstance(value, SymVal):
            if value.is_scalar and (value.taints & {BLOCK_COORD, NTHREADS}):
                which = "block coordinate" \
                    if BLOCK_COORD in value.taints else "ctx.nthreads"
                self._recorder.hazard(
                    "scalar-coerce",
                    f"np.{self.np_type.__name__}() on a scalar derived "
                    f"from the {which} (becomes a vector under batched "
                    f"execution)")
            return value.astype(self.np_type)
        return self.np_type(value)


def _np_dtype(dtype):
    return dtype.np_type if isinstance(dtype, NpCaster) else dtype


class NpShim:
    """The ``np`` the interpreted kernel sees: concrete where possible,
    abstract where a value is symbolic, recording batch hazards."""

    def __init__(self, recorder: Recorder, nthreads: int) -> None:
        self._recorder = recorder
        self._nthreads = nthreads

    # shape arguments may legitimately be ctx.nthreads — drop taints
    def _shape(self, shape):
        if isinstance(shape, SymVal):
            value = shape.concrete_value()
            if value is None or shape.varying:
                raise AnalysisLimit("data-dependent array shape")
            return int(np.asarray(value))
        if isinstance(shape, (tuple, list)):
            return tuple(self._shape(s) for s in shape)
        return shape

    def zeros(self, shape, dtype=np.float64):
        return np.zeros(self._shape(shape), dtype=_np_dtype(dtype))

    def ones(self, shape, dtype=np.float64):
        return np.ones(self._shape(shape), dtype=_np_dtype(dtype))

    def empty(self, shape, dtype=np.float64):
        return np.zeros(self._shape(shape), dtype=_np_dtype(dtype))

    def arange(self, *args, **kwargs):
        args = tuple(int(a) if isinstance(a, SymVal) else a for a in args)
        if "dtype" in kwargs:
            kwargs["dtype"] = _np_dtype(kwargs["dtype"])
        return np.arange(*args, **kwargs)

    def full(self, shape, fill, dtype=None):
        shape = self._shape(shape)
        np_dtype = _np_dtype(dtype)
        if not isinstance(fill, SymVal):
            return np.full(shape, fill,
                           **({"dtype": np_dtype} if dtype is not None
                              else {}))
        value = fill.concrete_value()
        if value is None:
            return SymVal.opaque(fill.kind, fill.taints, fill.varying)
        lanes = np.broadcast_to(np.asarray(value), (shape,)
                                if isinstance(shape, int) else shape).copy()
        if np_dtype is not None:
            lanes = lanes.astype(np_dtype)
        return SymVal(lanes, None, fill.kind, fill.taints, fill.varying)

    def broadcast_to(self, value, shape):
        shape = self._shape(shape)
        if not isinstance(value, SymVal):
            return np.broadcast_to(value, shape)
        cv = value.concrete_value()
        if cv is None:
            return SymVal.opaque(value.kind, value.taints, value.varying)
        lanes = np.broadcast_to(np.asarray(cv), shape)
        return SymVal(lanes, None, value.kind, value.taints, value.varying)

    def asarray(self, value, dtype=None):
        if isinstance(value, SymVal):
            return value if dtype is None else value.astype(_np_dtype(dtype))
        return np.asarray(value, dtype=_np_dtype(dtype)) \
            if dtype is not None else np.asarray(value)

    array = asarray

    def where(self, cond, a, b):
        if not any(isinstance(v, SymVal) for v in (cond, a, b)):
            return np.where(cond, a, b)
        return _select(cond, a, b)

    def _minmax(self, func, *args):
        if not any(isinstance(v, SymVal) for v in args):
            return func(*args)
        syms = [as_sym(a) for a in args]
        taints = frozenset().union(*(s.taints for s in syms))
        varying = any(s.varying for s in syms)
        values = [s.concrete_value() for s in syms]
        if all(v is not None for v in values):
            out = values[0]
            for v in values[1:]:
                out = func(out, v)
            kind = "float" if any(s.kind == "float" for s in syms) else "int"
            return SymVal(out, None, kind, taints, varying)
        primary = syms[0]
        return SymVal(primary.lanes, primary.terms, primary.kind, taints,
                      True)

    def minimum(self, a, b):
        return self._minmax(np.minimum, a, b)

    def maximum(self, a, b):
        return self._minmax(np.maximum, a, b)

    def clip(self, a, lo, hi):
        return self._minmax(np.clip, a, lo, hi)

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        if name in _CASTER_NAMES:
            return NpCaster(getattr(np, name), self._recorder)
        attr = getattr(np, name)
        if callable(attr) and not isinstance(attr, type):
            recorder = self._recorder

            def generic(*args, **kwargs):
                if not any(isinstance(a, SymVal) for a in args):
                    return attr(*args, **kwargs)
                taints = frozenset().union(
                    *(taints_of(a) for a in args))
                varying = any(is_varying(a) for a in args)
                values = [a.concrete_value() if isinstance(a, SymVal)
                          else a for a in args]
                if all(v is not None for v in values):
                    try:
                        result = attr(*values, **kwargs)
                        kind = "float" \
                            if np.asarray(result).dtype.kind == "f" else (
                                "bool" if np.asarray(result).dtype.kind
                                == "b" else "int")
                        return SymVal(result, None, kind, taints, varying)
                    except Exception:
                        pass
                recorder.note(f"np.{name} on a symbolic value went opaque")
                return SymVal.opaque("float", taints, varying)

            generic.__name__ = name
            return generic
        return attr        # np.pi, np.inf, np.newaxis, dtypes, ...


# ----------------------------------------------------------------------
# The interpreter
# ----------------------------------------------------------------------

class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value) -> None:
        self.value = value


class Scope:
    """Lexical scope frame (function locals, chained to the def site)."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.vars: Dict[str, object] = {}
        self.parent = parent


class InterpFunc:
    """A function defined (or reached) inside the kernel, interpreted
    rather than called."""

    def __init__(self, node: ast.FunctionDef, scope: Scope,
                 globals_dict: dict, line_offset: int) -> None:
        self.node = node
        self.scope = scope
        self.globals = globals_dict
        self.line_offset = line_offset

    @property
    def name(self) -> str:
        return self.node.name


class KernelInterp:
    """Runs one kernel function for one sample block coordinate."""

    MAX_DEPTH = 8

    def __init__(self, target: LintTarget, coord: Tuple[int, int, int],
                 spec: DeviceSpec = DEFAULT_DEVICE) -> None:
        self.target = target
        self.spec = spec
        self.recorder = Recorder()
        grid = as_dim3(tuple(target.grid))
        block = as_dim3(tuple(target.block))
        self.ctx = LintContext(spec, grid, block, coord, self.recorder)
        self.shim = NpShim(self.recorder, block.size)
        self.scopes: List[Scope] = []
        self.recorder.live_counter = self._live_count
        self._builtins = self._make_builtins()
        self._depth = 0

    # -- public entry ---------------------------------------------------
    def run(self) -> Recorder:
        fn = self.target.kernel.fn
        try:
            lines, start = inspect.getsourcelines(fn)
        except (OSError, TypeError):
            self.recorder.note("kernel source unavailable", line=0)
            return self.recorder
        tree = ast.parse(textwrap.dedent("".join(lines)))
        fdef = next(n for n in tree.body
                    if isinstance(n, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)))
        closure = {}
        if fn.__closure__:
            closure = dict(zip(fn.__code__.co_freevars,
                               [c.cell_contents for c in fn.__closure__]))
        root = Scope()
        root.vars.update(closure)
        func = InterpFunc(fdef, root, fn.__globals__, start - 1)
        args = (self.ctx,) + tuple(self.target.args)
        try:
            self._call_interp(func, args, {})
        except AnalysisLimit as exc:
            self.recorder.note(f"analysis stopped: {exc}")
        return self.recorder

    # -- plumbing -------------------------------------------------------
    def _live_count(self) -> int:
        seen = set()
        count = 0
        for scope in reversed(self.scopes):
            for name, value in scope.vars.items():
                if name in seen:
                    continue
                seen.add(name)
                if is_varying(value) if isinstance(value, (SymVal,)) \
                        else (isinstance(value, np.ndarray)
                              and value.ndim > 0 and value.size > 1):
                    count += 1
        return count

    def _make_builtins(self) -> dict:
        recorder = self.recorder

        def lint_range(*args):
            out = []
            for a in args:
                if isinstance(a, SymVal):
                    if a.taints & {BLOCK_COORD, NTHREADS}:
                        which = "ctx.nthreads" if NTHREADS in a.taints \
                            else "a block coordinate"
                        recorder.hazard(
                            "scalar-range",
                            f"Python loop bound derived from {which} "
                            f"(breaks batched execution)")
                    out.append(int(a))
                else:
                    out.append(a)
            return range(*out)

        def lint_int(value=0):
            if isinstance(value, SymVal):
                if value.is_scalar and (value.taints
                                        & {BLOCK_COORD, NTHREADS}):
                    recorder.hazard(
                        "scalar-coerce",
                        "int() on a scalar derived from block-varying "
                        "state (breaks batched execution)")
                return int(value)
            return int(value)

        def lint_float(value=0.0):
            if isinstance(value, SymVal):
                return float(value)
            return float(value)

        def lint_bool(value=False):
            return bool(value)

        def lint_divmod(a, b):
            if isinstance(a, SymVal) or isinstance(b, SymVal):
                return (as_sym(a) // b, as_sym(a) % b)
            return divmod(a, b)

        def lint_minmax(func):
            def inner(*args):
                if len(args) == 1:
                    args = tuple(args[0])
                if not any(isinstance(a, SymVal) for a in args):
                    return func(args)
                syms = [as_sym(a) for a in args]
                if all(s.is_concrete and s.is_scalar for s in syms):
                    taints = frozenset().union(*(s.taints for s in syms))
                    values = [np.asarray(s.lanes) for s in syms]
                    result = func(values)
                    return SymVal(result, None, syms[0].kind, taints, False)
                raise AnalysisLimit(f"{func.__name__}() over symbolic "
                                    f"vectors")
            return inner

        return {
            "range": lint_range, "int": lint_int, "float": lint_float,
            "bool": lint_bool, "divmod": lint_divmod,
            "min": lint_minmax(min), "max": lint_minmax(max),
            "abs": abs, "len": len, "enumerate": enumerate, "zip": zip,
            "reversed": reversed, "sum": sum, "tuple": tuple,
            "list": list, "print": lambda *a, **k: None,
            "True": True, "False": False, "None": None,
        }

    def _intercept(self, value):
        if value is np:
            return self.shim
        return value

    # -- function calls -------------------------------------------------
    def _call_interp(self, func: InterpFunc, args: Sequence[object],
                     kwargs: Dict[str, object]):
        if self._depth >= self.MAX_DEPTH:
            raise AnalysisLimit("interpreted call depth exceeded")
        node = func.node
        params = [a.arg for a in node.args.args]
        scope = Scope(parent=func.scope)
        defaults = node.args.defaults
        if defaults:
            offset = len(params) - len(defaults)
            for i, default in enumerate(defaults):
                scope.vars[params[offset + i]] = self._eval(
                    default, scope, func)
        if len(args) > len(params):
            raise AnalysisLimit(
                f"{func.name}() takes {len(params)} args, got {len(args)}")
        for name, value in zip(params, args):
            scope.vars[name] = value
        for name, value in kwargs.items():
            if name not in params:
                raise AnalysisLimit(f"{func.name}() got unexpected "
                                    f"keyword {name!r}")
            scope.vars[name] = value
        self._depth += 1
        self.scopes.append(scope)
        try:
            self._exec_block(node.body, scope, func)
        except _Return as ret:
            return ret.value
        finally:
            self.scopes.pop()
            self._depth -= 1
        return None

    def _call_native_function(self, fn, args, kwargs):
        """Interpret a plain Python function reached through a closure
        (e.g. a rotate helper defined in a kernel factory)."""
        try:
            lines, start = inspect.getsourcelines(fn)
        except (OSError, TypeError):
            raise AnalysisLimit(
                f"cannot interpret opaque callable {fn!r}") from None
        tree = ast.parse(textwrap.dedent("".join(lines)))
        fdef = next(n for n in tree.body if isinstance(n, ast.FunctionDef))
        closure = {}
        if fn.__closure__:
            closure = dict(zip(fn.__code__.co_freevars,
                               [c.cell_contents for c in fn.__closure__]))
        root = Scope()
        root.vars.update(closure)
        func = InterpFunc(fdef, root, fn.__globals__, start - 1)
        return self._call_interp(func, args, kwargs)

    # -- statement execution --------------------------------------------
    def _exec_block(self, body: Sequence[ast.stmt], scope: Scope,
                    func: InterpFunc) -> None:
        for stmt in body:
            self._exec_stmt(stmt, scope, func)

    def _exec_stmt(self, stmt: ast.stmt, scope: Scope,
                   func: InterpFunc) -> None:
        self.recorder.current_line = stmt.lineno + func.line_offset
        try:
            self._exec_stmt_inner(stmt, scope, func)
        except AnalysisLimit as exc:
            self.recorder.note(f"skipped {type(stmt).__name__}: {exc}")

    def _exec_stmt_inner(self, stmt: ast.stmt, scope: Scope,
                         func: InterpFunc) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, scope, func)
            for tgt in stmt.targets:
                self._assign(tgt, value, scope, func)
        elif isinstance(stmt, ast.AugAssign):
            current = self._eval_target_load(stmt.target, scope, func)
            value = self._eval(stmt.value, scope, func)
            result = self._binop(type(stmt.op), current, value)
            self._assign(stmt.target, result, scope, func)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target,
                             self._eval(stmt.value, scope, func),
                             scope, func)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, scope, func)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, scope, func)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, scope, func)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, scope, func)
        elif isinstance(stmt, ast.With):
            self._exec_with(stmt, scope, func)
        elif isinstance(stmt, ast.FunctionDef):
            scope.vars[stmt.name] = InterpFunc(
                stmt, scope, func.globals, func.line_offset)
        elif isinstance(stmt, ast.Return):
            value = None if stmt.value is None \
                else self._eval(stmt.value, scope, func)
            raise _Return(value)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, (ast.Pass, ast.Import, ast.ImportFrom,
                               ast.Global, ast.Nonlocal, ast.Assert)):
            pass
        else:
            raise AnalysisLimit(f"unsupported statement "
                                f"{type(stmt).__name__}")

    def _exec_if(self, stmt: ast.If, scope: Scope,
                 func: InterpFunc) -> None:
        test = self._eval(stmt.test, scope, func)
        if isinstance(test, SymVal):
            value = test.concrete_value()
            if value is None or test.varying:
                self._exec_if_unknown(stmt, test, scope, func)
                return
            test = bool(np.asarray(value))
        if test:
            self._exec_block(stmt.body, scope, func)
        else:
            self._exec_block(stmt.orelse, scope, func)

    def _exec_if_unknown(self, stmt: ast.If, test: SymVal, scope: Scope,
                         func: InterpFunc) -> None:
        """Data-dependent Python ``if``: run both arms on forked
        variable bindings under an unknown divergence mask, then merge
        (identical values survive, conflicting ones go opaque)."""
        if test.taints & {BLOCK_COORD, NTHREADS}:
            self.recorder.hazard(
                "python-if-coord",
                "Python branch on a value derived from block coordinates "
                "(control flow diverges across batched blocks)")
        base = dict(scope.vars)
        self.ctx.push_unknown_branch()
        try:
            self._exec_block(stmt.body, scope, func)
        finally:
            self.ctx.pop_unknown_branch()
        then_vars = scope.vars
        scope.vars = dict(base)
        self.ctx.push_unknown_branch()
        try:
            self._exec_block(stmt.orelse, scope, func)
        finally:
            self.ctx.pop_unknown_branch()
        else_vars = scope.vars
        merged: Dict[str, object] = {}
        for name in set(then_vars) | set(else_vars):
            a = then_vars.get(name, _MISSING)
            b = else_vars.get(name, _MISSING)
            if a is b or (a is not _MISSING and b is not _MISSING
                          and _same_value(a, b)):
                merged[name] = a
            elif a is _MISSING:
                merged[name] = b
            elif b is _MISSING:
                merged[name] = a
            else:
                sa = as_sym(a) if not callable(a) else None
                kind = sa.kind if isinstance(sa, SymVal) else "float"
                taints = (taints_of(a) if not callable(a) else frozenset()) \
                    | (taints_of(b) if not callable(b) else frozenset())
                merged[name] = SymVal.opaque(kind, taints, True)
        scope.vars = merged

    def _exec_for(self, stmt: ast.For, scope: Scope,
                  func: InterpFunc) -> None:
        iterable = self._eval(stmt.iter, scope, func)
        if isinstance(iterable, SymVal):
            raise AnalysisLimit("iteration over a symbolic value")
        count = 0
        broke = False
        for item in iterable:
            if count >= LOOP_CAP:
                self.recorder.note(
                    f"loop truncated after {LOOP_CAP} iterations")
                break
            count += 1
            self._assign(stmt.target, item, scope, func)
            try:
                self._exec_block(stmt.body, scope, func)
            except _Break:
                broke = True
                break
            except _Continue:
                continue
        if not broke and stmt.orelse:
            self._exec_block(stmt.orelse, scope, func)

    def _exec_while(self, stmt: ast.While, scope: Scope,
                    func: InterpFunc) -> None:
        count = 0
        while True:
            test = self._eval(stmt.test, scope, func)
            if isinstance(test, SymVal):
                value = test.concrete_value()
                if value is None or test.varying:
                    self._exec_unknown_while(stmt, scope, func)
                    return
                test = bool(np.asarray(value))
            if not test:
                break
            if count >= LOOP_CAP:
                self.recorder.note(
                    f"while loop truncated after {LOOP_CAP} iterations")
                break
            count += 1
            try:
                self._exec_block(stmt.body, scope, func)
            except _Break:
                break
            except _Continue:
                continue

    def _exec_unknown_while(self, stmt: ast.While, scope: Scope,
                            func: InterpFunc) -> None:
        self.recorder.note(
            f"data-dependent while loop: analyzed "
            f"{UNKNOWN_WHILE_ITERS} iterations")
        for _ in range(UNKNOWN_WHILE_ITERS):
            try:
                self._exec_block(stmt.body, scope, func)
            except (_Break, _Continue):
                break

    def _exec_with(self, stmt: ast.With, scope: Scope,
                   func: InterpFunc) -> None:
        if len(stmt.items) != 1:
            raise AnalysisLimit("multi-item with statements")
        cm = self._eval(stmt.items[0].context_expr, scope, func)
        if not hasattr(cm, "__enter__"):
            raise AnalysisLimit("with on a non-context-manager value")
        entered = cm.__enter__()
        if stmt.items[0].optional_vars is not None:
            self._assign(stmt.items[0].optional_vars, entered, scope, func)
        try:
            self._exec_block(stmt.body, scope, func)
        finally:
            cm.__exit__(None, None, None)

    # -- assignment -----------------------------------------------------
    def _assign(self, target: ast.expr, value, scope: Scope,
                func: InterpFunc) -> None:
        if isinstance(target, ast.Name):
            scope.vars[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, SymVal):
                raise AnalysisLimit("tuple-unpacking a symbolic value")
            items = list(value)
            if len(items) != len(target.elts):
                raise AnalysisLimit("unpack arity mismatch")
            for tgt, item in zip(target.elts, items):
                self._assign(tgt, item, scope, func)
        elif isinstance(target, ast.Subscript):
            obj = self._eval(target.value, scope, func)
            index = self._eval(target.slice, scope, func)
            if isinstance(obj, OpaqueData):
                return
            if isinstance(index, SymVal):
                index = int(index)
            try:
                obj[index] = value
            except Exception as exc:
                raise AnalysisLimit(f"subscript store failed: {exc}") \
                    from None
        else:
            raise AnalysisLimit(
                f"unsupported assignment target {type(target).__name__}")

    def _eval_target_load(self, target: ast.expr, scope: Scope,
                          func: InterpFunc):
        return self._eval(target, scope, func)

    # -- expression evaluation ------------------------------------------
    def _eval(self, node: ast.expr, scope: Scope, func: InterpFunc):
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return self._lookup(node.id, scope, func)
        if isinstance(node, ast.Tuple):
            return tuple(self._eval(e, scope, func) for e in node.elts)
        if isinstance(node, ast.List):
            return [self._eval(e, scope, func) for e in node.elts]
        if isinstance(node, ast.Dict):
            return {self._eval(k, scope, func): self._eval(v, scope, func)
                    for k, v in zip(node.keys, node.values)}
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, scope, func)
            right = self._eval(node.right, scope, func)
            return self._binop(type(node.op), left, right)
        if isinstance(node, ast.UnaryOp):
            return self._unaryop(node, scope, func)
        if isinstance(node, ast.BoolOp):
            return self._boolop(node, scope, func)
        if isinstance(node, ast.Compare):
            return self._compare(node, scope, func)
        if isinstance(node, ast.Call):
            return self._call(node, scope, func)
        if isinstance(node, ast.Attribute):
            return self._attribute(node, scope, func)
        if isinstance(node, ast.Subscript):
            return self._subscript(node, scope, func)
        if isinstance(node, ast.IfExp):
            test = self._eval(node.test, scope, func)
            if isinstance(test, SymVal):
                value = test.concrete_value()
                if value is None or test.varying:
                    return _select(test,
                                   self._eval(node.body, scope, func),
                                   self._eval(node.orelse, scope, func))
                test = bool(np.asarray(value))
            return self._eval(node.body if test else node.orelse,
                              scope, func)
        if isinstance(node, ast.Slice):
            def opt(sub):
                if sub is None:
                    return None
                value = self._eval(sub, scope, func)
                return int(value) if isinstance(value, SymVal) else value
            return slice(opt(node.lower), opt(node.upper), opt(node.step))
        if isinstance(node, ast.ListComp):
            return self._listcomp(node, scope, func)
        if isinstance(node, ast.Index):   # pragma: no cover - py<3.9 AST
            return self._eval(node.value, scope, func)
        raise AnalysisLimit(f"unsupported expression "
                            f"{type(node).__name__}")

    def _lookup(self, name: str, scope: Scope, func: InterpFunc):
        frame: Optional[Scope] = scope
        while frame is not None:
            if name in frame.vars:
                return self._intercept(frame.vars[name])
            frame = frame.parent
        if name in func.globals:
            return self._intercept(func.globals[name])
        if name in self._builtins:
            return self._builtins[name]
        raise AnalysisLimit(f"unknown name {name!r}")

    _BINOPS = {
        ast.Add: lambda a, b: a + b,
        ast.Sub: lambda a, b: a - b,
        ast.Mult: lambda a, b: a * b,
        ast.Div: lambda a, b: a / b,
        ast.FloorDiv: lambda a, b: a // b,
        ast.Mod: lambda a, b: a % b,
        ast.Pow: lambda a, b: a ** b,
        ast.LShift: lambda a, b: a << b,
        ast.RShift: lambda a, b: a >> b,
        ast.BitAnd: lambda a, b: a & b,
        ast.BitOr: lambda a, b: a | b,
        ast.BitXor: lambda a, b: a ^ b,
    }

    def _binop(self, op_type, left, right):
        fn = self._BINOPS.get(op_type)
        if fn is None:
            raise AnalysisLimit(f"unsupported operator {op_type.__name__}")
        try:
            return fn(left, right)
        except AnalysisLimit:
            raise
        except Exception as exc:
            raise AnalysisLimit(f"operator failed: {exc}") from None

    def _unaryop(self, node: ast.UnaryOp, scope: Scope, func: InterpFunc):
        value = self._eval(node.operand, scope, func)
        if isinstance(node.op, ast.USub):
            return -value
        if isinstance(node.op, ast.UAdd):
            return +value
        if isinstance(node.op, ast.Invert):
            return ~value
        if isinstance(node.op, ast.Not):
            if isinstance(value, SymVal):
                cv = value.concrete_value()
                if cv is None:
                    return SymVal.opaque("bool", value.taints, value.varying)
                return SymVal(np.logical_not(cv), None, "bool",
                              value.taints, value.varying)
            return not value
        raise AnalysisLimit("unsupported unary operator")

    def _boolop(self, node: ast.BoolOp, scope: Scope, func: InterpFunc):
        is_and = isinstance(node.op, ast.And)
        result = None
        for sub in node.values:
            result = self._eval(sub, scope, func)
            truth = bool(result)    # may raise AnalysisLimit via SymVal
            if is_and and not truth:
                return result
            if not is_and and truth:
                return result
        return result

    _CMPOPS = {
        ast.Lt: lambda a, b: a < b,
        ast.LtE: lambda a, b: a <= b,
        ast.Gt: lambda a, b: a > b,
        ast.GtE: lambda a, b: a >= b,
        ast.Eq: lambda a, b: a == b,
        ast.NotEq: lambda a, b: a != b,
        ast.Is: lambda a, b: a is b,
        ast.IsNot: lambda a, b: a is not b,
        ast.In: lambda a, b: a in b,
        ast.NotIn: lambda a, b: a not in b,
    }

    def _compare(self, node: ast.Compare, scope: Scope, func: InterpFunc):
        left = self._eval(node.left, scope, func)
        result = None
        for op, comparator in zip(node.ops, node.comparators):
            right = self._eval(comparator, scope, func)
            fn = self._CMPOPS.get(type(op))
            if fn is None:
                raise AnalysisLimit(f"unsupported comparison "
                                    f"{type(op).__name__}")
            piece = fn(left, right)
            result = piece if result is None else (result & piece)
            left = right
        return result

    def _call(self, node: ast.Call, scope: Scope, func: InterpFunc):
        self.recorder.current_line = node.lineno + func.line_offset
        callee = self._eval(node.func, scope, func)
        args = []
        for a in node.args:
            if isinstance(a, ast.Starred):
                spread = self._eval(a.value, scope, func)
                if isinstance(spread, SymVal):
                    raise AnalysisLimit("star-unpacking a symbolic value")
                args.extend(spread)
            else:
                args.append(self._eval(a, scope, func))
        kwargs = {kw.arg: self._eval(kw.value, scope, func)
                  for kw in node.keywords if kw.arg is not None}
        if isinstance(callee, InterpFunc):
            return self._call_interp(callee, args, kwargs)
        if callable(callee):
            module = getattr(callee, "__module__", "") or ""
            if (module.startswith("repro.")
                    and not module.startswith("repro.analysis")
                    and inspect.isfunction(callee)):
                return self._call_native_function(callee, args, kwargs)
            try:
                return callee(*args, **kwargs)
            except AnalysisLimit:
                raise
            except (_Break, _Continue, _Return):
                raise
            except Exception as exc:
                raise AnalysisLimit(
                    f"call to {getattr(callee, '__name__', callee)!r} "
                    f"failed: {exc}") from None
        raise AnalysisLimit(f"call of non-callable "
                            f"{type(callee).__name__}")

    def _attribute(self, node: ast.Attribute, scope: Scope,
                   func: InterpFunc):
        obj = self._eval(node.value, scope, func)
        name = node.attr
        if isinstance(obj, SymVal):
            if name == "astype":
                return obj.astype
            raise AnalysisLimit(f"attribute {name!r} on a symbolic value")
        if isinstance(obj, LintArray):
            if name in ("name", "space", "size", "itemsize", "dtype"):
                value = getattr(obj, name)
                if name == "size" and value is None:
                    raise AnalysisLimit(
                        f"size of {obj.name!r} not declared in the lint "
                        f"target")
                return value
            raise AnalysisLimit(f"attribute {name!r} on array marker")
        try:
            return self._intercept(getattr(obj, name))
        except AttributeError:
            raise AnalysisLimit(
                f"no attribute {name!r} on {type(obj).__name__}") from None

    def _subscript(self, node: ast.Subscript, scope: Scope,
                   func: InterpFunc):
        obj = self._eval(node.value, scope, func)
        index = self._eval(node.slice, scope, func)
        if isinstance(obj, OpaqueData):
            return obj[index]
        if isinstance(obj, SymVal):
            raise AnalysisLimit("subscript on a symbolic value")
        if isinstance(index, SymVal):
            cv = index.concrete_value()
            if cv is None:
                raise AnalysisLimit("data-dependent subscript on a native "
                                    "container")
            if isinstance(obj, np.ndarray):
                return SymVal(obj[np.asarray(cv)], None,
                              "float" if obj.dtype.kind == "f" else "int",
                              index.taints, True)
            index = int(index)
        try:
            return obj[index]
        except Exception as exc:
            raise AnalysisLimit(f"subscript failed: {exc}") from None

    def _listcomp(self, node: ast.ListComp, scope: Scope,
                  func: InterpFunc):
        if len(node.generators) != 1:
            raise AnalysisLimit("nested comprehensions")
        gen = node.generators[0]
        iterable = self._eval(gen.iter, scope, func)
        if isinstance(iterable, SymVal):
            raise AnalysisLimit("comprehension over a symbolic value")
        out = []
        for item in iterable:
            self._assign(gen.target, item, scope, func)
            keep = True
            for cond in gen.ifs:
                keep = keep and bool(self._eval(cond, scope, func))
            if keep:
                out.append(self._eval(node.elt, scope, func))
        return out


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def _same_value(a, b) -> bool:
    if isinstance(a, SymVal) and isinstance(b, SymVal):
        return a.same_expr(b)
    if isinstance(a, SymVal) or isinstance(b, SymVal):
        return False
    try:
        return bool(np.all(np.asarray(a) == np.asarray(b)))
    except Exception:
        return a is b


def interpret(target: LintTarget, coord: Tuple[int, int, int],
              spec: DeviceSpec = DEFAULT_DEVICE,
              ) -> Tuple[Recorder, LintContext]:
    """Run one sample block; returns the event recorder and context."""
    interp = KernelInterp(target, coord, spec)
    recorder = interp.run()
    return recorder, interp.ctx
