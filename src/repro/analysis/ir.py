"""Kernel IR: a CFG lowering of DSL kernels with dominance and loops.

Rules R1–R7 work straight off the Python AST (re-executed by the
abstract interpreter), which is enough to *observe* hazards on sample
blocks but cannot *prove* control-flow properties — a branch's
uniformity, a barrier's reachability under divergence — before a
kernel runs.  This module supplies the missing substrate: it lowers a
kernel function into a small typed control-flow graph whose
instructions are classified through the same :data:`repro.cuda.context.CTX_OPS`
table the interpreter and the grid compiler dispatch over, then
computes the classic structures a divergence analysis needs —
dominator and post-dominator trees, natural loops, and the
*reconvergence point* of every branch (its immediate post-dominator,
where a diverged warp's lanes rejoin).

The IR is deliberately SSA-lite: statements keep their source names
(``dests``/``srcs``) rather than versioned values, because the
consumer (:mod:`repro.analysis.divergence`) runs a monotone forward
dataflow to fixpoint where name-level join is exactly as precise for
the three-point uniformity lattice.  ``ctx`` attribute reads and
query calls are surfaced as *seed tokens* (``"tid"``, ``"bx"``,
``"global_tid"``, ...) so the lattice seeding stays out of this
module.

Line numbers are absolute file lines (decorator-relative offsets are
resolved the same way :mod:`repro.analysis.interp` and
:mod:`repro.compile.lower` resolve theirs), so findings and compiler
queries key on the same coordinates.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..cuda.context import CTX_ATTRS, CTX_OPS

__all__ = ["IRInstr", "Branch", "BasicBlock", "Loop", "KernelIR",
           "lower_kernel", "kernel_source"]


# ----------------------------------------------------------------------
# IR node types
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class IRInstr:
    """One source statement, classified against the DSL vocabulary.

    ``ops`` lists the ``ctx.*`` methods the statement invokes (with
    their :data:`CTX_OPS` categories in ``categories``); ``seeds``
    lists the ``ctx`` identity attributes / query calls it reads
    (``"tid"``, ``"bx"``, ``"global_tid"``, ...) so a dataflow client
    can seed lattice values without re-parsing.
    """

    line: int
    dests: Tuple[str, ...]
    srcs: Tuple[str, ...]
    seeds: Tuple[str, ...]
    ops: Tuple[str, ...]
    categories: Tuple[str, ...]

    @property
    def is_sync(self) -> bool:
        return "sync" in self.categories

    @property
    def is_load(self) -> bool:
        return any(c in ("global_ld", "shared_ld", "const_ld", "tex_ld")
                   for c in self.categories)


@dataclass(frozen=True)
class Branch:
    """A conditional terminator: the block forks on ``cond``.

    ``kind`` is ``"masked"`` (a ``with ctx.masked(...)`` region),
    ``"if"``, ``"loop"`` (``for``) or ``"while"``.
    """

    kind: str
    line: int
    srcs: Tuple[str, ...]
    seeds: Tuple[str, ...]


@dataclass
class BasicBlock:
    """Straight-line statements plus an optional branching terminator."""

    index: int
    instrs: List[IRInstr] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    branch: Optional[Branch] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tail = f" branch={self.branch.kind}@{self.branch.line}" \
            if self.branch else ""
        return (f"B{self.index}(instrs={len(self.instrs)}, "
                f"succs={self.succs}{tail})")


@dataclass(frozen=True)
class Loop:
    """A natural loop: ``header`` plus the body block set."""

    header: int
    body: FrozenSet[int]
    line: int


# ----------------------------------------------------------------------
# Source acquisition (shared convention with analysis.interp)
# ----------------------------------------------------------------------

def kernel_source(fn: Callable) -> Tuple[ast.FunctionDef, int]:
    """``(FunctionDef, line_offset)`` for a kernel function; absolute
    file line of a node is ``line_offset + node.lineno``."""
    fn = getattr(fn, "fn", fn)          # unwrap a Kernel wrapper
    lines, start = inspect.getsourcelines(fn)
    tree = ast.parse(textwrap.dedent("".join(lines)))
    fdef = tree.body[0]
    if not isinstance(fdef, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise ValueError(f"not a function definition: {fn!r}")
    return fdef, start - 1


# ----------------------------------------------------------------------
# Statement classification
# ----------------------------------------------------------------------

def _is_ctx_call(node: ast.AST, ctx_name: str) -> Optional[str]:
    """The ``ctx`` method name when ``node`` is ``ctx.meth(...)``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and isinstance(node.func.value, ast.Name) \
            and node.func.value.id == ctx_name:
        return node.func.attr
    return None


def _scan_expr(node: ast.AST, ctx_name: str,
               srcs: Set[str], seeds: Set[str],
               ops: List[str], cats: List[str]) -> None:
    """Collect names, ctx seed tokens and ctx ops from an expression."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load) \
                and sub.id != ctx_name:
            srcs.add(sub.id)
        elif isinstance(sub, ast.Attribute) \
                and isinstance(sub.value, ast.Name) \
                and sub.value.id == ctx_name:
            meth = sub.attr
            op = CTX_OPS.get(meth)
            if op is not None:
                ops.append(meth)
                cats.append(op.category)
                if op.category in ("query", "identity"):
                    seeds.add(meth)   # global_tid & friends vary
            elif meth in CTX_ATTRS:
                seeds.add(meth)


def _classify_stmt(stmt: ast.stmt, ctx_name: str, offset: int) -> IRInstr:
    dests: Set[str] = set()
    srcs: Set[str] = set()
    seeds: Set[str] = set()
    ops: List[str] = []
    cats: List[str] = []
    value: Optional[ast.AST] = None
    if isinstance(stmt, ast.Assign):
        value = stmt.value
        for tgt in stmt.targets:
            for sub in ast.walk(tgt):
                if isinstance(sub, ast.Name):
                    dests.add(sub.id)
    elif isinstance(stmt, ast.AugAssign):
        value = stmt.value
        if isinstance(stmt.target, ast.Name):
            dests.add(stmt.target.id)
            srcs.add(stmt.target.id)      # x += v reads x
    elif isinstance(stmt, ast.AnnAssign):
        value = stmt.value
        if isinstance(stmt.target, ast.Name):
            dests.add(stmt.target.id)
    elif isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Return):
        value = stmt.value
    if value is not None:
        _scan_expr(value, ctx_name, srcs, seeds, ops, cats)
    # subscripted / attribute assignment targets also read names
    if isinstance(stmt, ast.Assign):
        for tgt in stmt.targets:
            if not isinstance(tgt, ast.Name):
                _scan_expr(tgt, ctx_name, srcs, seeds, ops, cats)
    return IRInstr(offset + stmt.lineno, tuple(sorted(dests)),
                   tuple(sorted(srcs)), tuple(sorted(seeds)),
                   tuple(ops), tuple(cats))


def _cond_info(node: ast.AST, ctx_name: str
               ) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    srcs: Set[str] = set()
    seeds: Set[str] = set()
    ops: List[str] = []
    cats: List[str] = []
    _scan_expr(node, ctx_name, srcs, seeds, ops, cats)
    return tuple(sorted(srcs)), tuple(sorted(seeds))


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------

class _CFGBuilder:
    def __init__(self, ctx_name: str, offset: int) -> None:
        self.ctx_name = ctx_name
        self.offset = offset
        self.blocks: List[BasicBlock] = [BasicBlock(0)]
        self.cur: Optional[int] = 0      # None after return/break/continue
        #: (header_index, exit_index) per enclosing loop
        self.loop_stack: List[Tuple[int, int]] = []
        self.exit_index: Optional[int] = None

    # -- plumbing -------------------------------------------------------
    def new_block(self) -> int:
        b = BasicBlock(len(self.blocks))
        self.blocks.append(b)
        return b.index

    def edge(self, a: int, b: int) -> None:
        if b not in self.blocks[a].succs:
            self.blocks[a].succs.append(b)
            self.blocks[b].preds.append(a)

    def _start(self, idx: int) -> None:
        self.cur = idx

    # -- statement walk -------------------------------------------------
    def build(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if self.cur is None:          # unreachable after a jump
                break
            self.stmt(stmt)

    def stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._branch_join("if", stmt.test, stmt.lineno,
                              stmt.body, stmt.orelse)
        elif isinstance(stmt, ast.With) and self._masked_cond(stmt) is not None:
            cond = self._masked_cond(stmt)
            self._branch_join("masked", cond,
                              stmt.lineno, stmt.body, [])
        elif isinstance(stmt, (ast.For, ast.While)):
            self._loop(stmt)
        elif isinstance(stmt, ast.Return):
            self.blocks[self.cur].instrs.append(
                _classify_stmt(stmt, self.ctx_name, self.offset))
            self.edge(self.cur, self._exit())
            self.cur = None
        elif isinstance(stmt, ast.Break):
            if self.loop_stack:
                self.edge(self.cur, self.loop_stack[-1][1])
            self.cur = None
        elif isinstance(stmt, ast.Continue):
            if self.loop_stack:
                self.edge(self.cur, self.loop_stack[-1][0])
            self.cur = None
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef, ast.Import, ast.ImportFrom,
                               ast.Pass, ast.Global, ast.Nonlocal)):
            pass                          # no dataflow contribution
        elif isinstance(stmt, ast.With):  # non-masked context manager
            self.build(stmt.body)
        elif isinstance(stmt, (ast.Try,)):
            self.build(stmt.body)         # conservative: straight-line
            for h in stmt.handlers:
                self.build(h.body)
            self.build(stmt.finalbody)
        else:
            self.blocks[self.cur].instrs.append(
                _classify_stmt(stmt, self.ctx_name, self.offset))

    def _masked_cond(self, stmt: ast.With) -> Optional[ast.AST]:
        if len(stmt.items) != 1:
            return None
        call = stmt.items[0].context_expr
        if _is_ctx_call(call, self.ctx_name) == "masked" and call.args:
            return call.args[0]
        return None

    def _branch_join(self, kind: str, cond: ast.AST, lineno: int,
                     body: Sequence[ast.stmt],
                     orelse: Sequence[ast.stmt]) -> None:
        srcs, seeds = _cond_info(cond, self.ctx_name)
        branch_blk = self.cur
        self.blocks[branch_blk].branch = Branch(
            kind, self.offset + lineno, srcs, seeds)
        join = self.new_block()

        then_entry = self.new_block()
        self.edge(branch_blk, then_entry)
        self._start(then_entry)
        self.build(body)
        if self.cur is not None:
            self.edge(self.cur, join)

        if orelse:
            else_entry = self.new_block()
            self.edge(branch_blk, else_entry)
            self._start(else_entry)
            self.build(orelse)
            if self.cur is not None:
                self.edge(self.cur, join)
        else:
            self.edge(branch_blk, join)   # fall-through / masked-off path

        self._start(join)

    def _loop(self, stmt) -> None:
        header = self.new_block()
        self.edge(self.cur, header)
        if isinstance(stmt, ast.For):
            kind = "loop"
            srcs, seeds = _cond_info(stmt.iter, self.ctx_name)
            dests = tuple(sorted(
                sub.id for sub in ast.walk(stmt.target)
                if isinstance(sub, ast.Name)))
            self.blocks[header].instrs.append(IRInstr(
                self.offset + stmt.lineno, dests, srcs, seeds, (), ()))
        else:
            kind = "while"
            srcs, seeds = _cond_info(stmt.test, self.ctx_name)
        self.blocks[header].branch = Branch(
            kind, self.offset + stmt.lineno, srcs, seeds)

        exit_blk = self.new_block()
        body_entry = self.new_block()
        self.edge(header, body_entry)
        self.edge(header, exit_blk)

        self.loop_stack.append((header, exit_blk))
        self._start(body_entry)
        self.build(stmt.body)
        if self.cur is not None:
            self.edge(self.cur, header)   # back edge
        self.loop_stack.pop()

        if stmt.orelse:                   # for/while ... else
            else_entry = self.new_block()
            # else runs on normal exit; fold it into the exit path
            self.edge(header, else_entry)
            self._start(else_entry)
            self.build(stmt.orelse)
            if self.cur is not None:
                self.edge(self.cur, exit_blk)
        self._start(exit_blk)

    def _exit(self) -> int:
        if self.exit_index is None:
            self.exit_index = self.new_block()
        return self.exit_index


# ----------------------------------------------------------------------
# Dominance
# ----------------------------------------------------------------------

def _dom_sets(nodes: Sequence[int], entry: int,
              preds_of: Dict[int, List[int]]) -> Dict[int, Set[int]]:
    """Iterative dominator sets over ``nodes`` (all reachable)."""
    universe = set(nodes)
    doms: Dict[int, Set[int]] = {n: set(universe) for n in nodes}
    doms[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for n in nodes:
            if n == entry:
                continue
            preds = [p for p in preds_of[n] if p in universe]
            new = set(universe)
            for p in preds:
                new &= doms[p]
            new.add(n)
            if not preds:
                new = {n}
            if new != doms[n]:
                doms[n] = new
                changed = True
    return doms


def _idoms(doms: Dict[int, Set[int]], entry: int) -> Dict[int, int]:
    """Immediate dominators from dominator sets."""
    idom: Dict[int, int] = {}
    for n, ds in doms.items():
        if n == entry:
            continue
        strict = ds - {n}
        # the immediate dominator is the strict dominator dominated by
        # all the others, i.e. the one with the largest dominator set
        if strict:
            idom[n] = max(strict, key=lambda d: len(doms[d]))
    return idom


# ----------------------------------------------------------------------
# The lowered kernel
# ----------------------------------------------------------------------

class KernelIR:
    """CFG + dominance + loop structure of one kernel function."""

    def __init__(self, name: str, blocks: List[BasicBlock],
                 entry: int, exit_index: int, line_offset: int,
                 params: Tuple[str, ...], ctx_name: str) -> None:
        self.name = name
        self.blocks = blocks
        self.entry = entry
        self.exit_index = exit_index
        self.line_offset = line_offset
        self.params = params
        self.ctx_name = ctx_name

        self.reachable = self._reachable_from(entry, lambda b: b.succs)
        nodes = sorted(self.reachable)
        preds = {b.index: b.preds for b in blocks}
        succs = {b.index: b.succs for b in blocks}
        self.dominators = _dom_sets(nodes, entry, preds)
        self.idom = _idoms(self.dominators, entry)
        # post-dominance runs on the reversed CFG from the exit block
        back_reachable = self._reachable_from(exit_index,
                                              lambda b: b.preds)
        pnodes = sorted(self.reachable & back_reachable)
        self.post_dominators = _dom_sets(
            pnodes, exit_index,
            {n: [s for s in succs[n] if s in back_reachable]
             for n in pnodes})
        self.ipdom = _idoms(self.post_dominators, exit_index)
        self.rpo = self._rpo()
        self.loops = self._find_loops()

    # -- graph helpers --------------------------------------------------
    def _reachable_from(self, start: int, nbrs) -> Set[int]:
        seen = {start}
        work = [start]
        while work:
            n = work.pop()
            for s in nbrs(self.blocks[n]):
                if s not in seen:
                    seen.add(s)
                    work.append(s)
        return seen

    def _rpo(self) -> List[int]:
        order: List[int] = []
        seen: Set[int] = set()

        def visit(n: int) -> None:
            stack = [(n, iter(self.blocks[n].succs))]
            seen.add(n)
            while stack:
                node, it = stack[-1]
                advanced = False
                for s in it:
                    if s in seen:
                        continue
                    seen.add(s)
                    stack.append((s, iter(self.blocks[s].succs)))
                    advanced = True
                    break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        return list(reversed(order))

    def _find_loops(self) -> List[Loop]:
        loops: List[Loop] = []
        for b in self.blocks:
            if b.index not in self.reachable:
                continue
            for s in b.succs:
                if s in self.dominators.get(b.index, ()):   # back edge
                    body = {s}
                    work = [b.index]
                    while work:
                        n = work.pop()
                        if n in body or n not in self.reachable:
                            continue
                        body.add(n)
                        work.extend(self.blocks[n].preds)
                    # restrict to nodes dominated by the header
                    body = {n for n in body
                            if s in self.dominators.get(n, ())}
                    line = self.blocks[s].branch.line \
                        if self.blocks[s].branch else \
                        (self.blocks[s].instrs[0].line
                         if self.blocks[s].instrs else 0)
                    loops.append(Loop(s, frozenset(body), line))
        return loops

    # -- queries --------------------------------------------------------
    def dominates(self, a: int, b: int) -> bool:
        return a in self.dominators.get(b, set())

    def reconvergence(self, branch_block: int) -> Optional[int]:
        """Where a divergent warp's lanes rejoin: the immediate
        post-dominator of the branch block."""
        return self.ipdom.get(branch_block)

    def influence_region(self, branch_block: int) -> Set[int]:
        """Blocks control-dependent on the branch: reachable from a
        successor without passing the reconvergence point."""
        stop = self.reconvergence(branch_block)
        region: Set[int] = set()
        work = [s for s in self.blocks[branch_block].succs if s != stop]
        while work:
            n = work.pop()
            if n in region or n == stop:
                continue
            region.add(n)
            for s in self.blocks[n].succs:
                if s != stop and s not in region:
                    work.append(s)
        region.discard(branch_block)
        if stop is not None:
            region.discard(stop)
        return region

    def branch_blocks(self) -> List[BasicBlock]:
        return [b for b in self.blocks
                if b.branch is not None and b.index in self.reachable]

    def sync_sites(self) -> List[Tuple[int, int]]:
        """``(block_index, line)`` of every ``ctx.sync()`` statement."""
        sites = []
        for b in self.blocks:
            if b.index not in self.reachable:
                continue
            for instr in b.instrs:
                if instr.is_sync:
                    sites.append((b.index, instr.line))
        return sites

    def in_loop(self, block: int) -> bool:
        return any(block in lp.body for lp in self.loops)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"KernelIR({self.name!r}, {len(self.blocks)} blocks, "
                f"{len(self.loops)} loops)")


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

_IR_CACHE: Dict[int, KernelIR] = {}


def lower_kernel(fn: Callable) -> KernelIR:
    """Lower a kernel function (or :class:`~repro.cuda.launch.Kernel`)
    into its :class:`KernelIR`; memoized per function object."""
    raw = getattr(fn, "fn", fn)
    cached = _IR_CACHE.get(id(raw))
    if cached is not None:
        return cached
    fdef, offset = kernel_source(raw)
    args = fdef.args
    params = tuple(a.arg for a in args.args)
    ctx_name = params[0] if params else "ctx"
    builder = _CFGBuilder(ctx_name, offset)
    builder.build(fdef.body)
    exit_index = builder._exit()
    if builder.cur is not None:
        builder.edge(builder.cur, exit_index)
    ir = KernelIR(getattr(fn, "name", fdef.name), builder.blocks,
                  0, exit_index, offset, params, ctx_name)
    if len(_IR_CACHE) > 256:
        _IR_CACHE.clear()
    _IR_CACHE[id(raw)] = ir
    return ir
