"""Paper-reported values used for comparison in the benchmark harness.

Provenance levels (the OCR of the paper drops the numeric cells of
Tables 2/3 and the Figure 4 bar heights; see DESIGN.md):

* ``PROSE`` — the number appears verbatim in the paper's prose and is
  exact;
* ``RECONSTRUCTED`` — the number is reconstructed from the surviving
  prose constraints and the publicly known companion material
  (marked ``(r)`` in reports); treat as approximate;
* ``BOUND`` — only a bound survives (e.g. ">99%", "10.5X-457X").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

PROSE = "prose"
RECONSTRUCTED = "reconstructed"
BOUND = "bound"


@dataclass(frozen=True)
class PaperValue:
    value: float
    provenance: str = RECONSTRUCTED

    def __float__(self) -> float:
        return self.value

    @property
    def mark(self) -> str:
        return "" if self.provenance == PROSE else " (r)"


# ----------------------------------------------------------------------
# Section 4: matrix multiplication at 4096x4096 (all prose-exact)
# ----------------------------------------------------------------------
MATMUL_GFLOPS: Dict[str, PaperValue] = {
    "naive": PaperValue(10.58, PROSE),
    "tiled": PaperValue(46.49, PROSE),
    "tiled_unrolled": PaperValue(91.14, PROSE),
    "prefetch": PaperValue(87.10, PROSE),
}
MATMUL_POTENTIAL_GFLOPS: Dict[str, PaperValue] = {
    "naive": PaperValue(43.2, PROSE),
    "tiled_unrolled": PaperValue(93.72, PROSE),
}
MATMUL_BW_DEMAND_GBS = PaperValue(173.0, PROSE)
TILED_SPEEDUP_OVER_NAIVE = PaperValue(4.5, PROSE)

#: Figure 4 bar heights (GFLOPS).  Only the 16x16 bars and the
#: qualitative ordering survive; the small-tile bars are reconstructed
#: from the prose ("4x4 ... performance to be worse than the non-tiled
#: code", "the performance of other tile sizes is only marginally
#: improved by unrolling").
FIGURE4_GFLOPS: Dict[str, PaperValue] = {
    "not tiled": PaperValue(10.58, PROSE),
    "4x4": PaperValue(9.0),
    "4x4 unrolled": PaperValue(10.0),
    "8x8": PaperValue(23.0),
    "8x8 unrolled": PaperValue(26.0),
    "12x12": PaperValue(32.0),
    "12x12 unrolled": PaperValue(36.0),
    "16x16": PaperValue(46.49, PROSE),
    "16x16 unrolled": PaperValue(91.14, PROSE),
}

# ----------------------------------------------------------------------
# Table 2: application suite (source/kernel lines reconstructed from the
# companion tech report; kernel-time fractions partly prose)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    app: str
    source_lines: int
    kernel_lines: int
    kernel_fraction: float          # of single-thread execution time
    fraction_provenance: str = RECONSTRUCTED


TABLE2: Dict[str, Table2Row] = {
    "h264": Table2Row("h264", 34811, 194, 0.35, PROSE),
    "lbm": Table2Row("lbm", 1481, 285, 0.996, BOUND),      # >99%
    "rc5-72": Table2Row("rc5-72", 1979, 218, 0.996, BOUND),
    "fem": Table2Row("fem", 1874, 146, 0.99, RECONSTRUCTED),
    "rpes": Table2Row("rpes", 1104, 281, 0.99, RECONSTRUCTED),
    "pns": Table2Row("pns", 322, 160, 0.996, BOUND),
    "saxpy": Table2Row("saxpy", 952, 31, 0.996, BOUND),
    "tpacf": Table2Row("tpacf", 536, 98, 0.96, RECONSTRUCTED),
    "fdtd": Table2Row("fdtd", 1365, 93, 0.164, PROSE),
    "mri-q": Table2Row("mri-q", 490, 33, 0.996, BOUND),
    "mri-fhd": Table2Row("mri-fhd", 343, 39, 0.99, RECONSTRUCTED),
    "cp": Table2Row("cp", 409, 47, 0.996, BOUND),
}

# ----------------------------------------------------------------------
# Table 3: speedups.  The suite-wide ranges are prose ("between a 10.5X
# to 457X speedup in kernel codes and between 1.16X to 431X total
# application speedup"); MRI-Q anchors the maxima and FDTD the minima.
# Per-app values other than those are reconstructed.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table3Row:
    app: str
    kernel_speedup: PaperValue
    app_speedup: PaperValue
    bottleneck: str


TABLE3: Dict[str, Table3Row] = {
    "h264": Table3Row("h264", PaperValue(20.2), PaperValue(1.47),
                      "transfer-bound offload; instruction issue"),
    "lbm": Table3Row("lbm", PaperValue(12.5), PaperValue(12.3),
                     "shared memory capacity"),
    "rc5-72": Table3Row("rc5-72", PaperValue(17.1), PaperValue(11.0),
                        "instruction issue (emulated rotates)"),
    "fem": Table3Row("fem", PaperValue(11.0), PaperValue(10.1),
                     "global memory bandwidth"),
    "rpes": Table3Row("rpes", PaperValue(210.0), PaperValue(79.4),
                      "instruction issue"),
    "pns": Table3Row("pns", PaperValue(24.0), PaperValue(23.7),
                     "global memory capacity"),
    "saxpy": Table3Row("saxpy", PaperValue(19.4), PaperValue(11.8),
                       "global memory bandwidth"),
    "tpacf": Table3Row("tpacf", PaperValue(60.2), PaperValue(21.6),
                       "shared memory capacity"),
    "fdtd": Table3Row("fdtd", PaperValue(10.5, PROSE),
                      PaperValue(1.16, PROSE),
                      "global memory bandwidth"),
    "mri-q": Table3Row("mri-q", PaperValue(457.0, PROSE),
                       PaperValue(431.0, PROSE), "instruction issue"),
    "mri-fhd": Table3Row("mri-fhd", PaperValue(316.0), PaperValue(263.0),
                         "instruction issue"),
    "cp": Table3Row("cp", PaperValue(102.0), PaperValue(102.0),
                    "instruction issue"),
}

#: Abstract-level suite ranges (prose-exact).
KERNEL_SPEEDUP_RANGE = (10.5, 457.0)
APP_SPEEDUP_RANGE = (1.16, 431.0)

# ----------------------------------------------------------------------
# Section 5 prose anchors
# ----------------------------------------------------------------------
LBM_TEXTURE_SPEEDUP = PaperValue(2.8, PROSE)      # texture vs global-only
MRI_SFU_SPEEDUP_SHARE = PaperValue(0.30, PROSE)   # ~30% of MRI speedup
MRI_CPU_OPT_FACTOR = PaperValue(4.3, PROSE)       # CPU baseline tuning
FDTD_APP_SPEEDUP_CAP = PaperValue(1.2, PROSE)     # Amdahl bound
