"""Transcribed/reconstructed values from the paper (see paper.py)."""
from . import paper

__all__ = ["paper"]
