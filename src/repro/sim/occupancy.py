"""Occupancy: how many blocks and warps fit on an SM.

Section 3.2 of the paper: *"The number of thread blocks that are
simultaneously resident on an SM is limited by whichever limit of
registers, shared memory, threads, or thread blocks is reached first."*

This module computes that limit and names the binding resource, which
is exactly the information the paper's running example uses:

* 256-thread matmul blocks at 10 registers/thread -> 3 blocks/SM
  (768 threads, the maximum);
* the same blocks at 11 registers/thread would need
  3 x 256 x 11 = 8448 > 8192 registers -> only 2 blocks/SM
  (the Section 4.2 anecdote);
* 4x4 tiles (16 threads/block) hit the 8-block limit at 128
  threads/SM — one sixth of capacity (Section 4.2's tile-size study).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from ..arch.device import DeviceSpec, DEFAULT_DEVICE

if TYPE_CHECKING:  # pragma: no cover
    from ..cuda.launch import LaunchResult


@dataclass(frozen=True)
class Occupancy:
    """Resident-thread accounting for one kernel configuration."""

    threads_per_block: int
    regs_per_thread: int
    smem_per_block: int
    blocks_per_sm: int
    limiter: str                     # "registers" | "shared" | "threads" | "warps" | "blocks" | "launch"
    spec: DeviceSpec = DEFAULT_DEVICE

    @property
    def warps_per_block(self) -> int:
        return -(-self.threads_per_block // self.spec.warp_size)

    @property
    def active_threads_per_sm(self) -> int:
        return self.blocks_per_sm * self.threads_per_block

    @property
    def active_warps_per_sm(self) -> int:
        return self.blocks_per_sm * self.warps_per_block

    @property
    def occupancy(self) -> float:
        """Fraction of the SM's thread contexts in use."""
        return self.active_threads_per_sm / self.spec.max_threads_per_sm

    @property
    def max_simultaneous_threads(self) -> int:
        """Device-wide simultaneously active threads (Table 3 column)."""
        return self.active_threads_per_sm * self.spec.num_sms

    def describe(self) -> Dict[str, object]:
        return {
            "threads/block": self.threads_per_block,
            "regs/thread": self.regs_per_thread,
            "shared/block (B)": self.smem_per_block,
            "blocks/SM": self.blocks_per_sm,
            "warps/SM": self.active_warps_per_sm,
            "threads/SM": self.active_threads_per_sm,
            "occupancy": round(self.occupancy, 4),
            "limited by": self.limiter,
        }


def compute_occupancy(
    threads_per_block: int,
    regs_per_thread: int,
    smem_per_block: int = 0,
    spec: DeviceSpec = DEFAULT_DEVICE,
) -> Occupancy:
    """Blocks per SM under the device's limit table, with the binding
    limit named.

    The classic CUDA 1.x table has four entries (blocks, threads,
    registers, shared memory); later devices add a resident-warp
    ceiling and warp-granular register allocation.  The table itself
    travels with the spec — see
    :meth:`repro.arch.device.DeviceSpec.occupancy_limit_table` — so
    this function contains no per-generation arithmetic.
    """
    if threads_per_block < 1:
        raise ValueError("threads_per_block must be positive")
    if threads_per_block > spec.max_threads_per_block:
        return Occupancy(threads_per_block, regs_per_thread, smem_per_block,
                         0, "launch", spec)

    limits = spec.occupancy_limit_table(threads_per_block, regs_per_thread,
                                        smem_per_block)
    blocks = min(limits.values())
    if blocks <= 0:
        # A single block exceeds an SM's resources: the launch fails.
        return Occupancy(threads_per_block, regs_per_thread, smem_per_block,
                         0, "launch", spec)
    # Name the binding limit.  Ties go to the thread-context limit
    # first — the paper narrates a full SM as "the maximum of 768
    # threads" even when the register file is exactly exhausted too —
    # and then to shared memory (its LBM discussion attributes a
    # register/shared tie to shared-memory capacity).
    limiter = "blocks"
    for name in ("threads", "warps", "shared", "registers", "blocks"):
        if limits.get(name) == blocks:
            limiter = name
            break
    return Occupancy(threads_per_block, regs_per_thread, smem_per_block,
                     blocks, limiter, spec)


def occupancy_for_launch(result: "LaunchResult") -> Occupancy:
    """Occupancy of an executed launch (resource data from the kernel
    metadata and the measured shared-memory footprint)."""
    return compute_occupancy(
        threads_per_block=result.threads_per_block,
        regs_per_thread=result.kernel.regs_per_thread,
        smem_per_block=result.smem_bytes_per_block,
        spec=result.spec,
    )
