"""Analytical kernel timing model.

The model turns a scaled :class:`~repro.trace.trace.KernelTrace` plus
the launch's :class:`~repro.sim.occupancy.Occupancy` into an execution
time, exposing the four bottlenecks the paper's Table 3 names:

``instruction issue``
    SP issue slots: every warp instruction occupies
    ``issue_cycles_per_warp_inst`` (4) cycles of its SM's issue unit;
    shared-memory bank conflicts and barrier overhead add cycles, and
    each serialized transaction of an uncoalesced access *replays*
    through the load/store unit, also consuming issue cycles (the
    CUDA 1.x "16 separate transactions" behaviour).

``SFU throughput``
    Transcendentals occupy the 2-SFU pipe for 16 cycles per warp
    instruction; the pipe runs in parallel with the SP pipe, so it only
    binds when trigonometry dominates (the MRI applications).

``memory bandwidth``
    Bus bytes (after coalescing / read-combining) over the calibrated
    effective DRAM bandwidth.

``memory latency``
    A warp stalls ``global_latency_cycles`` per global access unless
    other resident warps cover the wait.  Coverage follows the paper's
    occupancy reasoning: warps of *other* blocks always help; warps of
    the same block only help when the kernel is not barrier-phased
    (after a tile-load ``__syncthreads`` the whole block waits
    together).  This is the term that punishes low-occupancy
    configurations (4x4 tiles, register-pressure cliffs).

The kernel time is the max of the four, plus launch overhead —
a bound-and-bottleneck model in the spirit of the paper's own analysis
rather than a cycle-accurate simulation (see DESIGN.md for the
cross-check against the event-driven warp simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..arch.device import DeviceSpec, DEFAULT_DEVICE
from ..obs.registry import get_registry
from ..trace.trace import KernelTrace
from .occupancy import Occupancy, compute_occupancy

if TYPE_CHECKING:  # pragma: no cover
    from ..cuda.launch import LaunchResult


class LaunchConfigError(RuntimeError):
    """The kernel cannot be scheduled (occupancy of zero blocks/SM)."""


@dataclass(frozen=True)
class KernelTimeEstimate:
    """Execution-time estimate with its per-bottleneck components."""

    seconds: float
    issue_seconds: float
    sfu_seconds: float
    bandwidth_seconds: float
    latency_seconds: float
    launch_overhead_seconds: float
    bound: str                      # name of the binding bottleneck
    occupancy: Occupancy
    flops: float

    @property
    def gflops(self) -> float:
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0

    def components(self) -> Dict[str, float]:
        return {
            "instruction issue": self.issue_seconds,
            "SFU throughput": self.sfu_seconds,
            "memory bandwidth": self.bandwidth_seconds,
            "memory latency": self.latency_seconds,
        }

    def cycles_components(self) -> Dict[str, float]:
        """Per-bottleneck estimates in SP clock cycles — the unit the
        paper's Table 3 reasoning works in."""
        clock = self.occupancy.spec.sp_clock_ghz * 1e9
        return {name: seconds * clock
                for name, seconds in self.components().items()}

    def stall_breakdown(self) -> Dict[str, float]:
        """Normalized share of each bottleneck in the cycle estimates
        — the analytical counterpart of nvprof's warp-issue stall
        reasons (fractions sum to 1 when any component is nonzero)."""
        cycles = self.cycles_components()
        total = sum(cycles.values())
        if total <= 0:
            return {name: 0.0 for name in cycles}
        return {name: c / total for name, c in cycles.items()}

    def attribution(self) -> Dict[str, object]:
        """Structured bottleneck-attribution record for the profiler:
        the binding bottleneck plus every component in seconds and
        cycles."""
        return {
            "bound": self.bound,
            "seconds": self.components(),
            "cycles": self.cycles_components(),
            "launch_overhead_seconds": self.launch_overhead_seconds,
            "gflops": self.gflops,
        }


def estimate_time(
    trace: KernelTrace,
    num_blocks: int,
    threads_per_block: int,
    regs_per_thread: int,
    smem_per_block: int = 0,
    spec: DeviceSpec = DEFAULT_DEVICE,
    occupancy: Optional[Occupancy] = None,
) -> KernelTimeEstimate:
    """Estimate execution time of a traced launch (see module docs)."""
    t = spec.timing
    occ = occupancy or compute_occupancy(
        threads_per_block, regs_per_thread, smem_per_block, spec)
    if occ.blocks_per_sm == 0:
        raise LaunchConfigError(
            f"kernel cannot launch: {threads_per_block} threads/block, "
            f"{regs_per_thread} regs/thread, {smem_per_block} B shared "
            f"exceed per-SM resources")

    clock = spec.sp_clock_ghz * 1e9
    n_sms_used = min(spec.num_sms, max(1, num_blocks))

    # Per-SM issue units are serial, so an SM's time is proportional to
    # the number of blocks it is assigned.  The critical SM gets
    # ceil(blocks / SMs) of them — this also captures tail-wave
    # quantization (49 blocks take 4/3 the time of 48 on 16 SMs).
    critical_share = -(-num_blocks // n_sms_used) / num_blocks

    # --- instruction issue ------------------------------------------------
    issue_cycles = trace.total_warp_insts * t.issue_cycles_per_warp_inst
    issue_cycles += trace.shared_conflict_cycles
    issue_cycles += trace.syncs * t.sync_cycles
    replay_cycles = (trace.uncoalesced_transactions
                     * t.uncoalesced_replay_cycles)
    replay_seconds = replay_cycles * critical_share / clock
    issue_seconds = issue_cycles * critical_share / clock + replay_seconds

    # --- SFU pipe -----------------------------------------------------------
    sfu_cycles = trace.sfu_warp_insts * t.sfu_cycles_per_warp_inst
    sfu_seconds = sfu_cycles * critical_share / clock

    # --- DRAM bandwidth -----------------------------------------------------
    effective_bw = spec.dram_bandwidth_gbs * 1e9 * t.dram_efficiency
    bandwidth_seconds = trace.global_bus_bytes / effective_bw

    # --- latency exposure -----------------------------------------------------
    latency_seconds = issue_seconds
    mem_insts = trace.global_memory_warp_insts
    total_warps = trace.threads_traced / spec.warp_size if trace.threads_traced \
        else num_blocks * (-(-threads_per_block // spec.warp_size))
    total_warps = max(total_warps, 1.0)
    if mem_insts > 0:
        mem_per_warp = mem_insts / total_warps
        # issue cycles a covering warp contributes between two of its
        # own global accesses (its whole instruction stream counts)
        cycles_per_warp = (trace.total_warp_insts
                           * t.issue_cycles_per_warp_inst / total_warps)
        interval = cycles_per_warp / mem_per_warp if mem_per_warp else 0.0
        barrier_phased = trace.syncs > 0
        if barrier_phased:
            covering_warps = (occ.blocks_per_sm - 1) * occ.warps_per_block
        else:
            covering_warps = occ.active_warps_per_sm - 1
        exposed = max(0.0, t.global_latency_cycles
                      - covering_warps * interval)
        if exposed > 0:
            active = max(occ.active_warps_per_sm, 1)
            stall_cycles = mem_insts / active * exposed
            latency_seconds = issue_seconds + (
                stall_cycles * critical_share / clock)

    components = {
        "instruction issue": issue_seconds,
        "SFU throughput": sfu_seconds,
        "memory bandwidth": bandwidth_seconds,
        "memory latency": latency_seconds,
    }
    bound = max(components, key=components.get)
    seconds = components[bound] + t.kernel_launch_overhead_s
    # When load/store replays of uncoalesced accesses dominate the
    # issue term, the real culprit is the memory system — report it the
    # way the paper's Table 3 does.
    if bound in ("instruction issue", "memory latency") \
            and replay_seconds > 0.5 * issue_seconds:
        bound = "memory bandwidth"

    registry = get_registry()
    if registry.enabled:
        registry.counter("timing.bound", bound=bound).inc()
        registry.histogram("timing.model_seconds", bound=bound) \
            .observe(seconds)

    return KernelTimeEstimate(
        seconds=seconds,
        issue_seconds=issue_seconds,
        sfu_seconds=sfu_seconds,
        bandwidth_seconds=bandwidth_seconds,
        latency_seconds=latency_seconds,
        launch_overhead_seconds=t.kernel_launch_overhead_s,
        bound=bound,
        occupancy=occ,
        flops=trace.flops,
    )


def estimate_kernel_time(result: "LaunchResult") -> KernelTimeEstimate:
    """Timing estimate for an executed :class:`LaunchResult`."""
    return estimate_time(
        trace=result.trace,
        num_blocks=result.num_blocks,
        threads_per_block=result.threads_per_block,
        regs_per_thread=result.kernel.regs_per_thread,
        smem_per_block=result.smem_bytes_per_block,
        spec=result.spec,
    )
