"""Single-core CPU cost model (the paper's Opteron 248 baseline).

The paper measures speedups against "an Opteron 248 system running at
2.2 GHz with 1 GB main memory", applying SIMD and fast-math
optimizations to the CPU versions of the fastest kernels to keep the
comparison fair.  We reproduce the *ratio* structure with a simple
cost model driven by the same per-thread instruction counts the kernel
DSL records:

* every scalar instruction retires at ~1 per cycle (a deliberately
  generous IPC for a 3-wide core executing dependent FP chains);
* SIMD (SSE2) divides eligible float work by the vector width when the
  application's CPU implementation was vectorized (as the paper did
  for matmul, SAXPY, ...);
* transcendentals cost ``trig_cycles`` each — fast-math polynomial
  costs, not libm, again following the paper (their MRI CPU baselines
  were improved 4.3X before comparison, and ~30% of the GPU speedup
  was attributed to SFUs);
* a streaming-bandwidth term models compulsory cache misses for
  working sets beyond the cache: time is the max of the op and memory
  terms (hardware prefetch overlaps them).

The model is intentionally simple — the paper's CPU numbers are a
baseline, not the object of study — but it is calibrated so that
classic kernels land at sane absolute throughputs (scalar matmul
~0.9 GFLOPS, SSE2 GEMM ~7 GFLOPS, stream ~3 GB/s on DDR-400).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..trace.instr import InstrClass
from ..trace.trace import KernelTrace


@dataclass(frozen=True)
class CpuSpec:
    """An Opteron-248-class single core (2.2 GHz, DDR-400)."""

    name: str = "Opteron 248"
    clock_ghz: float = 2.2
    simd_width: int = 4                 # SSE2 single-precision lanes
    stream_bandwidth_gbs: float = 3.0   # sustained copy bandwidth
    cache_bytes: int = 1024 * 1024      # unified L2
    trig_cycles: float = 30.0           # fast-math sin/cos
    div_cycles: float = 20.0            # fdiv / sqrt
    imul_cycles: float = 3.0
    atomic_cycles: float = 5.0          # plain RMW on one core


#: Instruction classes the SSE2 vectorization can cover.
_SIMD_CLASSES = frozenset({
    InstrClass.FMA, InstrClass.FADD, InstrClass.FMUL, InstrClass.FCMP,
    InstrClass.LD_GLOBAL, InstrClass.ST_GLOBAL, InstrClass.LD_SHARED,
    InstrClass.ST_SHARED, InstrClass.LD_CONST, InstrClass.LD_TEX,
})


@dataclass(frozen=True)
class CpuCostParams:
    """Per-application knobs for the CPU baseline.

    Attributes
    ----------
    simd:
        Whether the paper's CPU version used SIMD (matmul, SAXPY, ...).
    fast_math:
        Whether fast-math trig costs apply (else libm-like costs, 4x).
    miss_fraction:
        Fraction of useful bytes that miss the cache and stream from
        DRAM (1.0 for working sets far beyond cache, ~0 for resident
        data).
    op_scale:
        Ratio of CPU scalar instructions to GPU per-thread
        instructions.  The GPU code often does extra work a CPU
        compiler would not emit (index linearization, predication);
        values below 1 credit the CPU for that.
    sfu_cycles:
        Override of the CPU cost of one SFU-class operation, for
        applications whose CPU baseline had a cheap equivalent
        (e.g. SSE ``rsqrtps`` + one Newton step for CP's reciprocal
        square roots).  ``None`` uses the CpuSpec trig cost.
    load_penalty_cycles:
        Average extra cycles per load instruction for irregular-access
        applications (FEM's CSR gathers, PNS's per-simulation state):
        data-dependent addresses defeat the hardware prefetcher, so the
        CPU pays a partial cache-miss latency per load instead of
        streaming at full bandwidth.
    """

    simd: bool = False
    fast_math: bool = True
    miss_fraction: float = 1.0
    op_scale: float = 1.0
    sfu_cycles: float = None
    load_penalty_cycles: float = 0.0


@dataclass(frozen=True)
class CpuTimeEstimate:
    seconds: float
    op_seconds: float
    mem_seconds: float
    flops: float

    @property
    def gflops(self) -> float:
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0


def estimate_cpu_time(
    trace: KernelTrace,
    params: Optional[CpuCostParams] = None,
    cpu: Optional[CpuSpec] = None,
) -> CpuTimeEstimate:
    """Serial CPU execution time for the work recorded in ``trace``.

    The per-thread instruction counts of the GPU trace are interpreted
    as the scalar operation stream of a single-threaded CPU
    implementation of the same algorithm.
    """
    params = params if params is not None else CpuCostParams()
    cpu = cpu if cpu is not None else CpuSpec()
    trig = cpu.trig_cycles if params.fast_math else cpu.trig_cycles * 4.0
    if params.sfu_cycles is not None:
        trig = params.sfu_cycles
    load_cost = 1.0 + params.load_penalty_cycles
    cycles_per: Dict[InstrClass, float] = {
        InstrClass.LD_GLOBAL: load_cost,
        InstrClass.LD_TEX: load_cost,
        InstrClass.SFU: trig,
        InstrClass.FDIV: cpu.div_cycles,
        InstrClass.IMUL: cpu.imul_cycles,
        InstrClass.ATOM_GLOBAL: cpu.atomic_cycles,
        InstrClass.SYNC: 0.0,       # no barriers in the serial version
        InstrClass.BRANCH: 1.0,
    }
    total_cycles = 0.0
    for cls, count in trace.thread_insts.items():
        c = cycles_per.get(cls, 1.0) * count
        if params.simd and cls in _SIMD_CLASSES:
            c /= cpu.simd_width
        total_cycles += c
    total_cycles *= params.op_scale
    op_seconds = total_cycles / (cpu.clock_ghz * 1e9)

    stream_bytes = trace.global_useful_bytes * params.miss_fraction
    mem_seconds = stream_bytes / (cpu.stream_bandwidth_gbs * 1e9)

    return CpuTimeEstimate(
        seconds=max(op_seconds, mem_seconds),
        op_seconds=op_seconds,
        mem_seconds=mem_seconds,
        flops=trace.flops,
    )
