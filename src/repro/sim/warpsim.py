"""Event-driven per-SM warp simulator (the model cross-check).

The analytical model of :mod:`repro.sim.timing` is a bound-and-
bottleneck calculation; this module provides an independent,
finer-grained estimate to validate it against (see DESIGN.md's three
model fidelities).  It replays a recorded *instruction stream* of one
thread block over all the warps resident on one SM:

* a single issue unit serializes instruction issue
  (``spec.timing.issue_cycles_per_warp_inst`` cycles per warp
  instruction, ``sfu_issue_cycles`` for SFU ops — 4 and 16 on the
  G80's warp_size/SPs-per-SM fabric), picking the oldest ready warp
  (round-robin over equal readiness — a fair scheduler);
* a global memory instruction blocks the issuing warp for the DRAM
  latency plus queueing at a bandwidth-limited memory server whose
  service time per transaction reflects the coalescing outcome;
* ``__syncthreads`` parks a warp until every warp of its block has
  arrived;
* warps of different resident blocks interleave freely — which is
  exactly the latency-hiding mechanism the paper's occupancy
  discussion is about.

The stream is recorded by :class:`repro.cuda.context.BlockContext`
when a launch runs with ``record_stream=True`` (block-uniform kernels
— every block executes the same code path — are the intended use, and
all Section 4 kernels qualify).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..arch.device import DeviceSpec, DEFAULT_DEVICE
from ..trace.instr import InstrClass, SFU_CLASSES, GLOBAL_MEMORY_CLASSES


@dataclass(frozen=True)
class WarpEvent:
    """One scheduling interval of one warp, in SM cycles.

    ``kind`` is ``"issue"`` (the warp owns the issue unit, including
    uncoalesced replay cycles), ``"mem"`` (blocked on the memory
    server plus DRAM latency), ``"sync"`` (parked at ``__syncthreads``
    until the block catches up), or ``"retire"`` (zero-length marker
    when the warp finishes its stream).
    """

    block: int
    wid: int
    kind: str
    start: float
    end: float
    pc: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class StreamEvent:
    """One block-wide instruction of the recorded stream."""

    cls: InstrClass
    active_warps: int = 1
    #: memory transactions issued per *coalescing-group access* of
    #: this event (half-warp on CUDA 1.x, full warp on Fermi+)
    transactions_per_warp: float = 0.0
    #: DRAM bus bytes per warp for this event
    bus_bytes_per_warp: float = 0.0
    #: warps of the recording block whose lanes disagreed on this
    #: branch condition (BRANCH events only) — both paths serialize
    divergent_warps: int = 0
    #: warps that issued this instruction with a partial lane mask
    #: (divergence in effect: the SM still spends a full issue slot)
    partial_warps: int = 0

    @property
    def is_sync(self) -> bool:
        return self.cls is InstrClass.SYNC

    @property
    def is_global_mem(self) -> bool:
        return self.cls in GLOBAL_MEMORY_CLASSES


@dataclass
class WarpSimResult:
    cycles: float
    seconds: float
    issue_busy_cycles: float
    mem_busy_cycles: float
    instructions_issued: int
    #: branch executions whose warp lanes disagreed (summed over all
    #: simulated blocks) — the dynamic ground truth R8 validates against
    divergent_branches: float = 0.0
    #: issue cycles spent on partial-mask warp instructions — the
    #: serialization cost of divergence under the lockstep warp model
    divergence_serialized_cycles: float = 0.0
    #: warp instructions issued under a partial mask (count, not
    #: cycles) — same semantics as the trace's
    #: ``divergence_serialized_warp_insts``, so the two fractions are
    #: directly comparable in the validation harness
    divergence_serialized_warp_insts: float = 0.0
    #: warp instructions attributed to *active* warps by the recorded
    #: stream (the trace's denominator: warps with at least one live
    #: lane, not the full residency the scheduler walks)
    active_warp_insts: float = 0.0

    @property
    def issue_utilization(self) -> float:
        return self.issue_busy_cycles / self.cycles if self.cycles else 0.0

    @property
    def divergence_serialized_fraction(self) -> float:
        """Share of issued warp instructions under a partial mask
        (count-based — cycle-weighted cost lives in
        ``divergence_serialized_cycles``)."""
        total = self.active_warp_insts or float(self.instructions_issued)
        if not total:
            return 0.0
        return self.divergence_serialized_warp_insts / total


class _Warp:
    __slots__ = ("block", "wid", "pc", "ready_at", "at_barrier", "done",
                 "barrier_since")

    def __init__(self, block: int, wid: int) -> None:
        self.block = block
        self.wid = wid
        self.pc = 0
        self.ready_at = 0.0
        self.at_barrier = False
        self.done = False
        self.barrier_since = 0.0


def simulate_sm(
    stream: Sequence[StreamEvent],
    warps_per_block: int,
    blocks_per_sm: int,
    spec: DeviceSpec = DEFAULT_DEVICE,
    events: Optional[List[WarpEvent]] = None,
    sanitizer=None,
    kernel_name: str = "",
) -> WarpSimResult:
    """Simulate one SM executing ``blocks_per_sm`` copies of the block.

    Every warp executes the full stream (the DSL records block-wide
    instructions; per-warp activity differences are second-order for
    the block-uniform kernels this validates).

    ``events``, when a list is supplied, receives the per-warp
    scheduling timeline as :class:`WarpEvent` records (opt-in: the
    default path appends nothing and stays allocation-free).

    ``sanitizer``, when a :class:`~repro.san.state.SanState` is
    supplied, receives a synccheck ``barrier-mismatch`` finding
    whenever a barrier releases only because some warp of the block
    retired without reaching it (mismatched barrier counts across
    warps — a deadlock on real hardware that this model papers over by
    counting retired warps as arrived).
    """
    if not stream:
        return WarpSimResult(0.0, 0.0, 0.0, 0.0, 0)
    t = spec.timing
    warps: List[_Warp] = [
        _Warp(b, w) for b in range(blocks_per_sm)
        for w in range(warps_per_block)
    ]
    n = len(warps)
    issue_free = 0.0          # when the issue unit is next available
    mem_free = 0.0            # when the memory server is next available
    issue_busy = 0.0
    mem_busy = 0.0
    issued = 0
    # bandwidth-derived service time for one warp's transactions,
    # shared across the device's SMs
    bytes_per_cycle_sm = (spec.dram_bandwidth_bytes_per_cycle
                          * t.dram_efficiency / spec.num_sms)
    # divergence counters are stream-level properties of the recorded
    # block, replicated across the resident blocks of this SM
    divergent_branches = float(
        sum(ev.divergent_warps for ev in stream) * blocks_per_sm)
    divergence_serialized = float(sum(
        ev.partial_warps * (t.sfu_cycles_per_warp_inst
                            if ev.cls in SFU_CLASSES
                            else t.issue_cycles_per_warp_inst)
        for ev in stream) * blocks_per_sm)
    divergence_serialized_insts = float(
        sum(ev.partial_warps for ev in stream) * blocks_per_sm)
    active_warp_insts = float(
        sum(ev.active_warps for ev in stream) * blocks_per_sm)

    def barrier_release(block: int, now: float) -> None:
        members = [w for w in warps if w.block == block]
        if all(m.at_barrier or m.done for m in members):
            waiting = [m for m in members if m.at_barrier]
            exited = [m for m in members if m.done]
            if waiting and exited and sanitizer is not None \
                    and sanitizer.enabled("synccheck"):
                from ..analysis.findings import Severity
                sanitizer.emit(
                    "barrier-mismatch", Severity.HIGH, kernel_name,
                    f"mismatched barrier counts in block {block}: warp(s) "
                    f"{sorted(w.wid for w in exited)} retired without "
                    f"reaching the barrier warp(s) "
                    f"{sorted(w.wid for w in waiting)} wait at — deadlock "
                    f"on real hardware")
            for m in members:
                if m.at_barrier:
                    m.at_barrier = False
                    if events is not None and now > m.barrier_since:
                        events.append(WarpEvent(m.block, m.wid, "sync",
                                                m.barrier_since, now, m.pc))
                    m.pc += 1
                    m.ready_at = now

    done_count = 0
    guard = 0
    max_steps = len(stream) * n * 4 + 1000
    while done_count < n:
        guard += 1
        if guard > max_steps:  # pragma: no cover - defensive
            raise RuntimeError("warpsim failed to converge (deadlock?)")
        candidates = [w for w in warps if not w.done and not w.at_barrier]
        if not candidates:  # pragma: no cover - defensive
            raise RuntimeError("all warps blocked at barriers: deadlock")
        w = min(candidates, key=lambda x: (x.ready_at, x.block, x.wid))
        now = max(w.ready_at, issue_free)
        ev = stream[w.pc]

        if ev.is_sync:
            w.at_barrier = True
            w.barrier_since = now
            barrier_release(w.block, now + t.sync_cycles)
            continue

        cost = (t.sfu_cycles_per_warp_inst if ev.cls in SFU_CLASSES
                else t.issue_cycles_per_warp_inst)
        if ev.is_global_mem:
            # issue, then wait for latency + memory service
            issue_free = now + t.issue_cycles_per_warp_inst
            issue_busy += t.issue_cycles_per_warp_inst
            replay = ev.transactions_per_warp * t.uncoalesced_replay_cycles \
                if ev.transactions_per_warp > 2 else 0.0
            issue_free += replay
            issue_busy += replay
            service = ev.bus_bytes_per_warp / bytes_per_cycle_sm \
                if ev.bus_bytes_per_warp else 0.0
            start = max(issue_free, mem_free)
            mem_free = start + service
            mem_busy += service
            w.ready_at = mem_free + t.global_latency_cycles
            if events is not None:
                events.append(WarpEvent(w.block, w.wid, "issue",
                                        now, issue_free, w.pc))
                events.append(WarpEvent(w.block, w.wid, "mem",
                                        issue_free, w.ready_at, w.pc))
        else:
            issue_free = now + cost
            issue_busy += cost
            w.ready_at = issue_free
            if events is not None:
                events.append(WarpEvent(w.block, w.wid, "issue",
                                        now, issue_free, w.pc))
        issued += 1
        w.pc += 1
        if w.pc >= len(stream):
            w.done = True
            done_count += 1
            if events is not None:
                events.append(WarpEvent(w.block, w.wid, "retire",
                                        w.ready_at, w.ready_at, w.pc))
            barrier_release(w.block, w.ready_at)

    cycles = max(max(w.ready_at for w in warps), issue_free, mem_free)
    return WarpSimResult(
        cycles=cycles,
        seconds=cycles / (spec.sp_clock_ghz * 1e9),
        issue_busy_cycles=issue_busy,
        mem_busy_cycles=mem_busy,
        instructions_issued=issued,
        divergent_branches=divergent_branches,
        divergence_serialized_cycles=divergence_serialized,
        divergence_serialized_warp_insts=divergence_serialized_insts,
        active_warp_insts=active_warp_insts,
    )


def simulate_launch(result, spec: Optional[DeviceSpec] = None
                    ) -> WarpSimResult:
    """Extrapolate a whole launch from one SM-wave simulation.

    ``result`` is a :class:`repro.cuda.launch.LaunchResult` produced
    with ``record_stream=True``; the recorded block stream is replayed
    on one SM at the launch's occupancy and scaled by the number of
    block waves each SM processes.
    """
    spec = spec or result.spec
    stream = result.stream
    if stream is None:
        raise ValueError("launch was not run with record_stream=True")
    occ = result.occupancy()
    if occ.blocks_per_sm == 0:
        raise ValueError("kernel cannot be scheduled")
    one_wave = simulate_sm(stream, occ.warps_per_block,
                           occ.blocks_per_sm, spec)
    n_sms = min(spec.num_sms, result.num_blocks)
    waves = -(-result.num_blocks // (occ.blocks_per_sm * n_sms))
    total_cycles = one_wave.cycles * waves
    return WarpSimResult(
        cycles=total_cycles,
        seconds=total_cycles / (spec.sp_clock_ghz * 1e9)
        + spec.timing.kernel_launch_overhead_s,
        issue_busy_cycles=one_wave.issue_busy_cycles * waves,
        mem_busy_cycles=one_wave.mem_busy_cycles * waves,
        instructions_issued=one_wave.instructions_issued * waves,
        divergent_branches=one_wave.divergent_branches * waves,
        divergence_serialized_cycles=(
            one_wave.divergence_serialized_cycles * waves),
        divergence_serialized_warp_insts=(
            one_wave.divergence_serialized_warp_insts * waves),
        active_warp_insts=one_wave.active_warp_insts * waves,
    )


def simulate_plan(plan, executor=None,
                  spec: Optional[DeviceSpec] = None) -> WarpSimResult:
    """Execute a :class:`~repro.cuda.plan.LaunchPlan` and warp-simulate
    the result.

    Stream recording is forced on (the plan is rebuilt when it was
    created without ``record_stream=True``) so callers can hand any
    plan straight to the simulator::

        plan = LaunchPlan.build(kern, grid, block, args, device=dev,
                                functional=False)
        sim = simulate_plan(plan)
    """
    if not plan.record_stream:
        from dataclasses import replace as _replace
        plan = _replace(plan, record_stream=True)
    result = plan.execute(executor)
    return simulate_launch(result, spec)
