"""Optimization-space exploration (the paper's future-work section).

Section 6: "It is also possible to get stuck in local maximums of
performance when attempting to follow a particular optimization
strategy. ... Better tools and compilers that allow programmers to
specify the types of reorganizations desired and automatically
experiment with their performance effects would greatly reduce the
optimization effort."

This module implements that tool for the matmul study's variant space
(tile size x unrolling x prefetching): it evaluates every
configuration with the calibrated model, runs greedy hill-climbing
from arbitrary starting points, and reports which starting points get
trapped in *local maxima* — reproducing the paper's observation that
greedy optimization strategies are unreliable on this architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..apps.matmul import MatMul, MatmulConfig, TILE_SIZES
from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from ..obs.registry import get_registry

#: tile sizes beyond the paper's Figure 4 sweep that only later
#: devices can schedule (a 24x24 or 32x32 block exceeds the G80's
#: 512-thread block limit) — the source of the cross-device winner
#: shift
EXTENDED_TILE_SIZES = (24, 32)


def device_tile_sizes(spec: DeviceSpec) -> Tuple[int, ...]:
    """Tile sizes schedulable on ``spec``: the block must respect the
    device's thread-per-block limit and both staged input tiles must
    fit in shared memory.  On the paper's G80 this reproduces the
    Figure 4 sweep exactly."""
    tiles = []
    for tile in TILE_SIZES + EXTENDED_TILE_SIZES:
        threads = tile * tile
        smem = 2 * tile * tile * 4
        if threads <= spec.max_threads_per_block \
                and smem <= spec.shared_mem_per_sm:
            tiles.append(tile)
    return tuple(tiles)

#: safety margin on static ceilings when pruning: a configuration is
#: only skipped when its closed-form bound plus this slack is still
#: below the incumbent, absorbing the small census-vs-trace drift
#: between the pruning size and the evaluation size
PRUNE_MARGIN = 0.10

#: problem size the static ceilings are computed at — inside the
#: abstract interpreter's loop budget, large enough that launch
#: overhead does not distort the bound
PRUNE_CENSUS_N = 256


@dataclass(frozen=True)
class Point:
    """One configuration in the matmul optimization space."""

    tile: int               # 0 means untiled
    unrolled: bool
    prefetch: bool

    def valid(self) -> bool:
        if self.tile == 0:
            return not self.unrolled and not self.prefetch
        if self.prefetch and not self.unrolled:
            return False
        return True

    @property
    def config(self) -> MatmulConfig:
        if self.tile == 0:
            return MatmulConfig("naive")
        if self.prefetch:
            return MatmulConfig("prefetch", self.tile)
        if self.unrolled:
            return MatmulConfig("tiled_unrolled", self.tile)
        return MatmulConfig("tiled", self.tile)

    def neighbors(self, tile_sizes: Sequence[int] = TILE_SIZES
                  ) -> List["Point"]:
        """One-transformation-at-a-time moves (a greedy tuner's steps)
        within the device's schedulable tile ladder."""
        out = []
        tiles = (0,) + tuple(tile_sizes)
        i = tiles.index(self.tile)
        if i + 1 < len(tiles):
            out.append(Point(tiles[i + 1], self.unrolled and tiles[i+1] > 0,
                             self.prefetch and tiles[i+1] > 0))
        if i - 1 >= 0:
            t = tiles[i - 1]
            out.append(Point(t, self.unrolled and t > 0,
                             self.prefetch and t > 0))
        if self.tile > 0:
            out.append(Point(self.tile, not self.unrolled,
                             self.prefetch and not self.unrolled))
            if self.unrolled:
                out.append(Point(self.tile, True, not self.prefetch))
        return [p for p in out if p.valid() and p != self]


@dataclass
class TuneResult:
    best: Point
    best_gflops: float
    evaluations: Dict[Point, float]
    local_maxima: List[Tuple[Point, float]]
    #: configurations skipped by static-bound pruning, mapped to the
    #: closed-form ceiling that ruled them out (never silently dropped)
    pruned: Dict[Point, float] = field(default_factory=dict)

    def is_global(self, point: Point) -> bool:
        return self.evaluations[point] == self.best_gflops


class MatmulAutotuner:
    """Exhaustive + greedy exploration of the matmul variant space."""

    def __init__(self, n: int = 1024, trace_blocks: int = 2,
                 spec: DeviceSpec = DEFAULT_DEVICE) -> None:
        self.n = n
        self.trace_blocks = trace_blocks
        self.spec = spec
        self.tiles = device_tile_sizes(spec)
        self.app = MatMul(spec)
        self._cache: Dict[Point, float] = {}
        self._bound_cache: Dict[Point, float] = {}

    def space(self) -> List[Point]:
        points = [Point(0, False, False)]
        for tile in self.tiles:
            for unrolled, prefetch in ((False, False), (True, False),
                                       (True, True)):
                points.append(Point(tile, unrolled, prefetch))
        return points

    def neighbors(self, point: Point) -> List[Point]:
        """A point's moves within this device's tile ladder."""
        return point.neighbors(self.tiles)

    def evaluate(self, point: Point) -> float:
        """Modelled GFLOPS of one configuration (memoized)."""
        if point not in self._cache:
            run = self.app.run_config(point.config, n=self.n,
                                      trace_blocks=self.trace_blocks)
            self._cache[point] = run.launches[0].estimate().gflops
        return self._cache[point]

    def static_bound(self, point: Point) -> float:
        """Closed-form GFLOPS ceiling of a configuration, from the
        static census — no simulation (memoized)."""
        if point not in self._bound_cache:
            from ..analysis.estimate import estimate_target
            from ..analysis.targets import LintTarget, garr
            from ..apps.matmul import build_kernel
            cfg = point.config
            block = 16 if cfg.variant == "naive" else cfg.tile
            n = -(-PRUNE_CENSUS_N // block) * block   # pad (12x12 tiles)
            args = (garr("A", n * n), garr("B", n * n),
                    garr("C", n * n), n)
            target = LintTarget(build_kernel(cfg.variant, cfg.tile),
                                (n // block, n // block), (block, block),
                                args, note=cfg.label)
            est = estimate_target(target, self.spec)
            self._bound_cache[point] = est.static_bound_gflops
        return self._bound_cache[point]

    def exhaustive(self, prune: bool = False) -> TuneResult:
        """Evaluate the whole space and identify every local maximum.

        With ``prune=True``, configurations whose static closed-form
        ceiling (plus a :data:`PRUNE_MARGIN` safety factor) cannot beat
        the incumbent are skipped without simulation — the advisor-style
        shortcut.  Pruned points are returned in
        :attr:`TuneResult.pruned` and counted in the ``obs`` metrics
        registry (``autotuner.pruned`` / ``autotuner.evaluated``), so
        nothing is silently dropped.
        """
        pruned: Dict[Point, float] = {}
        registry = get_registry()
        if prune:
            # evaluate in descending-ceiling order so the incumbent is
            # strong early and prunes aggressively
            ordered = sorted(self.space(),
                             key=lambda p: -self.static_bound(p))
            evals: Dict[Point, float] = {}
            incumbent = 0.0
            for p in ordered:
                ceiling = self.static_bound(p)
                if ceiling * (1.0 + PRUNE_MARGIN) < incumbent:
                    pruned[p] = ceiling
                    if registry.enabled:
                        registry.counter("autotuner.pruned").inc()
                    continue
                evals[p] = self.evaluate(p)
                incumbent = max(incumbent, evals[p])
                if registry.enabled:
                    registry.counter("autotuner.evaluated").inc()
        else:
            evals = {p: self.evaluate(p) for p in self.space()}
            if registry.enabled:
                registry.counter("autotuner.evaluated").inc(len(evals))
        best = max(evals, key=evals.get)
        maxima = []
        for p, g in evals.items():
            if all(g >= evals[q] for q in self.neighbors(p) if q in evals):
                maxima.append((p, g))
        maxima.sort(key=lambda pg: -pg[1])
        return TuneResult(best, evals[best], evals, maxima, pruned)

    def hill_climb(self, start: Point) -> Tuple[Point, float, List[Point]]:
        """Greedy one-step improvement until no neighbour is better.

        Returns the end point, its GFLOPS and the path taken — the
        paper's cautionary tale when the end point is not the global
        optimum.
        """
        current = start
        path = [start]
        while True:
            current_g = self.evaluate(current)
            neighbors = [q for q in self.neighbors(current)]
            if not neighbors:
                break
            best_n = max(neighbors, key=self.evaluate)
            if self.evaluate(best_n) <= current_g:
                break
            current = best_n
            path.append(current)
        return current, self.evaluate(current), path
