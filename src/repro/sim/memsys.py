"""Memory-system models: coalescing, bank conflicts, read-only caches.

This module implements the G80 (CUDA 1.x) global-memory coalescing
rules the paper's optimizations revolve around (Section 3.2):

    "this bandwidth can be obtained only when accesses are contiguous
    16-word lines; in other cases the achievable bandwidth is a
    fraction of the maximum."

**Coalescing rule.**  A half-warp (16 threads) issues one memory
transaction iff the k-th active thread accesses the k-th word of an
aligned 16-word (64 B for 4-byte words) segment.  Any other pattern is
*uncoalesced* and serialized into one transaction per active thread
with a 32 B minimum granularity.  Duplicate addresses are merged for
DRAM *bus* accounting (the controller's read combining, cf. the
paper's footnote 4) but still pay per-thread serialization in the
memory pipeline.

**Bank conflicts.**  Shared memory has 16 banks, word-interleaved; a
half-warp access serializes by the maximum number of distinct words
mapped to the same bank (conflict degree).  All threads reading the
*same* word are served by a broadcast (degree 1).

**Caches.**  Constant and texture reads go through small per-SM caches
modeled with simple LRU-over-lines structures sized per
:class:`~repro.arch.device.DeviceSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..arch.device import DeviceSpec, DEFAULT_DEVICE
from ..obs.registry import get_registry


@dataclass(frozen=True)
class CoalesceResult:
    """Outcome of one half-warp global access event."""

    coalesced: bool
    transactions: int          # serialized transactions issued
    bus_bytes: int             # bytes occupying the DRAM bus
    useful_bytes: int          # bytes the threads actually requested

    @property
    def efficiency(self) -> float:
        return self.useful_bytes / self.bus_bytes if self.bus_bytes else 1.0


def coalesce_half_warp(
    addresses: np.ndarray,
    active: np.ndarray,
    itemsize: int,
    spec: DeviceSpec = DEFAULT_DEVICE,
) -> CoalesceResult:
    """Apply the G80 coalescing rule to one half-warp access.

    Parameters
    ----------
    addresses:
        Byte addresses, one per thread slot of the half-warp (length
        ``spec.half_warp``); entries for inactive threads are ignored.
    active:
        Boolean activity mask of the same length.
    itemsize:
        Access width in bytes (4, 8 or 16 on the G80).
    """
    hw = spec.half_warp
    if addresses.shape[0] != hw or active.shape[0] != hw:
        raise ValueError(f"expected half-warp of {hw} lanes")
    n_active = int(active.sum())
    if n_active == 0:
        return CoalesceResult(True, 0, 0, 0)

    addrs = addresses[active].astype(np.int64)
    useful = n_active * itemsize
    segment = hw * itemsize

    # Coalescing test: thread k must hit word k of an aligned segment.
    lanes = np.nonzero(active)[0]
    base = addresses[lanes[0]] - lanes[0] * itemsize
    aligned = (base % segment) == 0
    in_order = bool(np.all(addresses[lanes] == base + lanes * itemsize))
    if aligned and in_order:
        return CoalesceResult(True, 1, segment, useful)

    # Uncoalesced: one transaction per active thread (min 32 B each);
    # duplicate segments are merged for bus accounting.
    min_txn = spec.min_transaction_bytes
    segments = np.unique(addrs // min_txn)
    bus = 0
    for seg in segments:
        lo = seg * min_txn
        hi_needed = int(np.max(addrs[addrs // min_txn == seg])) + itemsize
        span = hi_needed - lo
        bus += int(np.ceil(span / min_txn)) * min_txn
    return CoalesceResult(False, n_active, bus, useful)


def coalesce_block_access(
    addresses: np.ndarray,
    active: np.ndarray,
    itemsize: int,
    spec: DeviceSpec = DEFAULT_DEVICE,
) -> Tuple[int, int, int, int, int]:
    """Coalesce a whole block-wide access, half-warp by half-warp.

    Returns ``(warp_accesses, transactions, bus_bytes, useful_bytes,
    coalesced_accesses)`` summed over all half-warps that had at least
    one active thread.
    """
    hw = spec.half_warp
    n = addresses.shape[0]
    pad = (-n) % hw
    if pad:
        addresses = np.concatenate(
            [addresses.astype(np.int64), np.zeros(pad, dtype=np.int64)])
        active = np.concatenate([active, np.zeros(pad, dtype=bool)])
    A = addresses.reshape(-1, hw).astype(np.int64)
    M = active.reshape(-1, hw)
    any_active = M.any(axis=1)
    if not any_active.any():
        return 0, 0, 0, 0, 0
    segment = hw * itemsize

    # Vectorized fast path: fully active, in-order, aligned rows.
    fully = M.all(axis=1)
    lane0 = A[:, 0]
    expected = lane0[:, None] + np.arange(hw, dtype=np.int64)[None, :] * itemsize
    in_order = (A == expected).all(axis=1)
    aligned = (lane0 % segment) == 0
    fast = fully & in_order & aligned
    n_fast = int(fast.sum())
    warp_accesses = int(any_active.sum())
    transactions = n_fast
    bus = n_fast * segment
    useful = n_fast * hw * itemsize
    coalesced = n_fast

    slow_rows = np.nonzero(any_active & ~fast)[0]
    for r in slow_rows:
        res = coalesce_half_warp(A[r], M[r], itemsize, spec)
        transactions += res.transactions
        bus += res.bus_bytes
        useful += res.useful_bytes
        coalesced += int(res.coalesced)
    return warp_accesses, transactions, bus, useful, coalesced


# ----------------------------------------------------------------------
# Shared-memory bank conflicts
# ----------------------------------------------------------------------

def bank_conflict_degree(
    word_indices: np.ndarray,
    active: np.ndarray,
    spec: DeviceSpec = DEFAULT_DEVICE,
) -> int:
    """Conflict degree of one half-warp shared-memory access.

    ``word_indices`` are word (4 B) offsets into shared memory.  The
    degree is the maximum, over banks, of the number of *distinct*
    words accessed in that bank; duplicate words broadcast for free.
    A degree of 1 is conflict-free.
    """
    if not active.any():
        return 0
    words = word_indices[active].astype(np.int64)
    banks = words % spec.shared_mem_banks
    degree = 0
    for b in np.unique(banks):
        degree = max(degree, len(np.unique(words[banks == b])))
    return int(degree)


def block_bank_conflicts(
    word_indices: np.ndarray,
    active: np.ndarray,
    spec: DeviceSpec = DEFAULT_DEVICE,
) -> Tuple[int, int]:
    """Sum conflict degrees over the half-warps of a block-wide access.

    Returns ``(accesses, total_degree)``; ``total_degree - accesses``
    is the number of *extra* serialization passes caused by conflicts.
    """
    hw = spec.half_warp
    nbanks = spec.shared_mem_banks
    n = word_indices.shape[0]
    pad = (-n) % hw
    if pad:
        word_indices = np.concatenate(
            [word_indices.astype(np.int64), np.zeros(pad, dtype=np.int64)])
        active = np.concatenate([active, np.zeros(pad, dtype=bool)])
    W = word_indices.reshape(-1, hw).astype(np.int64)
    M = active.reshape(-1, hw)
    any_active = M.any(axis=1)
    if not any_active.any():
        return 0, 0
    accesses = int(any_active.sum())

    # Vectorized fast path: fully active rows whose 16 lanes hit 16
    # distinct banks (the common conflict-free stride-1 pattern), or
    # rows where every lane reads the same word (broadcast).
    fully = M.all(axis=1)
    banks = W % nbanks
    banks_sorted = np.sort(banks, axis=1)
    distinct_banks = (np.diff(banks_sorted, axis=1) != 0).all(axis=1)
    broadcast = (W == W[:, :1]).all(axis=1)
    fast = fully & (distinct_banks | broadcast)
    total = int(fast.sum())  # degree 1 each

    slow_rows = np.nonzero(any_active & ~fast)[0]
    for r in slow_rows:
        total += bank_conflict_degree(W[r], M[r], spec)
    return accesses, total


# ----------------------------------------------------------------------
# Read-only caches (constant / texture)
# ----------------------------------------------------------------------

class DirectMappedCache:
    """A small direct-mapped line cache for the constant/texture paths.

    The paper's applications use these paths for working sets that
    either fit (constant tables, MRI trajectory data) or exhibit 2D
    locality (texture-staged LBM grids); a simple line cache captures
    the hit-rate distinction that matters for the timing model.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 32,
                 space: str = "cache") -> None:
        if capacity_bytes % line_bytes:
            raise ValueError("capacity must be a multiple of the line size")
        self.line_bytes = line_bytes
        self.num_lines = capacity_bytes // line_bytes
        self.tags = np.full(self.num_lines, -1, dtype=np.int64)
        #: label under which hit/miss counters are published
        self.space = space
        self.hits = 0
        self.misses = 0

    def access(self, addresses: np.ndarray, active: np.ndarray) -> Tuple[int, int]:
        """Access a vector of byte addresses; returns (hits, misses).

        Duplicate lines within one access are counted once (warp-level
        broadcast), matching constant-cache behaviour.
        """
        if not active.any():
            return 0, 0
        lines = np.unique(addresses[active] // self.line_bytes)
        hits = misses = 0
        for line in lines:
            slot = int(line % self.num_lines)
            if self.tags[slot] == line:
                hits += 1
            else:
                self.tags[slot] = line
                misses += 1
        self.hits += hits
        self.misses += misses
        registry = get_registry()
        if registry.enabled:
            if hits:
                registry.counter("memsys.cache_hits",
                                 space=self.space).inc(hits)
            if misses:
                registry.counter("memsys.cache_misses",
                                 space=self.space).inc(misses)
        return hits, misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def reset(self) -> None:
        self.tags[:] = -1
        self.hits = 0
        self.misses = 0
