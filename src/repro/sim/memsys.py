"""Memory-system models: coalescing, bank conflicts, caches.

This module implements the global-memory coalescing rules as *data on
the device spec*, not as code assumptions.  Two rules exist:

**Strict-segment rule** (CUDA 1.x, the paper's Section 3.2): a
coalescing group (a half-warp) issues one memory transaction iff the
k-th active thread accesses the k-th word of an aligned segment.  Any
other pattern is *uncoalesced* and serialized into one transaction per
active thread with a minimum-granularity bus charge.  Duplicate
addresses are merged for DRAM *bus* accounting (the controller's read
combining, cf. the paper's footnote 4) but still pay per-thread
serialization in the memory pipeline.

**Cached-line rule** (Fermi and later): a full warp's accesses are
gathered into the distinct cache lines they touch — one transaction
per line, regardless of the permutation of threads within the lines.
An access is coalesced when it touches no more lines than its useful
bytes require; misaligned or strided patterns cost extra lines, not
per-thread serialization.

Which rule applies, and over how many threads, comes from
``spec.coalescing_rule`` / ``spec.coalesce_group``.

**Bank conflicts.**  Shared memory is word-interleaved over
``spec.shared_mem_banks`` banks; an access group (half-warp on
16-bank devices, full warp on 32-bank ones) serializes by the maximum
number of distinct words mapped to the same bank (conflict degree).
All threads reading the *same* word are served by a broadcast
(degree 1).

**Caches.**  Constant and texture reads go through small per-SM caches
modeled with simple direct-mapped line structures sized per
:class:`~repro.arch.device.DeviceSpec`; devices with cached global
loads additionally route them through a two-level
:class:`CacheHierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..arch.device import CACHED_LINE, DeviceSpec, DEFAULT_DEVICE
from ..obs.registry import get_registry


@dataclass(frozen=True)
class CoalesceResult:
    """Outcome of one coalescing-group global access event."""

    coalesced: bool
    transactions: int          # serialized transactions issued
    bus_bytes: int             # bytes occupying the DRAM bus
    useful_bytes: int          # bytes the threads actually requested

    @property
    def efficiency(self) -> float:
        return self.useful_bytes / self.bus_bytes if self.bus_bytes else 1.0


def coalesce_half_warp(
    addresses: np.ndarray,
    active: np.ndarray,
    itemsize: int,
    spec: DeviceSpec = DEFAULT_DEVICE,
) -> CoalesceResult:
    """Apply the device's coalescing rule to one group access.

    The group is a half-warp on strict-segment (CUDA 1.x) devices —
    hence the historical name — and a full warp on cached-line ones;
    the caller supplies exactly ``spec.coalesce_group`` lanes.

    Parameters
    ----------
    addresses:
        Byte addresses, one per thread slot of the group (length
        ``spec.coalesce_group``); entries for inactive threads are
        ignored.
    active:
        Boolean activity mask of the same length.
    itemsize:
        Access width in bytes (4, 8 or 16).
    """
    group = spec.coalesce_group
    if addresses.shape[0] != group or active.shape[0] != group:
        raise ValueError(f"expected a coalescing group of {group} lanes")
    n_active = int(active.sum())
    if n_active == 0:
        return CoalesceResult(True, 0, 0, 0)
    if spec.coalescing_rule == CACHED_LINE:
        return _coalesce_cached_line(addresses, active, itemsize, spec)
    return _coalesce_strict_segment(addresses, active, itemsize, spec)


#: backwards-compatible alias for the rule-dispatching entry point
coalesce_group_access = coalesce_half_warp


def _coalesce_strict_segment(
    addresses: np.ndarray,
    active: np.ndarray,
    itemsize: int,
    spec: DeviceSpec,
) -> CoalesceResult:
    """The CUDA 1.x rule: thread k must hit word k of an aligned
    segment, else one serialized transaction per active thread."""
    group = spec.coalesce_group
    n_active = int(active.sum())
    addrs = addresses[active].astype(np.int64)
    useful = n_active * itemsize
    segment = group * itemsize

    lanes = np.nonzero(active)[0]
    base = addresses[lanes[0]] - lanes[0] * itemsize
    aligned = (base % segment) == 0
    in_order = bool(np.all(addresses[lanes] == base + lanes * itemsize))
    if aligned and in_order:
        return CoalesceResult(True, 1, segment, useful)

    # Uncoalesced: one transaction per active thread (minimum-
    # granularity bus charge each); duplicate segments are merged for
    # bus accounting.
    min_txn = spec.min_transaction_bytes
    segments = np.unique(addrs // min_txn)
    bus = 0
    for seg in segments:
        lo = seg * min_txn
        hi_needed = int(np.max(addrs[addrs // min_txn == seg])) + itemsize
        span = hi_needed - lo
        bus += int(np.ceil(span / min_txn)) * min_txn
    return CoalesceResult(False, n_active, bus, useful)


def _coalesce_cached_line(
    addresses: np.ndarray,
    active: np.ndarray,
    itemsize: int,
    spec: DeviceSpec,
) -> CoalesceResult:
    """The Fermi+ rule: one transaction per distinct cache line the
    warp touches.  The access is *coalesced* when it needs no more
    lines than its useful bytes occupy at best — any permutation of
    threads within those lines is free."""
    line = spec.cache_line_bytes
    n_active = int(active.sum())
    addrs = addresses[active].astype(np.int64)
    useful = n_active * itemsize
    first = addrs // line
    last = (addrs + itemsize - 1) // line
    lines = np.unique(np.concatenate([first, last]))
    transactions = int(lines.size)
    minimal = max(1, -(-useful // line))
    return CoalesceResult(transactions <= minimal, transactions,
                          transactions * line, useful)


def coalesce_block_access(
    addresses: np.ndarray,
    active: np.ndarray,
    itemsize: int,
    spec: DeviceSpec = DEFAULT_DEVICE,
) -> Tuple[int, int, int, int, int]:
    """Coalesce a whole block-wide access, group by group.

    The group width and rule come from ``spec`` (half-warp strict
    segments on CUDA 1.x, full-warp cache lines on Fermi and later).
    Returns ``(warp_accesses, transactions, bus_bytes, useful_bytes,
    coalesced_accesses)`` summed over all groups that had at least one
    active thread.
    """
    group = spec.coalesce_group
    n = addresses.shape[0]
    pad = (-n) % group
    if pad:
        addresses = np.concatenate(
            [addresses.astype(np.int64), np.zeros(pad, dtype=np.int64)])
        active = np.concatenate([active, np.zeros(pad, dtype=bool)])
    A = addresses.reshape(-1, group).astype(np.int64)
    M = active.reshape(-1, group)
    any_active = M.any(axis=1)
    if not any_active.any():
        return 0, 0, 0, 0, 0
    segment = group * itemsize
    cached = spec.coalescing_rule == CACHED_LINE
    # a fast-path row costs segment bytes rounded up to whole lines on
    # cached devices, exactly one segment on strict ones
    if cached:
        line = spec.cache_line_bytes
        txn_per_fast = -(-segment // line)
        bus_per_fast = txn_per_fast * line
        align = line
    else:
        txn_per_fast = 1
        bus_per_fast = segment
        align = segment

    # Vectorized fast path: fully active, in-order, aligned rows.
    fully = M.all(axis=1)
    lane0 = A[:, 0]
    expected = lane0[:, None] + np.arange(group, dtype=np.int64)[None, :] * itemsize
    in_order = (A == expected).all(axis=1)
    aligned = (lane0 % align) == 0
    fast = fully & in_order & aligned
    n_fast = int(fast.sum())
    warp_accesses = int(any_active.sum())
    transactions = n_fast * txn_per_fast
    bus = n_fast * bus_per_fast
    useful = n_fast * segment
    coalesced = n_fast

    slow_rows = np.nonzero(any_active & ~fast)[0]
    for r in slow_rows:
        res = coalesce_half_warp(A[r], M[r], itemsize, spec)
        transactions += res.transactions
        bus += res.bus_bytes
        useful += res.useful_bytes
        coalesced += int(res.coalesced)
    return warp_accesses, transactions, bus, useful, coalesced


# ----------------------------------------------------------------------
# Shared-memory bank conflicts
# ----------------------------------------------------------------------

def bank_conflict_degree(
    word_indices: np.ndarray,
    active: np.ndarray,
    spec: DeviceSpec = DEFAULT_DEVICE,
) -> int:
    """Conflict degree of one shared-memory access group.

    The group is a half-warp on 16-bank devices and a full warp on
    32-bank ones (``spec.shared_access_group``).  ``word_indices`` are
    word (4 B) offsets into shared memory.  The degree is the maximum,
    over banks, of the number of *distinct* words accessed in that
    bank; duplicate words broadcast for free.  A degree of 1 is
    conflict-free.
    """
    if not active.any():
        return 0
    words = word_indices[active].astype(np.int64)
    banks = words % spec.shared_mem_banks
    degree = 0
    for b in np.unique(banks):
        degree = max(degree, len(np.unique(words[banks == b])))
    return int(degree)


def block_bank_conflicts(
    word_indices: np.ndarray,
    active: np.ndarray,
    spec: DeviceSpec = DEFAULT_DEVICE,
) -> Tuple[int, int]:
    """Sum conflict degrees over the access groups of a block-wide
    shared access.

    Returns ``(accesses, total_degree)``; ``total_degree - accesses``
    is the number of *extra* serialization passes caused by conflicts.
    """
    hw = spec.shared_access_group
    nbanks = spec.shared_mem_banks
    n = word_indices.shape[0]
    pad = (-n) % hw
    if pad:
        word_indices = np.concatenate(
            [word_indices.astype(np.int64), np.zeros(pad, dtype=np.int64)])
        active = np.concatenate([active, np.zeros(pad, dtype=bool)])
    W = word_indices.reshape(-1, hw).astype(np.int64)
    M = active.reshape(-1, hw)
    any_active = M.any(axis=1)
    if not any_active.any():
        return 0, 0
    accesses = int(any_active.sum())

    # Vectorized fast path: fully active rows whose lanes all hit
    # distinct banks (the common conflict-free stride-1 pattern), or
    # rows where every lane reads the same word (broadcast).
    fully = M.all(axis=1)
    banks = W % nbanks
    banks_sorted = np.sort(banks, axis=1)
    distinct_banks = (np.diff(banks_sorted, axis=1) != 0).all(axis=1)
    broadcast = (W == W[:, :1]).all(axis=1)
    fast = fully & (distinct_banks | broadcast)
    total = int(fast.sum())  # degree 1 each

    slow_rows = np.nonzero(any_active & ~fast)[0]
    for r in slow_rows:
        total += bank_conflict_degree(W[r], M[r], spec)
    return accesses, total


# ----------------------------------------------------------------------
# Read-only caches (constant / texture)
# ----------------------------------------------------------------------

class DirectMappedCache:
    """A small direct-mapped line cache for the constant/texture paths.

    The paper's applications use these paths for working sets that
    either fit (constant tables, MRI trajectory data) or exhibit 2D
    locality (texture-staged LBM grids); a simple line cache captures
    the hit-rate distinction that matters for the timing model.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 32,
                 space: str = "cache") -> None:
        if capacity_bytes % line_bytes:
            raise ValueError("capacity must be a multiple of the line size")
        self.line_bytes = line_bytes
        self.num_lines = capacity_bytes // line_bytes
        self.tags = np.full(self.num_lines, -1, dtype=np.int64)
        #: label under which hit/miss counters are published
        self.space = space
        self.hits = 0
        self.misses = 0

    def access(self, addresses: np.ndarray, active: np.ndarray) -> Tuple[int, int]:
        """Access a vector of byte addresses; returns (hits, misses).

        Duplicate lines within one access are counted once (warp-level
        broadcast), matching constant-cache behaviour.
        """
        if not active.any():
            return 0, 0
        lines = np.unique(addresses[active] // self.line_bytes)
        hits, misses, _ = self.probe_lines(lines)
        return hits, misses

    def probe_lines(self, lines: np.ndarray
                    ) -> Tuple[int, int, np.ndarray]:
        """Probe a vector of distinct line indices; returns
        ``(hits, misses, missed_lines)`` so a backing level can be
        consulted for the misses only."""
        hits = misses = 0
        missed = []
        for line in lines:
            slot = int(line % self.num_lines)
            if self.tags[slot] == line:
                hits += 1
            else:
                self.tags[slot] = line
                misses += 1
                missed.append(line)
        self.hits += hits
        self.misses += misses
        registry = get_registry()
        if registry.enabled:
            if hits:
                registry.counter("memsys.cache_hits",
                                 space=self.space).inc(hits)
            if misses:
                registry.counter("memsys.cache_misses",
                                 space=self.space).inc(misses)
        return hits, misses, np.asarray(missed, dtype=np.int64)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def reset(self) -> None:
        self.tags[:] = -1
        self.hits = 0
        self.misses = 0


# ----------------------------------------------------------------------
# Global-load cache hierarchy (cached-line devices)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class HierarchyOutcome:
    """Result of routing one global access through the L1/L2 levels."""

    lines: int          # distinct lines the access touched
    l1_hits: int
    l1_misses: int
    l2_hits: int
    l2_misses: int

    @property
    def dram_lines(self) -> int:
        """Lines that had to be fetched from DRAM."""
        return self.l2_misses


class CacheHierarchy:
    """Two-level cache for the global-load path of Fermi-class devices.

    Traced blocks execute sequentially, so a single L1 stands in for
    the per-SM L1s (the same modeling convention the constant/texture
    caches use) and a single L2 for the device-wide one.  Only lines
    that miss in L2 occupy the DRAM bus; the coalescing classifier
    still decides how many *transactions* the warp issues.
    """

    def __init__(self, spec: DeviceSpec) -> None:
        if not spec.has_cached_global_loads:
            raise ValueError(f"{spec.name} has no cached global path")
        line = spec.cache_line_bytes
        self.line_bytes = line
        self.l1: Optional[DirectMappedCache] = (
            DirectMappedCache(spec.l1_cache_bytes_per_sm, line, space="l1")
            if spec.l1_cache_bytes_per_sm else None)
        self.l2: Optional[DirectMappedCache] = (
            DirectMappedCache(spec.l2_cache_bytes, line, space="l2")
            if spec.l2_cache_bytes else None)

    def access(self, addresses: np.ndarray, active: np.ndarray,
               itemsize: int = 4) -> HierarchyOutcome:
        """Route one block-wide access through the hierarchy."""
        if not active.any():
            return HierarchyOutcome(0, 0, 0, 0, 0)
        addrs = addresses[active].astype(np.int64)
        first = addrs // self.line_bytes
        last = (addrs + itemsize - 1) // self.line_bytes
        lines = np.unique(np.concatenate([first, last]))
        l1_hits = l1_misses = l2_hits = l2_misses = 0
        missed = lines
        if self.l1 is not None:
            l1_hits, l1_misses, missed = self.l1.probe_lines(lines)
        if self.l2 is not None:
            l2_hits, l2_misses, missed = self.l2.probe_lines(missed)
        else:
            l2_misses = int(missed.size)
        return HierarchyOutcome(int(lines.size), l1_hits, l1_misses,
                                l2_hits, l2_misses)

    def reset(self) -> None:
        for level in (self.l1, self.l2):
            if level is not None:
                level.reset()
