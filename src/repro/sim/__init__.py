"""Performance models of the simulated GeForce 8800 GTX.

Three fidelities, cross-checked in the test suite:

* :mod:`repro.sim.bounds` — the paper's own back-of-envelope analysis
  (potential GFLOPS from the FMA issue fraction, bandwidth demand);
* :mod:`repro.sim.timing` — the calibrated analytical bottleneck model
  (instruction issue / SFU / bandwidth / latency);
* :mod:`repro.sim.warpsim` — an event-driven per-SM warp scheduler
  used to validate the analytical model on small configurations.

Plus the supporting substrate models: coalescing and bank conflicts
(:mod:`repro.sim.memsys`), occupancy (:mod:`repro.sim.occupancy`) and
the Opteron-class CPU baseline (:mod:`repro.sim.cpumodel`).
"""

from .bounds import BoundAnalysis, analyze_bounds
from .cpumodel import CpuCostParams, CpuSpec, CpuTimeEstimate, estimate_cpu_time
from .memsys import (
    CoalesceResult,
    DirectMappedCache,
    bank_conflict_degree,
    block_bank_conflicts,
    coalesce_block_access,
    coalesce_half_warp,
)
from .occupancy import Occupancy, compute_occupancy, occupancy_for_launch
from .timing import (
    KernelTimeEstimate,
    LaunchConfigError,
    estimate_kernel_time,
    estimate_time,
)
from .warpsim import WarpSimResult, simulate_launch, simulate_plan, simulate_sm

__all__ = [
    "BoundAnalysis",
    "analyze_bounds",
    "CpuCostParams",
    "CpuSpec",
    "CpuTimeEstimate",
    "estimate_cpu_time",
    "CoalesceResult",
    "DirectMappedCache",
    "bank_conflict_degree",
    "block_bank_conflicts",
    "coalesce_block_access",
    "coalesce_half_warp",
    "Occupancy",
    "compute_occupancy",
    "occupancy_for_launch",
    "KernelTimeEstimate",
    "LaunchConfigError",
    "estimate_kernel_time",
    "estimate_time",
    "WarpSimResult",
    "simulate_launch",
    "simulate_plan",
    "simulate_sm",
]
