"""Paper-style performance bound analysis.

Section 4 of the paper reasons about kernels with two back-of-envelope
numbers derived from the PTX:

* **potential throughput** — the GFLOPS attainable if instruction issue
  is the only limit: the fraction of issue slots that are fused
  multiply-adds times the device's multiply-add peak.  For the naive
  matmul the paper computes ``1/8`` of the G80's peak; for the
  unrolled tiled version ``16/59`` of peak.

* **bandwidth demand** — the off-chip bandwidth the kernel would
  consume while running at its potential throughput.  For the naive
  matmul: "1/4 of the operations ... are loads from off-chip memory",
  which at the G80's full issue rate demands roughly twice its pin
  bandwidth (the paper's SPs x load-fraction x bytes x clock formula).

These bounds are computed from a :class:`~repro.trace.trace.KernelTrace`
against any :class:`~repro.arch.device.DeviceSpec` — both peaks come
from the active spec — so the same analysis applies to every
application and device profile in the suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.device import DeviceSpec, DEFAULT_DEVICE
from ..trace.trace import KernelTrace


@dataclass(frozen=True)
class BoundAnalysis:
    """Potential-throughput and bandwidth-demand bounds for one kernel."""

    fma_fraction: float
    potential_gflops: float
    bandwidth_demand_gbs: float
    bandwidth_available_gbs: float
    memory_bound: bool

    @property
    def bandwidth_limited_gflops(self) -> float:
        """Throughput ceiling imposed by off-chip bandwidth alone."""
        if self.bandwidth_demand_gbs <= 0:
            return self.potential_gflops
        return self.potential_gflops * min(
            1.0, self.bandwidth_available_gbs / self.bandwidth_demand_gbs)


def analyze_bounds(trace: KernelTrace,
                   spec: DeviceSpec = DEFAULT_DEVICE) -> BoundAnalysis:
    """Compute the Section-4 bounds for a traced kernel.

    The bandwidth demand follows the paper's formula: useful bytes
    requested per issue-slot at full issue rate.  With ``I`` total warp
    instructions the kernel occupies ``I * 4`` SP cycles on one SM, i.e.
    ``I * 4 / num_sms`` cycles of device time at full occupancy, and
    moves ``useful_bytes`` over that window.
    """
    total_insts = trace.total_warp_insts
    if total_insts == 0:
        return BoundAnalysis(0.0, 0.0, 0.0, spec.dram_bandwidth_gbs, False)

    fma_frac = trace.fma_fraction
    potential = spec.peak_mad_gflops * fma_frac
    # SFU flops issue in parallel with the SP pipe; credit them on top,
    # capped at the device's combined SP+SFU peak.
    sfu_frac = trace.sfu_warp_insts / total_insts
    potential = min(potential + spec.peak_mad_gflops * sfu_frac * 0.5,
                    spec.peak_gflops_with_sfu)

    issue_cycles_device = (total_insts
                           * spec.timing.issue_cycles_per_warp_inst
                           / spec.num_sms)
    seconds_at_potential = issue_cycles_device / (spec.sp_clock_ghz * 1e9)
    if seconds_at_potential > 0:
        demand = trace.global_useful_bytes / seconds_at_potential / 1e9
    else:
        demand = 0.0

    return BoundAnalysis(
        fma_fraction=fma_frac,
        potential_gflops=potential,
        bandwidth_demand_gbs=demand,
        bandwidth_available_gbs=spec.dram_bandwidth_gbs,
        memory_bound=demand > spec.dram_bandwidth_gbs,
    )
