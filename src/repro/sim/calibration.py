"""Calibration of the timing model's free parameters.

The analytical model has three constants the paper does not publish:

* ``dram_efficiency`` — achievable fraction of the 86.4 GB/s pin rate,
* ``uncoalesced_replay_cycles`` — issue cost per serialized transaction
  of an uncoalesced access,
* ``global_latency_cycles`` — DRAM round-trip latency.

Following standard simulator practice, they are fit **once** against
the paper's Section 4 matrix-multiplication anchors (the only
experiment with absolute GFLOPS in the prose) and then frozen for the
entire application suite:

=================  ======================
variant            paper GFLOPS (4096^3)
=================  ======================
naive              10.58
tiled 16x16        46.49
tiled + unrolled   91.14
prefetch           87.10
=================  ======================

Run ``python -m repro.sim.calibration`` to regenerate the fit; the
chosen values are recorded as the defaults of
:class:`repro.arch.device.TimingParams`.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..arch.device import DeviceSpec, TimingParams, DEFAULT_DEVICE
from .timing import estimate_time

#: Paper-reported GFLOPS for the Section 4 study at 4096x4096.
SECTION4_ANCHORS: Dict[str, float] = {
    "naive": 10.58,
    "tiled": 46.49,
    "tiled_unrolled": 91.14,
    "prefetch": 87.10,
}


def collect_anchor_traces(n: int = 4096, trace_blocks: int = 2):
    """Trace the four Section 4 matmul variants at paper scale.

    Returns ``{variant: (trace, num_blocks, threads_per_block,
    regs_per_thread, smem_per_block)}``.
    """
    from ..apps.matmul import MatMul  # late import: apps depend on sim

    app = MatMul()
    out = {}
    for variant in SECTION4_ANCHORS:
        run = app.run({"n": n, "variant": variant, "tile": 16,
                       "trace_blocks": trace_blocks}, functional=False)
        launch = run.launches[0]
        out[variant] = (
            launch.trace,
            launch.num_blocks,
            launch.threads_per_block,
            launch.kernel.regs_per_thread,
            launch.smem_bytes_per_block,
        )
    return out


def _loss(spec: DeviceSpec, traces) -> float:
    err = 0.0
    for variant, target in SECTION4_ANCHORS.items():
        trace, nb, tpb, regs, smem = traces[variant]
        est = estimate_time(trace, nb, tpb, regs, smem, spec=spec)
        err += math.log(est.gflops / target) ** 2
    return err


def calibrate(
    traces=None,
    spec: DeviceSpec = DEFAULT_DEVICE,
    efficiencies: Optional[np.ndarray] = None,
    replays: Optional[np.ndarray] = None,
    latencies: Optional[np.ndarray] = None,
) -> Tuple[TimingParams, float]:
    """Grid-search the three free parameters against the anchors.

    Returns the best :class:`TimingParams` and the geometric-mean
    relative error of the fit.
    """
    traces = traces or collect_anchor_traces()
    efficiencies = efficiencies if efficiencies is not None \
        else np.arange(0.70, 0.96, 0.025)
    replays = replays if replays is not None \
        else np.arange(1.6, 3.4, 0.1)
    latencies = latencies if latencies is not None \
        else np.array([350.0, 420.0, 500.0])

    best = None
    best_loss = float("inf")
    for eta in efficiencies:
        for replay in replays:
            for lat in latencies:
                candidate = spec.with_timing(
                    dram_efficiency=float(eta),
                    uncoalesced_replay_cycles=float(replay),
                    global_latency_cycles=float(lat),
                )
                loss = _loss(candidate, traces)
                if loss < best_loss:
                    best_loss = loss
                    best = candidate.timing
    gmean_err = math.exp(math.sqrt(best_loss / len(SECTION4_ANCHORS))) - 1.0
    return best, gmean_err


def report(traces=None, spec: DeviceSpec = DEFAULT_DEVICE) -> str:
    """Human-readable paper-vs-model table for the current defaults."""
    traces = traces or collect_anchor_traces()
    lines = [f"{'variant':18s} {'paper':>8s} {'model':>8s} {'ratio':>7s}  bound"]
    for variant, target in SECTION4_ANCHORS.items():
        trace, nb, tpb, regs, smem = traces[variant]
        est = estimate_time(trace, nb, tpb, regs, smem, spec=spec)
        lines.append(f"{variant:18s} {target:8.2f} {est.gflops:8.2f} "
                     f"{est.gflops / target:7.3f}  {est.bound}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - calibration utility
    traces = collect_anchor_traces()
    params, err = calibrate(traces)
    print("fitted:", params)
    print(f"geometric-mean relative error: {err:.3%}")
    fitted_spec = replace(DEFAULT_DEVICE, timing=params)
    print(report(traces, fitted_spec))
