"""Calibration of the timing model's free parameters, per device.

The analytical model has three constants the paper does not publish:

* ``dram_efficiency`` — achievable fraction of the DRAM pin rate,
* ``uncoalesced_replay_cycles`` — issue cost per serialized transaction
  of an uncoalesced access,
* ``global_latency_cycles`` — DRAM round-trip latency.

Following standard simulator practice, they are fit **once per
device** against measured anchors and then frozen in that device's
factory.  For the paper's G80 the anchors are the Section 4
matrix-multiplication study (the only experiment with absolute GFLOPS
in the prose):

=================  ======================
variant            paper GFLOPS (4096^3)
=================  ======================
naive              10.58
tiled 16x16        46.49
tiled + unrolled   91.14
prefetch           87.10
=================  ======================

For other registered devices, :func:`calibrate` takes any
``{variant: GFLOPS}`` anchor mapping (e.g. your own measurements of
the same four kernels) and fits the same three parameters with traces
collected under *that* device's coalescing and cache model.

Run ``python -m repro.sim.calibration [--device NAME]`` to regenerate
the fit (or, for devices without anchors, the model-vs-anchor ladder
table); chosen values are recorded in the device factories of
:mod:`repro.arch.device`.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..arch.device import DeviceSpec, TimingParams, DEFAULT_DEVICE
from .timing import estimate_time

#: Paper-reported GFLOPS for the Section 4 study at 4096x4096 —
#: measured on the GeForce 8800 GTX, i.e. anchors for the default
#: device only.
SECTION4_ANCHORS: Dict[str, float] = {
    "naive": 10.58,
    "tiled": 46.49,
    "tiled_unrolled": 91.14,
    "prefetch": 87.10,
}


def collect_anchor_traces(n: int = 4096, trace_blocks: int = 2,
                          spec: DeviceSpec = DEFAULT_DEVICE):
    """Trace the four Section 4 matmul variants at paper scale on
    ``spec`` (the device's own coalescing/cache rules apply).

    Returns ``{variant: (trace, num_blocks, threads_per_block,
    regs_per_thread, smem_per_block)}``.
    """
    from ..apps.matmul import MatMul  # late import: apps depend on sim

    app = MatMul(spec)
    out = {}
    for variant in SECTION4_ANCHORS:
        run = app.run({"n": n, "variant": variant, "tile": 16,
                       "trace_blocks": trace_blocks}, functional=False)
        launch = run.launches[0]
        out[variant] = (
            launch.trace,
            launch.num_blocks,
            launch.threads_per_block,
            launch.kernel.regs_per_thread,
            launch.smem_bytes_per_block,
        )
    return out


def _loss(spec: DeviceSpec, traces, anchors: Dict[str, float]) -> float:
    err = 0.0
    for variant, target in anchors.items():
        trace, nb, tpb, regs, smem = traces[variant]
        est = estimate_time(trace, nb, tpb, regs, smem, spec=spec)
        err += math.log(est.gflops / target) ** 2
    return err


def calibrate(
    traces=None,
    spec: DeviceSpec = DEFAULT_DEVICE,
    anchors: Optional[Dict[str, float]] = None,
    efficiencies: Optional[np.ndarray] = None,
    replays: Optional[np.ndarray] = None,
    latencies: Optional[np.ndarray] = None,
) -> Tuple[TimingParams, float]:
    """Grid-search the three free parameters against the anchors.

    ``anchors`` defaults to the G80 paper measurements; pass your own
    ``{variant: GFLOPS}`` mapping to fit a different device.  Returns
    the best :class:`TimingParams` and the geometric-mean relative
    error of the fit.
    """
    anchors = anchors or SECTION4_ANCHORS
    traces = traces or collect_anchor_traces(spec=spec)
    efficiencies = efficiencies if efficiencies is not None \
        else np.arange(0.70, 0.96, 0.025)
    replays = replays if replays is not None \
        else np.arange(1.6, 3.4, 0.1)
    latencies = latencies if latencies is not None \
        else np.array([350.0, 420.0, 500.0])

    best = None
    best_loss = float("inf")
    for eta in efficiencies:
        for replay in replays:
            for lat in latencies:
                candidate = spec.with_timing(
                    dram_efficiency=float(eta),
                    uncoalesced_replay_cycles=float(replay),
                    global_latency_cycles=float(lat),
                )
                loss = _loss(candidate, traces, anchors)
                if loss < best_loss:
                    best_loss = loss
                    best = candidate.timing
    gmean_err = math.exp(math.sqrt(best_loss / len(anchors))) - 1.0
    return best, gmean_err


def report(traces=None, spec: DeviceSpec = DEFAULT_DEVICE,
           anchors: Optional[Dict[str, float]] = None) -> str:
    """Human-readable anchor-vs-model table for ``spec``'s timing."""
    anchors = anchors or SECTION4_ANCHORS
    traces = traces or collect_anchor_traces(spec=spec)
    lines = [f"{'variant':18s} {'anchor':>8s} {'model':>8s} {'ratio':>7s}  bound"]
    for variant, target in anchors.items():
        trace, nb, tpb, regs, smem = traces[variant]
        est = estimate_time(trace, nb, tpb, regs, smem, spec=spec)
        lines.append(f"{variant:18s} {target:8.2f} {est.gflops:8.2f} "
                     f"{est.gflops / target:7.3f}  {est.bound}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - calibration utility
    import argparse

    from ..arch.registry import device_by_name, device_names

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--device", default="geforce_8800_gtx",
                        choices=device_names(),
                        help="device profile to trace and fit")
    parser.add_argument("--n", type=int, default=4096,
                        help="matrix size of the anchor workload")
    cli = parser.parse_args()

    dev = device_by_name(cli.device)
    traces = collect_anchor_traces(n=cli.n, spec=dev)
    if cli.device == "geforce_8800_gtx":
        params, err = calibrate(traces, spec=dev)
        print("fitted:", params)
        print(f"geometric-mean relative error: {err:.3%}")
        fitted_spec = replace(dev, timing=params)
        print(report(traces, fitted_spec))
    else:
        # No published measurements exist for this profile; print the
        # ladder under the factory timing (the anchor column is the
        # G80 measurement, shown for scale, not as a target).
        print(f"{dev.name}: no measured anchors — factory timing")
        print(report(traces, dev))
