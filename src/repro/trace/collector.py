"""Trace collection — stage 3 of the execution pipeline.

A :class:`TraceCollector` owns everything that used to be inlined in
``launch()`` *after* a block ran: accumulating per-block traces,
tracking the shared-memory high-water mark, capturing the recorded
instruction stream of the first traced block, and finally scaling the
sampled trace to the full grid.

It also owns the **trace memoization cache**.  The paper's methodology
reasons from the PTX of *one* block and scales; for regular grids the
interior blocks are architecturally identical, so with ``memoize=True``
on the plan the collector traces one block per *equivalence class*
(``(kernel, block shape, grid-boundary signature)`` — see
:meth:`repro.cuda.plan.LaunchPlan.equivalence_class`) and reuses that
trace for every other sampled block of the class.  This is opt-in
because the read-only cache statistics are stateful across traced
blocks: memoization replays the first block's cold-cache misses for
the whole class instead of observing warm-cache hits.

The collector is deliberately executor-agnostic: backends call
:meth:`classify` / :meth:`begin_block` / :meth:`finish_block` and never
touch the merge/scale/memo machinery directly.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Tuple

from ..obs.registry import get_registry
from .trace import KernelTrace

#: block dispositions returned by :meth:`TraceCollector.classify`
TRACE, MEMO, PLAIN = "trace", "memo", "plain"


class TraceCollector:
    """Accumulates one launch's trace from per-block executions.

    With ``timed=True`` (set by the executor when a profiler or
    metrics registry is active) the collector accumulates the wall
    time of its own bookkeeping in :attr:`collect_seconds`, giving the
    pipeline's "collect" stage; untimed collectors pay nothing.
    """

    def __init__(self, plan, timed: bool = False) -> None:
        self.plan = plan
        self.merged = KernelTrace()
        self.smem_bytes = plan.kernel.static_smem_bytes
        self.stream: Optional[list] = None
        self.first_traced: Optional[int] = min(plan.traced) if plan.traced \
            else None
        self.memo_hits = 0
        #: classify() outcomes per disposition
        self.dispositions: Dict[str, int] = {TRACE: 0, MEMO: 0, PLAIN: 0}
        #: wall seconds spent in collector bookkeeping (timed only)
        self.collect_seconds = 0.0
        self._timed = timed
        self._registry = get_registry()
        self._memo: Dict[Tuple, Tuple[KernelTrace, int]] = {}

    # ------------------------------------------------------------------
    # Per-block protocol (called by executors)
    # ------------------------------------------------------------------
    def wants_stream(self, linear: int) -> bool:
        """Should this block record its ordered instruction stream?"""
        return self.plan.record_stream and linear == self.first_traced

    def classify(self, linear: int) -> str:
        """Disposition of one block: ``TRACE`` (execute with tracing),
        ``MEMO`` (trace satisfied from the memo cache — merged as a
        side effect; execute untraced iff the launch is functional) or
        ``PLAIN`` (untraced functional block)."""
        if self._timed:
            t0 = perf_counter()
            mode = self._classify(linear)
            self.collect_seconds += perf_counter() - t0
        else:
            mode = self._classify(linear)
        self.dispositions[mode] += 1
        return mode

    def _classify(self, linear: int) -> str:
        if linear not in self.plan.traced_set:
            return PLAIN
        if self.plan.memoize and not self.wants_stream(linear):
            hit = self._memo.get(self.plan.equivalence_class(linear))
            if hit is not None:
                trace, smem = hit
                self.merged.merge(trace)
                self.smem_bytes = max(self.smem_bytes, smem)
                self.memo_hits += 1
                if self._registry.enabled:
                    self._registry.counter(
                        "collector.memo_hits",
                        kernel=self.plan.kernel.name).inc()
                return MEMO
        return TRACE

    def begin_block(self, linear: int) -> Tuple[KernelTrace, Optional[list]]:
        """Fresh trace (and stream sink, when recording) for one traced
        block's :class:`~repro.cuda.context.BlockContext`."""
        return KernelTrace(), ([] if self.wants_stream(linear) else None)

    def finish_block(self, linear: int, ctx) -> None:
        """Fold one traced block's context back into the launch trace."""
        if self._timed:
            t0 = perf_counter()
            self._finish_block(linear, ctx)
            self.collect_seconds += perf_counter() - t0
        else:
            self._finish_block(linear, ctx)

    def _finish_block(self, linear: int, ctx) -> None:
        ctx.trace.blocks_traced = 1
        ctx.trace.threads_traced = self.plan.block.size
        block_smem = ctx.smem_bytes + self.plan.kernel.static_smem_bytes
        if self.plan.memoize:
            self._memo.setdefault(self.plan.equivalence_class(linear),
                                  (ctx.trace, block_smem))
        self.merged.merge(ctx.trace)
        self.smem_bytes = max(self.smem_bytes, block_smem)
        if ctx.stream is not None:
            self.stream = ctx.stream

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self) -> KernelTrace:
        """Scale the sampled trace to the full grid (the paper's
        per-block-PTX extrapolation)."""
        merged = self.merged
        if merged.blocks_traced:
            scale = self.plan.grid.size / merged.blocks_traced
            merged = merged.scaled(scale)
            merged.blocks_traced = len(self.plan.traced)
        return merged
