"""Kernel execution traces.

A :class:`KernelTrace` is the bridge between the functional layer (the
kernel DSL in :mod:`repro.cuda.context`, which executes kernels on real
NumPy data) and the performance layer (:mod:`repro.sim`).  While a
kernel runs, the DSL records

* dynamic warp-instruction counts per :class:`~repro.trace.instr.InstrClass`
  (divergence-aware: a warp instruction is counted whenever *any* thread
  of the warp is active);
* thread-instruction counts (for flop accounting);
* global-memory transaction statistics from the device's coalescing
  rule (strict half-warp segments or cached full-warp lines, per the
  active :class:`~repro.arch.device.DeviceSpec`), broken down per
  named array so that access-pattern figures such as the paper's
  Figure 5 can be regenerated;
* shared-memory bank-conflict serialization cycles;
* constant/texture (and, on cached-global devices, L1/L2) cache hit
  statistics and barrier counts.

Traces are collected on a *sample* of thread blocks and scaled to the
full grid with :meth:`KernelTrace.scaled`, mirroring how one reasons
from per-block PTX in the paper.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

from .instr import InstrClass, flops_of, GLOBAL_MEMORY_CLASSES, SFU_CLASSES


@dataclass
class ArrayAccessStats:
    """Per-array global-memory access statistics (drives Figure 5)."""

    array: str
    warp_accesses: float = 0.0      # coalescing-group access events
    transactions: float = 0.0       # memory transactions issued
    bus_bytes: float = 0.0          # bytes occupying the DRAM bus
    useful_bytes: float = 0.0       # bytes actually requested by threads
    coalesced_accesses: float = 0.0  # access events at minimal transactions

    @property
    def transactions_per_access(self) -> float:
        """Average transactions per coalescing-group access (1.0 =
        perfectly coalesced for word-sized accesses)."""
        if self.warp_accesses == 0:
            return 0.0
        return self.transactions / self.warp_accesses

    @property
    def bus_efficiency(self) -> float:
        """Fraction of bus traffic that was actually requested data."""
        if self.bus_bytes == 0:
            return 1.0
        return self.useful_bytes / self.bus_bytes

    def merge(self, other: "ArrayAccessStats") -> None:
        self.warp_accesses += other.warp_accesses
        self.transactions += other.transactions
        self.bus_bytes += other.bus_bytes
        self.useful_bytes += other.useful_bytes
        self.coalesced_accesses += other.coalesced_accesses

    def scaled(self, factor: float) -> "ArrayAccessStats":
        return ArrayAccessStats(
            array=self.array,
            warp_accesses=self.warp_accesses * factor,
            transactions=self.transactions * factor,
            bus_bytes=self.bus_bytes * factor,
            useful_bytes=self.useful_bytes * factor,
            coalesced_accesses=self.coalesced_accesses * factor,
        )


@dataclass
class KernelTrace:
    """Aggregated dynamic statistics of (part of) a kernel launch."""

    warp_insts: Counter = field(default_factory=Counter)
    thread_insts: Counter = field(default_factory=Counter)
    flops: float = 0.0

    # global memory
    global_transactions: float = 0.0
    global_bus_bytes: float = 0.0
    global_useful_bytes: float = 0.0
    uncoalesced_transactions: float = 0.0
    per_array: Dict[str, ArrayAccessStats] = field(default_factory=dict)

    # load/store split of the global traffic (nvprof's gld_*/gst_*
    # vocabulary; atomics and cache-fill refills stay out of the split
    # and only appear in the combined totals above)
    gld_accesses: float = 0.0
    gld_transactions: float = 0.0
    gld_bus_bytes: float = 0.0
    gld_useful_bytes: float = 0.0
    gst_accesses: float = 0.0
    gst_transactions: float = 0.0
    gst_bus_bytes: float = 0.0
    gst_useful_bytes: float = 0.0

    # shared memory
    shared_conflict_cycles: float = 0.0   # extra serialization cycles

    # cached read-only paths
    const_hits: float = 0.0
    const_misses: float = 0.0
    tex_hits: float = 0.0
    tex_misses: float = 0.0

    # cached global path (devices with an L1/L2 hierarchy)
    l1_hits: float = 0.0
    l1_misses: float = 0.0
    l2_hits: float = 0.0
    l2_misses: float = 0.0

    # branch divergence (warps whose active lanes disagree on a branch
    # condition, and the warp-instructions issued under the resulting
    # partial masks — the serialized-path cost of Section 4's
    # control-flow discussion)
    branch_warps: float = 0.0
    divergent_branch_warps: float = 0.0
    divergence_serialized_warp_insts: float = 0.0

    syncs: float = 0.0
    blocks_traced: int = 0
    threads_traced: float = 0.0

    # ------------------------------------------------------------------
    # Recording API (called by the kernel DSL)
    # ------------------------------------------------------------------
    def record_instr(self, cls: InstrClass, warps: float, threads: float) -> None:
        """Record ``warps`` warp-instructions covering ``threads`` active
        threads of class ``cls``."""
        self.warp_insts[cls] += warps
        self.thread_insts[cls] += threads
        self.flops += flops_of(cls) * threads
        if cls is InstrClass.SYNC:
            self.syncs += warps

    def record_global_access(
        self,
        array: str,
        warp_accesses: float,
        transactions: float,
        bus_bytes: float,
        useful_bytes: float,
        coalesced_accesses: float,
        kind: str = "ld",
        request_bus_bytes: Optional[float] = None,
    ) -> None:
        """Record the coalescing outcome of global load/store events.

        ``kind`` names the access class: ``"ld"`` and ``"st"`` feed the
        nvprof-style load/store split (``gld_*`` / ``gst_*``); ``"atom"``
        (serialized atomics) and ``"fill"`` (const/tex cache refills)
        count only toward the combined totals.

        ``request_bus_bytes`` is the transaction-level traffic the
        access *pattern* requires (the coalescing classifier's verdict
        before any global cache absorbs it); on cached devices
        ``bus_bytes`` is the post-cache DRAM occupancy, so the split —
        which measures access-pattern quality — keeps the request-level
        number.  Defaults to ``bus_bytes`` (uncached path).
        """
        if request_bus_bytes is None:
            request_bus_bytes = bus_bytes
        self.global_transactions += transactions
        self.global_bus_bytes += bus_bytes
        self.global_useful_bytes += useful_bytes
        self.uncoalesced_transactions += transactions - coalesced_accesses
        if kind == "ld":
            self.gld_accesses += warp_accesses
            self.gld_transactions += transactions
            self.gld_bus_bytes += request_bus_bytes
            self.gld_useful_bytes += useful_bytes
        elif kind == "st":
            self.gst_accesses += warp_accesses
            self.gst_transactions += transactions
            self.gst_bus_bytes += request_bus_bytes
            self.gst_useful_bytes += useful_bytes
        elif kind not in ("atom", "fill"):  # pragma: no cover - defensive
            raise ValueError(f"unknown global access kind {kind!r}")
        stats = self.per_array.setdefault(array, ArrayAccessStats(array))
        stats.warp_accesses += warp_accesses
        stats.transactions += transactions
        stats.bus_bytes += bus_bytes
        stats.useful_bytes += useful_bytes
        stats.coalesced_accesses += coalesced_accesses

    def record_branch(self, warps: float, divergent_warps: float) -> None:
        """Record a branch executed by ``warps`` warps of which
        ``divergent_warps`` had active lanes disagreeing on the
        condition (both sides of the branch serialize for them)."""
        self.branch_warps += warps
        self.divergent_branch_warps += divergent_warps

    def record_divergent_issue(self, partial_warps: float) -> None:
        """Record ``partial_warps`` warp-instruction issues whose mask
        excluded lanes that are active at full reconvergence — the
        per-instruction serialization overhead of a divergent region."""
        self.divergence_serialized_warp_insts += partial_warps

    def record_shared_conflict(self, extra_cycles: float) -> None:
        self.shared_conflict_cycles += extra_cycles

    def record_cache(self, space: str, hits: float, misses: float) -> None:
        if space == "const":
            self.const_hits += hits
            self.const_misses += misses
        elif space == "tex":
            self.tex_hits += hits
            self.tex_misses += misses
        elif space == "l1":
            self.l1_hits += hits
            self.l1_misses += misses
        elif space == "l2":
            self.l2_hits += hits
            self.l2_misses += misses
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown cached space {space!r}")

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "KernelTrace") -> None:
        """Accumulate another trace (e.g. from another traced block)."""
        self.warp_insts.update(other.warp_insts)
        self.thread_insts.update(other.thread_insts)
        self.flops += other.flops
        self.global_transactions += other.global_transactions
        self.global_bus_bytes += other.global_bus_bytes
        self.global_useful_bytes += other.global_useful_bytes
        self.uncoalesced_transactions += other.uncoalesced_transactions
        self.gld_accesses += other.gld_accesses
        self.gld_transactions += other.gld_transactions
        self.gld_bus_bytes += other.gld_bus_bytes
        self.gld_useful_bytes += other.gld_useful_bytes
        self.gst_accesses += other.gst_accesses
        self.gst_transactions += other.gst_transactions
        self.gst_bus_bytes += other.gst_bus_bytes
        self.gst_useful_bytes += other.gst_useful_bytes
        for name, stats in other.per_array.items():
            self.per_array.setdefault(name, ArrayAccessStats(name)).merge(stats)
        self.shared_conflict_cycles += other.shared_conflict_cycles
        self.const_hits += other.const_hits
        self.const_misses += other.const_misses
        self.tex_hits += other.tex_hits
        self.tex_misses += other.tex_misses
        self.l1_hits += other.l1_hits
        self.l1_misses += other.l1_misses
        self.l2_hits += other.l2_hits
        self.l2_misses += other.l2_misses
        self.branch_warps += other.branch_warps
        self.divergent_branch_warps += other.divergent_branch_warps
        self.divergence_serialized_warp_insts += \
            other.divergence_serialized_warp_insts
        self.syncs += other.syncs
        self.blocks_traced += other.blocks_traced
        self.threads_traced += other.threads_traced

    def scaled(self, factor: float) -> "KernelTrace":
        """Return this trace scaled by ``factor`` (sampled blocks ->
        full grid extrapolation)."""
        out = KernelTrace()
        out.warp_insts = Counter({k: v * factor for k, v in self.warp_insts.items()})
        out.thread_insts = Counter({k: v * factor for k, v in self.thread_insts.items()})
        out.flops = self.flops * factor
        out.global_transactions = self.global_transactions * factor
        out.global_bus_bytes = self.global_bus_bytes * factor
        out.global_useful_bytes = self.global_useful_bytes * factor
        out.uncoalesced_transactions = self.uncoalesced_transactions * factor
        out.gld_accesses = self.gld_accesses * factor
        out.gld_transactions = self.gld_transactions * factor
        out.gld_bus_bytes = self.gld_bus_bytes * factor
        out.gld_useful_bytes = self.gld_useful_bytes * factor
        out.gst_accesses = self.gst_accesses * factor
        out.gst_transactions = self.gst_transactions * factor
        out.gst_bus_bytes = self.gst_bus_bytes * factor
        out.gst_useful_bytes = self.gst_useful_bytes * factor
        out.per_array = {k: v.scaled(factor) for k, v in self.per_array.items()}
        out.shared_conflict_cycles = self.shared_conflict_cycles * factor
        out.const_hits = self.const_hits * factor
        out.const_misses = self.const_misses * factor
        out.tex_hits = self.tex_hits * factor
        out.tex_misses = self.tex_misses * factor
        out.l1_hits = self.l1_hits * factor
        out.l1_misses = self.l1_misses * factor
        out.l2_hits = self.l2_hits * factor
        out.l2_misses = self.l2_misses * factor
        out.branch_warps = self.branch_warps * factor
        out.divergent_branch_warps = self.divergent_branch_warps * factor
        out.divergence_serialized_warp_insts = \
            self.divergence_serialized_warp_insts * factor
        out.syncs = self.syncs * factor
        out.blocks_traced = self.blocks_traced  # identity of the sample
        out.threads_traced = self.threads_traced * factor
        return out

    # ------------------------------------------------------------------
    # Derived metrics (the paper's analysis vocabulary)
    # ------------------------------------------------------------------
    @property
    def total_warp_insts(self) -> float:
        return float(sum(self.warp_insts.values()))

    @property
    def fma_fraction(self) -> float:
        """Fraction of dynamic instructions that are fused multiply-adds
        — the paper's "1 out of 8" / "16 out of 59" metric."""
        total = self.total_warp_insts
        if total == 0:
            return 0.0
        return self.warp_insts[InstrClass.FMA] / total

    @property
    def flop_fraction(self) -> float:
        """Fraction of instructions contributing flops (FMA/FADD/FMUL/SFU)."""
        total = self.total_warp_insts
        if total == 0:
            return 0.0
        n = sum(self.warp_insts[c] for c in
                (InstrClass.FMA, InstrClass.FADD, InstrClass.FMUL, InstrClass.SFU))
        return n / total

    @property
    def global_memory_warp_insts(self) -> float:
        return float(sum(self.warp_insts[c] for c in GLOBAL_MEMORY_CLASSES))

    @property
    def sfu_warp_insts(self) -> float:
        return float(sum(self.warp_insts[c] for c in SFU_CLASSES))

    @property
    def memory_to_compute_ratio(self) -> float:
        """Global-memory warp instructions per non-memory warp
        instruction — the paper Table 3 "ratio of global memory cycles
        to computation cycles" analogue."""
        mem = self.global_memory_warp_insts
        comp = self.total_warp_insts - mem
        if comp <= 0:
            return float("inf") if mem > 0 else 0.0
        return mem / comp

    @property
    def gld_efficiency(self) -> float:
        """Requested over delivered global-load bytes (nvprof's
        ``gld_efficiency``): 1.0 when every bus byte a load transaction
        moves was asked for by some thread."""
        if self.gld_bus_bytes == 0:
            return 1.0
        return self.gld_useful_bytes / self.gld_bus_bytes

    @property
    def gst_efficiency(self) -> float:
        """Requested over delivered global-store bytes (nvprof's
        ``gst_efficiency``)."""
        if self.gst_bus_bytes == 0:
            return 1.0
        return self.gst_useful_bytes / self.gst_bus_bytes

    @property
    def divergent_branch_fraction(self) -> float:
        """Fraction of branch warp-executions whose active lanes
        disagreed on the condition (0.0 when no branches ran)."""
        if self.branch_warps == 0:
            return 0.0
        return self.divergent_branch_warps / self.branch_warps

    @property
    def divergence_serialized_fraction(self) -> float:
        """Fraction of all warp-instruction issues executed under a
        divergence-narrowed mask — issue slots whose idle lanes are
        the serialized other path."""
        total = self.total_warp_insts
        if total == 0:
            return 0.0
        return self.divergence_serialized_warp_insts / total

    @property
    def coalesced_fraction(self) -> float:
        """Fraction of global transactions that came from fully
        coalesced access groups."""
        if self.global_transactions == 0:
            return 1.0
        return 1.0 - self.uncoalesced_transactions / self.global_transactions

    def instruction_mix(self) -> Dict[str, float]:
        """Normalized dynamic instruction mix (for reports)."""
        total = self.total_warp_insts
        if total == 0:
            return {}
        return {cls.value: count / total
                for cls, count in sorted(self.warp_insts.items(),
                                         key=lambda kv: -kv[1])}

    def summary(self) -> Dict[str, float]:
        return {
            "warp_insts": self.total_warp_insts,
            "flops": self.flops,
            "fma_fraction": self.fma_fraction,
            "global_transactions": self.global_transactions,
            "global_bus_bytes": self.global_bus_bytes,
            "coalesced_fraction": self.coalesced_fraction,
            "gld_efficiency": self.gld_efficiency,
            "gst_efficiency": self.gst_efficiency,
            "memory_to_compute_ratio": self.memory_to_compute_ratio,
            "shared_conflict_cycles": self.shared_conflict_cycles,
            "branch_warps": self.branch_warps,
            "divergent_branch_warps": self.divergent_branch_warps,
            "divergent_branch_fraction": self.divergent_branch_fraction,
            "divergence_serialized_warp_insts":
                self.divergence_serialized_warp_insts,
            "syncs": self.syncs,
        }
