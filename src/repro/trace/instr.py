"""Instruction taxonomy for kernel traces.

The paper reasons about performance from PTX instruction mixes ("one
fused multiply-add out of eight operations in the inner loop", "16 out
of 59 instructions").  Our kernel DSL emits instructions in the classes
below; the bounds model (:mod:`repro.sim.bounds`) and the analytical
timing model (:mod:`repro.sim.timing`) consume the per-class counts.
"""

from __future__ import annotations

import enum


class InstrClass(enum.Enum):
    """Dynamic instruction classes recognized by the timing models."""

    FMA = "fma"            # fused multiply-add (2 flops)
    FADD = "fadd"          # floating add/sub (1 flop)
    FMUL = "fmul"          # floating multiply (1 flop)
    FDIV = "fdiv"          # floating divide (multi-cycle, SFU-assisted)
    FCMP = "fcmp"          # floating compare / min / max
    IALU = "ialu"          # integer add/sub/logic/shift, address arithmetic
    IMUL = "imul"          # integer multiply (4 ops/clock on G80 -> slower)
    SETP = "setp"          # predicate-setting compare
    BRANCH = "branch"      # conditional/unconditional branch
    SFU = "sfu"            # transcendental: sin, cos, rsqrt, exp, log
    CVT = "cvt"            # type conversion / move
    LD_GLOBAL = "ld.global"
    ST_GLOBAL = "st.global"
    LD_SHARED = "ld.shared"
    ST_SHARED = "st.shared"
    LD_CONST = "ld.const"
    LD_TEX = "ld.tex"
    LD_LOCAL = "ld.local"
    ST_LOCAL = "st.local"
    SYNC = "sync"          # __syncthreads barrier
    ATOM_GLOBAL = "atom.global"
    MISC = "misc"


#: Floating-point operations contributed by one *thread* executing one
#: instruction of each class (used for GFLOPS accounting).
FLOPS_PER_THREAD = {
    InstrClass.FMA: 2,
    InstrClass.FADD: 1,
    InstrClass.FMUL: 1,
    InstrClass.FDIV: 1,
    InstrClass.FCMP: 0,
    InstrClass.SFU: 1,
}

#: Instruction classes that touch the global-memory system.
GLOBAL_MEMORY_CLASSES = frozenset({
    InstrClass.LD_GLOBAL,
    InstrClass.ST_GLOBAL,
    InstrClass.LD_LOCAL,
    InstrClass.ST_LOCAL,
    InstrClass.ATOM_GLOBAL,
})

#: Read-only cached paths (constant and texture) — they only reach DRAM
#: on a cache miss, which the memory model accounts separately.
CACHED_MEMORY_CLASSES = frozenset({InstrClass.LD_CONST, InstrClass.LD_TEX})

#: Classes executed on the SFU pipe rather than the SP pipe.
SFU_CLASSES = frozenset({InstrClass.SFU, InstrClass.FDIV})

#: Shared-memory classes, subject to bank-conflict serialization.
SHARED_MEMORY_CLASSES = frozenset({InstrClass.LD_SHARED, InstrClass.ST_SHARED})


def flops_of(cls: InstrClass) -> int:
    """Flops contributed per thread by one instruction of class ``cls``."""
    return FLOPS_PER_THREAD.get(cls, 0)


def is_global_memory(cls: InstrClass) -> bool:
    return cls in GLOBAL_MEMORY_CLASSES


def is_sfu(cls: InstrClass) -> bool:
    return cls in SFU_CLASSES
