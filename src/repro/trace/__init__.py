"""Dynamic instruction traces emitted by the kernel DSL.

The trace layer plays the role of PTX inspection in the paper: it
exposes the dynamic instruction mix, memory transaction counts and
coalescing quality that Section 4's performance arguments are built on.
"""

from .instr import (
    InstrClass,
    FLOPS_PER_THREAD,
    GLOBAL_MEMORY_CLASSES,
    CACHED_MEMORY_CLASSES,
    SFU_CLASSES,
    SHARED_MEMORY_CLASSES,
    flops_of,
    is_global_memory,
    is_sfu,
)
from .trace import ArrayAccessStats, KernelTrace
from .collector import TraceCollector

__all__ = [
    "InstrClass",
    "FLOPS_PER_THREAD",
    "GLOBAL_MEMORY_CLASSES",
    "CACHED_MEMORY_CLASSES",
    "SFU_CLASSES",
    "SHARED_MEMORY_CLASSES",
    "flops_of",
    "is_global_memory",
    "is_sfu",
    "ArrayAccessStats",
    "KernelTrace",
    "TraceCollector",
]
