"""Launch planning — stage 1 of the execution pipeline.

A kernel launch used to be one monolithic loop inside ``launch()``;
it is now three explicit layers:

``LaunchPlan`` (this module)
    Captures and validates everything a launch needs *before* any
    block runs: grid/block geometry against the device limits, the
    deterministic traced-block sample, the per-SM read-only caches,
    and the execution/tracing switches.  A plan is inert data — it can
    be inspected, re-executed, or handed to a different backend.

:mod:`repro.cuda.executors`
    Pluggable backends that walk the plan's blocks: the reference
    ``SequentialExecutor`` (one :class:`BlockContext` per block, the
    original semantics), the ``BatchedExecutor`` (vectorizes the
    untraced functional sweep across many homogeneous blocks at once),
    the ``CompiledExecutor`` (runs a whole-grid NumPy program lowered
    AOT from the kernel's AST by :mod:`repro.compile`) and the opt-in
    ``ProcessPoolExecutor`` (shards block ranges across forked
    workers).

:class:`repro.trace.collector.TraceCollector`
    Owns trace merging, sample-to-grid scaling, stream recording and
    the trace memoization cache keyed on ``(kernel, block shape, block
    equivalence class)``.

``launch()`` in :mod:`repro.cuda.launch` is a thin facade over
``LaunchPlan.build(...).execute(...)``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.device import DeviceSpec
from ..obs.spans import span
from ..sim.memsys import CacheHierarchy, DirectMappedCache
from ..trace.trace import KernelTrace
from .dim3 import Dim3, DimLike, as_dim3
from .context import BlockContext
from .memory import CudaModelError, Device
from .launch import Kernel, LaunchResult


def validate_launch(spec: DeviceSpec, grid: Dim3, block: Dim3) -> None:
    """Reject configurations the hardware cannot schedule."""
    if block.size > spec.max_threads_per_block:
        raise CudaModelError(
            f"block of {block.size} threads exceeds the "
            f"{spec.max_threads_per_block}-thread limit")
    if block.z > 64:
        raise CudaModelError("blockDim.z is limited to 64")
    if grid.x > spec.max_grid_dim or grid.y > spec.max_grid_dim:
        raise CudaModelError(
            f"grid {grid} exceeds the {spec.max_grid_dim} per-dimension limit")
    if grid.z != 1:
        raise CudaModelError("grids are two-dimensional on this device")


#: active launch observers — every plan built while an observer is
#: registered is passed to it (see :func:`observe_plans`)
_PLAN_OBSERVERS: List[Callable[["LaunchPlan"], None]] = []


@contextlib.contextmanager
def observe_plans(sink: Callable[["LaunchPlan"], None]):
    """Record every :class:`LaunchPlan` built inside the block.

    The inter-launch dataflow rule (R7 in :mod:`repro.analysis.rules`)
    uses this to capture an application's whole launch sequence —
    kernel, geometry and the real device arrays each launch binds —
    without the application cooperating.
    """
    _PLAN_OBSERVERS.append(sink)
    try:
        yield sink
    finally:
        _PLAN_OBSERVERS.remove(sink)


def sample_blocks(grid: Dim3, n: int) -> Sequence[int]:
    """Deterministic, evenly spread sample of linear block indices.

    Includes the first and last block so boundary-condition code paths
    are observed.
    """
    total = grid.size
    if total <= n:
        return list(range(total))
    idx = np.unique(np.linspace(0, total - 1, n).astype(np.int64))
    return [int(i) for i in idx]


#: per-axis position classes for the block equivalence relation
_LO, _MID, _HI, _ONLY = "lo", "mid", "hi", "only"


def _axis_class(coord: int, dim: int) -> str:
    if dim == 1:
        return _ONLY
    if coord == 0:
        return _LO
    if coord == dim - 1:
        return _HI
    return _MID


@dataclass
class LaunchPlan:
    """Everything one kernel launch needs, decided up front.

    Build with :meth:`build` (which validates), then :meth:`execute`
    with any executor backend.  The ``traced`` sample and the cache
    objects are part of the plan so that every backend observes the
    same blocks and the same cache state evolution.
    """

    kernel: Kernel
    grid: Dim3
    block: Dim3
    args: Tuple = ()
    device: Optional[Device] = None
    functional: bool = True
    trace_enabled: bool = True
    trace_blocks: int = 4
    record_stream: bool = False
    #: reuse traces across blocks of the same equivalence class
    #: (opt-in: collapses per-class cache statistics onto one block)
    memoize: bool = False
    traced: Tuple[int, ...] = ()
    #: "const"/"tex" read-only caches, plus a "global" CacheHierarchy
    #: on devices whose global loads are cached (Fermi and later)
    caches: Dict[str, object] = field(default_factory=dict)
    #: wall time spent in :meth:`build` (the pipeline's "plan" stage)
    build_seconds: float = 0.0

    def __post_init__(self) -> None:
        self._traced_set = frozenset(self.traced)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        kern: Kernel,
        grid: DimLike,
        block: DimLike,
        args: Tuple = (),
        device: Optional[Device] = None,
        functional: bool = True,
        trace_blocks: int = 4,
        trace: bool = True,
        record_stream: bool = False,
        memoize: bool = False,
    ) -> "LaunchPlan":
        t0 = perf_counter()
        with span("plan.build", kernel=kern.name):
            device = device if device is not None else Device()
            spec = device.spec
            grid = as_dim3(grid)
            block = as_dim3(block)
            validate_launch(spec, grid, block)
            if not functional and not trace:
                raise CudaModelError(
                    "launch(functional=False, trace=False) would execute "
                    "zero blocks and return an empty trace; enable tracing "
                    "or run functionally")
            traced = tuple(sample_blocks(grid, trace_blocks)) if trace else ()
            caches: Dict[str, object] = {
                "const": DirectMappedCache(spec.constant_cache_bytes_per_sm,
                                           space="const"),
                "tex": DirectMappedCache(spec.texture_cache_bytes_per_sm,
                                         space="tex"),
            }
            if spec.has_cached_global_loads:
                caches["global"] = CacheHierarchy(spec)
            plan = cls(kernel=kern, grid=grid, block=block, args=args,
                       device=device, functional=functional,
                       trace_enabled=trace, trace_blocks=trace_blocks,
                       record_stream=record_stream, memoize=memoize,
                       traced=traced, caches=caches)
        plan.build_seconds = perf_counter() - t0
        for sink in list(_PLAN_OBSERVERS):
            sink(plan)
        return plan

    # ------------------------------------------------------------------
    # Geometry / sample queries
    # ------------------------------------------------------------------
    @property
    def spec(self) -> DeviceSpec:
        return self.device.spec

    @property
    def num_blocks(self) -> int:
        return self.grid.size

    @property
    def traced_set(self) -> frozenset:
        return self._traced_set

    def block_ids(self) -> Sequence[int]:
        """Linear ids of the blocks this launch executes, in order."""
        if self.functional:
            return range(self.grid.size)
        return self.traced

    def arg_signature(self) -> Tuple:
        """Hashable description of the launch arguments: memory space,
        dtype and element count for device arrays, type and value for
        scalars.  Combined with the kernel name and block shape this
        keys anything cached per launch *configuration* — compiled-
        program preludes, census-synthesized traces — without holding
        references to the arrays themselves."""
        from .memory import DeviceArray
        parts = []
        for a in self.args:
            if isinstance(a, DeviceArray):
                parts.append((getattr(a, "space", "global"),
                              str(a.data.dtype), a.size))
            else:
                parts.append((type(a).__name__, a))
        return (self.kernel.name, self.block, tuple(parts))

    def module_key(self) -> Tuple:
        """Full launch-*configuration* identity for the AOT module
        layer (:mod:`repro.compile.module`): :meth:`arg_signature`
        plus the grid, the bound array names and every switch that
        changes what executing the plan observes.  Two plans with
        equal keys run the same kernel over the same geometry against
        the same-named device arrays — the precondition for replaying
        a recorded trace instead of re-tracing sample blocks."""
        from .memory import DeviceArray
        names = tuple(a.name if isinstance(a, DeviceArray) else None
                      for a in self.args)
        return (self.arg_signature(), self.grid, names,
                self.trace_enabled, self.trace_blocks,
                self.functional, self.record_stream, self.memoize)

    def equivalence_class(self, linear: int) -> Tuple:
        """Memoization key of one block: kernel identity, block shape
        and the block's grid-boundary signature.  Interior blocks of a
        regular grid share one class and (under ``memoize=True``)
        trace once."""
        cx, cy, cz = self.grid.unlinear(linear)
        return (self.kernel.name, self.block,
                (_axis_class(cx, self.grid.x),
                 _axis_class(cy, self.grid.y),
                 _axis_class(cz, self.grid.z)))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def make_context(self, linear: int,
                     trace: Optional[KernelTrace] = None,
                     stream: Optional[list] = None) -> BlockContext:
        """A scalar (one-block) execution context for block ``linear``."""
        return BlockContext(
            self.spec, self.grid, self.block, self.grid.unlinear(linear),
            trace=trace, caches=self.caches, stream=stream,
            kernel_name=self.kernel.name)

    def execute(self, executor=None) -> LaunchResult:
        """Run the plan: ``None`` selects the reference sequential
        backend, ``"auto"`` picks one based on the plan, otherwise a
        backend name, class or instance."""
        from .executors import resolve_executor
        return resolve_executor(executor, self).execute(self)
