"""Kernel objects and the launch machinery.

A :class:`Kernel` bundles the DSL function with its *compiled resource
usage* — registers per thread and statically declared shared memory —
the two knobs the paper's occupancy arguments revolve around
("an incremental increase in the usage of registers or shared memory
per thread can result in a substantial decrease in the number of
threads that can be simultaneously executed").  Register counts play
the role of the numbers one reads out of ``nvcc``'s cubin; optimization
passes in :mod:`repro.opt` transform them the way the paper describes
(unrolling eliminates an induction variable, prefetching adds two
registers, ...).

:func:`launch` validates the configuration against the device limits,
executes the blocks, and returns a :class:`LaunchResult` carrying the
scaled :class:`~repro.trace.trace.KernelTrace`.

Tracing strategy (mirrors reasoning from per-block PTX in the paper):
a deterministic sample of blocks is executed with tracing enabled and
the trace is scaled to the full grid.  ``functional=True`` (default)
runs *every* block so device arrays hold the complete result;
``functional=False`` runs only the traced sample, which is what the
benchmark harness uses for large problem sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..arch.device import DeviceSpec, DEFAULT_DEVICE
from ..sim.memsys import DirectMappedCache
from ..trace.trace import KernelTrace
from .dim3 import Dim3, DimLike, as_dim3
from .context import BlockContext
from .memory import CudaModelError, Device


@dataclass(frozen=True)
class Kernel:
    """A compiled kernel: DSL function + resource usage metadata."""

    fn: Callable[..., None]
    name: str
    regs_per_thread: int = 10
    static_smem_bytes: int = 0
    notes: str = ""

    def with_resources(self, regs_per_thread: Optional[int] = None,
                       static_smem_bytes: Optional[int] = None) -> "Kernel":
        updates = {}
        if regs_per_thread is not None:
            updates["regs_per_thread"] = regs_per_thread
        if static_smem_bytes is not None:
            updates["static_smem_bytes"] = static_smem_bytes
        return replace(self, **updates)


def kernel(name: str, regs_per_thread: int = 10,
           static_smem_bytes: int = 0, notes: str = ""):
    """Decorator turning a DSL function into a :class:`Kernel`."""
    def wrap(fn: Callable[..., None]) -> Kernel:
        return Kernel(fn=fn, name=name, regs_per_thread=regs_per_thread,
                      static_smem_bytes=static_smem_bytes, notes=notes)
    return wrap


@dataclass
class LaunchResult:
    """Everything the performance models need about one kernel launch."""

    kernel: Kernel
    grid: Dim3
    block: Dim3
    trace: KernelTrace
    smem_bytes_per_block: int
    device: Device
    blocks_executed: int
    blocks_traced: int
    #: ordered instruction stream of one block (record_stream=True)
    stream: Optional[list] = None

    @property
    def num_blocks(self) -> int:
        return self.grid.size

    @property
    def threads_per_block(self) -> int:
        return self.block.size

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    @property
    def spec(self) -> DeviceSpec:
        return self.device.spec

    def occupancy(self):
        """Occupancy of this launch (lazy import avoids a cycle)."""
        from ..sim.occupancy import occupancy_for_launch
        return occupancy_for_launch(self)

    def estimate(self):
        """Analytical timing estimate for this launch."""
        from ..sim.timing import estimate_kernel_time
        return estimate_kernel_time(self)

    def gflops(self) -> float:
        """Achieved GFLOPS under the analytical timing model."""
        est = self.estimate()
        return self.trace.flops / est.seconds / 1e9 if est.seconds else 0.0


def _validate(spec: DeviceSpec, grid: Dim3, block: Dim3) -> None:
    if block.size > spec.max_threads_per_block:
        raise CudaModelError(
            f"block of {block.size} threads exceeds the "
            f"{spec.max_threads_per_block}-thread limit")
    if block.z > 64:
        raise CudaModelError("blockDim.z is limited to 64")
    if grid.x > spec.max_grid_dim or grid.y > spec.max_grid_dim:
        raise CudaModelError(
            f"grid {grid} exceeds the {spec.max_grid_dim} per-dimension limit")
    if grid.z != 1:
        raise CudaModelError("grids are two-dimensional on this device")


def _sample_blocks(grid: Dim3, n: int) -> Sequence[int]:
    """Deterministic, evenly spread sample of linear block indices.

    Includes the first and last block so boundary-condition code paths
    are observed.
    """
    total = grid.size
    if total <= n:
        return list(range(total))
    idx = np.unique(np.linspace(0, total - 1, n).astype(np.int64))
    return [int(i) for i in idx]


def launch(
    kern: Kernel,
    grid: DimLike,
    block: DimLike,
    args: Tuple = (),
    device: Optional[Device] = None,
    functional: bool = True,
    trace_blocks: int = 4,
    trace: bool = True,
    record_stream: bool = False,
) -> LaunchResult:
    """Execute ``kern`` over ``grid`` x ``block`` threads.

    Parameters
    ----------
    functional:
        Run every block (full functional result).  When ``False`` only
        the traced sample runs — performance analysis of large grids.
    trace_blocks:
        Number of blocks to execute with tracing enabled; the trace is
        scaled by ``grid.size / traced``.
    trace:
        Disable to run purely functionally (fast path for tests).
    record_stream:
        Record the first traced block's ordered instruction stream for
        the event-driven warp simulator (:mod:`repro.sim.warpsim`).
    """
    device = device if device is not None else Device()
    spec = device.spec
    grid = as_dim3(grid)
    block = as_dim3(block)
    _validate(spec, grid, block)

    traced = set(_sample_blocks(grid, trace_blocks)) if trace else set()
    caches: Dict[str, DirectMappedCache] = {
        "const": DirectMappedCache(spec.constant_cache_bytes_per_sm),
        "tex": DirectMappedCache(spec.texture_cache_bytes_per_sm),
    }

    merged = KernelTrace()
    smem_bytes = kern.static_smem_bytes
    executed = 0
    stream = None
    first_traced = min(traced) if traced else None
    block_ids = range(grid.size) if functional else sorted(traced)
    for linear in block_ids:
        coord = grid.unlinear(linear)
        do_trace = linear in traced
        block_stream = [] if (record_stream and linear == first_traced)             else None
        ctx = BlockContext(
            spec, grid, block, coord,
            trace=KernelTrace() if do_trace else None,
            caches=caches,
            stream=block_stream,
        )
        kern.fn(ctx, *args)
        if block_stream is not None:
            stream = block_stream
        executed += 1
        if do_trace:
            ctx.trace.blocks_traced = 1
            ctx.trace.threads_traced = block.size
            merged.merge(ctx.trace)
            smem_bytes = max(smem_bytes,
                             ctx.smem_bytes + kern.static_smem_bytes)

    if merged.blocks_traced:
        scale = grid.size / merged.blocks_traced
        merged = merged.scaled(scale)
        merged.blocks_traced = len(traced)

    return LaunchResult(
        kernel=kern,
        grid=grid,
        block=block,
        trace=merged,
        smem_bytes_per_block=smem_bytes,
        device=device,
        blocks_executed=executed,
        blocks_traced=len(traced),
        stream=stream,
    )
