"""Kernel objects, launch results, and the launch facade.

A :class:`Kernel` bundles the DSL function with its *compiled resource
usage* — registers per thread and statically declared shared memory —
the two knobs the paper's occupancy arguments revolve around
("an incremental increase in the usage of registers or shared memory
per thread can result in a substantial decrease in the number of
threads that can be simultaneously executed").  Register counts play
the role of the numbers one reads out of ``nvcc``'s cubin; optimization
passes in :mod:`repro.opt` transform them the way the paper describes
(unrolling eliminates an induction variable, prefetching adds two
registers, ...).

:func:`launch` is a thin facade over the staged execution pipeline::

    plan     = LaunchPlan.build(...)   # validation + trace sample (cuda.plan)
    executor = resolve_executor(...)   # sequential/batched/process (cuda.executors)
    result   = executor.execute(plan)  # traces via TraceCollector (trace.collector)

and returns a :class:`LaunchResult` carrying the scaled
:class:`~repro.trace.trace.KernelTrace`.

Tracing strategy (mirrors reasoning from per-block PTX in the paper):
a deterministic sample of blocks is executed with tracing enabled and
the trace is scaled to the full grid.  ``functional=True`` (default)
runs *every* block so device arrays hold the complete result;
``functional=False`` runs only the traced sample, which is what the
benchmark harness uses for large problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

from ..arch.device import DeviceSpec
from ..trace.trace import KernelTrace
from .dim3 import Dim3, DimLike
from .memory import Device


@dataclass(frozen=True)
class Kernel:
    """A compiled kernel: DSL function + resource usage metadata."""

    fn: Callable[..., None]
    name: str
    regs_per_thread: int = 10
    static_smem_bytes: int = 0
    notes: str = ""
    #: safe for block-vectorized execution: no Python-level control
    #: flow on scalar block coordinates, no per-block thread count used
    #: in index math (use ``ctx.threads_per_block``), and no block
    #: reading global data another block of the same launch writes
    batchable: bool = True

    def with_resources(self, regs_per_thread: Optional[int] = None,
                       static_smem_bytes: Optional[int] = None) -> "Kernel":
        updates = {}
        if regs_per_thread is not None:
            updates["regs_per_thread"] = regs_per_thread
        if static_smem_bytes is not None:
            updates["static_smem_bytes"] = static_smem_bytes
        return replace(self, **updates)


def kernel(name: str, regs_per_thread: int = 10,
           static_smem_bytes: int = 0, notes: str = "",
           batchable: bool = True):
    """Decorator turning a DSL function into a :class:`Kernel`."""
    def wrap(fn: Callable[..., None]) -> Kernel:
        return Kernel(fn=fn, name=name, regs_per_thread=regs_per_thread,
                      static_smem_bytes=static_smem_bytes, notes=notes,
                      batchable=batchable)
    return wrap


@dataclass
class LaunchResult:
    """Everything the performance models need about one kernel launch."""

    kernel: Kernel
    grid: Dim3
    block: Dim3
    trace: KernelTrace
    smem_bytes_per_block: int
    device: Device
    blocks_executed: int
    blocks_traced: int
    #: ordered instruction stream of one block (record_stream=True)
    stream: Optional[list] = None
    #: name of the executor backend that ran the launch
    executor: str = ""
    #: traced-sample blocks satisfied from the memoization cache
    memo_hits: int = 0
    #: block counts by disposition ("trace" / "memo" / "plain")
    block_dispositions: Dict[str, int] = field(default_factory=dict)
    #: wall time per pipeline stage (plan / execute / collect / finalize)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: the :class:`~repro.san.state.SanState` of a sanitized launch
    #: (``sanitize=True`` / ``SanitizedExecutor``), else ``None``
    san: Optional[object] = None

    @property
    def num_blocks(self) -> int:
        return self.grid.size

    @property
    def threads_per_block(self) -> int:
        return self.block.size

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    @property
    def spec(self) -> DeviceSpec:
        return self.device.spec

    def occupancy(self):
        """Occupancy of this launch (lazy import avoids a cycle)."""
        from ..sim.occupancy import occupancy_for_launch
        return occupancy_for_launch(self)

    def estimate(self):
        """Analytical timing estimate for this launch."""
        from ..sim.timing import estimate_kernel_time
        return estimate_kernel_time(self)

    def gflops(self) -> float:
        """Achieved GFLOPS under the analytical timing model."""
        est = self.estimate()
        return self.trace.flops / est.seconds / 1e9 if est.seconds else 0.0

    def profile(self):
        """Structured per-launch profile (an
        :class:`~repro.obs.profiler.LaunchRecord`)."""
        from ..obs.profiler import LaunchRecord
        return LaunchRecord.from_result(self)

    def summary(self) -> str:
        """One-line nvprof-style digest: kernel, geometry, executor,
        block accounting, modeled GFLOPS and the binding bottleneck."""
        return self.profile().digest()

    def __repr__(self) -> str:
        try:
            return f"<LaunchResult {self.summary()}>"
        except Exception:       # half-built results in tests/debugging
            return (f"<LaunchResult kernel={self.kernel.name!r} "
                    f"grid={self.grid} block={self.block}>")


def launch(
    kern: Kernel,
    grid: DimLike,
    block: DimLike,
    args: Tuple = (),
    device: Optional[Device] = None,
    functional: bool = True,
    trace_blocks: int = 4,
    trace: bool = True,
    record_stream: bool = False,
    executor=None,
    memoize: bool = False,
    sanitize: bool = False,
) -> LaunchResult:
    """Execute ``kern`` over ``grid`` x ``block`` threads.

    Parameters
    ----------
    functional:
        Run every block (full functional result).  When ``False`` only
        the traced sample runs — performance analysis of large grids.
        ``functional=False`` with ``trace=False`` would execute
        nothing and is rejected with :class:`CudaModelError`.
    trace_blocks:
        Number of blocks to execute with tracing enabled; the trace is
        scaled by ``grid.size / traced``.
    trace:
        Disable to run purely functionally (fast path for tests).
    record_stream:
        Record the first traced block's ordered instruction stream for
        the event-driven warp simulator (:mod:`repro.sim.warpsim`).
    executor:
        Execution backend: ``None`` (reference sequential), a name
        (``"sequential"`` / ``"batched"`` / ``"process"`` / ``"auto"``),
        an :class:`~repro.cuda.executors.Executor` class or instance.
    memoize:
        Reuse traces across sampled blocks of the same equivalence
        class (see :mod:`repro.trace.collector`).  Opt-in.
    sanitize:
        Run under the :class:`~repro.cuda.executors.SanitizedExecutor`
        (memcheck/racecheck/synccheck/initcheck); the result's ``san``
        attribute carries the findings.  Pass a ``SanitizedExecutor``
        instance as ``executor`` instead to share sanitizer state
        across several launches.
    """
    from .plan import LaunchPlan
    plan = LaunchPlan.build(
        kern, grid, block, args=args, device=device, functional=functional,
        trace_blocks=trace_blocks, trace=trace, record_stream=record_stream,
        memoize=memoize)
    if sanitize:
        from .executors import SanitizedExecutor
        if not isinstance(executor, SanitizedExecutor):
            executor = SanitizedExecutor()
    return plan.execute(executor)
