"""The kernel DSL: warp-synchronous, trace-emitting block execution.

Kernels in this reproduction are Python functions of the form::

    def kernel(ctx: BlockContext, a: DeviceArray, b: DeviceArray, ...):
        tx, ty = ctx.tx, ctx.ty
        ...

executed **once per thread block** with every per-thread quantity held
as a NumPy vector over the block's threads (SIMD within the block,
mirroring the SPMD-on-SIMD execution the paper describes in Section 3).
Every architectural event is routed through a ``ctx`` method:

* ``fma/fadd/fmul/...`` — arithmetic, counted per warp-instruction and
  computed for real on the NumPy vectors;
* ``ld_global/st_global`` — global accesses: the per-thread addresses
  go through the G80 coalescing model and the transaction statistics
  land in the :class:`~repro.trace.trace.KernelTrace`;
* ``ld_shared/st_shared`` — scratchpad accesses with bank-conflict
  detection;
* ``ld_const/ld_tex`` — cached read-only paths;
* ``sfu_sin/sfu_cos/...`` — SFU transcendentals;
* ``sync`` — ``__syncthreads``;
* ``masked(cond)`` — divergent control flow: instructions inside the
  context only issue for warps that still have an active thread, so
  SIMD divergence penalties (Section 3/5) appear in the trace.

The same execution serves two purposes: it mutates real device arrays
(functional correctness, checked against NumPy references in the test
suite) and it emits the dynamic instruction/memory trace that the
performance models consume (the paper's PTX-inspection methodology).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..arch.device import DeviceSpec
from ..trace.instr import InstrClass
from ..trace.trace import KernelTrace
from ..sim.memsys import (
    DirectMappedCache,
    block_bank_conflicts,
    coalesce_block_access,
)
from .dim3 import Dim3
from .memory import (
    ConstantArray,
    CudaModelError,
    DeviceArray,
    SharedArray,
    TextureArray,
)

ArrayLike = Union[np.ndarray, float, int]


# ----------------------------------------------------------------------
# Rule metadata for the ctx.* vocabulary
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CtxOp:
    """Static classification of one ``ctx.*`` operation.

    The static analyzer (:mod:`repro.analysis`) drives its abstract
    interpretation of kernel source from this table instead of
    hard-coding the DSL surface: ``category`` decides how a call is
    modeled (arithmetic, memory event, barrier, divergence, ...) and
    ``result`` the kind of value it produces.  A new ctx method only
    needs an entry here to become analyzable.
    """

    category: str   # farith | iarith | sfu | cvt | select | merge |
    #                 global_ld | global_st | global_atomic |
    #                 shared_ld | shared_st | const_ld | tex_ld |
    #                 alloc | sync | masked | query | meta | identity
    result: str = "none"   # float | int | value | bool | shared | ctx | none


#: every public ``ctx`` method, classified for the static analyzer
CTX_OPS: Dict[str, CtxOp] = {
    # arithmetic (one warp instruction each)
    "fma": CtxOp("farith", "float"),
    "fadd": CtxOp("farith", "float"),
    "fsub": CtxOp("farith", "float"),
    "fmul": CtxOp("farith", "float"),
    "fdiv": CtxOp("farith", "float"),
    "fmin": CtxOp("farith", "float"),
    "fmax": CtxOp("farith", "float"),
    "iadd": CtxOp("iarith", "int"),
    "isub": CtxOp("iarith", "int"),
    "imul": CtxOp("iarith", "int"),
    "iand": CtxOp("iarith", "int"),
    "ior": CtxOp("iarith", "int"),
    "ixor": CtxOp("iarith", "int"),
    "ishl": CtxOp("iarith", "int"),
    "ishr": CtxOp("iarith", "int"),
    "cvt": CtxOp("cvt", "value"),
    "select": CtxOp("select", "value"),
    "merge": CtxOp("merge", "value"),
    # SFU transcendentals
    "sfu_sin": CtxOp("sfu", "float"),
    "sfu_cos": CtxOp("sfu", "float"),
    "sfu_rsqrt": CtxOp("sfu", "float"),
    "sfu_sqrt": CtxOp("sfu", "float"),
    "sfu_exp": CtxOp("sfu", "float"),
    "sfu_log": CtxOp("sfu", "float"),
    "sfu_rcp": CtxOp("sfu", "float"),
    # memory spaces
    "ld_global": CtxOp("global_ld", "value"),
    "st_global": CtxOp("global_st"),
    "atom_global_add": CtxOp("global_atomic"),
    "ld_shared": CtxOp("shared_ld", "value"),
    "st_shared": CtxOp("shared_st"),
    "ld_const": CtxOp("const_ld", "value"),
    "ld_tex": CtxOp("tex_ld", "value"),
    "shared_alloc": CtxOp("alloc", "shared"),
    # control
    "sync": CtxOp("sync"),
    "masked": CtxOp("masked", "ctx"),
    "any_active": CtxOp("query", "bool"),
    # bookkeeping the vectorized execution performs implicitly
    "loop_tail": CtxOp("meta"),
    "address_ops": CtxOp("meta"),
    # thread-identity helpers (methods; the tx/ty/... attrs are data)
    "global_tid_x": CtxOp("identity", "int"),
    "global_tid_y": CtxOp("identity", "int"),
    "global_tid": CtxOp("identity", "int"),
}

#: data attributes of a :class:`BlockContext` that kernels may read.
#: Like :data:`CTX_OPS` for methods, this is the authoritative list the
#: static tooling works from — the grid compiler
#: (:mod:`repro.compile`) lowers each of these to the equivalent
#: whole-grid identity value and refuses kernels touching anything
#: else on ``ctx``.
CTX_ATTRS: Tuple[str, ...] = (
    "tx", "ty", "tz", "tid", "bx", "by", "bz", "block_linear",
    "nthreads", "threads_per_block", "nwarps", "blockDim", "gridDim",
    "mask", "spec", "kernel_name",
)


class BlockContext:
    """Execution context of one thread block (see module docstring)."""

    def __init__(
        self,
        spec: DeviceSpec,
        grid: Dim3,
        block: Dim3,
        block_coord: Tuple[int, int, int],
        trace: Optional[KernelTrace] = None,
        caches: Optional[Dict[str, DirectMappedCache]] = None,
        stream: Optional[list] = None,
        kernel_name: str = "",
    ) -> None:
        self.spec = spec
        self.gridDim = grid
        self.blockDim = block
        self.bx, self.by, self.bz = block_coord
        #: name of the kernel this block belongs to; used to correlate
        #: runtime CudaModelErrors with static-analyzer findings
        self.kernel_name = kernel_name

        T = block.size
        tid = np.arange(T, dtype=np.int64)
        self.tid = tid
        self.tx = tid % block.x
        self.ty = (tid // block.x) % block.y
        self.tz = tid // (block.x * block.y)
        self.nthreads = T
        #: threads of ONE block — equals ``nthreads`` here, but stays
        #: per-block under batched execution, where ``nthreads`` widens
        #: to all lanes of the batch; index math that means "block
        #: size" must use this, not ``nthreads``
        self.threads_per_block = T
        self.nwarps = -(-T // spec.warp_size)

        self.trace = trace
        self.caches = caches or {}
        #: ordered instruction stream for the event-driven warp
        #: simulator (populated when the launch records streams)
        self.stream = stream
        self._mask_stack: List[np.ndarray] = [np.ones(T, dtype=bool)]
        #: lazily-computed per-warp lane counts of the base mask (the
        #: reference for divergence-serialization accounting)
        self._base_lane_counts: Optional[np.ndarray] = None
        self._smem_words = 0
        self.shared_arrays: List[SharedArray] = []

    def _where(self) -> str:
        """Error-message prefix naming the kernel and block geometry so
        runtime failures correlate with static-analyzer findings."""
        name = self.kernel_name or "<kernel>"
        b = self.blockDim
        return (f"{name} [block {b.x}x{b.y}x{b.z}, "
                f"blockIdx ({self.bx},{self.by},{self.bz})]")

    # ------------------------------------------------------------------
    # Thread identity helpers
    # ------------------------------------------------------------------
    @property
    def block_linear(self) -> int:
        """Linear block index within the grid."""
        return self.gridDim.linear(self.bx, self.by, self.bz)

    def global_tid_x(self) -> np.ndarray:
        """``blockIdx.x * blockDim.x + threadIdx.x`` for every thread."""
        return self.bx * self.blockDim.x + self.tx

    def global_tid_y(self) -> np.ndarray:
        return self.by * self.blockDim.y + self.ty

    def global_tid(self) -> np.ndarray:
        """Grid-wide linear thread id (x fastest, matching CUDA)."""
        block_threads = self.blockDim.size
        return self.block_linear * block_threads + self.tid

    # ------------------------------------------------------------------
    # Mask / divergence machinery
    # ------------------------------------------------------------------
    @property
    def mask(self) -> np.ndarray:
        return self._mask_stack[-1]

    def _active_warps(self, mask: np.ndarray) -> int:
        ws = self.spec.warp_size
        pad = (-mask.shape[0]) % ws
        if pad:
            mask = np.concatenate([mask, np.zeros(pad, dtype=bool)])
        return int(mask.reshape(-1, ws).any(axis=1).sum())

    def _warp_lane_counts(self, mask: np.ndarray) -> np.ndarray:
        """Active-lane count per warp (warp-size padded)."""
        ws = self.spec.warp_size
        pad = (-mask.shape[0]) % ws
        if pad:
            mask = np.concatenate([mask, np.zeros(pad, dtype=bool)])
        return mask.reshape(-1, ws).sum(axis=1)

    def _partial_warps(self, mask: np.ndarray) -> int:
        """Warps issuing under ``mask`` with fewer active lanes than
        the block's base mask gives them — the lanes a divergent
        branch idled (pure block-geometry padding is excluded)."""
        if self._base_lane_counts is None:
            self._base_lane_counts = self._warp_lane_counts(
                self._mask_stack[0])
        counts = self._warp_lane_counts(mask)
        return int(((counts > 0)
                    & (counts < self._base_lane_counts)).sum())

    def _divergent_warps(self, parent: np.ndarray,
                         cond: np.ndarray) -> int:
        """Warps whose ``parent``-active lanes disagree on ``cond`` —
        those warps execute both sides of the branch serially."""
        taken = self._warp_lane_counts(parent & cond)
        skipped = self._warp_lane_counts(parent & ~cond)
        return int(((taken > 0) & (skipped > 0)).sum())

    def _emit(self, cls: InstrClass, count: int = 1,
              mask: Optional[np.ndarray] = None,
              mem: Optional[Tuple[float, float]] = None,
              divergent_warps: int = 0) -> None:
        if self.trace is None or count == 0:
            return
        m = self.mask if mask is None else mask
        warps = self._active_warps(m)
        if warps == 0:
            return
        partial = 0
        if len(self._mask_stack) > 1:
            partial = self._partial_warps(m)
            if partial:
                self.trace.record_divergent_issue(partial * count)
        self.trace.record_instr(cls, warps * count, int(m.sum()) * count)
        if self.stream is not None:
            from ..sim.warpsim import StreamEvent
            txn_w, bytes_w = mem if mem else (0.0, 0.0)
            self.stream.extend(
                StreamEvent(cls, warps, txn_w, bytes_w,
                            divergent_warps, partial)
                for _ in range(count))

    @contextlib.contextmanager
    def masked(self, cond: np.ndarray):
        """Divergent branch: execute the body only where ``cond`` holds.

        Emits the predicate-set and branch instructions; instructions
        inside issue for every warp that still has an active lane, so
        a warp whose threads disagree pays for both paths when the
        kernel also executes the complementary :meth:`masked` region —
        exactly the SIMD divergence cost of Section 3.
        """
        cond = np.broadcast_to(np.asarray(cond, dtype=bool), (self.nthreads,))
        divergent = 0
        if self.trace is not None:
            parent = self.mask
            warps = self._active_warps(parent)
            if warps:
                divergent = self._divergent_warps(parent, cond)
                self.trace.record_branch(warps, divergent)
        self._emit(InstrClass.SETP)
        self._emit(InstrClass.BRANCH, divergent_warps=divergent)
        self._mask_stack.append(self.mask & cond)
        try:
            yield
        finally:
            self._mask_stack.pop()

    def merge(self, new: np.ndarray, old: np.ndarray) -> np.ndarray:
        """Predicated write-back for register values inside a
        :meth:`masked` region: active lanes take ``new``, inactive
        lanes keep ``old``.  Free at the ISA level (results are
        committed under the active mask), hence no instruction is
        recorded.  Any accumulator updated inside divergent control
        flow must go through this — a plain assignment would clobber
        the inactive lanes with whatever the vectorized evaluation
        produced for them.
        """
        return np.where(self.mask, self._bc(new), self._bc(old))

    def any_active(self, cond: np.ndarray) -> bool:
        """True if any active thread satisfies ``cond`` (host-side loop
        control for divergent ``while`` loops)."""
        cond = np.broadcast_to(np.asarray(cond, dtype=bool), (self.nthreads,))
        return bool((self.mask & cond).any())

    # ------------------------------------------------------------------
    # Arithmetic (each op = one warp instruction per active warp)
    # ------------------------------------------------------------------
    def _bc(self, v: ArrayLike, dtype=None) -> np.ndarray:
        a = np.asarray(v, dtype=dtype)
        if a.ndim == 0:
            a = np.broadcast_to(a, (self.nthreads,))
        return a

    def fma(self, a: ArrayLike, b: ArrayLike, c: ArrayLike) -> np.ndarray:
        """Fused multiply-add ``a * b + c`` (2 flops/thread)."""
        self._emit(InstrClass.FMA)
        return (self._bc(a, np.float32) * self._bc(b, np.float32)
                + self._bc(c, np.float32)).astype(np.float32)

    def fadd(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._emit(InstrClass.FADD)
        return (self._bc(a, np.float32) + self._bc(b, np.float32)).astype(np.float32)

    def fsub(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._emit(InstrClass.FADD)
        return (self._bc(a, np.float32) - self._bc(b, np.float32)).astype(np.float32)

    def fmul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._emit(InstrClass.FMUL)
        return (self._bc(a, np.float32) * self._bc(b, np.float32)).astype(np.float32)

    def fdiv(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Floating divide — multi-cycle, executed on the SFU pipe."""
        self._emit(InstrClass.FDIV)
        return (self._bc(a, np.float32) / self._bc(b, np.float32)).astype(np.float32)

    def fmin(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._emit(InstrClass.FCMP)
        return np.minimum(self._bc(a, np.float32), self._bc(b, np.float32))

    def fmax(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._emit(InstrClass.FCMP)
        return np.maximum(self._bc(a, np.float32), self._bc(b, np.float32))

    def iadd(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._emit(InstrClass.IALU)
        return self._bc(a, np.int64) + self._bc(b, np.int64)

    def isub(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._emit(InstrClass.IALU)
        return self._bc(a, np.int64) - self._bc(b, np.int64)

    def imul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """32-bit integer multiply (slower than FP MAD on the G80)."""
        self._emit(InstrClass.IMUL)
        return self._bc(a, np.int64) * self._bc(b, np.int64)

    def iand(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._emit(InstrClass.IALU)
        return self._bc(a, np.int64) & self._bc(b, np.int64)

    def ior(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._emit(InstrClass.IALU)
        return self._bc(a, np.int64) | self._bc(b, np.int64)

    def ixor(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._emit(InstrClass.IALU)
        return self._bc(a, np.int64) ^ self._bc(b, np.int64)

    def ishl(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._emit(InstrClass.IALU)
        return (self._bc(a, np.int64) << self._bc(b, np.int64))

    def ishr(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._emit(InstrClass.IALU)
        return (self._bc(a, np.int64) >> self._bc(b, np.int64))

    def cvt(self, a: ArrayLike, dtype) -> np.ndarray:
        """Type conversion / register move."""
        self._emit(InstrClass.CVT)
        return self._bc(a).astype(dtype)

    def select(self, cond: ArrayLike, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Predicated select (no divergence — one instruction)."""
        self._emit(InstrClass.SETP)
        cond = self._bc(cond, bool)
        av, bv = self._bc(a), self._bc(b)
        out_dtype = np.result_type(av.dtype, bv.dtype)
        return np.where(cond, av, bv).astype(out_dtype)

    # ------------------------------------------------------------------
    # SFU transcendentals (Section 3.2: sin/cos/rsqrt on the SFUs)
    # ------------------------------------------------------------------
    def _sfu(self, fn: Callable[[np.ndarray], np.ndarray], x: ArrayLike
             ) -> np.ndarray:
        self._emit(InstrClass.SFU)
        with np.errstate(divide="ignore", invalid="ignore"):
            return fn(self._bc(x, np.float32)).astype(np.float32)

    def sfu_sin(self, x: ArrayLike) -> np.ndarray:
        return self._sfu(np.sin, x)

    def sfu_cos(self, x: ArrayLike) -> np.ndarray:
        return self._sfu(np.cos, x)

    def sfu_rsqrt(self, x: ArrayLike) -> np.ndarray:
        return self._sfu(lambda v: 1.0 / np.sqrt(v), x)

    def sfu_sqrt(self, x: ArrayLike) -> np.ndarray:
        return self._sfu(np.sqrt, x)

    def sfu_exp(self, x: ArrayLike) -> np.ndarray:
        return self._sfu(np.exp, x)

    def sfu_log(self, x: ArrayLike) -> np.ndarray:
        return self._sfu(lambda v: np.log(np.maximum(v, 1e-30)), x)

    def sfu_rcp(self, x: ArrayLike) -> np.ndarray:
        return self._sfu(lambda v: 1.0 / v, x)

    # ------------------------------------------------------------------
    # Loop bookkeeping (the instructions unrolling removes, Section 4.3)
    # ------------------------------------------------------------------
    def loop_tail(self, induction_updates: int = 1) -> None:
        """Account the per-iteration loop overhead: ``induction_updates``
        integer increments plus the compare and backward branch.  A
        fully unrolled loop simply never calls this."""
        self._emit(InstrClass.IALU, induction_updates)
        self._emit(InstrClass.SETP)
        self._emit(InstrClass.BRANCH)

    def address_ops(self, count: int = 1) -> None:
        """Account explicit address-calculation instructions that the
        vectorized functional execution performs implicitly."""
        self._emit(InstrClass.IALU, count)

    # ------------------------------------------------------------------
    # Shared memory
    # ------------------------------------------------------------------
    def shared_alloc(self, shape, dtype=np.float32,
                     name: str = "smem") -> SharedArray:
        """Allocate a per-block shared array, metered against the SM's
        16 KB (a block that oversubscribes cannot launch at all)."""
        arr = SharedArray(name, tuple(np.atleast_1d(shape)), np.dtype(dtype),
                          self._smem_words)
        self._smem_words += max(1, arr.itemsize // 4) * arr.size
        if self.smem_bytes > self.spec.shared_mem_per_sm:
            raise CudaModelError(
                f"{self._where()}: shared memory overflow: block requests "
                f"{self.smem_bytes} B > {self.spec.shared_mem_per_sm} B "
                f"per SM")
        self.shared_arrays.append(arr)
        return arr

    @property
    def smem_bytes(self) -> int:
        return self._smem_words * 4

    def _flat_index(self, index: ArrayLike) -> np.ndarray:
        idx = np.asarray(index)
        if idx.ndim == 0:
            idx = np.broadcast_to(idx, (self.nthreads,))
        if idx.shape[0] != self.nthreads:
            raise CudaModelError(
                f"index vector has {idx.shape[0]} lanes, block has "
                f"{self.nthreads} threads")
        # no copy when the caller already passed int64 lanes — every
        # consumer treats the flat index as read-only
        return idx.astype(np.int64, copy=False)

    def ld_shared(self, sh: SharedArray, index: ArrayLike) -> np.ndarray:
        idx = self._flat_index(index)
        mask = self.mask
        self._emit(InstrClass.LD_SHARED)
        self._record_bank_conflicts(sh, idx, mask)
        safe = np.where(mask, np.clip(idx, 0, sh.size - 1), 0)
        return sh.data[safe]

    def st_shared(self, sh: SharedArray, index: ArrayLike,
                  value: ArrayLike) -> None:
        idx = self._flat_index(index)
        mask = self.mask
        self._emit(InstrClass.ST_SHARED)
        self._record_bank_conflicts(sh, idx, mask)
        vals = self._bc(value, sh.data.dtype)
        if idx[mask].size and (idx[mask].min() < 0 or idx[mask].max() >= sh.size):
            raise CudaModelError(
                f"{self._where()}: shared store out of bounds on "
                f"{sh.name!r}: indices span [{int(idx[mask].min())}, "
                f"{int(idx[mask].max())}] vs size {sh.size}")
        sh.data[idx[mask]] = vals[mask]

    def _record_bank_conflicts(self, sh: SharedArray, idx: np.ndarray,
                               mask: np.ndarray) -> None:
        if self.trace is None:
            return
        accesses, degree = block_bank_conflicts(
            sh.word_indices(idx), mask, self.spec)
        # each extra serialization pass costs one access group's share
        # of the warp issue time (a half-warp on 16-bank devices)
        group_share = self.spec.shared_access_group / self.spec.warp_size
        extra = (degree - accesses) * (
            self.spec.timing.issue_cycles_per_warp_inst * group_share)
        if extra:
            self.trace.record_shared_conflict(extra)

    # ------------------------------------------------------------------
    # Global memory
    # ------------------------------------------------------------------
    def ld_global(self, arr: DeviceArray, index: ArrayLike) -> np.ndarray:
        if arr.space != "global":
            raise CudaModelError(
                f"ld_global on {arr.space!r} array {arr.name!r}")
        idx = self._flat_index(index)
        mask = self.mask
        arr.check_bounds(idx, mask)
        mem = self._record_global(arr, idx, mask, kind="ld")
        self._emit(InstrClass.LD_GLOBAL, mem=mem)
        safe = np.where(mask, idx, 0)
        return arr.data[safe]

    def st_global(self, arr: DeviceArray, index: ArrayLike,
                  value: ArrayLike) -> None:
        if arr.space != "global":
            raise CudaModelError(
                f"st_global on {arr.space!r} array {arr.name!r}")
        idx = self._flat_index(index)
        mask = self.mask
        arr.check_bounds(idx, mask)
        mem = self._record_global(arr, idx, mask, kind="st")
        self._emit(InstrClass.ST_GLOBAL, mem=mem)
        vals = self._bc(value, arr.data.dtype)
        arr.data[idx[mask]] = vals[mask]

    def atom_global_add(self, arr: DeviceArray, index: ArrayLike,
                        value: ArrayLike) -> None:
        """Atomic add: functional via ``np.add.at``; performance-wise a
        fully serialized (uncoalesced) read-modify-write per thread."""
        idx = self._flat_index(index)
        mask = self.mask
        arr.check_bounds(idx, mask)
        self._emit(InstrClass.ATOM_GLOBAL)
        if self.trace is not None:
            n = int(mask.sum())
            group = self.spec.coalesce_group
            self.trace.record_global_access(
                arr.name,
                warp_accesses=-(-n // group),
                transactions=n,
                bus_bytes=n * self.spec.min_transaction_bytes,
                useful_bytes=n * arr.itemsize,
                coalesced_accesses=0,
                kind="atom",
            )
        vals = self._bc(value, arr.data.dtype)
        np.add.at(arr.data, idx[mask], vals[mask])

    def _record_global(self, arr: DeviceArray, idx: np.ndarray,
                       mask: np.ndarray, kind: str = "ld",
                       ) -> Optional[Tuple[float, float]]:
        if self.trace is None:
            return None
        addresses = arr.addresses(idx)
        wa, txn, bus, useful, coal = coalesce_block_access(
            addresses, mask, arr.itemsize, self.spec)
        request_bus = bus
        hierarchy = self.caches.get("global")
        if hierarchy is not None:
            # Cached global path: only lines missing in every level
            # occupy the DRAM bus; the transaction count (issue-side
            # cost) is the classifier's verdict either way.
            out = hierarchy.access(addresses, mask, arr.itemsize)
            if hierarchy.l1 is not None:
                self.trace.record_cache("l1", out.l1_hits, out.l1_misses)
            if hierarchy.l2 is not None:
                self.trace.record_cache("l2", out.l2_hits, out.l2_misses)
            bus = out.dram_lines * hierarchy.line_bytes
        self.trace.record_global_access(arr.name, wa, txn, bus, useful, coal,
                                        kind=kind,
                                        request_bus_bytes=request_bus)
        warps = max(self._active_warps(mask), 1)
        return (txn / warps, bus / warps)

    # ------------------------------------------------------------------
    # Cached read-only paths
    # ------------------------------------------------------------------
    def _cached_load(self, arr: DeviceArray, index: ArrayLike,
                     space: str, cls: InstrClass) -> np.ndarray:
        idx = self._flat_index(index)
        mask = self.mask
        arr.check_bounds(idx, mask)
        self._emit(cls)
        if self.trace is not None and space == "const":
            # The constant cache broadcasts ONE word per cycle to each
            # coalescing group (a half-warp on the G80, a warp on
            # later devices); threads reading different addresses
            # serialize (Section 5.2's "care must be taken").
            group = self.spec.coalesce_group
            group_share = group / self.spec.warp_size
            pad = (-idx.shape[0]) % group
            words = np.concatenate([idx, np.zeros(pad, np.int64)]) \
                if pad else idx
            m = np.concatenate([mask, np.zeros(pad, bool)]) if pad else mask
            rows_w = words.reshape(-1, group)
            rows_m = m.reshape(-1, group)
            uniform = ((rows_w == rows_w[:, :1]) | ~rows_m).all(axis=1)
            extra = 0.0
            for r in np.nonzero(~uniform)[0]:
                if rows_m[r].any():
                    distinct = len(np.unique(rows_w[r][rows_m[r]]))
                    extra += (distinct - 1) * (
                        self.spec.timing.issue_cycles_per_warp_inst
                        * group_share)
            if extra:
                self.trace.record_shared_conflict(extra)
        if self.trace is not None:
            cache = self.caches.get(space)
            if cache is not None:
                hits, misses = cache.access(arr.addresses(idx), mask)
                self.trace.record_cache(space, hits, misses)
                if misses:
                    # each missed line is one 32 B fill from DRAM
                    line = cache.line_bytes
                    self.trace.record_global_access(
                        arr.name,
                        warp_accesses=0,
                        transactions=misses,
                        bus_bytes=misses * line,
                        useful_bytes=misses * line,
                        coalesced_accesses=0,
                        kind="fill",
                    )
        safe = np.where(mask, idx, 0)
        return arr.data[safe]

    def ld_const(self, arr: ConstantArray, index: ArrayLike) -> np.ndarray:
        if arr.space != "const":
            raise CudaModelError(
                f"ld_const on {arr.space!r} array {arr.name!r}")
        return self._cached_load(arr, index, "const", InstrClass.LD_CONST)

    def ld_tex(self, arr: TextureArray, index: ArrayLike) -> np.ndarray:
        if arr.space != "tex":
            raise CudaModelError(f"ld_tex on {arr.space!r} array {arr.name!r}")
        return self._cached_load(arr, index, "tex", InstrClass.LD_TEX)

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """``__syncthreads()`` — block-wide barrier.

        Divergent barriers (a barrier inside a :meth:`masked` region
        that only *some* threads reach) deadlock real hardware; we
        reject them loudly instead.  A barrier under an all-false mask
        is dead code — no thread of this block reaches it (the
        block-uniform false branch), so nothing waits and nothing
        deadlocks.
        """
        if len(self._mask_stack) > 1 and not self.mask.all():
            if not self.mask.any():
                return          # unreachable for every thread: no-op
            raise CudaModelError(
                f"{self._where()}: __syncthreads() inside divergent "
                f"control flow")
        self._emit(InstrClass.SYNC)
