"""Device memory spaces and host<->device transfers.

The CUDA execution model of the paper keeps the GPU in a *separate
address space*: all data movement is explicit through API calls, and
the cost of those transfers matters (Table 3 reports CPU-GPU transfer
time next to GPU execution time; for H.264 the transfers dominate).

This module provides:

* :class:`Device` — owns a simulated global address space (a bump
  allocator over the 768 MB of DRAM), the transfer ledger, and array
  factories;
* :class:`DeviceArray` — global-memory arrays with real NumPy storage
  *and* simulated byte addresses, so the coalescing model sees the
  exact addresses the kernel generates;
* :class:`ConstantArray` / :class:`TextureArray` — read-only spaces
  routed through the per-SM caches by the kernel DSL;
* :class:`SharedArray` — per-block scratchpad allocated by kernels.

Capacity limits are enforced: allocating beyond DRAM capacity raises
:class:`OutOfDeviceMemory` (this is the mechanism that limits PNS's
thread count in Section 5.1), and constant arrays beyond 64 KB are
rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..arch.device import DeviceSpec, DEFAULT_DEVICE


class OutOfDeviceMemory(MemoryError):
    """Raised when an allocation exceeds the device's DRAM capacity."""


class CudaModelError(RuntimeError):
    """Raised on misuse of the programming model (bad space, OOB, ...)."""


@dataclass
class TransferRecord:
    """One host<->device copy, for the transfer-time ledger."""

    direction: str          # "h2d" or "d2h"
    bytes: int
    seconds: float
    label: str = ""


class DeviceArray:
    """An array resident in simulated global memory.

    Storage is a flat NumPy array (row-major, like CUDA's linear
    global memory); ``shape`` is kept for convenience indexing on the
    host side.  ``base_addr`` is the simulated byte address used by the
    coalescing model.
    """

    space = "global"

    def __init__(self, name: str, data: np.ndarray, base_addr: int) -> None:
        self.name = name
        self.shape = data.shape
        self.data = np.ascontiguousarray(data).reshape(-1)
        self.base_addr = base_addr
        #: True when the contents came from a host copy (``to_device``
        #: and friends); ``alloc``-ed arrays hold the model's zero-fill
        #: that real hardware does not guarantee — the sanitizer's
        #: initcheck shadow bits start from this flag
        self.host_initialized = False

    @property
    def itemsize(self) -> int:
        return int(self.data.itemsize)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def size(self) -> int:
        return int(self.data.size)

    def addresses(self, flat_index: np.ndarray) -> np.ndarray:
        """Simulated byte addresses of the given flat element indices."""
        return self.base_addr + flat_index.astype(np.int64) * self.itemsize

    def check_bounds(self, flat_index: np.ndarray, active: np.ndarray) -> None:
        idx = flat_index[active]
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            raise CudaModelError(
                f"out-of-bounds access to {self.name!r}: "
                f"index range [{idx.min()}, {idx.max()}] vs size {self.size}")

    def to_host(self) -> np.ndarray:
        """Host-side view reshaped to the original shape (no transfer
        accounting — use :meth:`Device.from_device` for timed copies)."""
        return self.data.reshape(self.shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DeviceArray {self.name!r} shape={self.shape} "
                f"dtype={self.data.dtype} @0x{self.base_addr:x}>")


class ConstantArray(DeviceArray):
    """Read-only data in the 64 KB constant space (cached per SM)."""

    space = "const"


class TextureArray(DeviceArray):
    """Read-only data bound to a texture reference (cached per SM).

    ``pitch`` (row length in elements) is recorded so 2D-local access
    patterns can be generated; the cache model captures the locality.
    """

    space = "tex"

    def __init__(self, name: str, data: np.ndarray, base_addr: int) -> None:
        super().__init__(name, data, base_addr)
        self.pitch = int(data.shape[-1]) if data.ndim >= 2 else int(data.size)


class SharedArray:
    """A per-block shared-memory allocation.

    Word-granular (4 B) offsets are used for bank-conflict analysis.
    Instances are created through
    :meth:`repro.cuda.context.BlockContext.shared_alloc` so that the
    per-block shared-memory footprint is metered against the 16 KB SM
    limit.
    """

    space = "shared"

    def __init__(self, name: str, shape: Tuple[int, ...],
                 dtype: np.dtype, word_offset: int) -> None:
        self.name = name
        self.shape = shape
        self.data = np.zeros(int(np.prod(shape)), dtype=dtype)
        self.word_offset = word_offset

    @property
    def itemsize(self) -> int:
        return int(self.data.itemsize)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def size(self) -> int:
        return int(self.data.size)

    def word_indices(self, flat_index: np.ndarray) -> np.ndarray:
        """Shared-memory word offsets for bank-conflict analysis."""
        words_per_elem = max(1, self.itemsize // 4)
        return self.word_offset + flat_index.astype(np.int64) * words_per_elem


class Device:
    """A simulated CUDA device: address space, transfers and arrays."""

    #: allocation alignment, matching cudaMalloc's 256 B alignment
    ALIGN = 256

    def __init__(self, spec: DeviceSpec = DEFAULT_DEVICE) -> None:
        self.spec = spec
        self._next_addr = self.ALIGN
        self._constant_used = 0
        self.arrays: Dict[str, DeviceArray] = {}
        self.transfers: List[TransferRecord] = []
        self._anon = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def _allocate(self, nbytes: int, name: str) -> int:
        aligned = -(-nbytes // self.ALIGN) * self.ALIGN
        if self._next_addr + aligned > self.spec.dram_capacity_bytes:
            raise OutOfDeviceMemory(
                f"cannot allocate {nbytes} B for {name!r}: "
                f"{self._next_addr} B of "
                f"{self.spec.dram_capacity_bytes} B already in use")
        addr = self._next_addr
        self._next_addr += aligned
        return addr

    def _name(self, name: Optional[str]) -> str:
        if name is None:
            self._anon += 1
            name = f"array{self._anon}"
        if name in self.arrays:
            self._anon += 1
            name = f"{name}#{self._anon}"
        return name

    def alloc(self, shape, dtype=np.float32, name: Optional[str] = None
              ) -> DeviceArray:
        """``cudaMalloc`` + zero-fill."""
        name = self._name(name)
        data = np.zeros(shape, dtype=dtype)
        arr = DeviceArray(name, data, self._allocate(data.nbytes, name))
        self.arrays[name] = arr
        return arr

    # ------------------------------------------------------------------
    # Transfers (explicit, timed — the paper's separate-address-space model)
    # ------------------------------------------------------------------
    def _transfer_time(self, nbytes: int, gbs: float) -> float:
        return self.spec.transfer_overhead_s + nbytes / (gbs * 1e9)

    def to_device(self, host: np.ndarray, name: Optional[str] = None
                  ) -> DeviceArray:
        """``cudaMemcpy(HostToDevice)`` with transfer-time accounting."""
        name = self._name(name)
        host = np.asarray(host)
        arr = DeviceArray(name, host.copy(), self._allocate(host.nbytes, name))
        arr.host_initialized = True
        self.arrays[name] = arr
        self.transfers.append(TransferRecord(
            "h2d", int(host.nbytes),
            self._transfer_time(host.nbytes, self.spec.h2d_bandwidth_gbs),
            label=name))
        return arr

    def from_device(self, arr: DeviceArray) -> np.ndarray:
        """``cudaMemcpy(DeviceToHost)`` with transfer-time accounting."""
        self.transfers.append(TransferRecord(
            "d2h", arr.nbytes,
            self._transfer_time(arr.nbytes, self.spec.d2h_bandwidth_gbs),
            label=arr.name))
        return arr.to_host().copy()

    def to_constant(self, host: np.ndarray, name: Optional[str] = None
                    ) -> ConstantArray:
        """``cudaMemcpyToSymbol`` into the 64 KB constant space."""
        host = np.asarray(host)
        if self._constant_used + host.nbytes > self.spec.constant_mem_bytes:
            raise OutOfDeviceMemory(
                f"constant memory overflow: {self._constant_used} + "
                f"{host.nbytes} > {self.spec.constant_mem_bytes} B")
        name = self._name(name)
        arr = ConstantArray(name, host.copy(),
                            self._allocate(host.nbytes, name))
        arr.host_initialized = True
        self._constant_used += host.nbytes
        self.arrays[name] = arr
        self.transfers.append(TransferRecord(
            "h2d", int(host.nbytes),
            self._transfer_time(host.nbytes, self.spec.h2d_bandwidth_gbs),
            label=name))
        return arr

    def to_texture(self, host: np.ndarray, name: Optional[str] = None
                   ) -> TextureArray:
        """Allocate + bind a read-only texture over ``host``'s data."""
        name = self._name(name)
        host = np.asarray(host)
        arr = TextureArray(name, host.copy(), self._allocate(host.nbytes, name))
        arr.host_initialized = True
        self.arrays[name] = arr
        self.transfers.append(TransferRecord(
            "h2d", int(host.nbytes),
            self._transfer_time(host.nbytes, self.spec.h2d_bandwidth_gbs),
            label=name))
        return arr

    # ------------------------------------------------------------------
    # Ledgers
    # ------------------------------------------------------------------
    @property
    def bytes_allocated(self) -> int:
        return self._next_addr - self.ALIGN

    def transfer_seconds(self, direction: Optional[str] = None) -> float:
        return sum(t.seconds for t in self.transfers
                   if direction is None or t.direction == direction)

    def transfer_bytes(self, direction: Optional[str] = None) -> int:
        return sum(t.bytes for t in self.transfers
                   if direction is None or t.direction == direction)

    def reset_transfers(self) -> None:
        self.transfers.clear()

    def free(self, arr: DeviceArray) -> None:
        """``cudaFree``.  The allocator is a bump pointer, so space is
        actually reclaimed only when the most recent allocation is
        freed (the batched-allocation pattern PNS uses); freeing an
        older array just drops the handle.
        """
        self.arrays.pop(arr.name, None)
        aligned = -(-arr.nbytes // self.ALIGN) * self.ALIGN
        if arr.base_addr + aligned == self._next_addr:
            self._next_addr = arr.base_addr

    def reset_constant_space(self) -> None:
        """Release the constant-memory budget so the next chunk of data
        can be staged through ``cudaMemcpyToSymbol`` (applications that
        stream data through constant memory, like CP and the MRI
        kernels, reuse the same symbols each launch)."""
        self._constant_used = 0
