"""CUDA-like programming model executed on the simulated G80.

Public surface::

    from repro.cuda import Device, Dim3, kernel, launch

    dev = Device()
    x = dev.to_device(np.arange(1024, dtype=np.float32), "x")

    @kernel("scale", regs_per_thread=4)
    def scale(ctx, x, alpha):
        i = ctx.global_tid()
        v = ctx.ld_global(x, i)
        ctx.st_global(x, i, ctx.fmul(v, alpha))

    result = launch(scale, grid=(4,), block=(256,), args=(x, 2.0), device=dev)
    result.gflops()        # analytical performance estimate
    dev.from_device(x)     # timed copy back
"""

from .dim3 import Dim3, as_dim3
from .memory import (
    ConstantArray,
    CudaModelError,
    Device,
    DeviceArray,
    OutOfDeviceMemory,
    SharedArray,
    TextureArray,
    TransferRecord,
)
from .context import BlockContext
from .launch import Kernel, LaunchResult, kernel, launch
from .plan import LaunchPlan
from .executors import (
    BatchedExecutor,
    CompiledExecutor,
    Executor,
    ProcessPoolExecutor,
    SequentialExecutor,
    choose_executor,
    resolve_executor,
)

__all__ = [
    "Dim3",
    "as_dim3",
    "Device",
    "DeviceArray",
    "ConstantArray",
    "TextureArray",
    "SharedArray",
    "TransferRecord",
    "CudaModelError",
    "OutOfDeviceMemory",
    "BlockContext",
    "Kernel",
    "LaunchResult",
    "kernel",
    "launch",
    "LaunchPlan",
    "Executor",
    "SequentialExecutor",
    "BatchedExecutor",
    "CompiledExecutor",
    "ProcessPoolExecutor",
    "choose_executor",
    "resolve_executor",
]
