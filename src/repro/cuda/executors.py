"""Pluggable execution backends — stage 2 of the execution pipeline.

Every backend walks the blocks of a :class:`~repro.cuda.plan.LaunchPlan`
and reports per-block results to a
:class:`~repro.trace.collector.TraceCollector`:

``SequentialExecutor``
    The reference backend: one :class:`BlockContext` per block, blocks
    in linear order — exactly the semantics of the original monolithic
    ``launch()`` loop.

``BatchedExecutor``
    Vectorizes the *untraced functional sweep* across many homogeneous
    blocks at once by widening the per-thread NumPy vectors of the DSL
    from ``(threads,)`` to ``(blocks * threads,)`` lanes.  Traced
    blocks still run one-by-one (bit-identical traces); untraced
    blocks between them are flushed in linear order, so device-array
    write order — and therefore every functional result — matches the
    sequential backend bit for bit.  Requires ``Kernel.batchable``
    (no Python-level control flow on scalar block coordinates, no
    cross-block data dependences within one launch); non-batchable
    kernels silently fall back to sequential execution.

``CompiledExecutor``
    Runs the whole untraced functional sweep as one AOT-compiled
    NumPy program per kernel (see :mod:`repro.compile`): the kernel's
    AST is lowered once so thread loops become array axes and every
    block of a launch executes as slices of a single
    ``(blocks, tz, ty, tx)`` vector program.  Bit-identical to the
    sequential backend for batchable kernels; unsupported kernels
    fall back per kernel to the batched interpreter.

``ProcessPoolExecutor``
    Opt-in: shards untraced functional block ranges across forked
    worker processes and merges their device-array writes back through
    a write log.  Requires the CUDA inter-block independence guarantee
    (a block must not read global data written by another block of the
    same launch) and a platform with ``fork``.

Use :func:`resolve_executor` (or ``launch(..., executor=...)``) to go
from ``None`` / ``"sequential"`` / ``"batched"`` / ``"compiled"`` /
``"process"`` / ``"auto"`` / an instance to a backend.
"""

from __future__ import annotations

import contextlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs.profiler import active_profiler
from ..obs.registry import MetricsRegistry, get_registry, use_registry
from ..obs.spans import span
from ..trace.collector import TraceCollector, TRACE, MEMO, PLAIN
from .context import BlockContext
from .launch import LaunchResult
from .memory import CudaModelError, DeviceArray, SharedArray


def _execute_single(plan, collector: TraceCollector, linear: int,
                    mode: str) -> None:
    """Run one block through a scalar :class:`BlockContext`."""
    if mode == TRACE:
        trace, stream = collector.begin_block(linear)
        ctx = plan.make_context(linear, trace=trace, stream=stream)
        plan.kernel.fn(ctx, *plan.args)
        collector.finish_block(linear, ctx)
    else:
        ctx = plan.make_context(linear)
        plan.kernel.fn(ctx, *plan.args)


class Executor(ABC):
    """Common interface: ``execute(plan) -> LaunchResult``.

    ``execute`` is also the pipeline's instrumentation point: it times
    the execute/collect/finalize stages, publishes launch counters to
    the ambient :class:`~repro.obs.registry.MetricsRegistry`, and hands
    the finished result to the active
    :class:`~repro.obs.profiler.LaunchProfiler` (if any).  With
    observability disabled this adds three ``perf_counter`` calls per
    *launch* — blocks pay nothing.
    """

    name = "executor"

    def execute(self, plan) -> LaunchResult:
        profiler = active_profiler()
        registry = get_registry()
        collector = TraceCollector(
            plan, timed=profiler is not None or registry.enabled)
        t0 = perf_counter()
        with span(f"executor.{self.name}", kernel=plan.kernel.name,
                  grid=plan.grid, block=plan.block):
            executed = self._run(plan, collector)
        t1 = perf_counter()
        with span("collector.finalize", kernel=plan.kernel.name):
            trace = collector.finalize()
        t2 = perf_counter()
        result = LaunchResult(
            kernel=plan.kernel,
            grid=plan.grid,
            block=plan.block,
            trace=trace,
            smem_bytes_per_block=collector.smem_bytes,
            device=plan.device,
            blocks_executed=executed,
            blocks_traced=len(plan.traced),
            stream=collector.stream,
            executor=self.name,
            memo_hits=collector.memo_hits,
            block_dispositions=dict(collector.dispositions),
            stage_seconds={
                "plan": plan.build_seconds,
                "execute": max(0.0, (t1 - t0) - collector.collect_seconds),
                "collect": collector.collect_seconds,
                "finalize": t2 - t1,
            },
        )
        if registry.enabled:
            kern = plan.kernel.name
            registry.counter("launch.count", kernel=kern,
                             executor=self.name).inc()
            registry.histogram("launch.seconds", kernel=kern,
                               executor=self.name).observe(
                                   plan.build_seconds + (t2 - t0))
            for disposition, count in collector.dispositions.items():
                if count:
                    registry.counter("launch.blocks", kernel=kern,
                                     disposition=disposition).inc(count)
        if profiler is not None:
            profiler.on_launch(result)
        return result

    @abstractmethod
    def _run(self, plan, collector: TraceCollector) -> int:
        """Execute the plan's blocks; returns how many actually ran."""


class SequentialExecutor(Executor):
    """One block at a time, in linear order (the reference backend)."""

    name = "sequential"

    def _run(self, plan, collector: TraceCollector) -> int:
        executed = 0
        for linear in plan.block_ids():
            mode = collector.classify(linear)
            if mode == MEMO and not plan.functional:
                continue
            _execute_single(plan, collector, linear, mode)
            executed += 1
        return executed


# ----------------------------------------------------------------------
# Sanitized execution
# ----------------------------------------------------------------------

class SanitizedExecutor(Executor):
    """The reference sequential walk through sanitizing contexts.

    Every block runs in a :class:`~repro.san.context.SanitizedContext`
    with all four ``cuda-memcheck``-style tools armed (memcheck,
    racecheck, synccheck, initcheck — restrict via ``tools=``).  The
    :class:`~repro.san.state.SanState` persists across launches, so
    definedness shadow bits and the per-launch dataflow log span a
    whole application run — assign an instance to ``app.executor`` to
    sanitize every launch the app makes, or use
    ``launch(..., sanitize=True)`` for a single launch.

    Clean kernels take exactly the base context's data path, so
    sanitized results are bit-identical to the sequential backend's.
    """

    name = "sanitized"

    def __init__(self, state=None, tools=None) -> None:
        from ..san.state import SanState
        self.state = state if state is not None else SanState(tools)

    def _run(self, plan, collector: TraceCollector) -> int:
        from ..san.context import SanitizedContext
        self.state.begin_launch(plan)
        executed = 0
        for linear in plan.block_ids():
            mode = collector.classify(linear)
            if mode == MEMO and not plan.functional:
                continue
            if mode == TRACE:
                trace, stream = collector.begin_block(linear)
                ctx = SanitizedContext(self.state, plan, linear,
                                       trace=trace, stream=stream)
                plan.kernel.fn(ctx, *plan.args)
                collector.finish_block(linear, ctx)
            else:
                ctx = SanitizedContext(self.state, plan, linear)
                plan.kernel.fn(ctx, *plan.args)
            ctx.finish()
            executed += 1
        return executed

    def execute(self, plan) -> LaunchResult:
        result = super().execute(plan)
        result.san = self.state
        return result


# ----------------------------------------------------------------------
# Batched (block-vectorized) execution
# ----------------------------------------------------------------------

class _BatchedSharedArray(SharedArray):
    """Shared scratchpad widened to one copy per batched block.

    ``size``/``shape`` keep the *per-block* geometry (so kernel-side
    bounds checks and the 16 KB meter see one block's footprint) while
    ``data`` holds ``nblocks`` consecutive copies.
    """

    def __init__(self, name, shape, dtype, word_offset, nblocks) -> None:
        super().__init__(name, shape, dtype, word_offset)
        self.nblocks = nblocks
        self._per_block_size = int(np.prod(shape))
        self.data = np.zeros(self._per_block_size * nblocks, dtype=dtype)
        #: per-lane offset of each block's copy, filled by shared_alloc
        self.lane_offset: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return self._per_block_size


class BatchedBlockContext(BlockContext):
    """A :class:`BlockContext` spanning many homogeneous blocks.

    Per-thread vectors widen from ``(threads,)`` to
    ``(blocks * threads,)`` lanes ordered block-major, so elementwise
    DSL arithmetic produces bit-identical per-lane values and fancy-
    indexed global stores preserve the sequential last-writer order.
    Only valid untraced (``trace is None``): instruction accounting,
    coalescing and bank-conflict models always observe single blocks.
    """

    def __init__(self, plan, linears: Sequence[int]) -> None:
        lin = np.asarray(linears, dtype=np.int64)
        block = plan.block
        super().__init__(plan.spec, plan.grid, block, (0, 0, 0),
                         trace=None, caches=None, stream=None,
                         kernel_name=plan.kernel.name)
        nblocks = int(lin.shape[0])
        T = block.size
        reps = np.repeat(lin, T)
        gx, gy = plan.grid.x, plan.grid.y
        self.bx = reps % gx
        self.by = (reps // gx) % gy
        self.bz = reps // (gx * gy)
        tid = np.tile(np.arange(T, dtype=np.int64), nblocks)
        self.tid = tid
        self.tx = tid % block.x
        self.ty = (tid // block.x) % block.y
        self.tz = tid // (block.x * block.y)
        self.nthreads = nblocks * T
        self.threads_per_block = T
        self._nblocks = nblocks
        self._block_linear_rep = reps
        self._slot = np.repeat(np.arange(nblocks, dtype=np.int64), T)
        self._mask_stack = [np.ones(nblocks * T, dtype=bool)]

    @property
    def block_linear(self) -> np.ndarray:
        return self._block_linear_rep

    # -- shared memory: one copy per block, per-lane slot offsets ------
    def shared_alloc(self, shape, dtype=np.float32,
                     name: str = "smem") -> SharedArray:
        arr = _BatchedSharedArray(name, tuple(np.atleast_1d(shape)),
                                  np.dtype(dtype), self._smem_words,
                                  self._nblocks)
        arr.lane_offset = self._slot * arr.size
        self._smem_words += max(1, arr.itemsize // 4) * arr.size
        if self.smem_bytes > self.spec.shared_mem_per_sm:
            raise CudaModelError(
                f"shared memory overflow: block requests {self.smem_bytes} B "
                f"> {self.spec.shared_mem_per_sm} B per SM")
        self.shared_arrays.append(arr)
        return arr

    def ld_shared(self, sh: SharedArray, index) -> np.ndarray:
        idx = self._flat_index(index)
        safe = np.clip(idx, 0, sh.size - 1)
        if len(self._mask_stack) > 1:
            safe = np.where(self.mask, safe, 0)
        return sh.data[safe + sh.lane_offset]

    def st_shared(self, sh: SharedArray, index, value) -> None:
        idx = self._flat_index(index)
        vals = self._bc(value, sh.data.dtype)
        if len(self._mask_stack) == 1:
            if idx.size and (idx.min() < 0 or idx.max() >= sh.size):
                raise CudaModelError(
                    f"shared store out of bounds on {sh.name!r}")
            sh.data[idx + sh.lane_offset] = vals
            return
        mask = self.mask
        act = idx[mask]
        if act.size and (act.min() < 0 or act.max() >= sh.size):
            raise CudaModelError(f"shared store out of bounds on {sh.name!r}")
        sh.data[(idx + sh.lane_offset)[mask]] = vals[mask]


class BatchedExecutor(Executor):
    """Vectorize the untraced functional sweep across blocks.

    ``max_lanes`` bounds one batch's vector width (``blocks * threads``
    lanes) to keep temporary arrays cache-friendly.
    """

    name = "batched"

    def __init__(self, max_lanes: int = 1 << 16) -> None:
        if max_lanes < 1:
            raise ValueError("max_lanes must be positive")
        self.max_lanes = max_lanes

    def _run(self, plan, collector: TraceCollector) -> int:
        if not plan.kernel.batchable:
            registry = get_registry()
            if registry.enabled:
                registry.counter("executor.batch_fallbacks",
                                 kernel=plan.kernel.name).inc()
            return SequentialExecutor()._run(plan, collector)
        batch_blocks = max(1, self.max_lanes // plan.block.size)
        executed = 0
        pending: List[int] = []
        registry = get_registry()

        def flush() -> None:
            nonlocal executed
            if not pending:
                return
            if len(pending) == 1:
                _execute_single(plan, collector, pending[0], PLAIN)
            else:
                ctx = BatchedBlockContext(plan, pending)
                plan.kernel.fn(ctx, *plan.args)
            if registry.enabled:
                registry.histogram("executor.batch_blocks",
                                   kernel=plan.kernel.name).observe(
                                       len(pending))
            executed += len(pending)
            pending.clear()

        for linear in plan.block_ids():
            mode = collector.classify(linear)
            if mode == TRACE:
                flush()     # keep global block order intact
                _execute_single(plan, collector, linear, TRACE)
                executed += 1
            else:
                if mode == MEMO and not plan.functional:
                    continue
                pending.append(linear)
                if len(pending) >= batch_blocks:
                    flush()
        flush()
        return executed


# ----------------------------------------------------------------------
# Compiled (whole-grid AOT) execution
# ----------------------------------------------------------------------

class CompiledExecutor(Executor):
    """Run an AOT-compiled whole-grid NumPy program per kernel.

    The grid compiler (:mod:`repro.compile`) lowers the kernel's AST
    once — thread loops become array axes, ``__syncthreads()`` becomes
    a compile-time program-point split, divergent branches become
    masked stores — and every untraced functional block then executes
    as slices of one ``(blocks, tz, ty, tx)`` NumPy program.  Lane
    order equals the batched executor's block-major order, so results
    are bit-identical to the sequential backend for every
    ``batchable`` kernel; kernels the compiler cannot lower (or
    declared ``batchable=False``) fall back per kernel to the batched
    interpreter, recorded on the ``executor.compile_fallbacks``
    counter.

    Traced blocks are handled per ``trace_source``:

    ``"blocks"`` (default)
        The grid splits into contiguous compiled segments around each
        traced block, which runs through a scalar
        :class:`BlockContext` at its ordered position — traces *and*
        outputs stay bit-identical to sequential execution.

    ``"census"``
        Traced blocks also run compiled; their traces are synthesized
        from the static :class:`~repro.analysis.census.KernelCensus`
        of the launch geometry (one mean block trace merged per traced
        block).  Fastest, but trace counters are the analyzer's
        approximation and no instruction stream is recorded, so
        stream-recording launches fall back to ``"blocks"``.
    """

    name = "compiled"

    def __init__(self, max_lanes: int = 1 << 20,
                 trace_source: str = "blocks") -> None:
        if max_lanes < 1:
            raise ValueError("max_lanes must be positive")
        if trace_source not in ("blocks", "census"):
            raise ValueError(
                f"trace_source must be 'blocks' or 'census', "
                f"got {trace_source!r}")
        self.max_lanes = max_lanes
        self.trace_source = trace_source

    def _run(self, plan, collector: TraceCollector) -> int:
        from ..compile import (CompileError, GridRT, get_program,
                               prelude_for)
        from ..compile.program import plan_context
        registry = get_registry()
        program = None
        if plan.functional:
            try:
                program = get_program(plan.kernel, plan_context(plan))
            except CompileError:
                pass
        if program is None:
            if registry.enabled:
                registry.counter("executor.compile_fallbacks",
                                 kernel=plan.kernel.name).inc()
            return BatchedExecutor()._run(plan, collector)

        prelude = prelude_for(plan.grid, plan.block)
        chunk_blocks = max(1, self.max_lanes // plan.block.size)
        executed = 0

        def run_range(start: int, stop: int) -> None:
            nonlocal executed
            s = start
            while s < stop:
                e = min(stop, s + chunk_blocks)
                rt = GridRT(prelude, s, e, plan.spec, plan.kernel.name)
                program.entry(rt, *plan.args)
                executed += e - s
                s = e
            if stop > start and registry.enabled:
                registry.histogram("executor.compiled_blocks",
                                   kernel=plan.kernel.name).observe(
                                       stop - start)

        if plan.traced and self.trace_source == "census" \
                and not plan.record_stream \
                and self._merge_census(plan, collector):
            run_range(0, plan.grid.size)
            return executed

        # Only the traced sample needs per-block classification; every
        # other block is PLAIN by definition and runs inside a compiled
        # segment (walking all of block_ids() through classify() would
        # cost a Python iteration per block for a known answer).
        seg_start = 0
        for linear in sorted(plan.traced):
            mode = collector.classify(linear)
            if mode == TRACE:
                run_range(seg_start, linear)   # keep block order intact
                _execute_single(plan, collector, linear, TRACE)
                executed += 1
                seg_start = linear + 1
            # MEMO blocks stay in the compiled segment: the launch is
            # functional, so they still execute (their trace was merged
            # from the cache by classify()).
        run_range(seg_start, plan.grid.size)
        collector.dispositions[PLAIN] += plan.grid.size - len(plan.traced)
        return executed

    def _merge_census(self, plan, collector: TraceCollector) -> bool:
        """Synthesize traced-block counters from the static census;
        returns False (caller falls back to exact per-block tracing)
        when the analyzer cannot handle the kernel."""
        from ..analysis.census import census_target
        from ..analysis.targets import LintArray, LintTarget
        try:
            args = tuple(
                LintArray(a.name, getattr(a, "space", "global"),
                          a.size, str(a.data.dtype))
                if isinstance(a, DeviceArray) else a
                for a in plan.args)
            grid, block = plan.grid, plan.block
            target = LintTarget(
                kernel=plan.kernel, grid=(grid.x, grid.y, grid.z),
                block=(block.x, block.y, block.z), args=args,
                note="census-trace")
            census = census_target(target, plan.spec)
        except Exception:
            return False
        block_trace = census.block_trace
        block_trace.blocks_traced = 1
        for _linear in plan.traced:
            collector.merged.merge(block_trace)
            collector.dispositions[TRACE] += 1
        collector.smem_bytes = max(collector.smem_bytes,
                                   census.smem_bytes)
        return True


# ----------------------------------------------------------------------
# Process-pool execution
# ----------------------------------------------------------------------

#: plan handed to forked workers through copy-on-write memory (fork
#: start method only — closures inside Kernel objects do not pickle)
_WORKER_PLAN = None


class _WriteLogContext(BlockContext):
    """Records every global write so a worker's effects can be
    replayed, in block order, on the parent's device arrays."""

    def __init__(self, plan, linear: int, log: list) -> None:
        super().__init__(plan.spec, plan.grid, plan.block,
                         plan.grid.unlinear(linear), trace=None,
                         caches=None, stream=None,
                         kernel_name=plan.kernel.name)
        self._log = log

    def st_global(self, arr, index, value) -> None:
        super().st_global(arr, index, value)
        idx = self._flat_index(index)
        mask = self.mask
        vals = self._bc(value, arr.data.dtype)
        self._log.append(("st", arr.name, idx[mask].copy(),
                          vals[mask].copy()))

    def atom_global_add(self, arr, index, value) -> None:
        super().atom_global_add(arr, index, value)
        idx = self._flat_index(index)
        mask = self.mask
        vals = self._bc(value, arr.data.dtype)
        self._log.append(("add", arr.name, idx[mask].copy(),
                          vals[mask].copy()))


def _pool_run_span(linears: List[int]) -> Tuple[list, Optional[list]]:
    """Run one span of blocks in a forked worker.

    Metrics recorded inside the worker land in a *fresh* registry (the
    inherited copy-on-write one already holds the parent's pre-fork
    values, which must not be double-counted) and travel back as a
    snapshot for the parent to merge — the cross-process fan-in path.
    """
    plan = _WORKER_PLAN
    log: list = []
    worker_registry = MetricsRegistry(enabled=get_registry().enabled)
    with use_registry(worker_registry):
        if worker_registry.enabled:
            import os
            worker_registry.counter("executor.worker_blocks",
                                    kernel=plan.kernel.name,
                                    worker=os.getpid()).inc(len(linears))
        for linear in linears:
            ctx = _WriteLogContext(plan, linear, log)
            plan.kernel.fn(ctx, *plan.args)
    snapshot = worker_registry.snapshot() if worker_registry.enabled else None
    return log, snapshot


class ProcessPoolExecutor(Executor):
    """Shard untraced functional blocks across forked workers (opt-in).

    Traced blocks run in-process first (bit-identical traces); the
    remaining blocks are split into contiguous spans whose write logs
    are applied back in span order.  Correct only under CUDA's
    inter-block independence guarantee: a block must not read global
    data written by another block of the same launch.
    """

    name = "process"

    def __init__(self, workers: int = 2,
                 chunk_blocks: Optional[int] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.chunk_blocks = chunk_blocks

    def _run(self, plan, collector: TraceCollector) -> int:
        import multiprocessing as mp
        try:
            mp_ctx = mp.get_context("fork")
        except ValueError as exc:
            raise CudaModelError(
                "ProcessPoolExecutor needs the 'fork' start method; use "
                "the sequential or batched backend on this platform"
            ) from exc

        executed = 0
        plain: List[int] = []
        for linear in plan.block_ids():
            mode = collector.classify(linear)
            if mode == TRACE:
                _execute_single(plan, collector, linear, TRACE)
                executed += 1
            elif mode == MEMO and not plan.functional:
                continue
            else:
                plain.append(linear)
        if not plain:
            return executed
        if len(plain) <= self.workers:      # not worth forking for
            for linear in plain:
                _execute_single(plan, collector, linear, PLAIN)
            return executed + len(plain)

        chunk = self.chunk_blocks or max(
            1, -(-len(plain) // (self.workers * 4)))
        spans = [plain[i:i + chunk] for i in range(0, len(plain), chunk)]

        from concurrent.futures import ProcessPoolExecutor as _FuturesPool
        global _WORKER_PLAN
        _WORKER_PLAN = plan
        registry = get_registry()
        try:
            with _FuturesPool(max_workers=self.workers,
                              mp_context=mp_ctx) as pool:
                for log, snapshot in pool.map(_pool_run_span, spans):
                    self._apply_write_log(plan, log)
                    if snapshot:
                        registry.merge_snapshot(snapshot)
        finally:
            _WORKER_PLAN = None
        return executed + len(plain)

    @staticmethod
    def _apply_write_log(plan, log: list) -> None:
        arrays = dict(plan.device.arrays)
        for arg in plan.args:
            if isinstance(arg, DeviceArray):
                arrays[arg.name] = arg
        for kind, name, idx, vals in log:
            arr = arrays[name]
            if kind == "st":
                arr.data[idx] = vals
            else:
                np.add.at(arr.data, idx, vals)


# ----------------------------------------------------------------------
# Resolution / selection policy
# ----------------------------------------------------------------------

EXECUTORS = {
    "sequential": SequentialExecutor,
    "sanitized": SanitizedExecutor,
    "batched": BatchedExecutor,
    "compiled": CompiledExecutor,
    "process": ProcessPoolExecutor,
}

#: grids with fewer untraced blocks than this go straight to the
#: sequential backend under ``"auto"`` — below the width at which
#: batching/compilation amortizes its per-launch bookkeeping.
#: (Kept as a module constant for backward compatibility; the live
#: value is :class:`ExecutorPolicy.min_vector_blocks`.)
MIN_VECTOR_BLOCKS = 4


@dataclass(frozen=True)
class ExecutorPolicy:
    """Every auto-policy knob in one place, env-overridable.

    The defaults reproduce the historical behaviour; processes that
    need different thresholds set the environment variables below (CI
    does, tests do) or install a policy with :func:`set_policy` /
    :func:`use_policy`.

    ==========================  =================================
    field                       environment variable
    ==========================  =================================
    ``min_vector_blocks``       ``REPRO_MIN_VECTOR_BLOCKS``
    ``min_fuse_steps``          ``REPRO_MIN_FUSE_STEPS``
    ``module_trace_replay``     ``REPRO_MODULE_TRACE_REPLAY`` (0/1)
    artifact cache directory    ``REPRO_AOT_CACHE`` (see
                                :mod:`repro.compile.artifact`)
    ==========================  =================================
    """

    #: untraced-block floor below which ``"auto"`` stays sequential
    min_vector_blocks: int = MIN_VECTOR_BLOCKS
    #: minimum run of compilable launches worth fusing into a module
    #: group (a "fused group" of one launch is just a launch)
    min_fuse_steps: int = 2
    #: replay recorded traces for repeated launch configs inside a
    #: fused module group instead of re-tracing sample blocks
    module_trace_replay: bool = True

    @classmethod
    def from_env(cls, env=None) -> "ExecutorPolicy":
        import os
        env = os.environ if env is None else env

        def _int(key: str, default: int) -> int:
            raw = env.get(key)
            if raw is None:
                return default
            try:
                return int(raw)
            except ValueError:
                raise CudaModelError(
                    f"{key}={raw!r} is not an integer") from None

        def _bool(key: str, default: bool) -> bool:
            raw = env.get(key)
            if raw is None:
                return default
            return raw.strip().lower() not in ("0", "false", "no", "")

        return cls(
            min_vector_blocks=_int("REPRO_MIN_VECTOR_BLOCKS",
                                   MIN_VECTOR_BLOCKS),
            min_fuse_steps=_int("REPRO_MIN_FUSE_STEPS", 2),
            module_trace_replay=_bool("REPRO_MODULE_TRACE_REPLAY", True),
        )


_POLICY: Optional[ExecutorPolicy] = None


def get_policy() -> ExecutorPolicy:
    """The process-wide :class:`ExecutorPolicy` (env-derived once)."""
    global _POLICY
    if _POLICY is None:
        _POLICY = ExecutorPolicy.from_env()
    return _POLICY


def set_policy(policy: Optional[ExecutorPolicy]
               ) -> Optional[ExecutorPolicy]:
    """Install a policy (``None`` re-derives from the environment on
    next use); returns the previous one."""
    global _POLICY
    previous = _POLICY
    _POLICY = policy
    return previous


@contextlib.contextmanager
def use_policy(policy: ExecutorPolicy):
    """Scoped :func:`set_policy` (tests)."""
    previous = set_policy(policy)
    try:
        yield policy
    finally:
        set_policy(previous)


def choose_executor(plan,
                    policy: Optional[ExecutorPolicy] = None) -> Executor:
    """The ``"auto"`` policy, fastest-first:

    1. tiny grids (fewer untraced blocks than the vectorization floor)
       run sequentially — nothing to amortize;
    2. batchable kernels the grid compiler has (or can build) a
       program for run compiled — including programs loaded from the
       on-disk artifact cache when one is active;
    3. batchable kernels it cannot lower run batched;
    4. everything else runs on the reference backend.
    """
    from ..compile import compile_status
    from ..compile.program import plan_context
    policy = policy or get_policy()
    untraced = plan.num_blocks - len(plan.traced)
    if plan.functional and plan.kernel.batchable \
            and untraced >= policy.min_vector_blocks:
        if compile_status(plan.kernel, plan_context(plan))[0]:
            return CompiledExecutor()
        return BatchedExecutor()
    return SequentialExecutor()


def resolve_executor(spec, plan=None) -> Executor:
    """Coerce ``None`` / name / class / instance into an executor."""
    if spec is None:
        return SequentialExecutor()
    if isinstance(spec, Executor):
        return spec
    if isinstance(spec, type) and issubclass(spec, Executor):
        return spec()
    if isinstance(spec, str):
        if spec == "auto":
            if plan is None:
                raise CudaModelError(
                    "executor='auto' needs a plan to choose from")
            return choose_executor(plan)
        cls = EXECUTORS.get(spec)
        if cls is not None:
            return cls()
    raise CudaModelError(
        f"unknown executor {spec!r}; expected one of "
        f"{sorted(EXECUTORS)} + ['auto'], an Executor class or instance")
