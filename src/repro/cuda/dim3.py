"""CUDA-style three-component dimensions for grids and blocks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union


@dataclass(frozen=True, order=True)
class Dim3:
    """A CUDA ``dim3``: x varies fastest, exactly as in the hardware's
    linearization of thread and block coordinates."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if min(self.x, self.y, self.z) < 1:
            raise ValueError(f"Dim3 components must be >= 1, got {self}")

    @property
    def size(self) -> int:
        """Total number of elements (threads in a block / blocks in a grid)."""
        return self.x * self.y * self.z

    def linear(self, x: int, y: int = 0, z: int = 0) -> int:
        """Linear index of coordinate (x, y, z), x fastest."""
        return x + self.x * (y + self.y * z)

    def unlinear(self, idx: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`linear`."""
        x = idx % self.x
        y = (idx // self.x) % self.y
        z = idx // (self.x * self.y)
        return x, y, z

    def __iter__(self) -> Iterator[Tuple[int, int, int]]:
        for z in range(self.z):
            for y in range(self.y):
                for x in range(self.x):
                    yield x, y, z

    def __str__(self) -> str:
        return f"({self.x}, {self.y}, {self.z})"


DimLike = Union[Dim3, int, Tuple[int, ...]]


def as_dim3(value: DimLike) -> Dim3:
    """Coerce an int or tuple into a :class:`Dim3` (CUDA-call style)."""
    if isinstance(value, Dim3):
        return value
    if isinstance(value, int):
        return Dim3(value)
    if isinstance(value, tuple):
        if not 1 <= len(value) <= 3:
            raise ValueError(f"dim tuple must have 1-3 components: {value!r}")
        return Dim3(*value)
    raise TypeError(f"cannot interpret {value!r} as Dim3")
