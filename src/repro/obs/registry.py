"""Process-wide (but injectable) metrics registry.

The paper's methodology *is* counter attribution: every GFLOPS number
in Section 4 is explained by per-kernel counts (global loads per
thread, FMA issue fraction, registers per thread, bank conflicts).
This module gives the reproduction the same vocabulary for its own
pipeline: named counters, gauges and histograms with label support,
aggregated in a :class:`MetricsRegistry`.

Design points:

* **Zero overhead by default.**  The ambient registry starts
  *disabled*; a disabled registry hands out one shared no-op metric,
  so instrumented hot paths pay a single attribute check.
* **Injectable.**  The ambient registry is process-global state, but
  :func:`set_registry` / :func:`use_registry` swap it (tests, nested
  profilers, worker processes).
* **Mergeable.**  :meth:`MetricsRegistry.snapshot` produces a plain
  picklable structure and :meth:`MetricsRegistry.merge_snapshot` folds
  it back in — the fan-in path for metrics recorded inside forked
  :class:`~repro.cuda.executors.ProcessPoolExecutor` workers.
"""

from __future__ import annotations

import contextlib
import math
from typing import Dict, Iterator, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "get_registry",
    "set_registry",
    "use_registry",
]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical (sorted, stringified) form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (events, blocks, cache hits)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def _merge_value(self, value: float) -> None:
        self.value += value


class Gauge:
    """Last-written value (queue depth, bytes resident, overhead %)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def _merge_value(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming distribution summary (count/sum/min/max).

    Launch wall times and per-stage durations do not need full bucket
    vectors to answer the questions the bench layer asks; a compact
    moment summary merges exactly and pickles small.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "count", "sum", "min", "max")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def value(self):
        return {"count": self.count, "sum": self.sum,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
                "mean": self.mean}

    def _merge_value(self, value: Dict[str, float]) -> None:
        if not value["count"]:
            return
        self.count += int(value["count"])
        self.sum += value["sum"]
        self.min = min(self.min, value["min"])
        self.max = max(self.max, value["max"])


class _NullMetric:
    """Shared do-nothing metric handed out by a disabled registry."""

    kind = "null"
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = _NullMetric()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A bag of named, labeled metrics (see module docstring)."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[Tuple[str, LabelKey], object] = {}

    # ------------------------------------------------------------------
    # Metric factories (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: Dict[str, object]):
        if not self.enabled:
            return NULL_METRIC
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[object]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def value(self, name: str, default=None, **labels):
        """Current value of one metric, or ``default`` if unset."""
        metric = self._metrics.get((name, _label_key(labels)))
        return default if metric is None else metric.value

    def total(self, name: str) -> float:
        """Sum of a counter over every label combination."""
        return sum(m.value for (n, _), m in self._metrics.items()
                   if n == name and m.kind == "counter")

    def to_dict(self) -> Dict[str, object]:
        """Readable nested form: ``{name: {label-string: value}}``."""
        out: Dict[str, Dict[str, object]] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            label_str = ",".join(f"{k}={v}" for k, v in labels) or "-"
            out.setdefault(name, {})[label_str] = metric.value
        return out

    # ------------------------------------------------------------------
    # Fan-in
    # ------------------------------------------------------------------
    def snapshot(self) -> list:
        """Picklable dump: ``[(name, labels, kind, value), ...]``."""
        return [(name, labels, m.kind, m.value)
                for (name, labels), m in self._metrics.items()]

    def merge_snapshot(self, snapshot: list) -> None:
        """Fold a :meth:`snapshot` (e.g. from a forked worker) in."""
        if not self.enabled:
            return
        for name, labels, kind, value in snapshot:
            key = (name, labels)
            metric = self._metrics.get(key)
            if metric is None:
                metric = _KINDS[kind](name, labels)
                self._metrics[key] = metric
            metric._merge_value(value)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one."""
        self.merge_snapshot(other.snapshot())

    def reset(self) -> None:
        self._metrics.clear()


#: ambient registry — disabled until a profiler (or caller) enables one
_REGISTRY = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The ambient registry instrumented code reports to."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as ambient; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry):
    """Scope ``registry`` as the ambient one for a ``with`` block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
