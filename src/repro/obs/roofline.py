"""Per-launch roofline reports (arithmetic intensity vs device peaks).

The paper's Figure-type argument — "this kernel moved from
bandwidth-bound to compute-bound when tiling raised its reuse" — is a
roofline statement.  This module makes it explicit: every profiled
launch becomes a point ``(arithmetic intensity, achieved GFLOPS)``
placed under the active device's two roofs,

* the **memory roof** ``AI x effective DRAM bandwidth`` (pin bandwidth
  derated by the timing model's achievable-efficiency factor), and
* the **compute roof** ``peak multiply-add GFLOPS``,

meeting at the ridge point ``peak / bandwidth`` (flop/byte).  Points
come in two kinds: ``measured`` (counter replay + timing model, via
:class:`~repro.obs.profiler.LaunchRecord`) and ``static`` (the
abstract-interpreter census, via
:class:`~repro.analysis.estimate.PerfEstimate`), so the estimator's
placement can be checked against the measured one on the same chart.

Output is a JSON-able dict (:func:`roofline_report`) and a terminal
rendering (:func:`format_roofline`) with an ASCII log-log chart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..arch.device import DeviceSpec

__all__ = [
    "RooflinePoint", "point_from_record", "point_from_estimate",
    "roofline_report", "format_roofline",
]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel launch placed on the roofline chart."""

    label: str
    flops: float            # total single-precision flops
    bus_bytes: float        # DRAM bus bytes moved
    gflops: float           # achieved (modeled) rate
    kind: str = "measured"  # "measured" | "static"

    @property
    def intensity(self) -> float:
        """Arithmetic intensity, flop per DRAM byte."""
        return self.flops / self.bus_bytes if self.bus_bytes > 0 \
            else float("inf")


def point_from_record(rec, label: Optional[str] = None) -> RooflinePoint:
    """Roofline point for a profiled launch record."""
    return RooflinePoint(
        label=label or rec.kernel,
        flops=rec.flops,
        bus_bytes=rec.global_bus_bytes,
        gflops=rec.gflops,
        kind="measured",
    )


def point_from_estimate(est, label: Optional[str] = None) -> RooflinePoint:
    """Roofline point from a static :class:`PerfEstimate` (no run)."""
    trace = est.census.trace
    gflops = est.time.gflops if est.time is not None else 0.0
    flops = est.time.flops if est.time is not None else trace.flops
    return RooflinePoint(
        label=label or est.kernel,
        flops=flops,
        bus_bytes=trace.global_bus_bytes,
        gflops=gflops,
        kind="static",
    )


def _roofs(spec: DeviceSpec) -> Dict[str, float]:
    bw_eff = spec.dram_bandwidth_gbs * spec.timing.dram_efficiency
    return {
        "peak_mad_gflops": spec.peak_mad_gflops,
        "peak_gflops_with_sfu": spec.peak_gflops_with_sfu,
        "dram_bandwidth_gbs": spec.dram_bandwidth_gbs,
        "effective_bandwidth_gbs": bw_eff,
        "ridge_flop_per_byte": spec.peak_mad_gflops / bw_eff,
    }


def attainable_gflops(intensity: float, spec: DeviceSpec) -> float:
    """The roof over a given arithmetic intensity."""
    roofs = _roofs(spec)
    if math.isinf(intensity):
        return roofs["peak_mad_gflops"]
    return min(roofs["peak_mad_gflops"],
               intensity * roofs["effective_bandwidth_gbs"])


def roofline_report(points: Sequence[RooflinePoint], spec: DeviceSpec,
                    ) -> Dict[str, object]:
    """JSON-able roofline report: device roofs + classified points."""
    roofs = _roofs(spec)
    rows = []
    for p in points:
        ai = p.intensity
        roof = attainable_gflops(ai, spec)
        rows.append({
            "label": p.label,
            "kind": p.kind,
            "flops": p.flops,
            "bus_bytes": p.bus_bytes,
            "intensity_flop_per_byte": None if math.isinf(ai) else ai,
            "gflops": p.gflops,
            "attainable_gflops": roof,
            "pct_of_roof": 100.0 * p.gflops / roof if roof > 0 else 0.0,
            "regime": ("compute-bound"
                       if ai >= roofs["ridge_flop_per_byte"]
                       else "bandwidth-bound"),
        })
    return {"device": spec.name, "roofs": roofs, "points": rows}


# ----------------------------------------------------------------------
# ASCII chart
# ----------------------------------------------------------------------

def _log_axis(lo: float, hi: float, n: int) -> List[float]:
    llo, lhi = math.log10(lo), math.log10(hi)
    return [10 ** (llo + (lhi - llo) * i / (n - 1)) for i in range(n)]


def _chart(report: Dict[str, object], width: int = 58,
           height: int = 12) -> List[str]:
    roofs = report["roofs"]
    pts = [r for r in report["points"]
           if r["intensity_flop_per_byte"] and r["gflops"] > 0]
    ridge = roofs["ridge_flop_per_byte"]
    ais = [r["intensity_flop_per_byte"] for r in pts] + [ridge]
    x_lo = min(ais) / 4 or 0.25
    x_hi = max(ais) * 4
    y_hi = roofs["peak_mad_gflops"] * 2
    y_lo = min([r["gflops"] for r in pts] + [y_hi / 4]) / 4
    xs = _log_axis(x_lo, x_hi, width)
    grid = [[" "] * width for _ in range(height)]

    def y_row(g: float) -> int:
        f = (math.log10(g) - math.log10(y_lo)) \
            / (math.log10(y_hi) - math.log10(y_lo))
        return height - 1 - max(0, min(height - 1, round(f * (height - 1))))

    for col, x in enumerate(xs):
        roof = min(roofs["peak_mad_gflops"],
                   x * roofs["effective_bandwidth_gbs"])
        if y_lo <= roof <= y_hi:
            grid[y_row(roof)][col] = "-" if x >= ridge else "/"
    for i, r in enumerate(pts):
        col = min(width - 1, max(0, round(
            (math.log10(r["intensity_flop_per_byte"]) - math.log10(x_lo))
            / (math.log10(x_hi) - math.log10(x_lo)) * (width - 1))))
        g = max(y_lo, min(y_hi, r["gflops"]))
        mark = chr(ord("a") + i) if r["kind"] == "static" \
            else chr(ord("A") + i)
        grid[y_row(g)][col] = mark
    rows = [f"{y_hi:>8.0f} |" + "".join(grid[0])]
    rows += ["         |" + "".join(row) for row in grid[1:-1]]
    rows.append(f"{y_lo:>8.1f} |" + "".join(grid[-1]))
    rows.append("  GFLOPS +" + "-" * width)
    rows.append(f"         {x_lo:<10.2g}{'AI (flop/byte)':^{width - 20}}"
                f"{x_hi:>10.3g}")
    return rows


def format_roofline(report: Dict[str, object], chart: bool = True) -> str:
    """Terminal rendering: roof summary, point table, ASCII chart."""
    roofs = report["roofs"]
    lines = [
        f"roofline: {report['device']}  "
        f"peak {roofs['peak_mad_gflops']:.1f} GFLOPS (MAD), "
        f"effective bw {roofs['effective_bandwidth_gbs']:.1f} GB/s, "
        f"ridge {roofs['ridge_flop_per_byte']:.2f} flop/B",
    ]
    pts = report["points"]
    if pts:
        w = max(len(r["label"]) for r in pts)
        for i, r in enumerate(pts):
            ai = r["intensity_flop_per_byte"]
            mark = chr(ord("a" if r["kind"] == "static" else "A") + i)
            lines.append(
                f"  {mark} {r['label']:<{w}} [{r['kind']:>8}]  "
                f"AI {'inf' if ai is None else format(ai, '7.2f')}  "
                f"{r['gflops']:8.2f} GFLOPS  "
                f"{r['pct_of_roof']:5.1f}% of roof  ({r['regime']})")
        if chart:
            lines.append("")
            lines.extend(_chart(report))
    else:
        lines.append("  (no points)")
    return "\n".join(lines)
