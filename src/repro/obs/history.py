"""Perf-history manifests: structured run records + regression gates.

The bench envelopes (``BENCH_pipeline.json``, ``BENCH_devices.json``)
are snapshots — each CI run overwrites the last, so a slow drift in
modelled GFLOPS or backend speedups is invisible until someone
eyeballs two artifacts.  This module gives the numbers a memory:

* :func:`manifest_from_pipeline` / :func:`manifest_from_devices`
  flatten an envelope into a **manifest** — provenance (device, git
  sha, UTC timestamp) plus a flat ``{metric_name: value}`` dict with
  dotted names (``devices.n512.gtx_480.ladder.tiled``);
* :func:`append_history` appends manifests to ``BENCH_history.jsonl``
  (one JSON object per line — trivially diffable and ``jq``-able);
* :func:`compare_to_baseline` checks a manifest against a committed
  baseline with a percentage gate.

Gating policy: only **deterministic modelled metrics** (ladder and
autotuner GFLOPS from the analytical model — identical on every
machine) belong in the committed baseline.  Wall-clock metrics
(backend speedups, stage seconds) are recorded in the history for
trend reading but are too noisy to gate merge on; the pipeline's own
floor checks in ``benchmarks/perf_smoke.py`` cover them with wide
margins.  All gated metrics are higher-is-better.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Dict, List, Sequence, Union

__all__ = [
    "run_provenance", "manifest_from_pipeline", "manifest_from_devices",
    "append_history", "load_history", "compare_to_baseline",
    "load_baseline", "baseline_from_manifests", "format_comparison",
]

SCHEMA_VERSION = 1


def run_provenance() -> Dict[str, str]:
    """Provenance stamp for bench envelopes: git sha + UTC timestamp."""
    from datetime import datetime, timezone
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, check=True).stdout.strip()
    except Exception:
        sha = "unknown"
    return {
        "git_sha": sha,
        "timestamp": datetime.now(timezone.utc)
        .isoformat(timespec="seconds"),
    }


def _base_manifest(payload: Dict[str, object], source: str
                   ) -> Dict[str, object]:
    return {
        "schema": SCHEMA_VERSION,
        "source": source,
        "git_sha": payload.get("git_sha", "unknown"),
        "timestamp": payload.get("timestamp", "unknown"),
    }


def manifest_from_pipeline(payload: Dict[str, object]
                           ) -> Dict[str, object]:
    """Manifest for a ``BENCH_pipeline.json`` envelope.

    Wall-clock metrics — recorded for trend reading, never gated.
    """
    m = _base_manifest(payload, "pipeline")
    m["device"] = payload.get("device", "unknown")
    metrics: Dict[str, float] = {}
    for key in ("sequential_seconds", "batched_seconds", "compiled_seconds",
                "speedup", "compiled_speedup_vs_sequential",
                "compiled_speedup_vs_batched"):
        if key in payload:
            metrics[f"pipeline.{key}"] = float(payload[key])
    overhead = payload.get("profiler_overhead", {})
    if isinstance(overhead, dict) and "overhead_pct" in overhead:
        metrics["pipeline.profiler_overhead_pct"] = \
            float(overhead["overhead_pct"])
    m["metrics"] = metrics
    return m


def manifest_from_devices(payload: Dict[str, object]
                          ) -> Dict[str, object]:
    """Manifest for a ``BENCH_devices.json`` envelope.

    Modelled GFLOPS — deterministic, so these are the gateable
    metrics.  Names carry the problem size (``devices.n512....``)
    because the model's numbers legitimately differ across sizes.
    """
    m = _base_manifest(payload, "devices")
    n = payload.get("n", 0)
    metrics: Dict[str, float] = {}
    for entry in payload.get("devices", ()):
        dev = entry["device"]
        prefix = f"devices.n{n}.{dev}"
        for variant, gflops in entry.get("ladder_gflops", {}).items():
            metrics[f"{prefix}.ladder.{variant}"] = float(gflops)
        tune = entry.get("autotune", {})
        if "winner_gflops" in tune:
            metrics[f"{prefix}.winner_gflops"] = \
                float(tune["winner_gflops"])
    m["metrics"] = metrics
    m["winners"] = {e["device"]: e["autotune"]["winner"]["label"]
                    for e in payload.get("devices", ())
                    if "autotune" in e}
    return m


# ----------------------------------------------------------------------
# History file (JSONL, append-only)
# ----------------------------------------------------------------------

def append_history(manifests: Sequence[Dict[str, object]],
                   path: Union[str, Path]) -> Path:
    path = Path(path)
    with path.open("a") as fh:
        for m in manifests:
            fh.write(json.dumps(m, sort_keys=True) + "\n")
    return path


def load_history(path: Union[str, Path]) -> List[Dict[str, object]]:
    path = Path(path)
    if not path.exists():
        return []
    out = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


# ----------------------------------------------------------------------
# Baseline + gate
# ----------------------------------------------------------------------

def load_baseline(path: Union[str, Path]) -> Dict[str, float]:
    """Committed baseline: ``{"gate_metrics": {name: value}}``."""
    payload = json.loads(Path(path).read_text())
    return {k: float(v) for k, v in payload.get("gate_metrics", {}).items()}


def baseline_from_manifests(manifests: Sequence[Dict[str, object]],
                            ) -> Dict[str, object]:
    """Baseline payload from the gateable metrics of ``manifests``
    (devices-source manifests only — see the gating policy above)."""
    gate: Dict[str, float] = {}
    for m in manifests:
        if m.get("source") == "devices":
            gate.update(m.get("metrics", {}))
    return {"schema": SCHEMA_VERSION, "gate_metrics": gate}


def compare_to_baseline(manifests: Sequence[Dict[str, object]],
                        baseline: Dict[str, float],
                        gate_pct: float,
                        ) -> List[Dict[str, object]]:
    """Compare current metrics against the baseline (higher-is-better).

    Returns one row per baseline metric found in the manifests, with
    ``status`` ``"ok"`` / ``"regression"`` / ``"improved"``; baseline
    metrics the run did not produce are reported as ``"missing"`` (a
    silently dropped benchmark should not pass the gate).
    """
    current: Dict[str, float] = {}
    for m in manifests:
        current.update(m.get("metrics", {}))
    rows = []
    for name, base in sorted(baseline.items()):
        if name not in current:
            rows.append({"metric": name, "baseline": base, "current": None,
                         "delta_pct": None, "status": "missing"})
            continue
        cur = current[name]
        delta = 100.0 * (cur - base) / base if base else 0.0
        if delta < -gate_pct:
            status = "regression"
        elif delta > gate_pct:
            status = "improved"
        else:
            status = "ok"
        rows.append({"metric": name, "baseline": base, "current": cur,
                     "delta_pct": round(delta, 2), "status": status})
    return rows


def format_comparison(rows: Sequence[Dict[str, object]],
                      gate_pct: float) -> str:
    if not rows:
        return "perf gate: no baseline metrics to compare"
    width = max(len(r["metric"]) for r in rows)
    lines = [f"perf gate (+/-{gate_pct:g}% on modelled metrics):"]
    for r in rows:
        if r["status"] == "missing":
            lines.append(f"  {r['metric']:<{width}}  baseline "
                         f"{r['baseline']:>9.2f}  current    MISSING")
            continue
        lines.append(
            f"  {r['metric']:<{width}}  baseline {r['baseline']:>9.2f}  "
            f"current {r['current']:>9.2f}  {r['delta_pct']:>+7.2f}%  "
            f"{r['status']}")
    bad = sum(1 for r in rows if r["status"] in ("regression", "missing"))
    lines.append(f"  -> {bad} failing / {len(rows)} gated metrics")
    return "\n".join(lines)
