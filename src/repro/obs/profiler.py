"""An nvprof-style launch profiler for the execution pipeline.

``nvprof``'s job in the paper's era was exactly what the reproduction
needs of itself: per-launch attribution — which kernel, what geometry,
how long each stage took, how many transactions each array cost, and
*which resource bound the launch*.  A :class:`LaunchProfiler` hooks
the staged pipeline (``LaunchPlan.build`` → executor → collector →
timing model) and captures one :class:`LaunchRecord` per launch:

* identity: kernel name, grid/block geometry, chosen executor backend;
* block accounting: executed / traced / memo-hit / plain dispositions;
* per-stage wall time (plan / execute / collect / finalize);
* trace-derived counters: warp instructions, flops, per-array
  transactions-per-access, bank-conflict cycles, cache hits;
* the timing model's per-bottleneck estimates with the binding
  bottleneck named (the paper's Table 3 verdict, per launch).

Usage::

    from repro.obs import LaunchProfiler

    with LaunchProfiler() as prof:
        app.run(workload)
    print(prof.report())             # nvprof-like table
    prof.records[0].to_dict()        # structured record
    prof.tracer.write_chrome_trace("trace.json")

Entering the profiler installs an *enabled* metrics registry and span
tracer as the ambient ones, so pipeline counters (cache hits, executor
block counts, bottleneck tallies) flow in for the duration.  With no
profiler active the instrumentation points reduce to an attribute
check — launches pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .registry import MetricsRegistry, set_registry
from .spans import SpanTracer, set_tracer

__all__ = ["LaunchProfiler", "LaunchRecord", "active_profiler"]

#: pipeline stages a launch record times, in order
STAGES = ("plan", "execute", "collect", "finalize")


def _dim_str(dim) -> str:
    """Compact ``Dim3`` rendering: (32, 32, 1) -> "32x32"."""
    parts = [dim.x, dim.y, dim.z]
    while len(parts) > 1 and parts[-1] == 1:
        parts.pop()
    return "x".join(str(p) for p in parts)


def _io_split(trace) -> Dict[str, float]:
    """nvprof-style load/store traffic split out of a trace."""
    return {
        "gld_accesses": trace.gld_accesses,
        "gld_transactions": trace.gld_transactions,
        "gld_bus_bytes": trace.gld_bus_bytes,
        "gld_useful_bytes": trace.gld_useful_bytes,
        "gst_accesses": trace.gst_accesses,
        "gst_transactions": trace.gst_transactions,
        "gst_bus_bytes": trace.gst_bus_bytes,
        "gst_useful_bytes": trace.gst_useful_bytes,
    }


def _shared_insts(trace) -> float:
    from ..trace.instr import InstrClass
    return float(trace.warp_insts[InstrClass.LD_SHARED]
                 + trace.warp_insts[InstrClass.ST_SHARED])


def _cache_counters(trace) -> Dict[str, float]:
    """Every cached path's hit/miss counters, L1/L2 included."""
    return {"const_hits": trace.const_hits,
            "const_misses": trace.const_misses,
            "tex_hits": trace.tex_hits,
            "tex_misses": trace.tex_misses,
            "l1_hits": trace.l1_hits,
            "l1_misses": trace.l1_misses,
            "l2_hits": trace.l2_hits,
            "l2_misses": trace.l2_misses}


def _hit_rate(hits: float, misses: float) -> Optional[float]:
    """Hit fraction, or None when the path saw no accesses."""
    total = hits + misses
    return hits / total if total > 0 else None


@dataclass
class LaunchRecord:
    """Everything the profiler knows about one kernel launch."""

    kernel: str
    grid: str
    block: str
    executor: str
    blocks_total: int
    blocks_executed: int
    blocks_traced: int
    memo_hits: int
    #: device profile the launch ran on (``DeviceSpec.name``)
    device: str = ""
    dispositions: Dict[str, int] = field(default_factory=dict)
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    # trace-derived counters (scaled to the full grid)
    warp_insts: float = 0.0
    flops: float = 0.0
    global_transactions: float = 0.0
    global_warp_accesses: float = 0.0
    global_bus_bytes: float = 0.0
    transactions_per_access: Dict[str, float] = field(default_factory=dict)
    #: nvprof-style load/store split (gld_/gst_ accesses, transactions,
    #: request-level bus bytes, useful bytes)
    io: Dict[str, float] = field(default_factory=dict)
    shared_insts: float = 0.0
    bank_conflict_cycles: float = 0.0
    cache: Dict[str, float] = field(default_factory=dict)
    syncs: float = 0.0
    #: branch / divergence counters (R8's dynamic side)
    branch_warps: float = 0.0
    divergent_branch_warps: float = 0.0
    divergence_serialized_warp_insts: float = 0.0

    # timing-model attribution
    model_seconds: float = 0.0
    gflops: float = 0.0
    bound: str = "n/a"
    bottleneck_seconds: Dict[str, float] = field(default_factory=dict)
    bottleneck_cycles: Dict[str, float] = field(default_factory=dict)
    occupancy: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, result, estimate: bool = True) -> "LaunchRecord":
        """Build a record from an executed
        :class:`~repro.cuda.launch.LaunchResult`."""
        trace = result.trace
        per_array = {name: round(stats.transactions_per_access, 4)
                     for name, stats in sorted(trace.per_array.items())}
        rec = cls(
            kernel=result.kernel.name,
            grid=_dim_str(result.grid),
            block=_dim_str(result.block),
            executor=result.executor,
            blocks_total=result.num_blocks,
            blocks_executed=result.blocks_executed,
            blocks_traced=result.blocks_traced,
            memo_hits=result.memo_hits,
            device=result.spec.name,
            dispositions=dict(result.block_dispositions),
            stage_seconds=dict(result.stage_seconds),
            warp_insts=trace.total_warp_insts,
            flops=trace.flops,
            global_transactions=trace.global_transactions,
            global_warp_accesses=sum(s.warp_accesses
                                     for s in trace.per_array.values()),
            global_bus_bytes=trace.global_bus_bytes,
            transactions_per_access=per_array,
            io=_io_split(trace),
            shared_insts=_shared_insts(trace),
            bank_conflict_cycles=trace.shared_conflict_cycles,
            cache=_cache_counters(trace),
            syncs=trace.syncs,
            branch_warps=trace.branch_warps,
            divergent_branch_warps=trace.divergent_branch_warps,
            divergence_serialized_warp_insts=(
                trace.divergence_serialized_warp_insts),
        )
        rec.spec = result.spec
        if estimate and trace.total_warp_insts > 0:
            try:
                est = result.estimate()
            except Exception as exc:        # unschedulable configs etc.
                rec.bound = f"unschedulable ({type(exc).__name__})"
            else:
                rec.model_seconds = est.seconds
                rec.gflops = est.gflops
                rec.bound = est.bound
                rec.bottleneck_seconds = est.components()
                rec.bottleneck_cycles = est.cycles_components()
                rec.occupancy = est.occupancy.describe()
        return rec

    @classmethod
    def from_census(cls, census) -> "LaunchRecord":
        """Synthesize a record from a static
        :class:`~repro.analysis.census.KernelCensus` — no execution.

        This is how launches that never ran (or ran compiled with
        ``trace_source="census"``) still surface nvprof-style counters:
        the census's grid-extrapolated trace fills the same fields a
        dynamic trace would, with the executor marked ``"census"`` and
        all stage timings zero.
        """
        trace = census.trace
        per_array = {name: round(stats.transactions_per_access, 4)
                     for name, stats in sorted(trace.per_array.items())}
        return cls(
            kernel=census.label,
            grid="x".join(str(d) for d in census.grid),
            block="x".join(str(d) for d in census.block),
            executor="census",
            blocks_total=census.num_blocks,
            blocks_executed=0,
            blocks_traced=census.blocks_sampled,
            memo_hits=0,
            device=census.spec.name if hasattr(census, "spec") else "",
            dispositions={},
            stage_seconds={},
            warp_insts=trace.total_warp_insts,
            flops=trace.flops,
            global_transactions=trace.global_transactions,
            global_warp_accesses=sum(s.warp_accesses
                                     for s in trace.per_array.values()),
            global_bus_bytes=trace.global_bus_bytes,
            transactions_per_access=per_array,
            io=_io_split(trace),
            shared_insts=_shared_insts(trace),
            bank_conflict_cycles=trace.shared_conflict_cycles,
            cache=_cache_counters(trace),
            syncs=trace.syncs,
            branch_warps=trace.branch_warps,
            divergent_branch_warps=trace.divergent_branch_warps,
            divergence_serialized_warp_insts=(
                trace.divergence_serialized_warp_insts),
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def cache_hit_rates(self) -> Dict[str, float]:
        """Hit fraction per cached path that actually saw traffic
        (const / tex / l1 / l2) — the PR-6 hierarchy counters, surfaced
        per launch."""
        out: Dict[str, float] = {}
        for space in ("const", "tex", "l1", "l2"):
            rate = _hit_rate(self.cache.get(f"{space}_hits", 0.0),
                             self.cache.get(f"{space}_misses", 0.0))
            if rate is not None:
                out[space] = rate
        return out

    @property
    def divergent_branch_fraction(self) -> float:
        """Fraction of branch executions whose warp lanes disagreed."""
        if self.branch_warps == 0:
            return 0.0
        return self.divergent_branch_warps / self.branch_warps

    @property
    def divergence_serialized_fraction(self) -> float:
        """Fraction of issued warp instructions executed under a
        partial mask — issue slots consumed while lanes idle."""
        if self.warp_insts == 0:
            return 0.0
        return self.divergence_serialized_warp_insts / self.warp_insts

    @property
    def overall_transactions_per_access(self) -> float:
        """Launch-wide transactions per coalescing-group access
        (1.0 = every group — a half-warp on CUDA 1.x devices, a full
        warp on cached ones — coalesced perfectly)."""
        if self.global_warp_accesses == 0:
            return 0.0
        return self.global_transactions / self.global_warp_accesses

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready structured record."""
        return {
            "kernel": self.kernel,
            "grid": self.grid,
            "block": self.block,
            "executor": self.executor,
            "device": self.device,
            "blocks": {
                "total": self.blocks_total,
                "executed": self.blocks_executed,
                "traced": self.blocks_traced,
                "memo_hits": self.memo_hits,
                "dispositions": dict(self.dispositions),
            },
            "stage_seconds": {s: self.stage_seconds.get(s, 0.0)
                              for s in STAGES},
            "wall_seconds": self.wall_seconds,
            "counters": {
                "warp_insts": self.warp_insts,
                "flops": self.flops,
                "global_transactions": self.global_transactions,
                "global_warp_accesses": self.global_warp_accesses,
                "global_bus_bytes": self.global_bus_bytes,
                "shared_insts": self.shared_insts,
                "bank_conflict_cycles": self.bank_conflict_cycles,
                "syncs": self.syncs,
                "branch_warps": self.branch_warps,
                "divergent_branch_warps": self.divergent_branch_warps,
                "divergence_serialized_warp_insts": (
                    self.divergence_serialized_warp_insts),
                "divergent_branch_fraction": round(
                    self.divergent_branch_fraction, 6),
                "divergence_serialized_fraction": round(
                    self.divergence_serialized_fraction, 6),
                **self.io,
                **self.cache,
            },
            "transactions_per_access": dict(self.transactions_per_access),
            "model": {
                "seconds": self.model_seconds,
                "gflops": round(self.gflops, 3),
                "bound": self.bound,
                "bottleneck_seconds": dict(self.bottleneck_seconds),
                "bottleneck_cycles": dict(self.bottleneck_cycles),
            },
            "occupancy": {str(k): v for k, v in self.occupancy.items()},
        }

    def digest(self) -> str:
        """The one-line nvprof-style summary."""
        hits = self.cache_hit_rates()
        caches = "".join(f"  {space}_hit={rate:.0%}"
                         for space, rate in hits.items())
        div = ""
        if self.divergent_branch_warps > 0:
            div = (f"  div_branch={self.divergent_branch_fraction:.0%}"
                   f"  div_serial={self.divergence_serialized_fraction:.0%}")
        return (f"{self.kernel}  grid {self.grid}  block {self.block}  "
                f"exec={self.executor}  blocks {self.blocks_executed}"
                f"/{self.blocks_total} (traced {self.blocks_traced}, "
                f"memo {self.memo_hits})  {self.gflops:.2f} GFLOPS  "
                f"bound={self.bound}{caches}{div}")


#: stack of entered profilers; the innermost one receives records
_PROFILERS: List["LaunchProfiler"] = []


def active_profiler() -> Optional["LaunchProfiler"]:
    """The innermost entered :class:`LaunchProfiler`, if any."""
    return _PROFILERS[-1] if _PROFILERS else None


class LaunchProfiler:
    """Context manager capturing a :class:`LaunchRecord` per launch.

    Parameters
    ----------
    registry, tracer:
        Pre-built sinks to install while active; fresh enabled ones are
        created by default.
    estimate:
        Run the analytical timing model on each launch to attribute its
        bottleneck (disable for functional-only workloads).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[SpanTracer] = None,
                 estimate: bool = True) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry(enabled=True)
        self.tracer = tracer if tracer is not None \
            else SpanTracer(enabled=True)
        self.estimate = estimate
        self.records: List[LaunchRecord] = []

    def __enter__(self) -> "LaunchProfiler":
        self._prev_registry = set_registry(self.registry)
        self._prev_tracer = set_tracer(self.tracer)
        _PROFILERS.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _PROFILERS.remove(self)
        set_registry(self._prev_registry)
        set_tracer(self._prev_tracer)

    # ------------------------------------------------------------------
    # Pipeline hook (called by Executor.execute)
    # ------------------------------------------------------------------
    def on_launch(self, result) -> LaunchRecord:
        record = LaunchRecord.from_result(result, estimate=self.estimate)
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, derived: bool = False, roofline: bool = False) -> str:
        """nvprof-like text table over the captured records.

        ``derived=True`` appends the named derived-metric block per
        launch (:mod:`repro.obs.derived`); ``roofline=True`` appends
        the roofline placement of every launch
        (:mod:`repro.obs.roofline`).
        """
        from ..bench.profile_report import format_records
        out = format_records(self.records)
        if derived and self.records:
            from .derived import format_derived
            out += "\n\n" + "\n\n".join(format_derived(rec)
                                        for rec in self.records)
        if roofline and self.records:
            from .roofline import (format_roofline, point_from_record,
                                   roofline_report)
            spec = getattr(self.records[0], "spec", None)
            if spec is None:
                from ..arch.device import DEFAULT_DEVICE
                spec = DEFAULT_DEVICE
            points = [point_from_record(r) for r in self.records]
            out += "\n\n" + format_roofline(roofline_report(points, spec))
        return out

    def to_dicts(self) -> List[Dict[str, object]]:
        return [r.to_dict() for r in self.records]
