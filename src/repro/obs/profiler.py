"""An nvprof-style launch profiler for the execution pipeline.

``nvprof``'s job in the paper's era was exactly what the reproduction
needs of itself: per-launch attribution — which kernel, what geometry,
how long each stage took, how many transactions each array cost, and
*which resource bound the launch*.  A :class:`LaunchProfiler` hooks
the staged pipeline (``LaunchPlan.build`` → executor → collector →
timing model) and captures one :class:`LaunchRecord` per launch:

* identity: kernel name, grid/block geometry, chosen executor backend;
* block accounting: executed / traced / memo-hit / plain dispositions;
* per-stage wall time (plan / execute / collect / finalize);
* trace-derived counters: warp instructions, flops, per-array
  transactions-per-access, bank-conflict cycles, cache hits;
* the timing model's per-bottleneck estimates with the binding
  bottleneck named (the paper's Table 3 verdict, per launch).

Usage::

    from repro.obs import LaunchProfiler

    with LaunchProfiler() as prof:
        app.run(workload)
    print(prof.report())             # nvprof-like table
    prof.records[0].to_dict()        # structured record
    prof.tracer.write_chrome_trace("trace.json")

Entering the profiler installs an *enabled* metrics registry and span
tracer as the ambient ones, so pipeline counters (cache hits, executor
block counts, bottleneck tallies) flow in for the duration.  With no
profiler active the instrumentation points reduce to an attribute
check — launches pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .registry import MetricsRegistry, set_registry
from .spans import SpanTracer, set_tracer

__all__ = ["LaunchProfiler", "LaunchRecord", "active_profiler"]

#: pipeline stages a launch record times, in order
STAGES = ("plan", "execute", "collect", "finalize")


def _dim_str(dim) -> str:
    """Compact ``Dim3`` rendering: (32, 32, 1) -> "32x32"."""
    parts = [dim.x, dim.y, dim.z]
    while len(parts) > 1 and parts[-1] == 1:
        parts.pop()
    return "x".join(str(p) for p in parts)


@dataclass
class LaunchRecord:
    """Everything the profiler knows about one kernel launch."""

    kernel: str
    grid: str
    block: str
    executor: str
    blocks_total: int
    blocks_executed: int
    blocks_traced: int
    memo_hits: int
    dispositions: Dict[str, int] = field(default_factory=dict)
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    # trace-derived counters (scaled to the full grid)
    warp_insts: float = 0.0
    flops: float = 0.0
    global_transactions: float = 0.0
    global_warp_accesses: float = 0.0
    global_bus_bytes: float = 0.0
    transactions_per_access: Dict[str, float] = field(default_factory=dict)
    bank_conflict_cycles: float = 0.0
    cache: Dict[str, float] = field(default_factory=dict)
    syncs: float = 0.0

    # timing-model attribution
    model_seconds: float = 0.0
    gflops: float = 0.0
    bound: str = "n/a"
    bottleneck_seconds: Dict[str, float] = field(default_factory=dict)
    bottleneck_cycles: Dict[str, float] = field(default_factory=dict)
    occupancy: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, result, estimate: bool = True) -> "LaunchRecord":
        """Build a record from an executed
        :class:`~repro.cuda.launch.LaunchResult`."""
        trace = result.trace
        per_array = {name: round(stats.transactions_per_access, 4)
                     for name, stats in sorted(trace.per_array.items())}
        rec = cls(
            kernel=result.kernel.name,
            grid=_dim_str(result.grid),
            block=_dim_str(result.block),
            executor=result.executor,
            blocks_total=result.num_blocks,
            blocks_executed=result.blocks_executed,
            blocks_traced=result.blocks_traced,
            memo_hits=result.memo_hits,
            dispositions=dict(result.block_dispositions),
            stage_seconds=dict(result.stage_seconds),
            warp_insts=trace.total_warp_insts,
            flops=trace.flops,
            global_transactions=trace.global_transactions,
            global_warp_accesses=sum(s.warp_accesses
                                     for s in trace.per_array.values()),
            global_bus_bytes=trace.global_bus_bytes,
            transactions_per_access=per_array,
            bank_conflict_cycles=trace.shared_conflict_cycles,
            cache={"const_hits": trace.const_hits,
                   "const_misses": trace.const_misses,
                   "tex_hits": trace.tex_hits,
                   "tex_misses": trace.tex_misses},
            syncs=trace.syncs,
        )
        if estimate and trace.total_warp_insts > 0:
            try:
                est = result.estimate()
            except Exception as exc:        # unschedulable configs etc.
                rec.bound = f"unschedulable ({type(exc).__name__})"
            else:
                rec.model_seconds = est.seconds
                rec.gflops = est.gflops
                rec.bound = est.bound
                rec.bottleneck_seconds = est.components()
                rec.bottleneck_cycles = est.cycles_components()
                rec.occupancy = est.occupancy.describe()
        return rec

    @classmethod
    def from_census(cls, census) -> "LaunchRecord":
        """Synthesize a record from a static
        :class:`~repro.analysis.census.KernelCensus` — no execution.

        This is how launches that never ran (or ran compiled with
        ``trace_source="census"``) still surface nvprof-style counters:
        the census's grid-extrapolated trace fills the same fields a
        dynamic trace would, with the executor marked ``"census"`` and
        all stage timings zero.
        """
        trace = census.trace
        per_array = {name: round(stats.transactions_per_access, 4)
                     for name, stats in sorted(trace.per_array.items())}
        return cls(
            kernel=census.label,
            grid="x".join(str(d) for d in census.grid),
            block="x".join(str(d) for d in census.block),
            executor="census",
            blocks_total=census.num_blocks,
            blocks_executed=0,
            blocks_traced=census.blocks_sampled,
            memo_hits=0,
            dispositions={},
            stage_seconds={},
            warp_insts=trace.total_warp_insts,
            flops=trace.flops,
            global_transactions=trace.global_transactions,
            global_warp_accesses=sum(s.warp_accesses
                                     for s in trace.per_array.values()),
            global_bus_bytes=trace.global_bus_bytes,
            transactions_per_access=per_array,
            bank_conflict_cycles=trace.shared_conflict_cycles,
            cache={"const_hits": trace.const_hits,
                   "const_misses": trace.const_misses,
                   "tex_hits": trace.tex_hits,
                   "tex_misses": trace.tex_misses},
            syncs=trace.syncs,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def overall_transactions_per_access(self) -> float:
        """Launch-wide transactions per coalescing-group access
        (1.0 = every group — a half-warp on CUDA 1.x devices, a full
        warp on cached ones — coalesced perfectly)."""
        if self.global_warp_accesses == 0:
            return 0.0
        return self.global_transactions / self.global_warp_accesses

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready structured record."""
        return {
            "kernel": self.kernel,
            "grid": self.grid,
            "block": self.block,
            "executor": self.executor,
            "blocks": {
                "total": self.blocks_total,
                "executed": self.blocks_executed,
                "traced": self.blocks_traced,
                "memo_hits": self.memo_hits,
                "dispositions": dict(self.dispositions),
            },
            "stage_seconds": {s: self.stage_seconds.get(s, 0.0)
                              for s in STAGES},
            "wall_seconds": self.wall_seconds,
            "counters": {
                "warp_insts": self.warp_insts,
                "flops": self.flops,
                "global_transactions": self.global_transactions,
                "global_warp_accesses": self.global_warp_accesses,
                "global_bus_bytes": self.global_bus_bytes,
                "bank_conflict_cycles": self.bank_conflict_cycles,
                "syncs": self.syncs,
                **self.cache,
            },
            "transactions_per_access": dict(self.transactions_per_access),
            "model": {
                "seconds": self.model_seconds,
                "gflops": round(self.gflops, 3),
                "bound": self.bound,
                "bottleneck_seconds": dict(self.bottleneck_seconds),
                "bottleneck_cycles": dict(self.bottleneck_cycles),
            },
            "occupancy": {str(k): v for k, v in self.occupancy.items()},
        }

    def digest(self) -> str:
        """The one-line nvprof-style summary."""
        return (f"{self.kernel}  grid {self.grid}  block {self.block}  "
                f"exec={self.executor}  blocks {self.blocks_executed}"
                f"/{self.blocks_total} (traced {self.blocks_traced}, "
                f"memo {self.memo_hits})  {self.gflops:.2f} GFLOPS  "
                f"bound={self.bound}")


#: stack of entered profilers; the innermost one receives records
_PROFILERS: List["LaunchProfiler"] = []


def active_profiler() -> Optional["LaunchProfiler"]:
    """The innermost entered :class:`LaunchProfiler`, if any."""
    return _PROFILERS[-1] if _PROFILERS else None


class LaunchProfiler:
    """Context manager capturing a :class:`LaunchRecord` per launch.

    Parameters
    ----------
    registry, tracer:
        Pre-built sinks to install while active; fresh enabled ones are
        created by default.
    estimate:
        Run the analytical timing model on each launch to attribute its
        bottleneck (disable for functional-only workloads).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[SpanTracer] = None,
                 estimate: bool = True) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry(enabled=True)
        self.tracer = tracer if tracer is not None \
            else SpanTracer(enabled=True)
        self.estimate = estimate
        self.records: List[LaunchRecord] = []

    def __enter__(self) -> "LaunchProfiler":
        self._prev_registry = set_registry(self.registry)
        self._prev_tracer = set_tracer(self.tracer)
        _PROFILERS.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _PROFILERS.remove(self)
        set_registry(self._prev_registry)
        set_tracer(self._prev_tracer)

    # ------------------------------------------------------------------
    # Pipeline hook (called by Executor.execute)
    # ------------------------------------------------------------------
    def on_launch(self, result) -> LaunchRecord:
        record = LaunchRecord.from_result(result, estimate=self.estimate)
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> str:
        """nvprof-like text table over the captured records."""
        from ..bench.profile_report import format_records
        return format_records(self.records)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [r.to_dict() for r in self.records]
