"""Per-SM warp scheduling timelines (Nsight-style, from the warpsim).

The event-driven simulator in :mod:`repro.sim.warpsim` already decides
*when* every resident warp issues, stalls on memory, or parks at a
barrier — it just used to throw that schedule away and keep only the
totals.  This module replays one SM wave with event recording turned
on and renders the schedule two ways:

* a **chrome://tracing JSON** file — one process per SM, one thread
  lane per resident warp, ``B``/``E`` duration pairs for ``issue`` /
  ``mem`` / ``sync`` intervals and an instant marker at retire.  Load
  it at chrome://tracing or https://ui.perfetto.dev.  The trace's time
  unit is **SM cycles rendered as microseconds** (1 cycle = 1 us) so
  the viewer's measurements read directly in cycles.
* an **ASCII occupancy strip** — runnable-warp density over time in
  one terminal line per SM, plus a stall-state summary, for quick
  "where did the latency hiding stop working" reading without leaving
  the shell.

Timelines are strictly opt-in: recording requires a launch that ran
with ``record_stream=True`` and an explicit call here, so the
zero-overhead contract of :mod:`repro.obs.profiler` is untouched.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..arch.device import DeviceSpec
from ..sim.warpsim import WarpEvent, simulate_sm

__all__ = [
    "Timeline", "record_timeline", "timeline_for_target",
    "to_chrome_trace", "write_chrome_trace",
    "occupancy_strip", "stall_summary", "format_timeline",
]

#: stall-state density ramp, sparse -> dense
_RAMP = " .:-=+*#%@"


@dataclass
class Timeline:
    """One SM wave's warp schedule plus the context to render it."""

    kernel: str
    device: str
    events: List[WarpEvent] = field(default_factory=list)
    cycles: float = 0.0
    warps_per_block: int = 0
    blocks_per_sm: int = 0
    sm: int = 0

    @property
    def n_warps(self) -> int:
        return self.warps_per_block * self.blocks_per_sm

    def lane(self, ev: WarpEvent) -> int:
        """Stable per-SM thread-lane id for a warp."""
        return ev.block * self.warps_per_block + ev.wid


def record_timeline(result, spec: Optional[DeviceSpec] = None) -> Timeline:
    """Replay one SM wave of ``result`` with event recording.

    ``result`` is a :class:`~repro.cuda.launch.LaunchResult` produced
    with ``record_stream=True`` (same contract as
    :func:`repro.sim.warpsim.simulate_launch`).
    """
    spec = spec or result.spec
    if result.stream is None:
        raise ValueError("launch was not run with record_stream=True")
    occ = result.occupancy()
    if occ.blocks_per_sm == 0:
        raise ValueError("kernel cannot be scheduled on this device")
    events: List[WarpEvent] = []
    sim = simulate_sm(result.stream, occ.warps_per_block,
                      occ.blocks_per_sm, spec, events=events)
    return Timeline(
        kernel=result.kernel.name,
        device=spec.name,
        events=events,
        cycles=sim.cycles,
        warps_per_block=occ.warps_per_block,
        blocks_per_sm=occ.blocks_per_sm,
    )


def timeline_for_target(target, spec: DeviceSpec) -> Timeline:
    """Record a timeline for an app's :class:`LintTarget` geometry.

    The target's :class:`~repro.analysis.targets.LintArray` markers are
    materialized as seeded random device arrays (matching space:
    global / constant / texture) so the kernel can actually execute
    with ``record_stream=True``.
    """
    import numpy as np
    from ..analysis.targets import LintArray
    from ..cuda.launch import launch
    from ..cuda.memory import Device

    dev = Device(spec)
    rng = np.random.default_rng(7)

    def materialize(arg):
        if not isinstance(arg, LintArray):
            return arg
        n = arg.size if arg.size else 1024
        if arg.is_integer:
            host = rng.integers(0, max(2, n), size=n).astype(arg.dtype)
        else:
            host = rng.random(n).astype(arg.dtype)
        place = {"global": dev.to_device, "const": dev.to_constant,
                 "tex": dev.to_texture}[arg.space]
        return place(host, arg.name)

    args = tuple(materialize(a) for a in target.args)
    result = launch(target.kernel, target.grid, target.block, args,
                    device=dev, functional=False, trace_blocks=1,
                    record_stream=True)
    return record_timeline(result, spec)


# ----------------------------------------------------------------------
# chrome://tracing export
# ----------------------------------------------------------------------

_PHASE_ORDER = {"E": 0, "B": 1, "i": 2, "M": -1}


def to_chrome_trace(tl: Timeline) -> Dict[str, object]:
    """Render the timeline in the chrome://tracing JSON-object format.

    pid = SM index, tid = warp lane (``block * warps_per_block + wid``,
    stable for the whole trace), ts/dur in cycles-as-microseconds.
    """
    events: List[Dict[str, object]] = [
        {"name": "process_name", "ph": "M", "pid": tl.sm, "tid": 0, "ts": 0,
         "args": {"name": f"SM {tl.sm} ({tl.device})"}},
    ]
    lanes = sorted({(ev.block, ev.wid) for ev in tl.events})
    for block, wid in lanes:
        tid = block * tl.warps_per_block + wid
        events.append({"name": "thread_name", "ph": "M", "pid": tl.sm,
                       "tid": tid, "ts": 0,
                       "args": {"name": f"block {block} warp {wid}"}})
    spans: List[Dict[str, object]] = []
    for ev in tl.events:
        tid = tl.lane(ev)
        common = {"cat": "warp", "pid": tl.sm, "tid": tid,
                  "args": {"pc": ev.pc}}
        if ev.kind == "retire":
            spans.append({"name": "retire", "ph": "i", "ts": ev.start,
                          "s": "t", **common})
        else:
            spans.append({"name": ev.kind, "ph": "B", "ts": ev.start,
                          **common})
            spans.append({"name": ev.kind, "ph": "E", "ts": ev.end,
                          **common})
    spans.sort(key=lambda e: (e["ts"], _PHASE_ORDER[e["ph"]], e["tid"]))
    return {
        "traceEvents": events + spans,
        "displayTimeUnit": "ms",
        "otherData": {
            "kernel": tl.kernel,
            "device": tl.device,
            "unit": "SM cycles rendered as us",
            "warps_per_block": tl.warps_per_block,
            "blocks_per_sm": tl.blocks_per_sm,
            "cycles": tl.cycles,
        },
    }


def write_chrome_trace(tl: Timeline, path: str) -> str:
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(tl), fh)
    return path


# ----------------------------------------------------------------------
# ASCII rendering
# ----------------------------------------------------------------------

def _stall_intervals(tl: Timeline) -> Dict[int, List[WarpEvent]]:
    by_lane: Dict[int, List[WarpEvent]] = {}
    for ev in tl.events:
        if ev.kind in ("mem", "sync"):
            by_lane.setdefault(tl.lane(ev), []).append(ev)
    return by_lane


def _retire_times(tl: Timeline) -> Dict[int, float]:
    out: Dict[int, float] = {}
    for ev in tl.events:
        if ev.kind == "retire":
            out[tl.lane(ev)] = ev.start
    return out


def occupancy_strip(tl: Timeline, width: int = 72) -> str:
    """One line of runnable-warp density over the SM wave.

    Each column covers ``cycles / width``; its glyph encodes the
    average number of warps that are *runnable* (resident, not stalled
    on memory, not parked at a barrier, not yet retired) — ``@`` means
    every resident warp had work, a space means the SM had nothing to
    issue.
    """
    if not tl.events or tl.cycles <= 0 or tl.n_warps == 0:
        return "(no events)"
    stalls = _stall_intervals(tl)
    retires = _retire_times(tl)
    bucket = tl.cycles / width
    cols = []
    for i in range(width):
        lo, hi = i * bucket, (i + 1) * bucket
        runnable = 0.0
        for lane in range(tl.n_warps):
            live_until = retires.get(lane, tl.cycles)
            live = max(0.0, min(hi, live_until) - lo)
            stalled = sum(
                max(0.0, min(hi, ev.end) - max(lo, ev.start))
                for ev in stalls.get(lane, ()))
            runnable += max(0.0, live - stalled)
        frac = runnable / (bucket * tl.n_warps)
        cols.append(_RAMP[min(len(_RAMP) - 1, int(frac * len(_RAMP)))])
    return "".join(cols)


def stall_summary(tl: Timeline) -> Dict[str, float]:
    """Fractions of total warp-residency cycles per scheduling state.

    Keys: ``issue`` (owning the issue unit), ``mem`` (memory stall),
    ``sync`` (barrier park), ``eligible`` (runnable but waiting for
    the issue unit).  Sums to 1 over each warp's lifetime.
    """
    if not tl.events:
        return {}
    retires = _retire_times(tl)
    total = sum(retires.values()) or tl.cycles * tl.n_warps
    if total <= 0:
        return {}
    spent = {"issue": 0.0, "mem": 0.0, "sync": 0.0}
    for ev in tl.events:
        if ev.kind in spent:
            spent[ev.kind] += ev.duration
    out = {k: v / total for k, v in spent.items()}
    out["eligible"] = max(0.0, 1.0 - sum(out.values()))
    return out


def format_timeline(tl: Timeline, width: int = 72) -> str:
    """Terminal block: header, per-SM occupancy strip, stall summary."""
    head = (f"warp timeline: {tl.kernel} on {tl.device}  "
            f"[{tl.blocks_per_sm} block(s) x {tl.warps_per_block} warps/SM, "
            f"{tl.cycles:.0f} cycles]")
    strip = occupancy_strip(tl, width)
    scale = (f"  0{' ' * (width - 12)}{tl.cycles:>10.0f}"
             if width >= 12 else "")
    summary = stall_summary(tl)
    states = "  ".join(f"{k}={v:.0%}" for k, v in summary.items())
    return "\n".join([head, f"SM0 |{strip}|", scale,
                      f"warp-state: {states}",
                      f"legend: '{_RAMP}' = 0..all warps runnable"])
