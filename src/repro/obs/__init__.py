"""Observability: metrics, spans and the nvprof-style launch profiler.

The paper explains every performance number by attributing it to
counters — global loads per thread, FMA issue fraction, bank-conflict
serialization, the Table 3 bottleneck verdict.  This package gives the
reproduction's own pipeline the same treatment:

* :mod:`repro.obs.registry` — process-wide but injectable
  :class:`MetricsRegistry` of labeled counters/gauges/histograms, with
  snapshot/merge fan-in for :class:`ProcessPoolExecutor` workers;
* :mod:`repro.obs.spans` — nested wall-clock span tracing exporting
  Chrome ``chrome://tracing`` JSON and a plain-text tree;
* :mod:`repro.obs.profiler` — the :class:`LaunchProfiler`, capturing
  one structured :class:`LaunchRecord` per kernel launch.

Everything is **off by default**: the ambient registry and tracer are
disabled, and every instrumentation point in the pipeline reduces to a
single attribute check until a :class:`LaunchProfiler` (or an explicit
:func:`set_registry` / :func:`set_tracer`) turns them on.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    get_registry,
    set_registry,
    use_registry,
)
from .spans import (
    Span,
    SpanTracer,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)
from .profiler import LaunchProfiler, LaunchRecord, active_profiler

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "get_registry",
    "set_registry",
    "use_registry",
    "Span",
    "SpanTracer",
    "get_tracer",
    "set_tracer",
    "span",
    "use_tracer",
    "LaunchProfiler",
    "LaunchRecord",
    "active_profiler",
]
