"""Observability: metrics, spans and the nvprof-style launch profiler.

The paper explains every performance number by attributing it to
counters — global loads per thread, FMA issue fraction, bank-conflict
serialization, the Table 3 bottleneck verdict.  This package gives the
reproduction's own pipeline the same treatment:

* :mod:`repro.obs.registry` — process-wide but injectable
  :class:`MetricsRegistry` of labeled counters/gauges/histograms, with
  snapshot/merge fan-in for :class:`ProcessPoolExecutor` workers;
* :mod:`repro.obs.spans` — nested wall-clock span tracing exporting
  Chrome ``chrome://tracing`` JSON and a plain-text tree;
* :mod:`repro.obs.profiler` — the :class:`LaunchProfiler`, capturing
  one structured :class:`LaunchRecord` per kernel launch;
* :mod:`repro.obs.derived` — nvprof/Nsight-style named derived metrics
  (``achieved_occupancy``, ``gld_efficiency``, ...) computed from the
  counters against the active device's peaks;
* :mod:`repro.obs.timeline` — per-SM warp scheduling timelines from
  the event-driven simulator (chrome://tracing JSON + ASCII strips);
* :mod:`repro.obs.roofline` — per-launch roofline placement against
  the device's compute and bandwidth roofs;
* :mod:`repro.obs.history` — perf-history manifests
  (``BENCH_history.jsonl``) and the baseline regression gate.

Everything is **off by default**: the ambient registry and tracer are
disabled, and every instrumentation point in the pipeline reduces to a
single attribute check until a :class:`LaunchProfiler` (or an explicit
:func:`set_registry` / :func:`set_tracer`) turns them on.  The derived
layers above never hook the hot path at all — they post-process
records and replay recorded streams on demand.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    get_registry,
    set_registry,
    use_registry,
)
from .spans import (
    Span,
    SpanTracer,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)
from .profiler import LaunchProfiler, LaunchRecord, active_profiler
from .derived import (METRICS, MetricDef, derive_from_estimate,
                      derive_metrics, format_derived, metric_deviation)
from .roofline import RooflinePoint, format_roofline, roofline_report
from .timeline import Timeline, format_timeline, record_timeline

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "get_registry",
    "set_registry",
    "use_registry",
    "Span",
    "SpanTracer",
    "get_tracer",
    "set_tracer",
    "span",
    "use_tracer",
    "LaunchProfiler",
    "LaunchRecord",
    "active_profiler",
    "METRICS",
    "MetricDef",
    "derive_metrics",
    "derive_from_estimate",
    "metric_deviation",
    "format_derived",
    "RooflinePoint",
    "roofline_report",
    "format_roofline",
    "Timeline",
    "record_timeline",
    "format_timeline",
]
