"""Nested wall-clock span tracing with Chrome-trace export.

A :class:`SpanTracer` records a tree of ``with span("..."):`` regions
— the structured replacement for ad-hoc ``time.perf_counter()`` pairs.
Completed traces export two ways:

* :meth:`SpanTracer.to_chrome_trace` — the ``chrome://tracing`` /
  Perfetto JSON event format (one complete ``"X"`` event per span);
* :meth:`SpanTracer.format_tree` — a plain-text indentation tree with
  per-span wall time and the fraction of the parent it covers.

Like the metrics registry, the ambient tracer starts disabled and the
module-level :func:`span` helper costs one function call and an
attribute check when tracing is off.
"""

from __future__ import annotations

import contextlib
import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List

__all__ = ["Span", "SpanTracer", "span", "get_tracer", "set_tracer",
           "use_tracer"]


@dataclass
class Span:
    """One timed region: name, interval, attributes and children."""

    name: str
    t0: float
    t1: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0

    def walk(self, depth: int = 0) -> Iterator:
        """Depth-first (span, depth) traversal."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)


class SpanTracer:
    """Collects a forest of nested :class:`Span` regions."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        #: epoch every exported timestamp is relative to
        self._epoch = perf_counter()

    @contextlib.contextmanager
    def span(self, name: str, **attrs):
        """Time a region; nests under any currently open span."""
        if not self.enabled:
            yield None
            return
        node = Span(name=name, t0=perf_counter(), attrs=attrs)
        (self._stack[-1].children if self._stack else self.roots).append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            node.t1 = perf_counter()
            self._stack.pop()

    def reset(self) -> None:
        self.roots = []
        self._stack = []
        self._epoch = perf_counter()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def walk(self) -> Iterator:
        for root in self.roots:
            yield from root.walk()

    def to_chrome_trace(self) -> Dict[str, object]:
        """The ``chrome://tracing`` JSON object (load via Perfetto)."""
        events = []
        for node, _depth in self.walk():
            events.append({
                "name": node.name,
                "ph": "X",
                "ts": (node.t0 - self._epoch) * 1e6,   # microseconds
                "dur": node.seconds * 1e6,
                "pid": 0,
                "tid": 0,
                "args": {str(k): str(v) for k, v in node.attrs.items()},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)

    def format_tree(self) -> str:
        """Plain-text tree: name, wall ms, % of the parent span."""
        lines = []
        parent_secs: List[float] = []
        for node, depth in self.walk():
            del parent_secs[depth:]
            share = ""
            if depth and parent_secs[depth - 1] > 0:
                share = f"  ({100 * node.seconds / parent_secs[depth - 1]:.0f}%)"
            attrs = " ".join(f"{k}={v}" for k, v in node.attrs.items())
            lines.append(f"{'  ' * depth}{node.name:<{max(1, 40 - 2 * depth)}}"
                         f"{node.seconds * 1e3:10.3f} ms{share}"
                         + (f"  [{attrs}]" if attrs else ""))
            parent_secs.append(node.seconds)
        return "\n".join(lines)


#: ambient tracer — disabled until a profiler (or caller) enables one
_TRACER = SpanTracer(enabled=False)


def get_tracer() -> SpanTracer:
    return _TRACER


def set_tracer(tracer: SpanTracer) -> SpanTracer:
    """Install ``tracer`` as ambient; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


@contextlib.contextmanager
def use_tracer(tracer: SpanTracer):
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


_NULL = contextlib.nullcontext()


def span(name: str, **attrs):
    """Trace a region on the ambient tracer (no-op when disabled)."""
    tracer = _TRACER
    if not tracer.enabled:
        return _NULL
    return tracer.span(name, **attrs)
