"""Derived nvprof/Nsight-style metrics over launch records.

PR 2's profiler exports *raw* counters — warp instructions, bus bytes,
cache hits — but the paper's analysis vocabulary is *derived*:
achieved occupancy, loads-per-request efficiency, the fraction of peak
the kernel sustains.  This module closes that gap with a **metric
registry**: every metric has a stable name (matching the nvprof /
Nsight Compute counter it imitates), a unit, a formula docstring, and
a compute function over a :class:`~repro.obs.profiler.LaunchRecord`
plus the active :class:`~repro.arch.device.DeviceSpec` (so peaks are
device-aware — the same record evaluated against a G80 and a GTX 480
yields different efficiency percentages).

Usage::

    from repro.obs.derived import derive_metrics, format_derived

    with LaunchProfiler() as prof:
        app.run(workload)
    values = derive_metrics(prof.records[0])
    print(format_derived(prof.records[0], values))

A metric that does not apply to a launch (L1 hit rate on a device
without a global cache hierarchy, model-based metrics when the timing
estimate was disabled) evaluates to ``None`` and renders as ``n/a``.

The same names are computable *statically* from a
:class:`~repro.analysis.estimate.PerfEstimate` via
:func:`derive_from_estimate`, which is what lets the
estimator-vs-measured deviation report (:func:`metric_deviation`)
speak one vocabulary for both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Union

from ..arch.device import DEFAULT_DEVICE, DeviceSpec

__all__ = [
    "MetricDef", "METRICS", "register_metric", "metric",
    "derive_metrics", "derive_from_estimate", "metric_deviation",
    "format_derived", "format_deviation",
]

MetricValue = Union[float, Dict[str, float], None]


@dataclass(frozen=True)
class MetricDef:
    """One named derived metric.

    ``compute(record, spec)`` returns a float, a breakdown dict, or
    ``None`` when the metric does not apply to the launch.
    """

    name: str
    unit: str                    # "%", "ratio", "warp-inst/cycle", ...
    formula: str                 # human-readable definition
    compute: Callable[[object, DeviceSpec], MetricValue]


#: the metric registry, in presentation order
METRICS: Dict[str, MetricDef] = {}


def register_metric(m: MetricDef) -> MetricDef:
    if m.name in METRICS:
        raise ValueError(f"metric {m.name!r} already registered")
    METRICS[m.name] = m
    return m


def metric(name: str, unit: str, formula: str):
    """Decorator registering a compute function as a named metric."""
    def wrap(fn: Callable[[object, DeviceSpec], MetricValue]):
        register_metric(MetricDef(name, unit, formula, fn))
        return fn
    return wrap


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

def _active_warps_per_sm(rec) -> Optional[float]:
    """Resident warps per SM from the record's occupancy block."""
    warps = rec.occupancy.get("warps/SM") if rec.occupancy else None
    return float(warps) if warps is not None else None


def _model_cycles_per_sm(rec, spec: DeviceSpec) -> Optional[float]:
    """Modeled kernel cycles on one SM (wall time x clock)."""
    if rec.model_seconds <= 0:
        return None
    return rec.model_seconds * spec.sp_clock_ghz * 1e9


def _sms_used(rec, spec: DeviceSpec) -> int:
    return min(spec.num_sms, max(1, rec.blocks_total))


def _hit_rate_pct(rec, space: str) -> Optional[float]:
    hits = rec.cache.get(f"{space}_hits", 0.0)
    misses = rec.cache.get(f"{space}_misses", 0.0)
    total = hits + misses
    return 100.0 * hits / total if total > 0 else None


# ----------------------------------------------------------------------
# The metrics (registration order = report order)
# ----------------------------------------------------------------------

@metric("achieved_occupancy", "ratio",
        "active warps per SM / device max resident warps per SM")
def _achieved_occupancy(rec, spec: DeviceSpec) -> Optional[float]:
    warps = _active_warps_per_sm(rec)
    if warps is None:
        return None
    return warps / spec.max_warps_per_sm


@metric("ipc", "warp-inst/cycle",
        "warp instructions per SM / modeled kernel cycles "
        "(peak = 1 / issue_cycles_per_warp_inst)")
def _ipc(rec, spec: DeviceSpec) -> Optional[float]:
    cycles = _model_cycles_per_sm(rec, spec)
    if cycles is None or rec.warp_insts <= 0:
        return None
    return rec.warp_insts / _sms_used(rec, spec) / cycles


def _efficiency_raw(rec, kind: str) -> Optional[float]:
    bus = rec.io.get(f"{kind}_bus_bytes", 0.0)
    if bus <= 0:
        return None
    return 100.0 * rec.io.get(f"{kind}_useful_bytes", 0.0) / bus


@metric("gld_efficiency", "%",
        "100 x requested global-load bytes / transaction-level bytes "
        "the load access pattern moves, capped at 100% "
        "(``gld_efficiency_raw`` keeps the uncapped ratio; "
        "``gld_broadcast`` flags the >100% duplicate-word case)")
def _gld_efficiency(rec, spec: DeviceSpec) -> Optional[float]:
    raw = _efficiency_raw(rec, "gld")
    return None if raw is None else min(100.0, raw)


@metric("gld_efficiency_raw", "%",
        "uncapped 100 x requested / bus bytes for global loads: exceeds "
        "100% when threads re-request the same words (requested bytes "
        "count per thread, duplicate segments dedupe on the bus)")
def _gld_efficiency_raw(rec, spec: DeviceSpec) -> Optional[float]:
    return _efficiency_raw(rec, "gld")


@metric("gld_broadcast", "flag",
        "1.0 when the raw load ratio exceeds 100% — multiple threads "
        "requested the same words (broadcast/overlapping access), so "
        "the capped ``gld_efficiency`` hides duplicate requests")
def _gld_broadcast(rec, spec: DeviceSpec) -> Optional[float]:
    raw = _efficiency_raw(rec, "gld")
    return None if raw is None else float(raw > 100.0)


@metric("gst_efficiency", "%",
        "100 x requested global-store bytes / transaction-level bytes "
        "the store access pattern moves, capped at 100% "
        "(``gst_efficiency_raw`` keeps the uncapped ratio)")
def _gst_efficiency(rec, spec: DeviceSpec) -> Optional[float]:
    raw = _efficiency_raw(rec, "gst")
    return None if raw is None else min(100.0, raw)


@metric("gst_efficiency_raw", "%",
        "uncapped 100 x requested / bus bytes for global stores")
def _gst_efficiency_raw(rec, spec: DeviceSpec) -> Optional[float]:
    return _efficiency_raw(rec, "gst")


@metric("gld_transactions_per_request", "ratio",
        "global-load transactions / coalescing-group load requests "
        "(1.0 = perfectly coalesced word accesses)")
def _gld_tpr(rec, spec: DeviceSpec) -> Optional[float]:
    req = rec.io.get("gld_accesses", 0.0)
    if req <= 0:
        return None
    return rec.io.get("gld_transactions", 0.0) / req


@metric("gst_transactions_per_request", "ratio",
        "global-store transactions / coalescing-group store requests")
def _gst_tpr(rec, spec: DeviceSpec) -> Optional[float]:
    req = rec.io.get("gst_accesses", 0.0)
    if req <= 0:
        return None
    return rec.io.get("gst_transactions", 0.0) / req


@metric("shared_bank_conflict_rate", "cycles/access",
        "extra serialization cycles / shared-memory warp instructions "
        "(0 = conflict-free)")
def _shared_conflict_rate(rec, spec: DeviceSpec) -> Optional[float]:
    if rec.shared_insts <= 0:
        return None
    return rec.bank_conflict_cycles / rec.shared_insts


@metric("l1_hit_rate", "%", "100 x L1 hits / L1 accesses "
        "(devices with a cached global path)")
def _l1_hit_rate(rec, spec: DeviceSpec) -> Optional[float]:
    return _hit_rate_pct(rec, "l1")


@metric("l2_hit_rate", "%", "100 x L2 hits / L2 accesses")
def _l2_hit_rate(rec, spec: DeviceSpec) -> Optional[float]:
    return _hit_rate_pct(rec, "l2")


@metric("const_hit_rate", "%", "100 x constant-cache hits / accesses")
def _const_hit_rate(rec, spec: DeviceSpec) -> Optional[float]:
    return _hit_rate_pct(rec, "const")


@metric("tex_hit_rate", "%", "100 x texture-cache hits / accesses")
def _tex_hit_rate(rec, spec: DeviceSpec) -> Optional[float]:
    return _hit_rate_pct(rec, "tex")


@metric("dram_throughput_pct", "%",
        "100 x (DRAM bus bytes / modeled seconds) / pin bandwidth")
def _dram_throughput(rec, spec: DeviceSpec) -> Optional[float]:
    if rec.model_seconds <= 0:
        return None
    achieved = rec.global_bus_bytes / rec.model_seconds
    return 100.0 * achieved / (spec.dram_bandwidth_gbs * 1e9)


@metric("flop_sp_efficiency", "%",
        "100 x achieved GFLOPS / device peak multiply-add GFLOPS")
def _flop_sp_efficiency(rec, spec: DeviceSpec) -> Optional[float]:
    if rec.model_seconds <= 0:
        return None
    return 100.0 * rec.gflops / spec.peak_mad_gflops


@metric("warp_issue_stall_breakdown", "fraction",
        "per-bottleneck share of the timing model's cycle estimates "
        "(instruction issue / SFU / bandwidth / latency), normalized")
def _stall_breakdown(rec, spec: DeviceSpec) -> Optional[Dict[str, float]]:
    cycles = rec.bottleneck_cycles
    if not cycles:
        return None
    total = sum(cycles.values())
    if total <= 0:
        return None
    return {name: c / total for name, c in cycles.items()}


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------

def _resolve_spec(rec, spec: Optional[DeviceSpec]) -> DeviceSpec:
    if spec is not None:
        return spec
    attached = getattr(rec, "spec", None)
    return attached if attached is not None else DEFAULT_DEVICE


def derive_metrics(record, spec: Optional[DeviceSpec] = None,
                   names: Optional[Sequence[str]] = None,
                   ) -> Dict[str, MetricValue]:
    """Evaluate registered metrics for one launch record.

    ``spec`` defaults to the device the record was captured on (records
    built by :meth:`LaunchRecord.from_result` carry their spec), then
    to the package default.  ``names`` restricts the evaluation;
    unknown names raise ``KeyError``.
    """
    spec = _resolve_spec(record, spec)
    selected = (METRICS.values() if names is None
                else [METRICS[n] for n in names])
    return {m.name: m.compute(record, spec) for m in selected}


def derive_from_estimate(est, spec: Optional[DeviceSpec] = None,
                         ) -> Dict[str, MetricValue]:
    """The same named metrics computed from a *static*
    :class:`~repro.analysis.estimate.PerfEstimate` — no execution.

    The estimate's census trace fills the counter-side inputs and its
    timing prediction the model-side ones, so every metric name means
    the same thing measured and predicted (cache hit rates stay ``n/a``:
    the static census does not simulate cache residency).
    """
    from .profiler import LaunchRecord
    spec = spec or est.occupancy.spec
    rec = LaunchRecord.from_census(est.census)
    rec.occupancy = est.occupancy.describe()
    if est.time is not None:
        rec.model_seconds = est.time.seconds
        rec.gflops = est.time.gflops
        rec.bound = est.time.bound
        rec.bottleneck_seconds = est.time.components()
        rec.bottleneck_cycles = est.time.cycles_components()
    return derive_metrics(rec, spec)


def metric_deviation(measured: Dict[str, MetricValue],
                     static: Dict[str, MetricValue],
                     ) -> Dict[str, Dict[str, float]]:
    """Measured-vs-static deviation per scalar metric present in both.

    Returns ``{name: {"measured": m, "static": s, "deviation_pct": d}}``
    with ``d = 100 x (s - m) / m`` — the estimator's error in the
    metric's own unit, positive when the static model is optimistic.
    """
    out: Dict[str, Dict[str, float]] = {}
    for name, m in measured.items():
        s = static.get(name)
        if not isinstance(m, (int, float)) or not isinstance(s, (int, float)):
            continue
        dev = 100.0 * (s - m) / m if m else (0.0 if not s else float("inf"))
        out[name] = {"measured": float(m), "static": float(s),
                     "deviation_pct": dev}
    return out


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def _fmt_value(value: MetricValue) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, dict):
        return ", ".join(f"{k}={v:.2f}" for k, v in value.items())
    return f"{value:.4g}"


def format_derived(record, values: Optional[Dict[str, MetricValue]] = None,
                   spec: Optional[DeviceSpec] = None) -> str:
    """nvprof ``--metrics``-style text block for one launch."""
    if values is None:
        values = derive_metrics(record, spec)
    header = f"derived metrics: {record.kernel} ({record.grid} x {record.block})"
    width = max(len(n) for n in values) if values else 0
    lines = [header]
    for name, value in values.items():
        unit = METRICS[name].unit if name in METRICS else ""
        lines.append(f"  {name:<{width}}  {_fmt_value(value):>12}  {unit}")
    return "\n".join(lines)


def format_deviation(deviation: Dict[str, Dict[str, float]]) -> str:
    """Text table of the measured-vs-static metric deviations."""
    if not deviation:
        return "estimator deviation: (no overlapping scalar metrics)"
    width = max(len(n) for n in deviation)
    lines = ["estimator deviation (static vs measured):"]
    for name, row in deviation.items():
        lines.append(
            f"  {name:<{width}}  measured {row['measured']:>10.4g}  "
            f"static {row['static']:>10.4g}  "
            f"dev {row['deviation_pct']:>+7.1f}%")
    return "\n".join(lines)
