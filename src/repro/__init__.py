"""repro — a reproduction of Ryoo et al., *Optimization Principles and
Application Performance Evaluation of a Multithreaded GPU Using CUDA*
(PPoPP 2008).

The package provides, in pure Python/NumPy:

* :mod:`repro.arch` — the GeForce 8800 GTX hardware description;
* :mod:`repro.cuda` — a CUDA-like programming model (grids, blocks,
  shared/constant/texture memory, ``__syncthreads``) whose kernels both
  compute real results and emit architectural traces;
* :mod:`repro.sim` — calibrated performance models (coalescing, bank
  conflicts, occupancy, issue/SFU/bandwidth/latency bottlenecks) plus
  an Opteron-248-class CPU baseline model;
* :mod:`repro.apps` — the paper's 12-application suite and the
  Section 4 matrix-multiplication optimization study;
* :mod:`repro.obs` — metrics, spans and the nvprof-style
  :class:`~repro.obs.profiler.LaunchProfiler`;
* :mod:`repro.bench` — runners that regenerate every table and figure.

Quickstart::

    from repro.bench import run_section4
    print(run_section4(n=1024).render())
"""

__version__ = "1.0.0"

from . import arch, cuda, obs, sim, trace  # noqa: F401

__all__ = ["arch", "cuda", "obs", "sim", "trace", "__version__"]
