"""Hardware description of the simulated GeForce 8800 GTX.

Public entry points:

* :class:`~repro.arch.device.DeviceSpec` — every microarchitectural
  constant the paper quotes, plus the calibrated timing parameters;
* :func:`~repro.arch.device.geforce_8800_gtx` — the paper's platform;
* :func:`~repro.arch.memory_table.memory_table` — the rows of Table 1.
"""

from .device import DeviceSpec, TimingParams, geforce_8800_gtx, DEFAULT_DEVICE
from .memory_table import MemorySpaceInfo, memory_table, format_memory_table

__all__ = [
    "DeviceSpec",
    "TimingParams",
    "geforce_8800_gtx",
    "DEFAULT_DEVICE",
    "MemorySpaceInfo",
    "memory_table",
    "format_memory_table",
]
