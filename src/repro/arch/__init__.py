"""Hardware description of the simulated GPUs.

Public entry points:

* :class:`~repro.arch.device.DeviceSpec` — every microarchitectural
  constant and generation capability, plus calibrated timing
  parameters;
* :func:`~repro.arch.device.geforce_8800_gtx` — the paper's platform
  (also :data:`~repro.arch.device.DEFAULT_DEVICE`);
* :func:`~repro.arch.device.gtx_480` / :func:`~repro.arch.device.rtx_3090`
  — later-generation profiles with cached global memory;
* :func:`~repro.arch.registry.device_by_name` — resolve a profile from
  its registered name (the ``--device`` CLI flags go through this);
* :func:`~repro.arch.memory_table.memory_table` — the rows of Table 1.
"""

from .device import (
    CACHED_LINE,
    DEFAULT_DEVICE,
    DeviceSpec,
    STRICT_SEGMENT,
    TimingParams,
    geforce_8600_gts,
    geforce_8800_gts,
    geforce_8800_gtx,
    gtx_480,
    rtx_3090,
    timing_for_fabric,
)
from .memory_table import MemorySpaceInfo, memory_table, format_memory_table
from .registry import device_by_name, device_names, register_device

__all__ = [
    "CACHED_LINE",
    "STRICT_SEGMENT",
    "DeviceSpec",
    "TimingParams",
    "timing_for_fabric",
    "geforce_8600_gts",
    "geforce_8800_gts",
    "geforce_8800_gtx",
    "gtx_480",
    "rtx_3090",
    "DEFAULT_DEVICE",
    "device_by_name",
    "device_names",
    "register_device",
    "MemorySpaceInfo",
    "memory_table",
    "format_memory_table",
]
