"""Hardware description of the simulated GPUs.

This module is the single source of truth for every microarchitectural
constant the simulator uses.  The default :class:`DeviceSpec` is the
paper's evaluation platform, the GeForce 8800 GTX (Section 3.2 and
Table 1 of Ryoo et al., PPoPP'08):

* 16 streaming multiprocessors (SMs), each with 8 streaming processors
  (SPs) and 2 special function units (SFUs), clocked at 1.35 GHz;
* 8192 registers and 16 KB of shared memory per SM;
* at most 768 simultaneously active threads and 8 thread blocks per SM,
  512 threads per block;
* 86.4 GB/s of off-chip DRAM bandwidth over 768 MB of device memory;
* peak multiply-add throughput of 345.6 GFLOPS (16 SMs x 8 SPs x
  2 flops x 1.35 GHz) and 388.8 GFLOPS when SFU co-issue is counted
  (16 SMs x 18 FLOPS x 1.35 GHz);
* global memory accesses coalesce into contiguous 16-word (64 B)
  lines per half-warp.

Generation-specific *behaviour* — not just sizes — also travels with
the spec: the coalescing rule (strict half-warp segments on CUDA 1.x
vs. cache-line gathering per warp on Fermi and later), the coalescing
group width, L1/L2 cache geometry, the configurable shared/L1 split,
and the occupancy limit table (see :meth:`DeviceSpec.occupancy_limit_table`).
Everything downstream (occupancy calculator, coalescing model, timing
models, benchmark harness) reads these values from a :class:`DeviceSpec`
instance instead of hard-coding them, so alternative devices are
modeled by constructing a different spec.  Named profiles are resolved
through :mod:`repro.arch.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

#: coalescing-rule names understood by :mod:`repro.sim.memsys`
STRICT_SEGMENT = "strict-segment"   # CUDA 1.x: thread k -> word k of a segment
CACHED_LINE = "cached-line"         # Fermi+: distinct cache lines per warp


@dataclass(frozen=True)
class TimingParams:
    """Calibratable timing-model parameters.

    The paper does not publish DRAM latencies or efficiencies for the
    GeForce 8800; these values are the model's free parameters.  They
    are fit once against the matrix-multiplication study of Section 4
    (see :mod:`repro.sim.calibration`) and then frozen for the entire
    application suite.

    Attributes
    ----------
    global_latency_cycles:
        Round-trip latency of a global (DRAM) access in SP cycles.
        Public microbenchmarks of the G80 place this in the 400-600
        cycle range.
    dram_efficiency:
        Fraction of the pin bandwidth achievable by a perfectly
        coalesced stream (DRAM paging, refresh and command overheads).
    uncoalesced_replay_cycles:
        SP issue cycles charged per serialized transaction of an
        uncoalesced access: the load/store unit replays the access
        once per transaction, blocking instruction issue (the CUDA 1.x
        "16 separate memory transactions" behaviour; cached devices
        replay far more cheaply).
    issue_cycles_per_warp_inst:
        SP cycles to issue one instruction for a full warp
        (``warp_size / sps_per_sm``; see :func:`timing_for_fabric`).
    sfu_cycles_per_warp_inst:
        SFU-pipe occupancy of one transcendental warp instruction
        (``warp_size / sfus_per_sm``).
    sync_cycles:
        Amortized cost of a ``__syncthreads()`` barrier per warp.
    kernel_launch_overhead_s:
        Fixed host-side cost of one kernel invocation.
    memory_queue_depth:
        Maximum number of in-flight memory transactions per SM
        (limits memory-level parallelism in the MWP model).
    """

    # Frozen output of repro.sim.calibration against the Section 4
    # matmul anchors (geometric-mean relative error 3.4%).
    global_latency_cycles: float = 400.0
    dram_efficiency: float = 0.80
    uncoalesced_replay_cycles: float = 3.0
    issue_cycles_per_warp_inst: float = 4.0
    sfu_cycles_per_warp_inst: float = 16.0
    sync_cycles: float = 4.0
    kernel_launch_overhead_s: float = 12e-6
    memory_queue_depth: int = 8


def timing_for_fabric(sps_per_sm: int, sfus_per_sm: int,
                      warp_size: int = 32, **overrides: float) -> TimingParams:
    """Derive issue-width timing parameters from the compute fabric.

    A warp instruction occupies the SP pipes for ``warp_size /
    sps_per_sm`` cycles (4 on the G80's 8-SP SM, 1 on a 32-SP Fermi
    SM) and the SFU pipe for ``warp_size / sfus_per_sm`` cycles.
    Remaining parameters stay at their defaults unless overridden —
    device factories pass their per-device calibration here.
    """
    params = dict(
        issue_cycles_per_warp_inst=warp_size / sps_per_sm,
        sfu_cycles_per_warp_inst=warp_size / sfus_per_sm,
    )
    params.update(overrides)
    return TimingParams(**params)


@dataclass(frozen=True)
class DeviceSpec:
    """Full microarchitectural description of a CUDA-generation GPU."""

    name: str = "GeForce 8800 GTX"

    # --- generation / capability layer -------------------------------------
    generation: str = "tesla"            # marketing architecture name
    compute_capability: Tuple[int, int] = (1, 0)
    #: how global accesses turn into transactions: STRICT_SEGMENT or
    #: CACHED_LINE (see module docstring and repro.sim.memsys)
    coalescing_rule: str = STRICT_SEGMENT
    #: threads whose global accesses are resolved together — a
    #: half-warp on CUDA 1.x devices, a full warp on Fermi and later
    coalesce_group: int = 16

    # --- compute fabric ----------------------------------------------------
    num_sms: int = 16
    sps_per_sm: int = 8
    sfus_per_sm: int = 2
    sp_clock_ghz: float = 1.35
    warp_size: int = 32
    half_warp: int = 16
    warp_schedulers_per_sm: int = 1

    # --- per-SM scheduling limits (Section 3.2) ---------------------------
    registers_per_sm: int = 8192
    shared_mem_per_sm: int = 16 * 1024
    max_threads_per_sm: int = 768
    max_blocks_per_sm: int = 8
    max_threads_per_block: int = 512
    max_grid_dim: int = 2 ** 16 - 1
    register_alloc_granularity: int = 1
    #: explicit resident-warp ceiling (0 = only the thread limit
    #: applies, as on CUDA 1.x where 768 / 32 is not separately capped)
    max_resident_warps_per_sm: int = 0

    # --- memory system -----------------------------------------------------
    dram_bandwidth_gbs: float = 86.4
    dram_capacity_bytes: int = 768 * 1024 * 1024
    coalesce_segment_bytes: int = 64          # 16 words of 4 B
    min_transaction_bytes: int = 32
    shared_mem_banks: int = 16
    constant_mem_bytes: int = 64 * 1024
    constant_cache_bytes_per_sm: int = 8 * 1024
    texture_cache_bytes_per_sm: int = 8 * 1024
    #: global-memory cache geometry (0 = uncached global path)
    cache_line_bytes: int = 0
    l1_cache_bytes_per_sm: int = 0
    l2_cache_bytes: int = 0
    #: unified shared/L1 pool for devices with a configurable split
    #: (0 = the shared-memory size is fixed)
    shared_l1_total_bytes: int = 0

    # --- host link (PCIe x16, 2007-era sustained rates) --------------------
    h2d_bandwidth_gbs: float = 1.5
    d2h_bandwidth_gbs: float = 1.2
    transfer_overhead_s: float = 15e-6

    # --- calibratable timing parameters ------------------------------------
    timing: TimingParams = field(default_factory=TimingParams)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_sps(self) -> int:
        """Total SP cores on the device (128 on the GeForce 8800 GTX)."""
        return self.num_sms * self.sps_per_sm

    @property
    def max_warps_per_sm(self) -> int:
        """Maximum resident warps per SM (24 = 768 / 32 on the G80).

        Devices that declare an explicit resident-warp ceiling (Fermi
        and later) are capped by it as well.
        """
        derived = self.max_threads_per_sm // self.warp_size
        if self.max_resident_warps_per_sm:
            return min(derived, self.max_resident_warps_per_sm)
        return derived

    @property
    def peak_mad_gflops(self) -> float:
        """Peak multiply-add throughput (345.6 GFLOPS on the G80)."""
        return self.num_sps * 2 * self.sp_clock_ghz

    @property
    def peak_gflops_with_sfu(self) -> float:
        """Peak including SFU co-issue (388.8 GFLOPS on the G80).

        The paper counts, per SM per cycle, two flops per SP (MAD)
        plus one per SFU.
        """
        flops_per_sm = self.sps_per_sm * 2 + self.sfus_per_sm
        return self.num_sms * flops_per_sm * self.sp_clock_ghz

    @property
    def coalesce_segment_words(self) -> int:
        """Words per coalescing segment (16 on the G80)."""
        return self.coalesce_segment_bytes // 4

    @property
    def has_cached_global_loads(self) -> bool:
        """True when the global path goes through an L1/L2 hierarchy."""
        return self.coalescing_rule == CACHED_LINE and self.cache_line_bytes > 0

    @property
    def shared_access_group(self) -> int:
        """Lanes whose shared-memory accesses are resolved together:
        a half-warp on 16-bank devices, a full warp on 32-bank ones."""
        return self.half_warp if self.shared_mem_banks <= 16 else self.warp_size

    @property
    def dram_bandwidth_bytes_per_cycle(self) -> float:
        """Aggregate DRAM bandwidth expressed in bytes per SP cycle."""
        return self.dram_bandwidth_gbs / self.sp_clock_ghz

    @property
    def max_active_threads(self) -> int:
        """Device-wide simultaneously active thread limit."""
        return self.num_sms * self.max_threads_per_sm

    # ------------------------------------------------------------------
    # Occupancy limit table
    # ------------------------------------------------------------------
    def occupancy_limit_table(self, threads_per_block: int,
                              regs_per_thread: int,
                              smem_per_block: int = 0) -> Dict[str, int]:
        """Per-resource blocks-per-SM ceilings for one configuration.

        The classic CUDA 1.x limits are blocks, threads, registers and
        shared memory; devices that declare an explicit resident-warp
        ceiling contribute a fifth ``"warps"`` entry, and devices with
        a coarse register-allocation granularity round each warp's
        register footprint up to it before dividing the register file.
        The binding limit is whichever entry is smallest (see
        :func:`repro.sim.occupancy.compute_occupancy`).
        """
        limits: Dict[str, int] = {
            "blocks": self.max_blocks_per_sm,
            "threads": self.max_threads_per_sm // threads_per_block,
        }
        warps_per_block = -(-threads_per_block // self.warp_size)
        if self.max_resident_warps_per_sm:
            limits["warps"] = self.max_resident_warps_per_sm // warps_per_block
        gran = self.register_alloc_granularity
        if gran > 1:
            per_warp = -(-regs_per_thread * self.warp_size // gran) * gran
            regs_per_block = per_warp * warps_per_block
        else:
            regs_per_block = regs_per_thread * threads_per_block
        limits["registers"] = (self.registers_per_sm // regs_per_block
                               if regs_per_block else self.max_blocks_per_sm)
        limits["shared"] = (self.shared_mem_per_sm // smem_per_block
                            if smem_per_block else self.max_blocks_per_sm)
        return limits

    # ------------------------------------------------------------------
    def with_timing(self, **updates: float) -> "DeviceSpec":
        """Return a copy of this spec with timing parameters overridden."""
        return replace(self, timing=replace(self.timing, **updates))

    def with_shared_split(self, shared_bytes: int) -> "DeviceSpec":
        """Reconfigure the unified shared/L1 pool (Fermi's
        ``cudaFuncCachePrefer*`` knob): ``shared_bytes`` goes to shared
        memory, the remainder of the pool to L1."""
        if not self.shared_l1_total_bytes:
            raise ValueError(
                f"{self.name} has a fixed shared-memory size")
        l1 = self.shared_l1_total_bytes - shared_bytes
        if shared_bytes <= 0 or l1 <= 0:
            raise ValueError(
                f"split {shared_bytes} B exceeds the "
                f"{self.shared_l1_total_bytes} B shared/L1 pool")
        if self.cache_line_bytes and l1 % self.cache_line_bytes:
            raise ValueError("L1 share must be a whole number of lines")
        return replace(self, shared_mem_per_sm=shared_bytes,
                       l1_cache_bytes_per_sm=l1)

    def describe(self) -> Dict[str, object]:
        """Summary dictionary used by the benchmark harness."""
        out = {
            "name": self.name,
            "generation": self.generation,
            "compute capability": ".".join(map(str, self.compute_capability)),
            "SMs": self.num_sms,
            "SPs/SM": self.sps_per_sm,
            "SP clock (GHz)": self.sp_clock_ghz,
            "registers/SM": self.registers_per_sm,
            "shared mem/SM (KB)": self.shared_mem_per_sm // 1024,
            "max threads/SM": self.max_threads_per_sm,
            "max blocks/SM": self.max_blocks_per_sm,
            "DRAM bandwidth (GB/s)": self.dram_bandwidth_gbs,
            "peak MAD GFLOPS": self.peak_mad_gflops,
            "peak GFLOPS (with SFU)": self.peak_gflops_with_sfu,
            "coalescing": f"{self.coalescing_rule} x{self.coalesce_group}",
        }
        if self.has_cached_global_loads:
            out["L1/SM (KB)"] = self.l1_cache_bytes_per_sm // 1024
            out["L2 (KB)"] = self.l2_cache_bytes // 1024
        return out


def geforce_8800_gtx() -> DeviceSpec:
    """The paper's evaluation platform with calibrated timing defaults.

    The timing parameters are the frozen output of
    :func:`repro.sim.calibration.calibrate` run against the Section 4
    matrix-multiplication anchors (10.58 / 46.49 / 91.14 / 87.10
    GFLOPS); see EXPERIMENTS.md for the fit residuals.
    """
    return DeviceSpec()


def geforce_8800_gts() -> DeviceSpec:
    """The 96-SP family member (12 SMs, 1.2 GHz, 64 GB/s, 640 MB).

    Section 1/3 of the paper stresses that the execution model "enables
    the execution of the same CUDA program across processor family
    members with a varying number of cores"; the scaling benchmark uses
    these siblings to demonstrate it.
    """
    return DeviceSpec(
        name="GeForce 8800 GTS",
        num_sms=12,
        sp_clock_ghz=1.2,
        dram_bandwidth_gbs=64.0,
        dram_capacity_bytes=640 * 1024 * 1024,
    )


def geforce_8600_gts() -> DeviceSpec:
    """The entry-level family member (4 SMs, 1.45 GHz, 32 GB/s)."""
    return DeviceSpec(
        name="GeForce 8600 GTS",
        num_sms=4,
        sp_clock_ghz=1.45,
        dram_bandwidth_gbs=32.0,
        dram_capacity_bytes=256 * 1024 * 1024,
    )


def gtx_480() -> DeviceSpec:
    """A Fermi-generation (compute 2.0) profile: the GeForce GTX 480.

    The behavioural differences from the G80, not just the sizes, are
    what the cross-device study exercises:

    * global loads go through an L1/L2 hierarchy and coalesce per full
      warp into 128 B cache lines — any permutation within a line
      costs one transaction, so the G80's strict thread-k/word-k rule
      disappears;
    * each 32-SP SM issues a warp instruction per cycle, shared memory
      has 32 banks, and registers are allocated per warp in units of
      64;
    * up to 1536 resident threads but also an explicit 48-warp
      ceiling, with 1024-thread blocks — tile sizes the G80 cannot
      even schedule become legal (the autotuner's shifted winner);
    * a 64 KB shared/L1 pool configurable as 48/16 or 16/48
      (:meth:`DeviceSpec.with_shared_split`).

    Timing parameters are fit per device (see
    ``python -m repro.sim.calibration --device gtx_480``).
    """
    return DeviceSpec(
        name="GeForce GTX 480",
        generation="fermi",
        compute_capability=(2, 0),
        coalescing_rule=CACHED_LINE,
        coalesce_group=32,
        num_sms=15,
        sps_per_sm=32,
        sfus_per_sm=4,
        sp_clock_ghz=1.401,
        warp_schedulers_per_sm=2,
        registers_per_sm=32768,
        shared_mem_per_sm=48 * 1024,
        max_threads_per_sm=1536,
        max_blocks_per_sm=8,
        max_threads_per_block=1024,
        register_alloc_granularity=64,
        max_resident_warps_per_sm=48,
        dram_bandwidth_gbs=177.4,
        dram_capacity_bytes=1536 * 1024 * 1024,
        coalesce_segment_bytes=128,
        min_transaction_bytes=32,
        shared_mem_banks=32,
        texture_cache_bytes_per_sm=12 * 1024,
        cache_line_bytes=128,
        l1_cache_bytes_per_sm=16 * 1024,
        l2_cache_bytes=768 * 1024,
        shared_l1_total_bytes=64 * 1024,
        h2d_bandwidth_gbs=5.7,
        d2h_bandwidth_gbs=5.3,
        transfer_overhead_s=10e-6,
        timing=timing_for_fabric(
            32, 4,
            global_latency_cycles=600.0,
            dram_efficiency=0.75,
            uncoalesced_replay_cycles=1.0,
            sync_cycles=2.0,
            kernel_launch_overhead_s=7e-6,
            memory_queue_depth=16,
        ),
    )


def rtx_3090() -> DeviceSpec:
    """A modern-class (Ampere, compute 8.6) profile: the RTX 3090.

    Included to stretch the abstraction far beyond the paper's era:
    two orders of magnitude more FP32 throughput than the G80 against
    only one order more bandwidth, so kernels that were issue-bound in
    2008 are bandwidth-bound here.
    """
    return DeviceSpec(
        name="GeForce RTX 3090",
        generation="ampere",
        compute_capability=(8, 6),
        coalescing_rule=CACHED_LINE,
        coalesce_group=32,
        num_sms=82,
        sps_per_sm=128,
        sfus_per_sm=4,
        sp_clock_ghz=1.695,
        warp_schedulers_per_sm=4,
        registers_per_sm=65536,
        shared_mem_per_sm=100 * 1024,
        max_threads_per_sm=1536,
        max_blocks_per_sm=16,
        max_threads_per_block=1024,
        max_grid_dim=2 ** 31 - 1,
        register_alloc_granularity=256,
        max_resident_warps_per_sm=48,
        dram_bandwidth_gbs=936.2,
        dram_capacity_bytes=24 * 1024 * 1024 * 1024,
        coalesce_segment_bytes=128,
        min_transaction_bytes=32,
        shared_mem_banks=32,
        texture_cache_bytes_per_sm=16 * 1024,
        cache_line_bytes=128,
        l1_cache_bytes_per_sm=28 * 1024,
        l2_cache_bytes=6 * 1024 * 1024,
        shared_l1_total_bytes=128 * 1024,
        h2d_bandwidth_gbs=12.0,
        d2h_bandwidth_gbs=12.0,
        transfer_overhead_s=6e-6,
        timing=timing_for_fabric(
            128, 4,
            global_latency_cycles=470.0,
            dram_efficiency=0.85,
            uncoalesced_replay_cycles=1.0,
            sync_cycles=2.0,
            kernel_launch_overhead_s=4e-6,
            memory_queue_depth=32,
        ),
    )


#: Device-wide default used throughout the package when no spec is given.
DEFAULT_DEVICE = geforce_8800_gtx()
