"""Hardware description of the simulated GPU.

This module is the single source of truth for every microarchitectural
constant the paper quotes for the GeForce 8800 GTX (Section 3.2 and
Table 1 of Ryoo et al., PPoPP'08):

* 16 streaming multiprocessors (SMs), each with 8 streaming processors
  (SPs) and 2 special function units (SFUs), clocked at 1.35 GHz;
* 8192 registers and 16 KB of shared memory per SM;
* at most 768 simultaneously active threads and 8 thread blocks per SM,
  512 threads per block;
* 86.4 GB/s of off-chip DRAM bandwidth over 768 MB of device memory;
* peak multiply-add throughput of 345.6 GFLOPS (16 SMs x 8 SPs x
  2 flops x 1.35 GHz) and 388.8 GFLOPS when SFU co-issue is counted
  (16 SMs x 18 FLOPS x 1.35 GHz);
* global memory accesses coalesce into contiguous 16-word (64 B)
  lines per half-warp.

Everything downstream (occupancy calculator, coalescing model, timing
models, benchmark harness) reads these values from a :class:`DeviceSpec`
instance instead of hard-coding them, so alternative devices can be
modeled by constructing a different spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class TimingParams:
    """Calibratable timing-model parameters.

    The paper does not publish DRAM latencies or efficiencies for the
    GeForce 8800; these values are the model's free parameters.  They
    are fit once against the matrix-multiplication study of Section 4
    (see :mod:`repro.sim.calibration`) and then frozen for the entire
    application suite.

    Attributes
    ----------
    global_latency_cycles:
        Round-trip latency of a global (DRAM) access in SP cycles.
        Public microbenchmarks of the G80 place this in the 400-600
        cycle range.
    dram_efficiency:
        Fraction of the 86.4 GB/s pin bandwidth achievable by a
        perfectly coalesced stream (DRAM paging, refresh and command
        overheads).
    uncoalesced_replay_cycles:
        SP issue cycles charged per serialized transaction of an
        uncoalesced half-warp access: the load/store unit replays the
        access once per transaction, blocking instruction issue
        (CUDA 1.x "16 separate memory transactions" behaviour).
    issue_cycles_per_warp_inst:
        SP cycles to issue one instruction for a full warp
        (32 threads / 8 SPs = 4 cycles on the G80).
    sfu_cycles_per_warp_inst:
        SFU-pipe occupancy of one transcendental warp instruction
        (32 threads / 2 SFUs = 16 cycles).
    sync_cycles:
        Amortized cost of a ``__syncthreads()`` barrier per warp.
    kernel_launch_overhead_s:
        Fixed host-side cost of one kernel invocation.
    memory_queue_depth:
        Maximum number of in-flight memory transactions per SM
        (limits memory-level parallelism in the MWP model).
    """

    # Frozen output of repro.sim.calibration against the Section 4
    # matmul anchors (geometric-mean relative error 3.4%).
    global_latency_cycles: float = 400.0
    dram_efficiency: float = 0.80
    uncoalesced_replay_cycles: float = 3.0
    issue_cycles_per_warp_inst: float = 4.0
    sfu_cycles_per_warp_inst: float = 16.0
    sync_cycles: float = 4.0
    kernel_launch_overhead_s: float = 12e-6
    memory_queue_depth: int = 8


@dataclass(frozen=True)
class DeviceSpec:
    """Full microarchitectural description of a CUDA-generation GPU."""

    name: str = "GeForce 8800 GTX"

    # --- compute fabric ---------------------------------------------------
    num_sms: int = 16
    sps_per_sm: int = 8
    sfus_per_sm: int = 2
    sp_clock_ghz: float = 1.35
    warp_size: int = 32
    half_warp: int = 16

    # --- per-SM scheduling limits (Section 3.2) ---------------------------
    registers_per_sm: int = 8192
    shared_mem_per_sm: int = 16 * 1024
    max_threads_per_sm: int = 768
    max_blocks_per_sm: int = 8
    max_threads_per_block: int = 512
    max_grid_dim: int = 2 ** 16 - 1
    register_alloc_granularity: int = 1

    # --- memory system -----------------------------------------------------
    dram_bandwidth_gbs: float = 86.4
    dram_capacity_bytes: int = 768 * 1024 * 1024
    coalesce_segment_bytes: int = 64          # 16 words of 4 B
    min_transaction_bytes: int = 32
    shared_mem_banks: int = 16
    constant_mem_bytes: int = 64 * 1024
    constant_cache_bytes_per_sm: int = 8 * 1024
    texture_cache_bytes_per_sm: int = 8 * 1024

    # --- host link (PCIe x16, 2007-era sustained rates) --------------------
    h2d_bandwidth_gbs: float = 1.5
    d2h_bandwidth_gbs: float = 1.2
    transfer_overhead_s: float = 15e-6

    # --- calibratable timing parameters ------------------------------------
    timing: TimingParams = field(default_factory=TimingParams)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_sps(self) -> int:
        """Total SP cores on the device (128 on the GeForce 8800 GTX)."""
        return self.num_sms * self.sps_per_sm

    @property
    def max_warps_per_sm(self) -> int:
        """Maximum resident warps per SM (24 = 768 / 32 on the G80)."""
        return self.max_threads_per_sm // self.warp_size

    @property
    def peak_mad_gflops(self) -> float:
        """Peak multiply-add throughput: 345.6 GFLOPS on the G80."""
        return self.num_sps * 2 * self.sp_clock_ghz

    @property
    def peak_gflops_with_sfu(self) -> float:
        """Peak including SFU co-issue: 388.8 GFLOPS on the G80.

        The paper counts 18 FLOPS per SM per cycle: 8 SPs x 2 (MAD)
        plus 2 SFUs contributing one flop each.
        """
        flops_per_sm = self.sps_per_sm * 2 + self.sfus_per_sm
        return self.num_sms * flops_per_sm * self.sp_clock_ghz

    @property
    def coalesce_segment_words(self) -> int:
        """Words per coalescing segment (16 on the G80)."""
        return self.coalesce_segment_bytes // 4

    @property
    def dram_bandwidth_bytes_per_cycle(self) -> float:
        """Aggregate DRAM bandwidth expressed in bytes per SP cycle."""
        return self.dram_bandwidth_gbs / self.sp_clock_ghz

    @property
    def max_active_threads(self) -> int:
        """Device-wide simultaneously active thread limit (12288)."""
        return self.num_sms * self.max_threads_per_sm

    # ------------------------------------------------------------------
    def with_timing(self, **updates: float) -> "DeviceSpec":
        """Return a copy of this spec with timing parameters overridden."""
        return replace(self, timing=replace(self.timing, **updates))

    def describe(self) -> Dict[str, object]:
        """Summary dictionary used by the benchmark harness."""
        return {
            "name": self.name,
            "SMs": self.num_sms,
            "SPs/SM": self.sps_per_sm,
            "SP clock (GHz)": self.sp_clock_ghz,
            "registers/SM": self.registers_per_sm,
            "shared mem/SM (KB)": self.shared_mem_per_sm // 1024,
            "max threads/SM": self.max_threads_per_sm,
            "max blocks/SM": self.max_blocks_per_sm,
            "DRAM bandwidth (GB/s)": self.dram_bandwidth_gbs,
            "peak MAD GFLOPS": self.peak_mad_gflops,
            "peak GFLOPS (with SFU)": self.peak_gflops_with_sfu,
        }


def geforce_8800_gtx() -> DeviceSpec:
    """The paper's evaluation platform with calibrated timing defaults.

    The timing parameters below are the frozen output of
    :func:`repro.sim.calibration.calibrate` run against the Section 4
    matrix-multiplication anchors (10.58 / 46.49 / 91.14 / 87.10
    GFLOPS); see EXPERIMENTS.md for the fit residuals.
    """
    return DeviceSpec()


def geforce_8800_gts() -> DeviceSpec:
    """The 96-SP family member (12 SMs, 1.2 GHz, 64 GB/s, 640 MB).

    Section 1/3 of the paper stresses that the execution model "enables
    the execution of the same CUDA program across processor family
    members with a varying number of cores"; the scaling benchmark uses
    these siblings to demonstrate it.
    """
    return DeviceSpec(
        name="GeForce 8800 GTS",
        num_sms=12,
        sp_clock_ghz=1.2,
        dram_bandwidth_gbs=64.0,
        dram_capacity_bytes=640 * 1024 * 1024,
    )


def geforce_8600_gts() -> DeviceSpec:
    """The entry-level family member (4 SMs, 1.45 GHz, 32 GB/s)."""
    return DeviceSpec(
        name="GeForce 8600 GTS",
        num_sms=4,
        sp_clock_ghz=1.45,
        dram_bandwidth_gbs=32.0,
        dram_capacity_bytes=256 * 1024 * 1024,
    )


#: The family members used by the scaling study.
DEVICE_FAMILY = ("geforce_8600_gts", "geforce_8800_gts", "geforce_8800_gtx")

#: Device-wide default used throughout the package when no spec is given.
DEFAULT_DEVICE = geforce_8800_gtx()
