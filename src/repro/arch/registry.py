"""Name -> factory registry of modeled devices.

Replaces the old ``DEVICE_FAMILY`` string tuple: every profile the
simulator knows is registered here under its factory name, CLIs
resolve ``--device NAME`` through :func:`device_by_name`, and adding a
device is one :func:`register_device` call (or a decorated factory) —
no downstream code enumerates devices by hand.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .device import (
    DeviceSpec,
    geforce_8600_gts,
    geforce_8800_gts,
    geforce_8800_gtx,
    gtx_480,
    rtx_3090,
)

DeviceFactory = Callable[[], DeviceSpec]

_REGISTRY: Dict[str, DeviceFactory] = {}


def register_device(name: str, factory: DeviceFactory = None,
                    *, overwrite: bool = False):
    """Register ``factory`` under ``name``.

    Usable directly or as a decorator::

        @register_device("my_gpu")
        def my_gpu() -> DeviceSpec: ...
    """
    def _register(f: DeviceFactory) -> DeviceFactory:
        if name in _REGISTRY and not overwrite:
            raise ValueError(f"device {name!r} is already registered")
        _REGISTRY[name] = f
        return f

    if factory is None:
        return _register
    return _register(factory)


def device_by_name(name: str) -> DeviceSpec:
    """Construct the spec registered under ``name``.

    Raises ``KeyError`` listing the known names when ``name`` is not
    registered, so CLI typos fail with the menu in hand.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known devices: "
            f"{', '.join(device_names())}") from None
    return factory()


def device_names() -> List[str]:
    """Sorted names of every registered device."""
    return sorted(_REGISTRY)


for _factory in (geforce_8600_gts, geforce_8800_gts, geforce_8800_gtx,
                 gtx_480, rtx_3090):
    register_device(_factory.__name__, _factory)
del _factory
