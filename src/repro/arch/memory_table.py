"""Memory-space properties of the simulated device (paper Table 1).

Table 1 of the paper enumerates the GeForce 8800's memory spaces with
their location, size, latency, read-only status and program scope.  The
same facts drive behaviour elsewhere in the simulator (address-space
checks in :mod:`repro.cuda.memory`, latency classes in
:mod:`repro.sim.timing`), so they are defined once here and the
benchmark for Table 1 simply formats this structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .device import DeviceSpec, DEFAULT_DEVICE


@dataclass(frozen=True)
class MemorySpaceInfo:
    """One row of the paper's Table 1."""

    name: str
    location: str           # on-chip / off-chip
    size: str               # human-readable capacity
    hit_latency: str        # qualitative latency as in the paper
    read_only: bool
    cached: bool
    scope: str              # who shares the data
    description: str

    def row(self) -> List[str]:
        return [
            self.name,
            self.location,
            self.size,
            self.hit_latency,
            "yes" if self.read_only else "no",
            "yes" if self.cached else "no",
            self.scope,
        ]


HEADERS = [
    "Memory", "Location", "Size", "Latency", "Read-only", "Cached", "Scope",
]


def memory_table(spec: DeviceSpec = DEFAULT_DEVICE) -> List[MemorySpaceInfo]:
    """Build the Table 1 rows for ``spec``.

    Latency figures are the qualitative classes the paper reports:
    register-speed for on-chip SRAM, hundreds of cycles for DRAM.
    """
    t = spec.timing
    if spec.has_cached_global_loads:
        dram_lat = (f"~{int(t.global_latency_cycles)} cycles "
                    f"(L1/L2 cached)")
        global_desc = (
            "Large DRAM directly addressable by all threads; accesses "
            "coalesce into {line} B cache lines per warp through a "
            "{l1} KB L1 and {l2} KB L2".format(
                line=spec.cache_line_bytes,
                l1=spec.l1_cache_bytes_per_sm // 1024,
                l2=spec.l2_cache_bytes // 1024))
    else:
        dram_lat = f"~{int(t.global_latency_cycles)} cycles (uncached)"
        global_desc = (
            "Large DRAM directly addressable by all threads; accesses "
            "coalesce into {seg} B lines per half-warp".format(
                seg=spec.coalesce_segment_bytes))
    return [
        MemorySpaceInfo(
            name="Global",
            location="off-chip",
            size=f"{spec.dram_capacity_bytes // (1024 * 1024)} MB total",
            hit_latency=dram_lat,
            read_only=False,
            cached=spec.has_cached_global_loads,
            scope="grid (all threads)",
            description=global_desc,
        ),
        MemorySpaceInfo(
            name="Shared",
            location="on-chip",
            size=f"{spec.shared_mem_per_sm // 1024} KB per SM",
            hit_latency="register latency",
            read_only=False,
            cached=False,
            scope="thread block",
            description=(
                "Software-managed scratchpad with {b} banks; conflict-free "
                "access is as fast as registers".format(b=spec.shared_mem_banks)
            ),
        ),
        MemorySpaceInfo(
            name="Constant",
            location="off-chip, cached on-chip",
            size=f"{spec.constant_mem_bytes // 1024} KB total, "
                 f"{spec.constant_cache_bytes_per_sm // 1024} KB cache per SM",
            hit_latency="register latency on cache hit (broadcast)",
            read_only=True,
            cached=True,
            scope="grid (all threads)",
            description=(
                "Read-only data broadcast to all threads of a warp in a "
                "single cycle on a cache hit"
            ),
        ),
        MemorySpaceInfo(
            name="Texture",
            location="off-chip, cached on-chip",
            size=f"up to global memory, "
                 f"{spec.texture_cache_bytes_per_sm // 1024} KB cache per SM",
            hit_latency=">100 cycles (cache optimized for 2D locality)",
            read_only=True,
            cached=True,
            scope="grid (all threads)",
            description=(
                "Read-only path through the texture units; cache captures "
                "2D spatial locality"
            ),
        ),
        MemorySpaceInfo(
            name="Local",
            location="off-chip",
            size="up to global memory",
            hit_latency=dram_lat,
            read_only=False,
            cached=False,
            scope="single thread",
            description=(
                "Per-thread spill space placed in DRAM; same cost as "
                "global memory"
            ),
        ),
    ]


def format_memory_table(spec: DeviceSpec = DEFAULT_DEVICE) -> str:
    """Render Table 1 as an aligned ASCII table."""
    rows = [HEADERS] + [info.row() for info in memory_table(spec)]
    widths = [max(len(r[i]) for r in rows) for i in range(len(HEADERS))]
    lines = []
    for j, row in enumerate(rows):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
