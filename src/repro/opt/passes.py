"""Optimization passes as first-class descriptors.

The paper's Section 4 treats optimizations as *transformations with
resource consequences*: tiling adds shared-memory usage and barrier
synchronization; unrolling removes bookkeeping instructions and frees
an induction-variable register; prefetching adds two registers and can
push a kernel over an occupancy cliff.  This module captures those
consequences declaratively so the ablation benchmarks (and user code)
can reason about variant spaces without re-deriving them.

A :class:`VariantDescriptor` chains passes over a base kernel's
resource profile and predicts the occupancy outcome — the mechanism
behind the paper's "11 registers -> 2 blocks/SM" cliff.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..arch.device import DeviceSpec, DEFAULT_DEVICE
from ..sim.occupancy import Occupancy, compute_occupancy


@dataclass(frozen=True)
class OptimizationPass:
    """One source-level transformation and its resource deltas.

    Attributes
    ----------
    regs_delta:
        Change in registers per thread (e.g. full unrolling removes
        the induction variable: -1; register prefetching: +2).
    smem_delta_bytes:
        Change in shared memory per block (tiling allocates the tiles).
    insts_per_iter_delta:
        Change in dynamic instructions per loop iteration (negative
        for unrolling, which deletes the compare/branch/increment).
    description:
        Paper-referenced rationale.
    """

    name: str
    regs_delta: int = 0
    smem_delta_bytes: int = 0
    insts_per_iter_delta: float = 0.0
    description: str = ""


#: The Section 4 pass catalogue.
OPTIMIZATION_PASSES: Dict[str, OptimizationPass] = {
    "tiling": OptimizationPass(
        "tiling", regs_delta=0, smem_delta_bytes=2 * 16 * 16 * 4,
        insts_per_iter_delta=+1.0,
        description="stage input tiles in shared memory (Section 4.2): "
                    "cuts global traffic by the tile size at the cost "
                    "of barriers and staging instructions"),
    "unrolling": OptimizationPass(
        "unrolling", regs_delta=-1, insts_per_iter_delta=-3.0,
        description="fully unroll constant-trip inner loops "
                    "(Section 4.3): deletes branches, induction "
                    "updates and per-iteration address arithmetic; "
                    "frees the induction register"),
    "prefetching": OptimizationPass(
        "prefetching", regs_delta=+2, insts_per_iter_delta=+0.2,
        description="double-buffer the next tile through registers "
                    "(Section 4.4): hides intra-thread load latency "
                    "but costs registers and move instructions"),
    "register_tiling": OptimizationPass(
        "register_tiling", regs_delta=+4, insts_per_iter_delta=-1.0,
        description="keep a small output tile in registers "
                    "(Section 5.2, used by H.264's outer loops)"),
    "predication": OptimizationPass(
        "predication", regs_delta=0, insts_per_iter_delta=-2.0,
        description="flatten thread-varying branches into predicated "
                    "straight-line code (R8 divergence): deletes the "
                    "per-branch SETP/BRANCH pair and stops divergent "
                    "warps serializing both paths"),
}


@dataclass(frozen=True)
class VariantDescriptor:
    """A kernel variant: base resource profile + applied passes."""

    base_name: str
    base_regs: int
    threads_per_block: int
    base_smem_bytes: int = 0
    passes: Tuple[OptimizationPass, ...] = ()

    def apply(self, opt: OptimizationPass) -> "VariantDescriptor":
        return replace(self, passes=self.passes + (opt,))

    def apply_named(self, name: str) -> "VariantDescriptor":
        return self.apply(OPTIMIZATION_PASSES[name])

    @property
    def name(self) -> str:
        if not self.passes:
            return self.base_name
        return self.base_name + "+" + "+".join(p.name for p in self.passes)

    @property
    def regs_per_thread(self) -> int:
        return max(1, self.base_regs + sum(p.regs_delta for p in self.passes))

    @property
    def smem_bytes(self) -> int:
        return max(0, self.base_smem_bytes
                   + sum(p.smem_delta_bytes for p in self.passes))

    def occupancy(self, spec: DeviceSpec = DEFAULT_DEVICE) -> Occupancy:
        """Predicted occupancy of this variant — the Section 4 cliffs."""
        return compute_occupancy(self.threads_per_block,
                                 self.regs_per_thread,
                                 self.smem_bytes, spec)

    def occupancy_cost(self, spec: DeviceSpec = DEFAULT_DEVICE) -> float:
        """Fraction of thread contexts *lost* relative to the base."""
        base = compute_occupancy(self.threads_per_block, self.base_regs,
                                 self.base_smem_bytes, spec)
        now = self.occupancy(spec)
        if base.active_threads_per_sm == 0:
            return 0.0
        return 1.0 - now.active_threads_per_sm / base.active_threads_per_sm


def descriptor_from_report(report, passes: Tuple[str, ...] = ()
                           ) -> VariantDescriptor:
    """Seed a variant space from a static-analysis report.

    The analyzer (:func:`repro.analysis.analyze_target`) measures the
    base resource profile — declared registers, threads per block and
    the shared-memory footprint it metered while symbolically executing
    the kernel — which is exactly a :class:`VariantDescriptor` base.
    ``passes`` names entries of :data:`OPTIMIZATION_PASSES` to apply on
    top, so "what would prefetching do to this kernel's occupancy?"
    becomes one call."""
    desc = VariantDescriptor(
        base_name=report.kernel,
        base_regs=report.regs_declared,
        threads_per_block=report.threads_per_block,
        base_smem_bytes=report.smem_bytes,
    )
    for name in passes:
        desc = desc.apply_named(name)
    return desc


def estimate_unroll_savings(insts_per_iter: float, trip_count: int,
                            bookkeeping_per_iter: float = 3.0,
                            factor: Optional[int] = None) -> float:
    """Fraction of dynamic instructions removed by unrolling a loop.

    ``factor=None`` means full unrolling (all bookkeeping goes away);
    partial unrolling by ``factor`` keeps ``1/factor`` of it.  This is
    the arithmetic behind Section 4.3's 125 -> 59 instruction drop.
    """
    if insts_per_iter <= 0 or trip_count <= 0:
        raise ValueError("loop must have positive size")
    if bookkeeping_per_iter >= insts_per_iter:
        raise ValueError("bookkeeping cannot exceed the loop body")
    keep = 0.0 if factor is None else bookkeeping_per_iter / factor
    saved = bookkeeping_per_iter - keep
    return saved / insts_per_iter
