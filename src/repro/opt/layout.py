"""Data-layout transformations (the Figure 5 toolbox).

The paper's LBM case study reorganizes global-memory layouts to
restore coalescing; these helpers express the index arithmetic of the
two canonical layouts plus the shared-memory padding trick used by
TPACF's private histograms and RPES's shell stage.
"""

from __future__ import annotations

import numpy as np


def aos_index(element: np.ndarray, component, ncomponents: int
              ) -> np.ndarray:
    """Array-of-structures flat index: components of one element are
    adjacent.  Consecutive threads reading the same component stride by
    ``ncomponents`` — uncoalesced on the G80 for ``ncomponents > 1``."""
    return np.asarray(element, dtype=np.int64) * ncomponents + component


def soa_index(element: np.ndarray, component, nelements: int
              ) -> np.ndarray:
    """Structure-of-arrays flat index: one plane per component.
    Consecutive threads reading the same component are unit-stride —
    coalesced when the plane base is segment-aligned."""
    return np.asarray(component, dtype=np.int64) * nelements \
        + np.asarray(element, dtype=np.int64)


def pad_stride(logical_width: int, banks: int = 16) -> int:
    """Smallest padded row stride >= ``logical_width`` that is coprime
    with the number of shared-memory banks, so column accesses (stride
    = row width) hit distinct banks.  The classic +1 padding falls out
    when the width is a multiple of the bank count."""
    if logical_width <= 0:
        raise ValueError("width must be positive")
    stride = logical_width
    while np.gcd(stride, banks) != 1:
        stride += 1
    return stride
