"""Optimization-strategy helpers (tiling, unrolling, prefetch, layout)."""

from .passes import (
    OPTIMIZATION_PASSES,
    OptimizationPass,
    VariantDescriptor,
    estimate_unroll_savings,
)
from .layout import aos_index, pad_stride, soa_index

__all__ = [
    "OPTIMIZATION_PASSES",
    "OptimizationPass",
    "VariantDescriptor",
    "estimate_unroll_savings",
    "aos_index",
    "soa_index",
    "pad_stride",
]
