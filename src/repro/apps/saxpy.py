"""SAXPY — single-precision a*x + y (Table 2/3's streaming kernel).

The paper lists SAXPY as "part of a larger application" with >99% of
serial time in the kernel, notes it has one of the highest
simultaneously-active thread counts in the suite, and classifies it as
memory-bandwidth saturated: "FEM, SAXPY, and FDTD saturate memory
bandwidth.  Even though the latter two have the highest number of
simultaneously active threads of the suite, this does not help the
large memory to compute ratio, which is the primary performance
bottleneck."

The kernel is a one-thread-per-element stream: two coalesced loads, a
fused multiply-add, one coalesced store.  The CPU baseline is the
SSE2-vectorized triad loop, itself bound by the host's DRAM stream
bandwidth — so the speedup is essentially the ratio of the two
machines' memory systems.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..cuda import Device, kernel
from ..sim.cpumodel import CpuCostParams
from .base import Application, AppRun


def saxpy_kernel():
    """y[i] = a * x[i] + y[i], one element per thread."""

    @kernel("saxpy", regs_per_thread=5,
            notes="streaming triad; bound by DRAM bandwidth")
    def saxpy(ctx, x, y, a, n):
        i = ctx.global_tid()
        ctx.address_ops(2)                    # i = bx*bdim+tx; bounds calc
        with ctx.masked(i < n):
            xv = ctx.ld_global(x, i)
            yv = ctx.ld_global(y, i)
            ctx.st_global(y, i, ctx.fma(a, xv, yv))

    return saxpy


class Saxpy(Application):
    """Streaming single-precision AXPY over multi-million element vectors."""

    name = "saxpy"
    description = "SAXPY stream kernel (BLAS-1 triad)"
    kernel_fraction = 0.998          # Table 2: >99%
    # The paper's CPU loop is SSE2-vectorized but stream-bound anyway.
    cpu_params = CpuCostParams(simd=True, miss_fraction=1.0)

    BLOCK = 256

    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        # The paper's SAXPY is one phase of a larger solver, so the
        # operand vectors stay device-resident across many invocations;
        # ``iterations`` models that reuse (transfers amortize over it).
        if scale == "full":
            return {"n": 1 << 22, "a": 2.5, "iterations": 50}
        return {"n": 4096, "a": 2.5, "iterations": 3}

    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        n, a = int(workload["n"]), np.float32(workload["a"])
        iters = int(workload.get("iterations", 1))
        x, y = self._inputs(n)
        for _ in range(iters):
            y = a * x + y
        return {"y": y}

    @staticmethod
    def _inputs(n: int):
        rng = np.random.default_rng(42)
        return (rng.standard_normal(n, dtype=np.float32),
                rng.standard_normal(n, dtype=np.float32))

    def lint_targets(self):
        from ..analysis.targets import LintTarget, garr
        n = 4096
        return [LintTarget(saxpy_kernel(), (n // self.BLOCK,),
                           (self.BLOCK,),
                           (garr("x", n), garr("y", n), 2.5, n))]

    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        n, a = int(workload["n"]), float(workload["a"])
        iters = int(workload.get("iterations", 1))
        dev = self._make_device(device)
        x, y = self._inputs(n)
        d_x = dev.to_device(x, "x")
        d_y = dev.to_device(y, "y")
        grid = -(-n // self.BLOCK)
        kern = saxpy_kernel()
        launches = [
            self.launch(kern, (grid,), (self.BLOCK,), (d_x, d_y, a, n),
                   device=dev, functional=functional,
                   trace_blocks=int(workload.get("trace_blocks", 4)))
            for _ in range(iters)
        ]
        outputs = {}
        if functional:
            outputs["y"] = dev.from_device(d_y)
        return self._finish(workload, launches, dev, outputs)
