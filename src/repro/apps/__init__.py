"""The ported application suite (paper Tables 2/3 + the Section 4 study).

Access applications through the registry::

    from repro.apps import get_app, suite_names
    app = get_app("mri-q")
    run = app.verify()                 # functional check vs NumPy
    run = app.run(app.default_workload("full"), functional=False)
    run.kernel_speedup, run.app_speedup, run.bottleneck
"""

from .base import Application, AppRun
from .registry import ALL_APPS, SUITE, get_app, iter_apps, suite_names

__all__ = [
    "Application",
    "AppRun",
    "ALL_APPS",
    "SUITE",
    "get_app",
    "iter_apps",
    "suite_names",
]
