"""H.264 — full-search motion estimation kernel.

The suite's heaviest port: "the most extreme case was H.264, which
involved a large-scale code transformation to extract the motion
estimation kernel from non-parallel application code" (34811 source
lines, 194 kernel lines, only 35% of serial time in the kernel).
Table 3's standout observation: "One interesting case is H.264, which
**spends more time in data transfer than GPU execution**" — every
frame pair ships to the device and the full SAD arrays ship back to
the host encoder, which still makes all mode decisions serially.

The kernel: one thread block per 16x16 macroblock; each thread owns
one candidate motion vector in the (2R+1)^2 search window and
accumulates the sum of absolute differences over the macroblock's 256
pixels.  The current macroblock is staged in shared memory (every
thread reads the same pixel -> broadcast); the reference frame is read
through the **texture cache**, whose 2D locality is exactly what the
overlapping candidate windows exhibit.  A shared-memory tree reduction
then picks the best vector, and the full SAD array is also written out
for the host's rate-distortion decisions (the transfer-heavy part).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..cuda import Device, kernel
from ..sim.cpumodel import CpuCostParams
from .base import Application, AppRun

MB = 16               # macroblock size
R = 8                 # search range: candidates in [-R, +R]^2
CAND = 2 * R + 1      # 17 -> 289 candidates/threads per block


def make_frames(width: int, height: int, seed: int = 77
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Synthetic video pair: a textured reference frame and a current
    frame that is a shifted, lightly noised copy (so true motion
    vectors exist and SAD search finds coherent motion)."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 256, (height + 32, width + 32)).astype(np.float32)
    # smooth the noise into texture so SAD has structure
    for _ in range(2):
        base = 0.25 * (np.roll(base, 1, 0) + np.roll(base, -1, 0)
                       + np.roll(base, 1, 1) + np.roll(base, -1, 1))
    ref = base[16:16 + height, 16:16 + width].copy()
    cur = base[16 - 3:16 - 3 + height, 16 + 2:16 + 2 + width].copy()
    cur += rng.normal(0, 1.0, cur.shape).astype(np.float32)
    return cur.astype(np.float32), ref.astype(np.float32)


def sad_reference(cur: np.ndarray, ref: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Exhaustive-search ground truth: per-MB SAD array and best MV."""
    h, w = cur.shape
    mbs_y, mbs_x = h // MB, w // MB
    sads = np.full((mbs_y, mbs_x, CAND, CAND), np.inf, dtype=np.float32)
    for by in range(mbs_y):
        for bx in range(mbs_x):
            mb = cur[by * MB:(by + 1) * MB, bx * MB:(bx + 1) * MB]
            for dy in range(-R, R + 1):
                for dx in range(-R, R + 1):
                    y0, x0 = by * MB + dy, bx * MB + dx
                    if y0 < 0 or x0 < 0 or y0 + MB > h or x0 + MB > w:
                        continue
                    cand = ref[y0:y0 + MB, x0:x0 + MB]
                    sads[by, bx, dy + R, dx + R] = np.abs(mb - cand).sum()
    best = sads.reshape(mbs_y, mbs_x, -1).argmin(axis=2)
    return sads, best.astype(np.int64)


def motion_search_kernel():
    """One macroblock per block; one candidate vector per thread."""

    @kernel("h264_motion_search", regs_per_thread=15,
            notes="current MB in shared memory, reference frame via "
                  "texture cache, tree reduction for the best vector")
    def me(ctx, cur, ref_tex, sads_out, best_out, width, height):
        t = ctx.nthreads          # lane-vector width
        tpb = ctx.threads_per_block   # CAND*CAND candidates per block
        bx, by = ctx.bx, ctx.by
        ctx.address_ops(4)
        dx = ctx.tid % CAND - R
        dy = ctx.tid // CAND - R

        mb_sh = ctx.shared_alloc(MB * MB, np.float32, "mb")
        # cooperative staging of the current macroblock (256 pixels by
        # the first 256 threads)
        with ctx.masked(ctx.tid < MB * MB):
            px = ctx.tid % MB
            py = ctx.tid // MB
            src = (by * MB + py) * width + bx * MB + px
            ctx.st_shared(mb_sh, ctx.tid, ctx.ld_global(cur, src))
        ctx.sync()

        y0 = by * MB + dy
        x0 = bx * MB + dx
        in_frame = ((y0 >= 0) & (x0 >= 0)
                    & (y0 + MB <= height) & (x0 + MB <= width))
        acc = np.full(t, np.float32(np.inf), dtype=np.float32)
        with ctx.masked(in_frame):
            zero_acc = np.zeros(t, dtype=np.float32)
            for p in range(MB * MB):
                px, py = p % MB, p // MB
                m = ctx.ld_shared(mb_sh, np.full(t, p))       # broadcast
                rpix = ctx.ld_tex(ref_tex, (y0 + py) * width + x0 + px)
                diff = ctx.fsub(m, rpix)
                # |diff| is free: abs is an input modifier on the G80
                zero_acc = ctx.fadd(zero_acc, np.abs(diff))
                ctx.loop_tail(1)
            acc = ctx.merge(zero_acc, acc)

        # write the full SAD array back for the host encoder
        out = (by * ctx.gridDim.x + bx) * tpb + ctx.tid
        ctx.st_global(sads_out, out, acc)

        # tree reduction over candidates to find the argmin
        red_v = ctx.shared_alloc(512, np.float32, "red_v")
        red_i = ctx.shared_alloc(512, np.int32, "red_i")
        ctx.st_shared(red_v, ctx.tid, acc)
        ctx.st_shared(red_i, ctx.tid, ctx.tid)
        ctx.sync()
        stride = 256
        while stride >= 1:
            with ctx.masked((ctx.tid < stride) & (ctx.tid + stride < tpb)):
                other = ctx.ld_shared(red_v, ctx.tid + stride)
                mine = ctx.ld_shared(red_v, ctx.tid)
                oidx = ctx.ld_shared(red_i, ctx.tid + stride)
                midx = ctx.ld_shared(red_i, ctx.tid)
                better = other < mine
                ctx.st_shared(red_v, ctx.tid,
                              ctx.select(better, other, mine))
                ctx.st_shared(red_i, ctx.tid,
                              ctx.select(better, oidx, midx))
            ctx.sync()
            stride //= 2
        with ctx.masked(ctx.tid == 0):
            winner = ctx.ld_shared(red_i, np.zeros(t, dtype=np.int64))
            ctx.st_global(best_out, np.full(t, by * ctx.gridDim.x + bx),
                          winner)

    return me


class H264(Application):
    """H.264 encoder motion-estimation offload."""

    name = "h264"
    description = "full-search motion estimation for an H.264 encoder"
    kernel_fraction = 0.35            # Table 2: 35%
    # the serial baseline is the scalar JM reference encoder (the
    # paper extracted the kernel from "non-parallel application code")
    cpu_params = CpuCostParams(simd=False, miss_fraction=0.0, op_scale=0.5)

    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        if scale == "full":
            return {"width": 320, "height": 256, "frames": 4}
        return {"width": 64, "height": 48, "frames": 1}

    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        cur, ref = make_frames(int(workload["width"]),
                               int(workload["height"]))
        sads, best = sad_reference(cur, ref)
        return {"best": best}

    def lint_targets(self):
        from ..analysis.targets import LintTarget, garr, tarr
        w, h = 64, 48
        mbs_x, mbs_y = w // MB, h // MB
        return [LintTarget(
            motion_search_kernel(), (mbs_x, mbs_y), (CAND * CAND,),
            (garr("cur", w * h), tarr("ref_frame", w * h),
             garr("sads", mbs_x * mbs_y * CAND * CAND),
             garr("best_mv", mbs_x * mbs_y, "int32"), w, h))]

    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        w, h = int(workload["width"]), int(workload["height"])
        frames = int(workload.get("frames", 1))
        dev = self._make_device(device)
        cur, ref = make_frames(w, h)
        mbs_x, mbs_y = w // MB, h // MB
        kern = motion_search_kernel()
        tb = int(workload.get("trace_blocks", 2))

        launches = []
        best = None
        for _ in range(frames):
            # per frame pair: ship both frames, run, ship all SADs back
            d_cur = dev.to_device(cur, "cur_frame")
            d_ref = dev.to_texture(ref, "ref_frame")
            d_sads = dev.alloc(mbs_x * mbs_y * CAND * CAND, np.float32,
                               "sads")
            d_best = dev.alloc(mbs_x * mbs_y, np.int32, "best_mv")
            launches.append(self.launch(
                kern, (mbs_x, mbs_y), (CAND * CAND,),
                (d_cur, d_ref, d_sads, d_best, w, h),
                device=dev, functional=functional, trace_blocks=tb))
            dev.from_device(d_sads)          # the transfer-heavy readback
            if functional and best is None:
                best = dev.from_device(d_best).reshape(mbs_y, mbs_x)
            for arr in (d_best, d_sads, d_ref, d_cur):
                dev.free(arr)

        outputs = {}
        if functional:
            outputs["best"] = best.astype(np.int64)
        return self._finish(workload, launches, dev, outputs)
